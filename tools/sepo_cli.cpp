// sepo_cli — command-line driver for the reproduction.
//
// Runs any of the seven applications on any implementation with generated
// data, and prints the measured run (stats, simulated time, digest).
//
//   sepo_cli list
//   sepo_cli run --app pvc --impl gpu --dataset 4
//   sepo_cli run --app wc --impl phoenix --bytes 2097152 --seed 7
//   sepo_cli run --app netflix --impl gpu --device-kb 2048 --csv
//   sepo_cli compare --app dna --dataset 2        # gpu vs cpu, digests
//
// Exit status: 0 on success, 1 on usage error, 2 on run failure (e.g. MapCG
// out of device memory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"
#include "baselines/mapcg.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

struct Options {
  std::string command;
  std::string app;
  std::string impl = "gpu";
  int dataset = 2;
  std::size_t bytes = 0;  // overrides dataset when nonzero
  std::uint64_t seed = 42;
  std::size_t device_kb = 4096;
  std::uint32_t threads = 8;
  bool csv = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: sepo_cli <command> [options]\n"
               "commands:\n"
               "  list                       list applications and implementations\n"
               "  run --app A --impl I       run one application\n"
               "  compare --app A            run gpu vs cpu baseline, verify digests\n"
               "options:\n"
               "  --app A          pvc | ii | dna | netflix | wc | pc | geo\n"
               "  --impl I         gpu | cpu | pinned   (standalone apps)\n"
               "                   gpu | phoenix | mapcg (MapReduce apps)\n"
               "  --dataset 1..4   paper Table I size, scaled 1:1000 (default 2)\n"
               "  --bytes N        explicit input size, overrides --dataset\n"
               "  --seed S         generator seed (default 42)\n"
               "  --device-kb N    simulated device memory (default 4096)\n"
               "  --threads N      CPU baseline threads (default 8)\n"
               "  --csv            machine-readable output\n");
}

bool is_mr_app(const std::string& app) {
  return app == "wc" || app == "pc" || app == "geo";
}

const MrApp* mr_app(const std::string& app) {
  if (app == "wc") return &word_count_app();
  if (app == "pc") return &patent_citation_app();
  if (app == "geo") return &geo_location_app();
  return nullptr;
}

std::unique_ptr<StandaloneApp> standalone_app(const std::string& app) {
  if (app == "pvc") return std::make_unique<PageViewCountApp>();
  if (app == "ii") return std::make_unique<InvertedIndexApp>();
  if (app == "dna") return std::make_unique<DnaAssemblyApp>();
  if (app == "netflix") return std::make_unique<NetflixApp>();
  return nullptr;
}

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options o;
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (a == "--app") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.app = v;
    } else if (a == "--impl") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.impl = v;
    } else if (a == "--dataset") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.dataset = std::atoi(v);
    } else if (a == "--bytes") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--device-kb") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.device_kb = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.threads = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--csv") {
      o.csv = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return std::nullopt;
    }
  }
  return o;
}

void print_result(const Options& o, const RunResult& r) {
  if (o.csv) {
    std::printf("app,impl,iterations,keys,table_bytes,heap_bytes,sim_ms,"
                "wall_ms,checksum\n");
    std::printf("%s,%s,%u,%llu,%llu,%llu,%.6f,%.3f,%016llx\n", o.app.c_str(),
                r.impl.c_str(), r.iterations,
                static_cast<unsigned long long>(r.keys),
                static_cast<unsigned long long>(r.table_bytes),
                static_cast<unsigned long long>(r.heap_bytes),
                r.sim_seconds * 1e3, r.wall_seconds * 1e3,
                static_cast<unsigned long long>(r.checksum));
    return;
  }
  std::printf("app            : %s (%s)\n", o.app.c_str(), r.impl.c_str());
  std::printf("iterations     : %u\n", r.iterations);
  std::printf("distinct keys  : %llu\n", static_cast<unsigned long long>(r.keys));
  if (r.table_bytes)
    std::printf("table size     : %s\n",
                TablePrinter::fmt_bytes(r.table_bytes).c_str());
  if (r.heap_bytes)
    std::printf("device heap    : %s (table/heap = %.2f)\n",
                TablePrinter::fmt_bytes(r.heap_bytes).c_str(),
                static_cast<double>(r.table_bytes) /
                    static_cast<double>(r.heap_bytes));
  std::printf("records        : %llu processed, %llu postponed executions\n",
              static_cast<unsigned long long>(r.stats.records_processed),
              static_cast<unsigned long long>(r.stats.records_postponed));
  std::printf("hash ops       : %llu (%llu new entries, %llu combines, "
              "%llu value appends)\n",
              static_cast<unsigned long long>(r.stats.hash_ops),
              static_cast<unsigned long long>(r.stats.inserts_new),
              static_cast<unsigned long long>(r.stats.combines),
              static_cast<unsigned long long>(r.stats.value_appends));
  std::printf("bus            : h2d %s in %llu txns, d2h %s, remote %s in "
              "%llu txns\n",
              TablePrinter::fmt_bytes(r.pcie.h2d_bytes).c_str(),
              static_cast<unsigned long long>(r.pcie.h2d_txns),
              TablePrinter::fmt_bytes(r.pcie.d2h_bytes).c_str(),
              TablePrinter::fmt_bytes(r.pcie.remote_bytes).c_str(),
              static_cast<unsigned long long>(r.pcie.remote_txns));
  std::printf("simulated time : %.3f ms\n", r.sim_seconds * 1e3);
  std::printf("wall clock     : %.1f ms (host; informational)\n",
              r.wall_seconds * 1e3);
  std::printf("result digest  : %016llx\n",
              static_cast<unsigned long long>(r.checksum));
}

int cmd_list() {
  std::printf("standalone applications (impls: gpu, cpu, pinned):\n");
  std::printf("  pvc      Page View Count       combining\n");
  std::printf("  ii       Inverted Index        multi-valued\n");
  std::printf("  dna      DNA Assembly          combining\n");
  std::printf("  netflix  Netflix similarity    combining\n");
  std::printf("MapReduce applications (impls: gpu, phoenix, mapcg):\n");
  std::printf("  wc       Word Count            MAP_REDUCE\n");
  std::printf("  pc       Patent Citation       MAP_GROUP\n");
  std::printf("  geo      Geo Location          MAP_GROUP\n");
  return 0;
}

int cmd_run(const Options& o) {
  const char* key = is_mr_app(o.app) ? mr_app(o.app)->table1_key
                    : standalone_app(o.app) ? standalone_app(o.app)->table1_key()
                                            : nullptr;
  if (!key) {
    std::fprintf(stderr, "unknown app: %s\n", o.app.c_str());
    return 1;
  }
  const std::size_t bytes = o.bytes ? o.bytes : table1_bytes(key, o.dataset);

  GpuConfig gcfg;
  gcfg.device_bytes = o.device_kb << 10;
  CpuConfig ccfg;
  ccfg.num_threads = o.threads;

  try {
    if (is_mr_app(o.app)) {
      const MrApp& app = *mr_app(o.app);
      std::fprintf(stderr, "generating %s of input...\n",
                   TablePrinter::fmt_bytes(bytes).c_str());
      const std::string input = app.generate(bytes, o.seed);
      RunResult r;
      if (o.impl == "gpu")
        r = run_mr_sepo(app, input, gcfg);
      else if (o.impl == "phoenix")
        r = run_mr_phoenix(app, input, ccfg);
      else if (o.impl == "mapcg")
        r = run_mr_mapcg(app, input, gcfg);
      else {
        std::fprintf(stderr, "impl %s not available for MapReduce apps\n",
                     o.impl.c_str());
        return 1;
      }
      print_result(o, r);
    } else {
      const auto app = standalone_app(o.app);
      std::fprintf(stderr, "generating %s of input...\n",
                   TablePrinter::fmt_bytes(bytes).c_str());
      const std::string input = app->generate(bytes, o.seed);
      RunResult r;
      if (o.impl == "gpu")
        r = app->run_gpu(input, gcfg);
      else if (o.impl == "cpu")
        r = app->run_cpu(input, ccfg);
      else if (o.impl == "pinned")
        r = app->run_pinned(input, gcfg);
      else {
        std::fprintf(stderr, "impl %s not available for standalone apps\n",
                     o.impl.c_str());
        return 1;
      }
      print_result(o, r);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 2;
  }
  return 0;
}

int cmd_compare(const Options& o) {
  Options a = o, b = o;
  a.impl = "gpu";
  b.impl = is_mr_app(o.app) ? "phoenix" : "cpu";
  std::printf("== %s: gpu vs %s ==\n", o.app.c_str(), b.impl.c_str());
  const char* key = is_mr_app(o.app)
                        ? mr_app(o.app)->table1_key
                        : standalone_app(o.app)->table1_key();
  const std::size_t bytes = o.bytes ? o.bytes : table1_bytes(key, o.dataset);
  try {
    RunResult ra, rb;
    if (is_mr_app(o.app)) {
      const MrApp& app = *mr_app(o.app);
      const std::string input = app.generate(bytes, o.seed);
      GpuConfig gcfg;
      gcfg.device_bytes = o.device_kb << 10;
      ra = run_mr_sepo(app, input, gcfg);
      rb = run_mr_phoenix(app, input, {.num_threads = o.threads});
    } else {
      const auto app = standalone_app(o.app);
      const std::string input = app->generate(bytes, o.seed);
      GpuConfig gcfg;
      gcfg.device_bytes = o.device_kb << 10;
      ra = app->run_gpu(input, gcfg);
      rb = app->run_cpu(input, {.num_threads = o.threads});
    }
    std::printf("gpu   : %.3f ms, %u iteration(s)\n", ra.sim_seconds * 1e3,
                ra.iterations);
    std::printf("%s : %.3f ms\n", rb.impl.c_str(), rb.sim_seconds * 1e3);
    std::printf("speedup: %.2fx\n", rb.sim_seconds / ra.sim_seconds);
    std::printf("digests: %s\n",
                ra.checksum == rb.checksum ? "MATCH" : "MISMATCH");
    return ra.checksum == rb.checksum ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) {
    usage();
    return 1;
  }
  if (opts->command == "list") return cmd_list();
  if (opts->command == "run") return cmd_run(*opts);
  if (opts->command == "compare") return cmd_compare(*opts);
  usage();
  return 1;
}
