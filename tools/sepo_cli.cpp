// sepo_cli — command-line driver for the reproduction.
//
// Runs any of the seven applications on any implementation with generated
// data, and prints the measured run (stats, simulated time, digest).
//
//   sepo_cli list
//   sepo_cli run --app pvc --impl gpu --dataset 4
//   sepo_cli run --app wc --impl phoenix --bytes 2097152 --seed 7
//   sepo_cli run --app netflix --impl gpu --device-kb 2048 --csv
//   sepo_cli compare --app dna --dataset 2        # gpu vs cpu, digests
//   sepo_cli run --app wc --impl gpu --metrics-out=m.json --trace-out=t.json
//   sepo_cli metrics-check BENCH_fig6.json        # schema validation
//   sepo_cli metrics-diff old.json new.json --max-regress-pct 5
//   sepo_cli run --app pvc --impl gpu --fault-seed 7 --fault-h2d-rate 0.01
//   sepo_cli run --app pvc --impl gpu --fault-h2d-rate 0.5
//       --journal-out crash.jsonl                 # flight-recorder dump
//   sepo_cli report m.json --journal crash.jsonl  # post-mortem run report
//   sepo_cli fuzz --seed 7 --runs 64              # differential fuzzing
//   sepo_cli fuzz --repro fuzz_repro_12.json      # replay a failure
//
// Exit status: 0 on success, 1 on usage error, 2 on run failure (e.g. MapCG
// out of device memory, fault-retry exhaustion), duplicate/unknown
// --fault-* flags, fuzz failures found, or invalid/unreadable/incomparable
// metrics files (metrics-diff exits 2 when the two files' schema versions
// differ beyond the adjacent v3/v4 pair, which stays comparable on shared
// fields with a warning); metrics-diff additionally exits 3 when
// sim_seconds regressed beyond the threshold; `fuzz --repro` exits 4 when
// the replayed verdict differs from the recorded one.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/engine.hpp"
#include "apps/fuzz.hpp"
#include "common/parse.hpp"
#include "common/table_printer.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"
#include "obs/fuzz_repro.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

struct Options {
  std::string command;
  std::string app;
  std::string impl = "gpu";
  int dataset = 2;
  std::size_t bytes = 0;  // overrides dataset when nonzero
  std::uint64_t seed = 42;
  std::size_t device_kb = 4096;
  std::uint32_t threads = 8;
  // Host ThreadPool size (0 = hardware concurrency); stripped from argv by
  // apps::pool_workers_from_args before parse() runs.
  std::size_t workers = 0;
  // Batched-insert capacity (0 = scalar path); stripped from argv by
  // apps::batch_insert_from_args (`--batch-insert on|off|N`).
  std::uint32_t batch_insert = 0;
  bool csv = false;
  gpusim::FaultConfig faults;  // all rates zero: injection disabled
  // True when --seed was given explicitly. `fuzz` has its own default master
  // seed, so it must distinguish "no --seed" from "--seed 0" — zero is a
  // perfectly good seed, not a request for the default.
  bool seed_set = false;
  // fuzz-only options.
  std::uint64_t fuzz_runs = 32;
  double time_budget_s = 0;
  std::size_t max_bytes = 0;       // 0 = FuzzOptions default
  std::string repro_path;          // replay mode when nonempty
  std::string artifact_dir = ".";  // where failure repros are written
  std::uint64_t corrupt_digest = 0;  // test-only forced-mismatch hook
};

// Checked numeric flag parsing: the whole value must parse and fit, or the
// flag is rejected with a message (std::atoi would silently yield 0).
template <typename T>
bool parse_flag(const std::string& flag, const char* value, T& out) {
  if (value == nullptr) {
    std::fprintf(stderr, "%s requires a value\n", flag.c_str());
    return false;
  }
  const auto parsed = parse_number<T>(value);
  if (!parsed) {
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag.c_str(), value);
    return false;
  }
  out = *parsed;
  return true;
}

// " | "-joined registry keys/names for usage() and cmd_list(). The lists are
// derived from the registry so they cannot drift from what actually runs.
std::string join_app_keys() {
  std::string s;
  for (const AppInfo* a : all_apps()) {
    if (!s.empty()) s += " | ";
    s += a->key;
  }
  return s;
}

std::string join_engine_names(bool mapreduce) {
  std::string s = "gpu";  // alias: the SEPO engine for the app's kind
  for (const Engine* e : all_engines()) {
    if (!(mapreduce ? e->caps().mapreduce : e->caps().standalone)) continue;
    s += " | ";
    s += e->name();
  }
  return s;
}

void usage() {
  std::fprintf(stderr,
               "usage: sepo_cli <command> [options]\n"
               "commands:\n"
               "  list                       list applications and implementations\n"
               "  engines                    print the app x engine support matrix\n"
               "  run --app A --impl I       run one application\n"
               "  compare --app A [--impl I] run I (default gpu) vs the reference\n"
               "                             baseline, verify digests\n"
               "  metrics-check FILE         validate a metrics JSON file\n"
               "  metrics-diff OLD NEW       compare two metrics files; exits 3 when\n"
               "                             sim_seconds regressed > --max-regress-pct\n"
               "  report FILE                render a run report from a metrics file\n"
               "                             (schema v3 or v4): per-iteration table,\n"
               "                             occupancy high-water marks, fault summary\n"
               "                             [--journal J.jsonl] [--last N]\n"
               "  bench-check FILE           validate a BENCH_host.json wall-clock file\n"
               "  bench-diff OLD NEW         compare two BENCH_host.json files; exits 3\n"
               "                             when wall_seconds regressed beyond\n"
               "                             --max-regress-pct (default 25)\n"
               "  fuzz [--seed S]            differential fuzzing of the engine matrix:\n"
               "                             seeded random configs, each run on the\n"
               "                             engine under test AND the reference\n"
               "                             baseline; failures are shrunk and written\n"
               "                             as replayable repro JSON artifacts\n"
               "                             [--runs N] [--time-budget SECS]\n"
               "                             [--max-bytes N] [--artifact-dir D]\n"
               "                             [--repro FILE]  replay one artifact;\n"
               "                             exits 4 if the verdict changed\n"
               "options:\n");
  std::fprintf(stderr,
               "  --app A          %s\n"
               "  --impl I         %s (standalone apps)\n"
               "                   %s (MapReduce apps)\n",
               join_app_keys().c_str(), join_engine_names(false).c_str(),
               join_engine_names(true).c_str());
  std::fprintf(stderr,
               "  --dataset 1..4   paper Table I size, scaled 1:1000 (default 2)\n"
               "  --bytes N        explicit input size, overrides --dataset\n"
               "  --seed S         generator seed (default 42)\n"
               "  --device-kb N    simulated device memory (default 4096)\n"
               "  --threads N      CPU baseline threads (default 8)\n"
               "  --workers N      host thread-pool size ($SEPO_WORKERS; 0 = cores)\n"
               "  --csv            machine-readable output\n"
               "  --max-regress-pct X   metrics-diff threshold (default 5)\n"
               "fault injection (run/compare; simulated-device impls only):\n"
               "  --fault-seed S           injector RNG seed (deterministic)\n"
               "  --fault-h2d-rate P       fail each h2d copy with prob P\n"
               "  --fault-d2h-rate P       fail each d2h page copy with prob P\n"
               "  --fault-remote-rate P    fail remote txns with prob P (pinned)\n"
               "  --fault-kernel-rate P    abort kernel chunk launches with prob P\n"
               "  --fault-pressure P       per-iteration memory-pressure spike prob\n"
               "  --fault-pressure-frac F  heap fraction seized by a spike\n"
               "  --fault-pressure-hold N  iterations a spike persists\n"
               "  --fault-max-retries N    retries before the run fails (default 8)\n"
               "telemetry (run/compare; also via environment):\n"
               "  --metrics-out FILE    write metrics JSON ($SEPO_METRICS_OUT)\n"
               "  --trace-out FILE      write Chrome trace JSON, GPU impls only\n"
               "                        ($SEPO_TRACE_OUT)\n"
               "  --journal-out FILE    write the flight-recorder event journal as\n"
               "                        JSONL after the run — including failed runs\n"
               "                        (post-mortem); GPU impls only\n"
               "                        ($SEPO_JOURNAL_OUT)\n");
}

// Table-organization / MapReduce-mode label for cmd_list.
const char* org_name(const AppInfo& a) {
  if (a.is_mapreduce()) return mapreduce::to_string(a.mr->mode);
  switch (a.standalone->organization()) {
    case core::Organization::kBasic: return "basic";
    case core::Organization::kMultiValued: return "multi-valued";
    case core::Organization::kCombining: return "combining";
  }
  return "?";
}

// Parses run/compare/fuzz options. On failure returns nullopt with
// `err_exit` set: 1 for usage errors (usage() is printed by the caller), 2
// for rejected --fault-* flags — a duplicated or unknown fault flag means
// the requested fault schedule is not what would run, which is a run-level
// error, not a typo-level one (last-one-wins silently corrupted chaos
// experiments).
std::optional<Options> parse(int argc, char** argv, int& err_exit) {
  err_exit = 1;
  if (argc < 2) return std::nullopt;
  Options o;
  o.command = argv[1];
  std::set<std::string> fault_flags_seen;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (a == "--app") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.app = v;
    } else if (a == "--impl") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.impl = v;
    } else if (a == "--dataset") {
      if (!parse_flag(a, next(), o.dataset)) return std::nullopt;
    } else if (a == "--bytes") {
      if (!parse_flag(a, next(), o.bytes)) return std::nullopt;
    } else if (a == "--seed") {
      if (!parse_flag(a, next(), o.seed)) return std::nullopt;
      o.seed_set = true;
    } else if (a == "--device-kb") {
      if (!parse_flag(a, next(), o.device_kb)) return std::nullopt;
    } else if (a == "--threads") {
      if (!parse_flag(a, next(), o.threads)) return std::nullopt;
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--runs") {
      if (!parse_flag(a, next(), o.fuzz_runs)) return std::nullopt;
    } else if (a == "--time-budget") {
      if (!parse_flag(a, next(), o.time_budget_s)) return std::nullopt;
    } else if (a == "--max-bytes") {
      if (!parse_flag(a, next(), o.max_bytes)) return std::nullopt;
    } else if (a == "--corrupt-digest") {
      if (!parse_flag(a, next(), o.corrupt_digest)) return std::nullopt;
    } else if (a == "--repro") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.repro_path = v;
    } else if (a == "--artifact-dir") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.artifact_dir = v;
    } else if (a.rfind("--fault-", 0) == 0) {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        return std::nullopt;
      }
      if (!fault_flags_seen.insert(a).second) {
        std::fprintf(stderr, "duplicate fault flag: %s\n", a.c_str());
        err_exit = 2;
        return std::nullopt;
      }
      try {
        if (!gpusim::apply_fault_flag(o.faults, a, v)) {
          std::fprintf(stderr, "unknown fault flag: %s\n", a.c_str());
          err_exit = 2;
          return std::nullopt;
        }
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        err_exit = 2;
        return std::nullopt;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return std::nullopt;
    }
  }
  return o;
}

void print_result(const Options& o, const RunResult& r) {
  if (o.csv) {
    std::printf("app,impl,iterations,keys,table_bytes,heap_bytes,sim_ms,"
                "wall_ms_host,checksum\n");
    std::printf("%s,%s,%u,%llu,%llu,%llu,%.6f,%.3f,%016llx\n", o.app.c_str(),
                r.impl.c_str(), r.iterations,
                static_cast<unsigned long long>(r.keys),
                static_cast<unsigned long long>(r.table_bytes),
                static_cast<unsigned long long>(r.heap_bytes),
                r.sim_seconds * 1e3, r.wall_seconds * 1e3,
                static_cast<unsigned long long>(r.checksum));
    return;
  }
  std::printf("app            : %s (%s)\n", o.app.c_str(), r.impl.c_str());
  std::printf("iterations     : %u\n", r.iterations);
  std::printf("distinct keys  : %llu\n", static_cast<unsigned long long>(r.keys));
  if (r.table_bytes)
    std::printf("table size     : %s\n",
                TablePrinter::fmt_bytes(r.table_bytes).c_str());
  if (r.heap_bytes)
    std::printf("device heap    : %s (table/heap = %.2f)\n",
                TablePrinter::fmt_bytes(r.heap_bytes).c_str(),
                static_cast<double>(r.table_bytes) /
                    static_cast<double>(r.heap_bytes));
  std::printf("records        : %llu processed, %llu postponed executions\n",
              static_cast<unsigned long long>(r.stats.records_processed),
              static_cast<unsigned long long>(r.stats.records_postponed));
  std::printf("hash ops       : %llu (%llu new entries, %llu combines, "
              "%llu value appends)\n",
              static_cast<unsigned long long>(r.stats.hash_ops),
              static_cast<unsigned long long>(r.stats.inserts_new),
              static_cast<unsigned long long>(r.stats.combines),
              static_cast<unsigned long long>(r.stats.value_appends));
  std::printf("bus            : h2d %s in %llu txns, d2h %s, remote %s in "
              "%llu txns\n",
              TablePrinter::fmt_bytes(r.pcie.h2d_bytes).c_str(),
              static_cast<unsigned long long>(r.pcie.h2d_txns),
              TablePrinter::fmt_bytes(r.pcie.d2h_bytes).c_str(),
              TablePrinter::fmt_bytes(r.pcie.remote_bytes).c_str(),
              static_cast<unsigned long long>(r.pcie.remote_txns));
  std::printf("simulated time : %.3f ms\n", r.sim_seconds * 1e3);
  std::printf("wall clock     : %.1f ms (host; informational)\n",
              r.wall_seconds * 1e3);
  std::printf("result digest  : %016llx\n",
              static_cast<unsigned long long>(r.checksum));
}

int cmd_list() {
  std::printf("standalone applications (impls: %s):\n",
              join_engine_names(false).c_str());
  for (const AppInfo* a : all_apps())
    if (!a->is_mapreduce())
      std::printf("  %-8s %-22s %s\n", a->key, a->title, org_name(*a));
  std::printf("MapReduce applications (impls: %s):\n",
              join_engine_names(true).c_str());
  for (const AppInfo* a : all_apps())
    if (a->is_mapreduce())
      std::printf("  %-8s %-22s %s\n", a->key, a->title, org_name(*a));
  return 0;
}

// `sepo_cli engines`: the app x engine support matrix plus capability flags
// and one-line descriptions — all straight from the registry.
int cmd_engines() {
  std::vector<std::string> header = {"engine"};
  for (const AppInfo* a : all_apps()) header.emplace_back(a->key);
  header.emplace_back("device");
  header.emplace_back("telemetry");
  TablePrinter table(std::move(header));
  for (const Engine* e : all_engines()) {
    std::vector<std::string> row = {e->name()};
    for (const AppInfo* a : all_apps())
      row.emplace_back(e->supports(*a) ? "x" : "-");
    const Engine::Caps caps = e->caps();
    row.emplace_back(caps.simulated_device ? "sim" : "host");
    std::string telemetry;
    if (caps.trace) telemetry += "trace ";
    if (caps.journal) telemetry += "journal ";
    if (caps.faults) telemetry += "faults";
    if (telemetry.empty()) telemetry = "-";
    row.emplace_back(std::move(telemetry));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n");
  for (const Engine* e : all_engines())
    std::printf("  %-11s %s\n", e->name(), e->describe());
  return 0;
}

// Writes telemetry files requested via --metrics-out / --trace-out; returns
// false (after printing) when a file could not be written.
bool write_outputs(const obs::OutputOptions& out, const obs::MetricsReport& report,
                   const obs::TraceRecorder* rec) {
  std::string err;
  if (out.metrics_enabled()) {
    if (!report.write_file(out.metrics_path, &err)) {
      std::fprintf(stderr, "metrics: %s\n", err.c_str());
      return false;
    }
    std::fprintf(stderr, "metrics written to %s\n", out.metrics_path.c_str());
  }
  if (out.trace_enabled()) {
    if (!rec) {
      std::fprintf(stderr,
                   "trace: no simulated-device activity recorded "
                   "(--trace-out applies to impls with trace support; "
                   "see `sepo_cli engines`)\n");
    } else if (!rec->write_file(out.trace_path, &err)) {
      std::fprintf(stderr, "trace: %s\n", err.c_str());
      return false;
    } else {
      std::fprintf(stderr, "trace written to %s\n", out.trace_path.c_str());
    }
  }
  return true;
}

// Dumps the flight-recorder journal when --journal-out was given. Called on
// the success, RunError, and exception paths alike: the journal is most
// valuable precisely when the run died. `journal` is null for impls without
// a simulated device (nothing was recorded).
bool write_journal(const obs::OutputOptions& out,
                   const gpusim::EventJournal* journal) {
  if (!out.journal_enabled()) return true;
  if (!journal) {
    std::fprintf(stderr,
                 "journal: no simulated-device activity recorded "
                 "(--journal-out applies to impls with journal support; "
                 "see `sepo_cli engines`)\n");
    return true;
  }
  std::string err;
  if (!obs::write_journal_jsonl(*journal, out.journal_path,
                                /*max_events=*/4096, &err)) {
    std::fprintf(stderr, "journal: %s\n", err.c_str());
    return false;
  }
  std::fprintf(stderr, "journal written to %s\n", out.journal_path.c_str());
  return true;
}

obs::Json run_extra(const Options& o, std::size_t bytes) {
  obs::Json extra = obs::Json::object();
  extra.set("dataset", o.dataset);
  extra.set("input_bytes", static_cast<std::uint64_t>(bytes));
  extra.set("seed", o.seed);
  extra.set("device_bytes", static_cast<std::uint64_t>(o.device_kb << 10));
  return extra;
}

int cmd_run(const Options& o, const obs::OutputOptions& out) {
  const AppInfo* app = find_app(o.app);
  if (!app) {
    std::fprintf(stderr, "unknown app: %s\n", o.app.c_str());
    return 1;
  }
  const Engine* eng = resolve_engine(o.impl, *app);
  if (!eng) {
    std::fprintf(stderr, "unknown impl: %s (see `sepo_cli engines`)\n",
                 o.impl.c_str());
    return 1;
  }
  if (!eng->supports(*app)) {
    std::fprintf(stderr,
                 "impl %s does not support app %s (see `sepo_cli engines`)\n",
                 eng->name(), o.app.c_str());
    return 1;
  }
  const std::size_t bytes =
      o.bytes ? o.bytes : table1_bytes(app->table1_key(), o.dataset);

  EngineConfig cfg;
  cfg.gpu.device_bytes = o.device_kb << 10;
  cfg.gpu.faults = o.faults;
  cfg.gpu.pool_workers = o.workers;
  cfg.gpu.batch_insert = o.batch_insert;
  cfg.cpu.num_threads = o.threads;
  cfg.cpu.pool_workers = o.workers;

  // Per-run telemetry is gated on the engine's capability flags, not on an
  // impl-name heuristic.
  const Engine::Caps caps = eng->caps();
  if (o.faults.enabled() && !caps.faults)
    std::fprintf(stderr, "note: impl %s ignores fault injection\n",
                 eng->name());
  std::unique_ptr<obs::TraceRecorder> rec;
  if (out.trace_enabled() && caps.trace) {
    rec = std::make_unique<obs::TraceRecorder>();
    cfg.gpu.trace = rec.get();
  }
  // The journal outlives the try block so a thrown run still gets its
  // post-mortem dump (the run harness joins its workers before unwinding,
  // so the drain below sees quiescent shards).
  std::unique_ptr<gpusim::EventJournal> journal;
  if (out.journal_enabled() && caps.journal) {
    journal = std::make_unique<gpusim::EventJournal>();
    cfg.gpu.journal = journal.get();
  }

  try {
    std::fprintf(stderr, "generating %s of input...\n",
                 TablePrinter::fmt_bytes(bytes).c_str());
    const std::string input = app->generate(bytes, o.seed);
    const RunResult r = eng->run(*app, input, cfg);
    obs::MetricsReport report("sepo_cli");
    report.add_run(o.app, r, run_extra(o, bytes));
    if (r.error) {
      // The run failed structurally (typed RunError on the result) — still
      // write the telemetry so the failure is diffable, then exit 2. The
      // journal dump is the flight recorder's whole purpose here: the last
      // events before the failure, in simulated-time order.
      std::fprintf(stderr, "run failed (%s): %s\n", r.error.kind_name(),
                   r.error.message.c_str());
      write_outputs(out, report, rec.get());
      write_journal(out, journal.get());
      return 2;
    }
    print_result(o, r);
    if (!write_outputs(out, report, rec.get())) return 2;
    if (!write_journal(out, journal.get())) return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    write_journal(out, journal.get());
    return 2;
  }
  return 0;
}

int cmd_compare(const Options& o, const obs::OutputOptions& out) {
  const AppInfo* app = find_app(o.app);
  if (!app) {
    std::fprintf(stderr, "unknown app: %s\n", o.app.c_str());
    return 1;
  }
  const Engine* test = resolve_engine(o.impl, *app);
  if (!test) {
    std::fprintf(stderr, "unknown impl: %s (see `sepo_cli engines`)\n",
                 o.impl.c_str());
    return 1;
  }
  if (!test->supports(*app)) {
    std::fprintf(stderr,
                 "impl %s does not support app %s (see `sepo_cli engines`)\n",
                 test->name(), o.app.c_str());
    return 1;
  }
  const Engine* base = baseline_engine(*app);
  std::printf("== %s: %s vs %s ==\n", o.app.c_str(), test->name(),
              base->name());
  const std::size_t bytes =
      o.bytes ? o.bytes : table1_bytes(app->table1_key(), o.dataset);
  std::unique_ptr<obs::TraceRecorder> rec;
  if (out.trace_enabled() && test->caps().trace)
    rec = std::make_unique<obs::TraceRecorder>();
  try {
    EngineConfig cfg;
    cfg.gpu.device_bytes = o.device_kb << 10;
    cfg.gpu.faults = o.faults;
    cfg.gpu.pool_workers = o.workers;
    cfg.gpu.batch_insert = o.batch_insert;
    cfg.gpu.trace = rec.get();
    cfg.cpu.num_threads = o.threads;
    cfg.cpu.pool_workers = o.workers;
    if (rec) rec->begin_section(o.app + "/" + test->name());
    const std::string input = app->generate(bytes, o.seed);
    const RunResult ra = test->run(*app, input, cfg);
    EngineConfig bcfg = cfg;
    bcfg.gpu.trace = nullptr;  // the trace follows the tested engine only
    const RunResult rb = base->run(*app, input, bcfg);
    if (ra.error) {
      std::fprintf(stderr, "%s run failed (%s): %s\n", test->name(),
                   ra.error.kind_name(), ra.error.message.c_str());
      return 2;
    }
    std::printf("%-7s: %.3f ms, %u iteration(s)\n", ra.impl.c_str(),
                ra.sim_seconds * 1e3, ra.iterations);
    std::printf("%-7s: %.3f ms\n", rb.impl.c_str(), rb.sim_seconds * 1e3);
    std::printf("speedup: %.2fx\n", rb.sim_seconds / ra.sim_seconds);
    std::printf("digests: %s\n",
                ra.checksum == rb.checksum ? "MATCH" : "MISMATCH");
    obs::MetricsReport report("sepo_cli");
    report.add_run(o.app, ra, run_extra(o, bytes));
    report.add_run(o.app, rb, run_extra(o, bytes));
    report.set_field("digest_match", ra.checksum == rb.checksum);
    if (!write_outputs(out, report, rec.get())) return 2;
    return ra.checksum == rb.checksum ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 2;
  }
}

// --- metrics file commands -------------------------------------------------

std::optional<obs::Json> load_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  auto json = obs::Json::parse(buf.str(), &err);
  if (!json) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return std::nullopt;
  }
  return json;
}

// Validates the metrics schema written by obs::MetricsReport. Returns a list
// of problems (empty = valid).
std::vector<std::string> check_metrics(const obs::Json& m) {
  std::vector<std::string> problems;
  if (m["schema_version"].as_i64() != obs::kMetricsSchemaVersion)
    problems.push_back("schema_version missing or not " +
                       std::to_string(obs::kMetricsSchemaVersion));
  if (!m["tool"].is_string()) problems.push_back("tool missing");
  const obs::Json& runs = m["runs"];
  if (!runs.is_array() || runs.size() == 0) {
    problems.push_back("runs missing or empty");
    return problems;
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const obs::Json& r = runs.at(i);
    const std::string where = "runs[" + std::to_string(i) + "]";
    if (!r["app"].is_string()) problems.push_back(where + ".app missing");
    if (!r["impl"].is_string()) problems.push_back(where + ".impl missing");
    if (!r["sim_seconds"].is_number() || r["sim_seconds"].as_double() <= 0)
      problems.push_back(where + ".sim_seconds missing or non-positive");
    if (!r["sim_seconds_analytic"].is_number())
      problems.push_back(where + ".sim_seconds_analytic missing");
    if (!r["timeline"].is_object())
      problems.push_back(where + ".timeline missing");
    if (!r["wall_seconds_host"].is_number())
      problems.push_back(where + ".wall_seconds_host missing");
    if (r["checksum_hex"].as_string().size() != 16)
      problems.push_back(where + ".checksum_hex not 16 hex digits");
    const obs::Json& stats = r["stats"];
    if (!stats.is_object()) {
      problems.push_back(where + ".stats missing");
    } else {
      // The counter set is generated from SEPO_STATS_FIELDS; require every
      // field so a drifted serializer cannot pass.
      gpusim::StatsSnapshot{}.for_each_field(
          [&](const char* name, std::uint64_t) {
            if (!stats[name].is_number())
              problems.push_back(where + ".stats." + name + " missing");
          });
    }
    for (const char* k : {"pcie", "serialization", "gpu_breakdown", "faults"})
      if (!r[k].is_object())
        problems.push_back(where + "." + k + " missing");
    if (!r["iteration_profiles"].is_array())
      problems.push_back(where + ".iteration_profiles missing");
    // v4: the occupancy time-series. Always an array — empty on baselines
    // without the SEPO iteration protocol, one sample per iteration on SEPO
    // paths.
    if (!r["timeseries"].is_array())
      problems.push_back(where + ".timeseries missing");
    // v5: the batched-insert pipeline totals. Always an object — enabled
    // false with all-zero counters when the knob is off (and on baselines,
    // which have no combining buffer).
    const obs::Json& cb = r["combine_buffer"];
    if (!cb.is_object()) {
      problems.push_back(where + ".combine_buffer missing");
    } else {
      if (!cb["enabled"].is_bool())
        problems.push_back(where + ".combine_buffer.enabled missing");
      for (const char* k :
           {"scratch_hits", "precombined_records", "lock_acquires_saved",
            "drain_flushes", "drained_records", "requeued_records"})
        if (!cb[k].is_number())
          problems.push_back(where + ".combine_buffer." + k + " missing");
    }
  }
  return problems;
}

int cmd_metrics_check(const std::string& path) {
  const auto m = load_metrics(path);
  if (!m) return 2;
  const auto problems = check_metrics(*m);
  for (const auto& p : problems)
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  if (!problems.empty()) return 2;
  std::printf("%s: ok (%zu runs, tool %s)\n", path.c_str(),
              (*m)["runs"].size(), (*m)["tool"].as_string().c_str());
  return 0;
}

int cmd_metrics_diff(const std::string& old_path, const std::string& new_path,
                     double max_regress_pct) {
  const auto older = load_metrics(old_path);
  const auto newer = load_metrics(new_path);
  if (!older || !newer) return 2;

  // Files written under different schemas are incomparable (exit 2), which
  // is distinct from "comparable but regressed" (exit 3). Exception:
  // v3..v5 differ only by additive objects (v4 adds "timeseries", v5 adds
  // "combine_buffer"), so an older baseline stays diffable against a newer
  // file — compare the shared fields and warn.
  const std::int64_t old_v = (*older)["schema_version"].as_i64();
  const std::int64_t new_v = (*newer)["schema_version"].as_i64();
  if (old_v != new_v) {
    const auto adjacent = [](std::int64_t v) { return v >= 3 && v <= 5; };
    if (!adjacent(old_v) || !adjacent(new_v)) {
      std::fprintf(stderr,
                   "schema mismatch: %s is v%lld, %s is v%lld — not comparable\n",
                   old_path.c_str(), static_cast<long long>(old_v),
                   new_path.c_str(), static_cast<long long>(new_v));
      return 2;
    }
    std::fprintf(stderr,
                 "warning: schema v%lld vs v%lld — comparing shared fields "
                 "(newer versions only add the \"timeseries\" / "
                 "\"combine_buffer\" objects)\n",
                 static_cast<long long>(old_v),
                 static_cast<long long>(new_v));
  }

  // Baseline run objects by (app, impl); first occurrence wins.
  std::map<std::string, const obs::Json*> base;
  for (const auto& r : (*older)["runs"].elements()) {
    const std::string k = r["app"].as_string() + "/" + r["impl"].as_string();
    base.emplace(k, &r);
  }

  TablePrinter table({"run", "old sim_ms", "new sim_ms", "delta %"});
  bool regressed = false;
  std::size_t matched = 0;
  for (const auto& r : (*newer)["runs"].elements()) {
    const std::string k = r["app"].as_string() + "/" + r["impl"].as_string();
    const auto it = base.find(k);
    if (it == base.end()) {
      table.add_row({k, "-", TablePrinter::fmt(r["sim_seconds"].as_double() * 1e3, 3),
                     "new"});
      continue;
    }
    ++matched;
    const double o = (*it->second)["sim_seconds"].as_double();
    const double n = r["sim_seconds"].as_double();
    // Relative-epsilon comparison: the simulated-time fields are
    // deterministic in the run config, but the doubles that encode them can
    // differ in the last bits across platforms (libm, FMA, summation
    // order). Within epsilon the values ARE equal — report a clean 0 delta
    // instead of a spurious drift.
    const double pct =
        o > 0 && !obs::nearly_equal(o, n) ? (n - o) / o * 100.0 : 0.0;
    if (pct > max_regress_pct) regressed = true;
    table.add_row({k, TablePrinter::fmt(o * 1e3, 3), TablePrinter::fmt(n * 1e3, 3),
                   TablePrinter::fmt(pct, 2)});

    // Determinism drift check on the other modelled-time fields (analytic
    // cross-check and per-resource timeline busy totals) — informational,
    // same epsilon discipline.
    const auto drift = [&](const char* label, double a, double b) {
      if (!obs::nearly_equal(a, b))
        std::fprintf(stderr, "note: %s %s drifted: %.9g -> %.9g\n", k.c_str(),
                     label, a, b);
    };
    drift("sim_seconds_analytic",
          (*it->second)["sim_seconds_analytic"].as_double(),
          r["sim_seconds_analytic"].as_double());
    const obs::Json& ot = (*it->second)["timeline"];
    const obs::Json& nt = r["timeline"];
    if (ot.is_object() && nt.is_object())
      for (const char* f :
           {"compute_busy", "h2d_busy", "d2h_busy", "remote_busy", "total"})
        drift((std::string("timeline.") + f).c_str(), ot[f].as_double(),
              nt[f].as_double());
  }
  table.print(std::cout);
  if (matched == 0) {
    std::fprintf(stderr, "no (app, impl) pairs in common\n");
    return 2;
  }
  if (regressed) {
    std::fprintf(stderr, "sim_seconds regression beyond %.1f%%\n",
                 max_regress_pct);
    return 3;
  }
  std::printf("ok: no sim_seconds regression beyond %.1f%%\n", max_regress_pct);
  return 0;
}

// --- wall-clock benchmark file commands (BENCH_host.json) ------------------

// Validates the schema written by bench/host_perf (obs::kBenchSchemaVersion).
std::vector<std::string> check_bench(const obs::Json& m) {
  std::vector<std::string> problems;
  if (m["schema_version"].as_i64() != obs::kBenchSchemaVersion)
    problems.push_back("schema_version missing or not " +
                       std::to_string(obs::kBenchSchemaVersion));
  if (!m["tool"].is_string()) problems.push_back("tool missing");
  if (!m["workers"].is_number()) problems.push_back("workers missing");
  if (!m["tiny"].is_bool()) problems.push_back("tiny missing");
  const obs::Json& benches = m["benches"];
  if (!benches.is_array() || benches.size() == 0) {
    problems.push_back("benches missing or empty");
    return problems;
  }
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const obs::Json& b = benches.at(i);
    const std::string where = "benches[" + std::to_string(i) + "]";
    if (!b["name"].is_string()) problems.push_back(where + ".name missing");
    if (!b["items"].is_number() || b["items"].as_i64() <= 0)
      problems.push_back(where + ".items missing or non-positive");
    if (!b["reps"].is_number() || b["reps"].as_i64() <= 0)
      problems.push_back(where + ".reps missing or non-positive");
    if (!b["wall_seconds"].is_number() || b["wall_seconds"].as_double() <= 0)
      problems.push_back(where + ".wall_seconds missing or non-positive");
    if (!b["ops_per_sec"].is_number() || b["ops_per_sec"].as_double() <= 0)
      problems.push_back(where + ".ops_per_sec missing or non-positive");
  }
  // Flight-recorder overhead gate: host_perf measures the journal_disabled /
  // journal_event_sharded pair and writes the relative cost. The field is
  // optional (older files predate it), but when present it must stay under
  // 10% — the journal is a hot-path instrument, not a tax.
  const obs::Json* overhead = m.find("journal_overhead_pct");
  if (overhead != nullptr) {
    if (!overhead->is_number())
      problems.push_back("journal_overhead_pct not a number");
    else if (overhead->as_double() > 10.0)
      problems.push_back(
          "journal_overhead_pct " +
          TablePrinter::fmt(overhead->as_double(), 2) +
          " exceeds the 10% event-journal overhead budget");
  }
  // Batched-insert gate: full (non-tiny) runs must show the batched insert
  // pipeline at >= 2x over the scalar path on the skewed Zipf workload
  // (DESIGN.md §5d). Tiny runs are exempt — at 150k items each worker sees
  // too few records per distinct key for the drain amortization to pay off,
  // and the tiny fixture exists for schema/plumbing smoke, not performance.
  const obs::Json* zipf = m.find("insert_batched_speedup_zipf");
  if (zipf != nullptr && m["tiny"].is_bool() && !m["tiny"].as_bool()) {
    if (!zipf->is_number())
      problems.push_back("insert_batched_speedup_zipf not a number");
    else if (zipf->as_double() < 2.0)
      problems.push_back("insert_batched_speedup_zipf " +
                         TablePrinter::fmt(zipf->as_double(), 2) +
                         " below the 2x batched-insert budget");
  }
  return problems;
}

int cmd_bench_check(const std::string& path) {
  const auto m = load_metrics(path);
  if (!m) return 2;
  const auto problems = check_bench(*m);
  for (const auto& p : problems)
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  if (!problems.empty()) return 2;
  std::printf("%s: ok (%zu benches, %lld workers, tool %s)\n", path.c_str(),
              (*m)["benches"].size(),
              static_cast<long long>((*m)["workers"].as_i64()),
              (*m)["tool"].as_string().c_str());
  return 0;
}

// Wall-clock analogue of cmd_metrics_diff: compares wall_seconds by bench
// name. Wall clock is host-dependent, so the default threshold is looser
// than metrics-diff's (these numbers wobble with machine load) — pass
// --max-regress-pct to tighten or relax.
int cmd_bench_diff(const std::string& old_path, const std::string& new_path,
                   double max_regress_pct) {
  const auto older = load_metrics(old_path);
  const auto newer = load_metrics(new_path);
  if (!older || !newer) return 2;

  const std::int64_t old_v = (*older)["schema_version"].as_i64();
  const std::int64_t new_v = (*newer)["schema_version"].as_i64();
  if (old_v != new_v) {
    std::fprintf(stderr,
                 "schema mismatch: %s is v%lld, %s is v%lld — not comparable\n",
                 old_path.c_str(), static_cast<long long>(old_v),
                 new_path.c_str(), static_cast<long long>(new_v));
    return 2;
  }

  std::map<std::string, double> base;
  for (const auto& b : (*older)["benches"].elements())
    base.emplace(b["name"].as_string(), b["wall_seconds"].as_double());

  TablePrinter table({"bench", "old wall_ms", "new wall_ms", "delta %"});
  bool regressed = false;
  std::size_t matched = 0;
  for (const auto& b : (*newer)["benches"].elements()) {
    const std::string k = b["name"].as_string();
    const auto it = base.find(k);
    if (it == base.end()) {
      table.add_row({k, "-",
                     TablePrinter::fmt(b["wall_seconds"].as_double() * 1e3, 3),
                     "new"});
      continue;
    }
    ++matched;
    const double o = it->second, n = b["wall_seconds"].as_double();
    const double pct = o > 0 ? (n - o) / o * 100.0 : 0.0;
    if (pct > max_regress_pct) regressed = true;
    table.add_row({k, TablePrinter::fmt(o * 1e3, 3),
                   TablePrinter::fmt(n * 1e3, 3), TablePrinter::fmt(pct, 2)});
  }
  table.print(std::cout);
  if (matched == 0) {
    std::fprintf(stderr, "no bench names in common\n");
    return 2;
  }
  if (regressed) {
    std::fprintf(stderr, "wall_seconds regression beyond %.1f%%\n",
                 max_regress_pct);
    return 3;
  }
  std::printf("ok: no wall_seconds regression beyond %.1f%%\n",
              max_regress_pct);
  return 0;
}

// --- run report ------------------------------------------------------------

// Renders the per-iteration SEPO profile of one run as an aligned table.
void report_iterations(const obs::Json& r) {
  const obs::Json& profiles = r["iteration_profiles"];
  if (!profiles.is_array() || profiles.size() == 0) {
    std::printf("  iterations     : none recorded (run died before the first "
                "boundary, or baseline without the SEPO protocol)\n");
    return;
  }
  TablePrinter table({"iter", "processed", "postponed", "postpone %",
                      "page acq", "launches", "free after", "halted"});
  for (const auto& p : profiles.elements()) {
    table.add_row({TablePrinter::fmt_int(p["iteration"].as_i64()),
                   TablePrinter::fmt_int(p["records_processed"].as_i64()),
                   TablePrinter::fmt_int(p["records_postponed"].as_i64()),
                   TablePrinter::fmt(p["postpone_rate"].as_double() * 100.0, 1),
                   TablePrinter::fmt_int(p["page_acquires"].as_i64()),
                   TablePrinter::fmt_int(p["kernel_launches"].as_i64()),
                   TablePrinter::fmt_int(p["free_pages_after"].as_i64()),
                   p["halted"].as_bool() ? "yes" : "no"});
  }
  table.print(std::cout);
}

// Occupancy high-water marks from the v4 time-series (skipped on v3 files
// and on runs without samples).
void report_occupancy(const obs::Json& r) {
  const obs::Json& series = r["timeseries"];
  if (!series.is_array() || series.size() == 0) return;
  std::uint64_t pages_total = 0, used_max = 0, used_iter = 0;
  std::uint64_t seized_max = 0, staging_max = 0, staging_slots = 0;
  for (const auto& s : series.elements()) {
    pages_total = s["pages_total"].as_u64();
    staging_slots = s["staging_slots"].as_u64();
    const std::uint64_t used = pages_total - s["pages_free"].as_u64() -
                               s["pages_seized"].as_u64();
    if (used >= used_max) {
      used_max = used;
      used_iter = s["iteration"].as_u64();
    }
    seized_max = std::max(seized_max, s["pages_seized"].as_u64());
    staging_max = std::max(staging_max, s["staging_busy"].as_u64());
  }
  std::printf("  occupancy      : high-water %llu/%llu heap pages used "
              "(iteration %llu), %llu seized by pressure at peak, staging "
              "%llu/%llu slots busy\n",
              static_cast<unsigned long long>(used_max),
              static_cast<unsigned long long>(pages_total),
              static_cast<unsigned long long>(used_iter),
              static_cast<unsigned long long>(seized_max),
              static_cast<unsigned long long>(staging_max),
              static_cast<unsigned long long>(staging_slots));
}

// One line, naming every engine — greppable and CI-matchable.
void report_faults(const obs::Json& r) {
  const obs::Json& f = r["faults"];
  if (!f.is_object()) return;
  std::uint64_t retries = 0;
  for (const char* eng : {"compute", "h2d", "d2h", "remote"})
    retries += f[eng]["retries"].as_u64();
  std::printf("  fault summary  : compute=%llu h2d=%llu d2h=%llu remote=%llu "
              "faults (%llu total, %llu retries, %.3f ms backoff)\n",
              static_cast<unsigned long long>(f["compute"]["faults"].as_u64()),
              static_cast<unsigned long long>(f["h2d"]["faults"].as_u64()),
              static_cast<unsigned long long>(f["d2h"]["faults"].as_u64()),
              static_cast<unsigned long long>(f["remote"]["faults"].as_u64()),
              static_cast<unsigned long long>(f["total_faults"].as_u64()),
              static_cast<unsigned long long>(retries),
              f["total_backoff_s"].as_double() * 1e3);
}

// Top-5 hottest buckets of the final table, from the occupancy histogram
// ([n] = buckets holding n entries; the last bin aggregates longer chains).
void report_hot_buckets(const obs::Json& r) {
  const obs::Json& hist = r["bucket_histogram"];
  if (!hist.is_array() || hist.size() == 0) return;
  std::string line;
  int shown = 0;
  for (std::size_t i = hist.size(); i-- > 0 && shown < 5;) {
    const std::uint64_t count = hist.at(i).as_u64();
    if (count == 0 || i == 0) continue;
    if (!line.empty()) line += ", ";
    line += std::to_string(count) + " bucket(s) with " + std::to_string(i) +
            (i + 1 == hist.size() ? "+ entries" : " entries");
    ++shown;
  }
  if (!line.empty())
    std::printf("  hottest buckets: %s\n", line.c_str());
}

// Renders a human-readable post-mortem from a metrics file (schema v3 or
// v4; v3 predates the occupancy time-series, so that section is absent)
// plus, optionally, a JSONL journal dump written via --journal-out.
int cmd_report(const std::string& metrics_path,
               const std::string& journal_path, std::size_t last_n) {
  const auto m = load_metrics(metrics_path);
  if (!m) return 2;
  const std::int64_t v = (*m)["schema_version"].as_i64();
  if (v != obs::kMetricsSchemaVersion && v != 3) {
    std::fprintf(stderr, "%s: schema v%lld not supported (want v3 or v%d)\n",
                 metrics_path.c_str(), static_cast<long long>(v),
                 obs::kMetricsSchemaVersion);
    return 2;
  }
  const obs::Json& runs = (*m)["runs"];
  if (!runs.is_array() || runs.size() == 0) {
    std::fprintf(stderr, "%s: no runs\n", metrics_path.c_str());
    return 2;
  }
  std::printf("report: %s (schema v%lld, tool %s, %zu run(s))\n",
              metrics_path.c_str(), static_cast<long long>(v),
              (*m)["tool"].as_string().c_str(), runs.size());
  if (v == 3)
    std::printf("note: v3 file — no occupancy time-series (added in v4)\n");

  for (const auto& r : runs.elements()) {
    const obs::Json* err = r.find("error");
    std::printf("\n== %s / %s: %s ==\n", r["app"].as_string().c_str(),
                r["impl"].as_string().c_str(),
                err != nullptr ? "FAILED" : "ok");
    if (err != nullptr)
      std::printf("  error          : %s: %s\n",
                  (*err)["kind"].as_string().c_str(),
                  (*err)["message"].as_string().c_str());
    std::printf("  simulated time : %.3f ms in %llu iteration(s), checksum "
                "%s\n",
                r["sim_seconds"].as_double() * 1e3,
                static_cast<unsigned long long>(r["iterations"].as_u64()),
                r["checksum_hex"].as_string().c_str());
    report_iterations(r);
    report_occupancy(r);
    report_faults(r);
    report_hot_buckets(r);
  }

  if (!journal_path.empty()) {
    std::string err;
    const auto events = obs::read_journal_jsonl(journal_path, &err);
    if (!events) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::printf("\n== journal: %s (%zu event(s)) ==\n", journal_path.c_str(),
                events->size());
    std::uint64_t counts[gpusim::kNumJournalEventKinds] = {};
    for (const auto& e : *events) counts[static_cast<int>(e.kind)]++;
    std::string kinds;
    for (int k = 0; k < gpusim::kNumJournalEventKinds; ++k) {
      if (counts[k] == 0) continue;
      if (!kinds.empty()) kinds += ", ";
      kinds += std::string(gpusim::journal_kind_name(
                   static_cast<gpusim::JournalEventKind>(k))) +
               "=" + std::to_string(counts[k]);
    }
    std::printf("  by kind: %s\n", kinds.empty() ? "(empty)" : kinds.c_str());
    if (!events->empty() && last_n > 0) {
      std::printf("  last %zu event(s):\n",
                  std::min(last_n, events->size()));
      TablePrinter table({"ts (ms)", "worker", "kind", "arg0", "arg1"});
      const std::size_t first =
          events->size() > last_n ? events->size() - last_n : 0;
      for (std::size_t i = first; i < events->size(); ++i) {
        const gpusim::JournalEvent& e = (*events)[i];
        table.add_row({TablePrinter::fmt(e.sim_ts * 1e3, 6),
                       TablePrinter::fmt_int(e.worker),
                       gpusim::journal_kind_name(e.kind),
                       TablePrinter::fmt_int(static_cast<long long>(e.arg0)),
                       TablePrinter::fmt_int(static_cast<long long>(e.arg1))});
      }
      table.print(std::cout);
    }
  }
  return 0;
}

// --- differential fuzzing --------------------------------------------------

// One line per outcome side: "ok digest=... keys=N" or "typed_error(kind)".
std::string outcome_brief(const FuzzEngineOutcome& o) {
  char buf[96];
  if (o.status == FuzzStatus::kOk) {
    std::snprintf(buf, sizeof buf, "ok digest=%016llx keys=%llu",
                  static_cast<unsigned long long>(o.digest),
                  static_cast<unsigned long long>(o.keys));
    return buf;
  }
  return std::string(to_string(o.status)) + "(" + o.error_kind + ")";
}

FuzzOptions fuzz_options_from(const Options& o) {
  FuzzOptions fo;
  if (o.seed_set) fo.seed = o.seed;
  fo.runs = o.fuzz_runs;
  fo.time_budget_s = o.time_budget_s;
  if (o.max_bytes != 0) fo.max_input_bytes = o.max_bytes;
  fo.corrupt_digest_xor = o.corrupt_digest;
  return fo;
}

// Replays one repro artifact bit-identically and checks the verdict against
// the recorded one. Exit 0 = reproduced, 4 = the verdict changed (the bug
// moved or was fixed), 2 = unreadable artifact.
int cmd_fuzz_repro(const Options& o) {
  std::string err;
  const auto repro = obs::read_fuzz_repro(o.repro_path, &err);
  if (!repro) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const FuzzRunner runner{fuzz_options_from(o)};
  const FuzzResult r = runner.execute(repro->plan);
  std::printf("repro %s: plan %llu seed %llu — %s on %s, %zu bytes\n",
              o.repro_path.c_str(),
              static_cast<unsigned long long>(repro->plan.id),
              static_cast<unsigned long long>(repro->plan.master_seed),
              repro->plan.app.c_str(), repro->plan.engine.c_str(),
              repro->plan.input_bytes);
  std::printf("  engine  : %s\n", outcome_brief(r.engine).c_str());
  std::printf("  baseline: %s\n", outcome_brief(r.baseline).c_str());
  std::printf("  verdict : %s (recorded %s)\n", to_string(r.verdict),
              repro->verdict.c_str());
  if (repro->verdict != to_string(r.verdict)) {
    std::fprintf(stderr,
                 "verdict differs from the recorded artifact — the failure "
                 "no longer reproduces as recorded\n");
    return 4;
  }
  std::printf("reproduced\n");
  return 0;
}

int cmd_fuzz(const Options& o) {
  if (!o.repro_path.empty()) return cmd_fuzz_repro(o);

  FuzzOptions fo = fuzz_options_from(o);
  fo.observer = [](const FuzzResult& r) {
    std::fprintf(stderr, "plan %llu: %s/%s %zu bytes dev=%zu KiB workers=%zu "
                 "faults=%s -> %s\n",
                 static_cast<unsigned long long>(r.plan.id),
                 r.plan.app.c_str(), r.plan.engine.c_str(),
                 r.plan.input_bytes, r.plan.device_bytes >> 10,
                 r.plan.workers, r.plan.faults.enabled() ? "on" : "off",
                 to_string(r.verdict));
  };
  const FuzzRunner runner{std::move(fo)};
  const FuzzRunner::Summary s = runner.run();

  for (const FuzzResult& f : s.failures) {
    const std::string path = o.artifact_dir + "/fuzz_repro_" +
                             std::to_string(f.plan.id) + ".json";
    std::string err;
    if (!obs::write_fuzz_repro(f, path, &err)) {
      std::fprintf(stderr, "repro: %s\n", err.c_str());
      return 2;
    }
    std::printf("FAILURE plan %llu (%s on %s): %s\n",
                static_cast<unsigned long long>(f.plan.id),
                f.plan.app.c_str(), f.plan.engine.c_str(),
                to_string(f.verdict));
    std::printf("  engine  : %s\n", outcome_brief(f.engine).c_str());
    std::printf("  baseline: %s\n", outcome_brief(f.baseline).c_str());
    std::printf("  shrunk repro written to %s — replay with "
                "`sepo_cli fuzz --repro %s`\n",
                path.c_str(), path.c_str());
  }
  std::printf("fuzz: seed %llu, %llu plan(s) executed, %llu agreed, "
              "%llu declined, %zu failure(s)%s\n",
              static_cast<unsigned long long>(runner.options().seed),
              static_cast<unsigned long long>(s.executed),
              static_cast<unsigned long long>(s.agreed),
              static_cast<unsigned long long>(s.declined), s.failures.size(),
              s.hit_time_budget ? " [time budget hit]" : "");
  return s.failures.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::OutputOptions out = obs::OutputOptions::from_args(argc, argv);
  const std::size_t workers = pool_workers_from_args(argc, argv);
  const std::uint32_t batch_insert = batch_insert_from_args(argc, argv);

  // The metrics/bench file commands take positional paths, not run options.
  if (argc >= 2 && (std::strcmp(argv[1], "metrics-check") == 0 ||
                    std::strcmp(argv[1], "bench-check") == 0)) {
    if (argc != 3) {
      usage();
      return 1;
    }
    return std::strcmp(argv[1], "bench-check") == 0
               ? cmd_bench_check(argv[2])
               : cmd_metrics_check(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "report") == 0) {
    std::string journal_path;
    std::size_t last_n = 10;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
        journal_path = argv[++i];
      } else if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
        if (!parse_flag<std::size_t>("--last", argv[++i], last_n)) return 1;
      } else {
        paths.emplace_back(argv[i]);
      }
    }
    if (paths.size() != 1) {
      usage();
      return 1;
    }
    return cmd_report(paths[0], journal_path, last_n);
  }
  if (argc >= 2 && (std::strcmp(argv[1], "metrics-diff") == 0 ||
                    std::strcmp(argv[1], "bench-diff") == 0)) {
    const bool bench = std::strcmp(argv[1], "bench-diff") == 0;
    double max_regress_pct = bench ? 25.0 : 5.0;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--max-regress-pct") == 0 && i + 1 < argc) {
        if (!parse_flag<double>("--max-regress-pct", argv[++i],
                                max_regress_pct))
          return 1;
      } else {
        paths.emplace_back(argv[i]);
      }
    }
    if (paths.size() != 2) {
      usage();
      return 1;
    }
    return bench ? cmd_bench_diff(paths[0], paths[1], max_regress_pct)
                 : cmd_metrics_diff(paths[0], paths[1], max_regress_pct);
  }

  int err_exit = 1;
  auto opts = parse(argc, argv, err_exit);
  if (!opts) {
    if (err_exit == 1) usage();
    return err_exit;
  }
  opts->workers = workers;
  opts->batch_insert = batch_insert;
  if (opts->command == "list") return cmd_list();
  if (opts->command == "engines") return cmd_engines();
  if (opts->command == "run") return cmd_run(*opts, out);
  if (opts->command == "compare") return cmd_compare(*opts, out);
  if (opts->command == "fuzz") return cmd_fuzz(*opts);
  usage();
  return 1;
}
