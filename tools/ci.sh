#!/usr/bin/env sh
# Local CI: run the CMake workflow presets (configure + build + ctest) for
# the debug, release, and ASan/UBSan configurations, in that order, then a
# bounded differential fuzz sweep — the same gauntlet a change must pass
# before it lands.
#
#   tools/ci.sh              # all workflows + the fuzz sweep
#   tools/ci.sh ci-asan      # just the named workflow(s), no fuzz sweep
#
# Each workflow builds into its own build-<preset>/ tree (see
# CMakePresets.json), so the trees can be kept warm between runs. Stops at
# the first failing workflow.
#
# The fuzz sweep (ci-fuzz workflow + a 60-second seeded `sepo_cli fuzz`)
# cross-checks every engine in the registry against its reference baseline
# on randomized capacity/skew/fault regimes. The seed is fixed so a CI
# failure reproduces locally with the same command; any mismatch leaves a
# shrunk fuzz_repro_*.json in build-release/ for `sepo_cli fuzz --repro`.
# Override the budget (seconds) with FUZZ_BUDGET; 0 skips the sweep.
set -eu

cd "$(dirname "$0")/.."

run_fuzz_sweep=0
if [ "$#" -eq 0 ]; then
  run_fuzz_sweep=1
fi

workflows="${*:-ci-debug ci-release ci-asan ci-fuzz}"
for wf in $workflows; do
  echo "== workflow: $wf =="
  cmake --workflow --preset "$wf"

  # Wall-clock regression gate: after the release workflow, run the
  # optimized host_perf at the committed baseline's shape and diff it
  # against BENCH_host.json (sepo_cli bench-diff exits 3 on any bench
  # regressing past the threshold). Only meaningful on an optimized build
  # and a reasonably quiet machine, hence ci-release only; skip with
  # BENCH_GATE=0.
  if [ "$wf" = "ci-release" ] && [ "${BENCH_GATE:-1}" != "0" ]; then
    echo "== bench gate: host_perf vs committed BENCH_host.json =="
    ./build-release/bench/host_perf --workers 8 --reps 2 \
        --metrics-out=build-release/BENCH_host_ci.json
    ./build-release/tools/sepo_cli bench-check \
        build-release/BENCH_host_ci.json
    ./build-release/tools/sepo_cli bench-diff BENCH_host.json \
        build-release/BENCH_host_ci.json
  fi
done

if [ "$run_fuzz_sweep" -eq 1 ] && [ "${FUZZ_BUDGET:-60}" != "0" ]; then
  echo "== fuzz sweep: ${FUZZ_BUDGET:-60}s seeded differential fuzzing =="
  ./build-release/tools/sepo_cli fuzz --seed 1729 --runs 100000 \
      --time-budget "${FUZZ_BUDGET:-60}" --artifact-dir build-release
fi
echo "== all workflows passed: $workflows =="
