#!/usr/bin/env sh
# Local CI: run the CMake workflow presets (configure + build + ctest) for
# the debug, release, and ASan/UBSan configurations, in that order — the
# same gauntlet a change must pass before it lands.
#
#   tools/ci.sh              # all three workflows
#   tools/ci.sh ci-asan      # just the named workflow(s)
#
# Each workflow builds into its own build-<preset>/ tree (see
# CMakePresets.json), so the trees can be kept warm between runs. Stops at
# the first failing workflow.
set -eu

cd "$(dirname "$0")/.."

workflows="${*:-ci-debug ci-release ci-asan}"
for wf in $workflows; do
  echo "== workflow: $wf =="
  cmake --workflow --preset "$wf"
done
echo "== all workflows passed: $workflows =="
