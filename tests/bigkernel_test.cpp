// Unit tests for the BigKernel-style input pipeline: chunking, staging
// metering, done-chunk skipping, halting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bigkernel/pipeline.hpp"
#include "test_util.hpp"

namespace sepo::bigkernel {
namespace {

using test::Rig;

std::string lines(int n) {
  std::ostringstream os;
  for (int i = 0; i < n; ++i) os << "record-" << i << "\n";
  return os.str();
}

PipelineConfig small_cfg() {
  PipelineConfig cfg;
  cfg.records_per_chunk = 16;
  cfg.max_chunk_bytes = 1u << 10;
  cfg.num_staging_buffers = 2;
  return cfg;
}

TEST(PipelineTest, ProcessesEveryRecordWithDeviceResidentBodies) {
  Rig rig(1u << 20);
  InputPipeline pipe(rig.ctx, small_cfg());
  const std::string input = lines(100);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  std::atomic<int> bodies_ok{0};
  const PassResult res = pipe.run_pass(
      input, idx, progress, [&](std::size_t rec, std::string_view body) {
        if (body == "record-" + std::to_string(rec)) bodies_ok.fetch_add(1);
        return core::Status::kSuccess;
      });
  EXPECT_EQ(bodies_ok.load(), 100);
  EXPECT_TRUE(progress.all_done());
  EXPECT_EQ(res.chunks_staged, 7u);  // ceil(100/16)
  EXPECT_EQ(res.chunks_skipped, 0u);
  // Staged bytes cover every record body (newlines between chunks are not
  // re-staged).
  std::size_t body_bytes = 0;
  for (const auto len : idx.lengths) body_bytes += len;
  EXPECT_GE(res.bytes_staged, body_bytes);
  EXPECT_LE(res.bytes_staged, input.size());
}

TEST(PipelineTest, StagingIsMeteredOnTheBus) {
  Rig rig(1u << 20);
  InputPipeline pipe(rig.ctx, small_cfg());
  const std::string input = lines(64);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  (void)pipe.run_pass(input, idx, progress,
                      [](std::size_t, std::string_view) {
                        return core::Status::kSuccess;
                      });
  const auto p = rig.dev.bus().snapshot();
  EXPECT_EQ(p.h2d_txns, 4u);  // 64/16 chunks
  EXPECT_GT(p.h2d_bytes, 0u);
}

TEST(PipelineTest, FullyDoneChunksAreSkippedWithoutStaging) {
  Rig rig(1u << 20);
  InputPipeline pipe(rig.ctx, small_cfg());
  const std::string input = lines(64);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  // First pass: accept only records >= 32 (the last two chunks).
  (void)pipe.run_pass(input, idx, progress,
                      [](std::size_t rec, std::string_view) {
                        return rec >= 32 ? core::Status::kSuccess
                                         : core::Status::kPostpone;
                      });
  const auto bus_after_pass1 = rig.dev.bus().snapshot();
  EXPECT_EQ(bus_after_pass1.h2d_txns, 4u);
  // Second pass: the done chunks must not be re-staged.
  const PassResult res2 = pipe.run_pass(
      input, idx, progress, [](std::size_t, std::string_view) {
        return core::Status::kSuccess;
      });
  EXPECT_EQ(res2.chunks_skipped, 2u);
  EXPECT_EQ(res2.chunks_staged, 2u);
  EXPECT_EQ(rig.dev.bus().snapshot().h2d_txns, 6u);
  EXPECT_TRUE(progress.all_done());
}

TEST(PipelineTest, HaltStopsIssuingNewChunks) {
  Rig rig(1u << 20);
  InputPipeline pipe(rig.ctx, small_cfg());
  const std::string input = lines(160);  // 10 chunks
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  std::atomic<int> processed{0};
  const PassResult res = pipe.run_pass(
      input, idx, progress,
      [&](std::size_t, std::string_view) {
        processed.fetch_add(1);
        return core::Status::kSuccess;
      },
      /*halted=*/[&] { return processed.load() >= 40; });
  EXPECT_TRUE(res.halted);
  EXPECT_LT(res.chunks_staged, 10u);
  EXPECT_FALSE(progress.all_done());
}

TEST(PipelineTest, PostponedRecordsStayPending) {
  Rig rig(1u << 20);
  InputPipeline pipe(rig.ctx, small_cfg());
  const std::string input = lines(32);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  (void)pipe.run_pass(input, idx, progress,
                      [](std::size_t rec, std::string_view) {
                        return rec % 2 == 0 ? core::Status::kSuccess
                                            : core::Status::kPostpone;
                      });
  EXPECT_EQ(progress.done_count(), 16u);
  const auto s = rig.stats.snapshot();
  EXPECT_EQ(s.records_processed, 16u);
  EXPECT_EQ(s.records_postponed, 16u);
}

TEST(PipelineTest, OversizedChunkThrows) {
  Rig rig(1u << 20);
  PipelineConfig cfg = small_cfg();
  cfg.max_chunk_bytes = 8;  // smaller than one record
  InputPipeline pipe(rig.ctx, cfg);
  const std::string input = lines(4);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  EXPECT_THROW((void)pipe.run_pass(input, idx, progress,
                                   [](std::size_t, std::string_view) {
                                     return core::Status::kSuccess;
                                   }),
               std::runtime_error);
}

TEST(PipelineTest, RejectsInvalidConfig) {
  Rig rig(1u << 20);
  PipelineConfig cfg;
  cfg.records_per_chunk = 0;
  EXPECT_THROW(InputPipeline(rig.ctx, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace sepo::bigkernel
