// Unit tests for core::SepoHashTable: single-iteration behaviour of the
// three bucket organizations (paper §IV-B), POSTPONE semantics, and the
// host-table view after finalize.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "core/hash_table.hpp"
#include "gpusim/launch.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;
using test::as_u64;
using test::bytes_of;

HashTableConfig small_cfg(Organization org) {
  HashTableConfig cfg;
  cfg.org = org;
  cfg.num_buckets = 1u << 10;
  cfg.buckets_per_group = 32;
  cfg.page_size = 4u << 10;
  if (org == Organization::kCombining) cfg.combiner = combine_sum_u64;
  return cfg;
}

TEST(HashTableConfigTest, RejectsNonPowerOfTwoBuckets) {
  Rig rig(4u << 20);
  auto cfg = small_cfg(Organization::kBasic);
  cfg.num_buckets = 1000;
  EXPECT_THROW(SepoHashTable(rig.ctx, cfg),
               std::invalid_argument);
}

TEST(HashTableConfigTest, RejectsCombiningWithoutCombiner) {
  Rig rig(4u << 20);
  auto cfg = small_cfg(Organization::kCombining);
  cfg.combiner = nullptr;
  EXPECT_THROW(SepoHashTable(rig.ctx, cfg),
               std::invalid_argument);
}

TEST(HashTableConfigTest, RejectsZeroBucketsPerGroup) {
  Rig rig(4u << 20);
  auto cfg = small_cfg(Organization::kBasic);
  cfg.buckets_per_group = 0;
  EXPECT_THROW(SepoHashTable(rig.ctx, cfg),
               std::invalid_argument);
}

TEST(HashTableConfigTest, HeapTakesAllRemainingMemory) {
  Rig rig(8u << 20);
  auto cfg = small_cfg(Organization::kBasic);
  SepoHashTable ht(rig.ctx, cfg);
  // Heap pages cover (almost all) remaining memory after static structures.
  EXPECT_GT(ht.page_pool().heap_bytes(), (8u << 20) / 2);
}

TEST(CombiningTest, DuplicateKeysAreSummed) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  EXPECT_EQ(ht.insert_u64("alpha", 1), Status::kSuccess);
  EXPECT_EQ(ht.insert_u64("alpha", 2), Status::kSuccess);
  EXPECT_EQ(ht.insert_u64("beta", 7), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.lookup_u64("alpha"), 3u);
  EXPECT_EQ(t.lookup_u64("beta"), 7u);
  EXPECT_EQ(t.lookup_u64("gamma"), std::nullopt);
  EXPECT_EQ(t.entry_count(), 2u);
}

TEST(CombiningTest, CombineCountersAreRecorded) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  for (int i = 0; i < 10; ++i) ASSERT_EQ(ht.insert_u64("k", 1), Status::kSuccess);
  const auto s = rig.stats.snapshot();
  EXPECT_EQ(s.inserts_new, 1u);
  EXPECT_EQ(s.combines, 9u);
  EXPECT_EQ(s.hash_ops, 10u);
}

TEST(CombiningTest, ResidentChainHistogramCoversEntries) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  for (int i = 0; i < 200; ++i)
    ASSERT_EQ(ht.insert_u64("key" + std::to_string(i), 1), Status::kSuccess);
  // Captured mid-iteration: end_iteration flushes pages and empties chains.
  const auto hist = ht.resident_chain_histogram();
  ASSERT_FALSE(hist.empty());
  std::uint64_t buckets = 0, entries = 0;
  for (std::size_t len = 0; len < hist.size(); ++len) {
    buckets += hist[len];
    entries += hist[len] * len;  // last bin aggregates: lower bound
  }
  EXPECT_EQ(buckets, (1u << 10));  // every bucket accounted for
  EXPECT_EQ(entries, 200u);        // all chains shorter than the last bin
}

TEST(BasicTest, DuplicateKeysKeptSeparately) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kBasic));
  ht.begin_iteration();
  EXPECT_EQ(ht.insert_u64("dup", 1), Status::kSuccess);
  EXPECT_EQ(ht.insert_u64("dup", 2), Status::kSuccess);
  EXPECT_EQ(ht.insert_u64("dup", 3), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  const auto all = t.lookup_all("dup");
  ASSERT_EQ(all.size(), 3u);
  std::multiset<std::uint64_t> vals;
  for (const auto& v : all) vals.insert(as_u64(v));
  EXPECT_EQ(vals, (std::multiset<std::uint64_t>{1, 2, 3}));
}

TEST(BasicTest, NoProbeWorkOnInsert) {
  // The basic organization never traverses the chain on insert.
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kBasic));
  ht.begin_iteration();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(ht.insert_u64("same-key", 1), Status::kSuccess);
  EXPECT_EQ(rig.stats.snapshot().key_compare_bytes, 0u);
  EXPECT_EQ(rig.stats.snapshot().chain_links_walked, 0u);
}

TEST(MultiValuedTest, ValuesGroupUnderOneKey) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kMultiValued));
  ht.begin_iteration();
  auto ins = [&](std::string_view k, std::string_view v) {
    return ht.insert(k, std::as_bytes(std::span{v.data(), v.size()}));
  };
  EXPECT_EQ(ins("http://google.com", "a.html"), Status::kSuccess);
  EXPECT_EQ(ins("http://google.com", "c.html"), Status::kSuccess);
  EXPECT_EQ(ins("http://google.com", "d.html"), Status::kSuccess);
  EXPECT_EQ(ins("http://other.org", "b.html"), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.value_count(), 4u);
  const auto grp = t.lookup_group("http://google.com");
  ASSERT_TRUE(grp.has_value());
  std::multiset<std::string> vals;
  for (const auto& v : *grp) vals.insert(test::bytes_to_string(v));
  EXPECT_EQ(vals, (std::multiset<std::string>{"a.html", "c.html", "d.html"}));
}

TEST(MultiValuedTest, MissingKeyGroupLookupIsNull) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kMultiValued));
  ht.begin_iteration();
  ht.end_iteration();
  const HostTable t = ht.finalize();
  EXPECT_FALSE(t.lookup_group("absent").has_value());
  EXPECT_EQ(t.value_count(), 0u);
}

TEST(PostponeTest, InsertPostponesWhenHeapExhausted) {
  // Tiny heap: two pages only.
  Rig rig(1u << 20);
  HashTableConfig cfg = small_cfg(Organization::kBasic);
  cfg.num_buckets = 64;
  cfg.buckets_per_group = 64;  // one group -> one active page
  cfg.page_size = 1u << 10;
  cfg.heap_bytes = 2u << 10;
  SepoHashTable ht(rig.ctx, cfg);
  ht.begin_iteration();
  int successes = 0, postpones = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    (ht.insert_u64(key, 1) == Status::kSuccess ? successes : postpones)++;
  }
  EXPECT_GT(successes, 0);
  EXPECT_GT(postpones, 0);
  EXPECT_EQ(ht.free_pages(), 0u);
  EXPECT_GE(ht.allocator().postponed_groups(), 1u);
  EXPECT_TRUE(ht.should_halt(0.5));
  const auto s = rig.stats.snapshot();
  EXPECT_EQ(s.alloc_fails, static_cast<std::uint64_t>(postpones));
}

TEST(PostponeTest, CombiningStillCombinesAfterHeapFull) {
  // Paper Figure 5 (c): "even after all pages get full, pairs with duplicate
  // keys are still stored in the hash table".
  Rig rig(1u << 20);
  HashTableConfig cfg = small_cfg(Organization::kCombining);
  cfg.num_buckets = 64;
  cfg.buckets_per_group = 64;
  cfg.page_size = 1u << 10;
  cfg.heap_bytes = 1u << 10;  // one page
  SepoHashTable ht(rig.ctx, cfg);
  ht.begin_iteration();
  ASSERT_EQ(ht.insert_u64("resident", 1), Status::kSuccess);
  // Exhaust the heap with unique keys.
  int postponed = 0;
  for (int i = 0; i < 200; ++i)
    if (ht.insert_u64("filler-" + std::to_string(i), 1) == Status::kPostpone)
      ++postponed;
  ASSERT_GT(postponed, 0);
  // Duplicate of the resident key still succeeds.
  EXPECT_EQ(ht.insert_u64("resident", 41), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.lookup_u64("resident"), 42u);
}

TEST(VariableLengthTest, KeysAndValuesOfManySizes) {
  Rig rig(16u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kBasic));
  ht.begin_iteration();
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 300; ++i) {
    std::string key(1 + (i * 7) % 120, static_cast<char>('a' + i % 26));
    key += std::to_string(i);
    std::string val((i * 13) % 200, static_cast<char>('A' + i % 26));
    ref[key] = val;
    ASSERT_EQ(ht.insert(key, std::as_bytes(std::span{val.data(), val.size()})),
              Status::kSuccess);
  }
  ht.end_iteration();
  const HostTable t = ht.finalize();
  for (const auto& [k, v] : ref) {
    const auto got = t.lookup(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(test::bytes_to_string(*got), v);
  }
}

TEST(ConcurrencyTest, ParallelCombiningMatchesSerialSum) {
  Rig rig(32u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  constexpr std::size_t kN = 20000;
  constexpr std::size_t kKeys = 37;  // heavy duplication -> lock contention
  gpusim::launch(rig.pool, rig.stats, kN, [&](std::size_t i) {
    const std::string key = "key-" + std::to_string(i % kKeys);
    ASSERT_EQ(ht.insert_u64(key, 1), Status::kSuccess);
  });
  ht.end_iteration();
  const HostTable t = ht.finalize();
  std::uint64_t total = 0;
  t.for_each([&](std::string_view, std::span<const std::byte> v) {
    total += as_u64(v);
  });
  EXPECT_EQ(total, kN);
  EXPECT_EQ(t.entry_count(), kKeys);
}

TEST(FindResidentTest, FindsOnlyResidentEntries) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  ASSERT_EQ(ht.insert_u64("here", 5), Status::kSuccess);
  const KvEntry* e = ht.find_resident("here");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key(), "here");
  EXPECT_EQ(ht.find_resident("gone"), nullptr);
  // After a flush the entry is no longer device-resident.
  ht.end_iteration();
  ht.begin_iteration();
  EXPECT_EQ(ht.find_resident("here"), nullptr);
}

TEST(TableStatsTest, TracksResidentAndFlushedBytes) {
  Rig rig(8u << 20);
  SepoHashTable ht(rig.ctx,
                   small_cfg(Organization::kCombining));
  ht.begin_iteration();
  ASSERT_EQ(ht.insert_u64("a", 1), Status::kSuccess);
  auto s1 = ht.table_stats();
  EXPECT_GT(s1.resident_entry_bytes, 0u);
  EXPECT_EQ(s1.flushed_bytes, 0u);
  ht.end_iteration();
  auto s2 = ht.table_stats();
  EXPECT_EQ(s2.resident_entry_bytes, 0u);
  EXPECT_EQ(s2.flushed_bytes, s1.resident_entry_bytes);
  EXPECT_EQ(s2.table_bytes, s1.table_bytes);
}

}  // namespace
}  // namespace sepo::core
