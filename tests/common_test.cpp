// Unit tests for common utilities: hashing, RNG/Zipf, strings, tables.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "common/hashing.hpp"
#include "common/random.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"

namespace sepo {
namespace {

// ---- hashing ----

TEST(HashingTest, DeterministicAndLengthSensitive) {
  EXPECT_EQ(hash_key("hello"), hash_key("hello"));
  EXPECT_NE(hash_key("hello"), hash_key("hello "));
  EXPECT_NE(hash_key("a"), hash_key("b"));
  EXPECT_NE(hash_key(std::string_view("a", 1)), hash_key(std::string_view("a\0", 2)));
}

TEST(HashingTest, EmptyKeyIsValid) {
  EXPECT_EQ(hash_key(""), hash_key(std::string_view{}));
}

TEST(HashingTest, LowBitsWellDistributed) {
  // Bucket selection uses the low bits; sequential keys must spread.
  std::map<std::uint64_t, int> buckets;
  constexpr std::uint64_t kMask = 255;
  for (int i = 0; i < 25600; ++i)
    buckets[hash_key("key-" + std::to_string(i)) & kMask]++;
  EXPECT_EQ(buckets.size(), 256u);  // every bucket hit
  for (const auto& [b, n] : buckets) EXPECT_LT(n, 200) << b;  // ~100 expected
}

TEST(HashingTest, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(HashingTest, Mix64Avalanches) {
  // Flipping one input bit flips ~half the output bits.
  const std::uint64_t a = mix64(0x1234567890abcdefULL);
  const std::uint64_t b = mix64(0x1234567890abcdeeULL);
  const int flipped = std::popcount(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

// ---- random ----

TEST(RandomTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(RandomTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(RandomTest, RangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(5, 8));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
}

TEST(RandomTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng rng(11);
  Zipf z(1000, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  // Rank 0 beats rank 10 beats rank 100.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Top rank's share near 1/H(1000) ~ 13%.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 50000, 0.13, 0.03);
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(12);
  Zipf z(50, 0.5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(z.sample(rng), 50u);
}

// ---- strings ----

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, ParseU64) {
  std::string_view s = "12345abc";
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64(s, v));
  EXPECT_EQ(v, 12345u);
  EXPECT_EQ(s, "abc");
  EXPECT_FALSE(parse_u64(s, v));  // 'a' is not a digit
}

TEST(StringsTest, IndexLinesSkipsEmpty) {
  const RecordIndex idx = index_lines("one\n\ntwo\nthree");
  ASSERT_EQ(idx.size(), 3u);
  const char* base = "one\n\ntwo\nthree";
  EXPECT_EQ(idx.record(base, 0), "one");
  EXPECT_EQ(idx.record(base, 1), "two");
  EXPECT_EQ(idx.record(base, 2), "three");  // no trailing newline
}

TEST(StringsTest, IndexLinesEmptyInput) {
  EXPECT_EQ(index_lines("").size(), 0u);
  EXPECT_EQ(index_lines("\n\n\n").size(), 0u);
}

// ---- table printer ----

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"x", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name           | v  |"), std::string::npos) << out;
  EXPECT_NE(out.find("| x              | 22 |"), std::string::npos) << out;
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, ByteFormatting) {
  EXPECT_EQ(TablePrinter::fmt_bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(TablePrinter::fmt_bytes(3u << 20), "3.00 MiB");
  EXPECT_EQ(TablePrinter::fmt_bytes(5ull << 30), "5.00 GiB");
}

}  // namespace
}  // namespace sepo
