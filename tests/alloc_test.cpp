// Unit + property tests for the allocator stack: PagePool (Treiber stack),
// HostHeap (mirror slots), BucketGroupAllocator (per-group bump + postpone
// flags). Covers DESIGN.md invariant 4 (allocator safety).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "alloc/bucket_group_allocator.hpp"
#include "common/random.hpp"
#include "alloc/host_heap.hpp"
#include "alloc/page_pool.hpp"
#include "gpusim/thread_pool.hpp"
#include "test_util.hpp"

namespace sepo::alloc {
namespace {

using test::Rig;

// ---- PagePool ----

TEST(PagePoolTest, PartitionsHeapIntoPages) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 64u << 10, 4u << 10);
  EXPECT_EQ(pool.page_count(), 16u);
  EXPECT_EQ(pool.free_count(), 16u);
  EXPECT_EQ(pool.page_size(), 4u << 10);
}

TEST(PagePoolTest, AcquireHandsOutDistinctPages) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 64u << 10, 4u << 10);
  std::set<std::uint32_t> pages;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t p = pool.acquire(rig.stats);
    ASSERT_NE(p, kInvalidPage);
    EXPECT_TRUE(pages.insert(p).second) << "page handed out twice";
  }
  EXPECT_EQ(pool.acquire(rig.stats), kInvalidPage);  // dry
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(PagePoolTest, ReleaseMakesPageReusable) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 16u << 10, 4u << 10);
  std::vector<std::uint32_t> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(pool.acquire(rig.stats));
  ASSERT_EQ(pool.acquire(rig.stats), kInvalidPage);
  pool.release(pages[2]);
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.acquire(rig.stats), pages[2]);
}

TEST(PagePoolTest, PageBasesAreDisjointAndInHeap) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 32u << 10, 4u << 10);
  for (std::uint32_t p = 0; p + 1 < pool.page_count(); ++p)
    EXPECT_EQ(pool.page_base(p + 1) - pool.page_base(p), 4u << 10);
}

TEST(PagePoolTest, AcquireResetsMeta) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 16u << 10, 4u << 10);
  const std::uint32_t p = pool.acquire(rig.stats);
  pool.meta(p).used.store(1234, std::memory_order_relaxed);
  pool.meta(p).pending_keys.store(5, std::memory_order_relaxed);
  pool.release(p);
  const std::uint32_t q = pool.acquire(rig.stats);
  ASSERT_EQ(p, q);
  EXPECT_EQ(pool.meta(q).used.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(pool.meta(q).pending_keys.load(std::memory_order_relaxed), 0u);
}

TEST(PagePoolTest, RejectsInvalidPageSize) {
  Rig rig(1u << 20);
  // Must be a power of two >= 64; a bad partition has to fail loudly in
  // release builds too, not only under NDEBUG-off asserts.
  EXPECT_THROW(PagePool(rig.dev, 64u << 10, 48), std::invalid_argument);
  EXPECT_THROW(PagePool(rig.dev, 64u << 10, 3000), std::invalid_argument);
  EXPECT_THROW(PagePool(rig.dev, 64u << 10, 0), std::invalid_argument);
  EXPECT_NO_THROW(PagePool(rig.dev, 64u << 10, 64));
}

TEST(PagePoolTest, DoubleReleaseIsRejectedAndCounted) {
  Rig rig(1u << 20);
  PagePool pool(rig.dev, 16u << 10, 4u << 10);
  const std::uint32_t p = pool.acquire(rig.stats);
  ASSERT_NE(p, kInvalidPage);
  EXPECT_TRUE(pool.release(p, &rig.stats));
  // The second release has no intervening acquire: it must be rejected
  // (not corrupt the free stack) and show up in the stats.
  EXPECT_FALSE(pool.release(p, &rig.stats));
  EXPECT_EQ(pool.free_count(), 4u);
  EXPECT_EQ(rig.stats.snapshot().page_double_releases, 1u);
  // The pool still works: every page remains acquirable exactly once.
  std::set<std::uint32_t> pages;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t q = pool.acquire(rig.stats);
    ASSERT_NE(q, kInvalidPage);
    EXPECT_TRUE(pages.insert(q).second) << "page handed out twice";
  }
  EXPECT_EQ(pool.acquire(rig.stats), kInvalidPage);
}

TEST(PagePoolTest, ConcurrentAcquireReleaseKeepsInvariant) {
  Rig rig(4u << 20, /*workers=*/4);
  PagePool pool(rig.dev, 256u << 10, 4u << 10);  // 64 pages
  std::atomic<bool> violation{false};
  rig.pool.parallel_for(4000, [&](std::size_t) {
    const std::uint32_t p = pool.acquire(rig.stats);
    if (p == kInvalidPage) return;
    // Ownership check: in_pool must be false while we hold the page.
    if (pool.meta(p).in_pool.load(std::memory_order_relaxed))
      violation.store(true);
    pool.release(p);
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(pool.free_count(), 64u);
}

// Sustained concurrent churn near pool exhaustion: many threads acquire and
// release in tight loops against a pool smaller than the demand, so the
// Treiber stack's push/pop race with the double-release CAS guard under
// contention. Runs under the sanitizer label (see tests/CMakeLists.txt).
TEST(PagePoolChurnTest, ManyThreadsNearExhaustion) {
  Rig rig(4u << 20);
  PagePool pool(rig.dev, 32u << 10, 4u << 10);  // 8 pages
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> acquired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      std::vector<std::uint32_t> held;
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t p = pool.acquire(rig.stats);
        if (p != kInvalidPage) {
          if (pool.meta(p).in_pool.load(std::memory_order_relaxed))
            violation.store(true);
          held.push_back(p);
          acquired.fetch_add(1, std::memory_order_relaxed);
        }
        // Hold up to two pages to keep the pool starved, then give back.
        if (held.size() > 2 || (p == kInvalidPage && !held.empty())) {
          if (!pool.release(held.back(), &rig.stats)) violation.store(true);
          held.pop_back();
        }
      }
      for (const std::uint32_t p : held)
        if (!pool.release(p, &rig.stats)) violation.store(true);
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(acquired.load(), 0u);
  EXPECT_EQ(pool.free_count(), 8u);
  // No legitimate release may ever be rejected: every acquire had exactly
  // one matching release.
  EXPECT_EQ(rig.stats.snapshot().page_double_releases, 0u);
}

// ---- HostHeap ----

TEST(HostHeapTest, SlotsAreSequentialAndOneBased) {
  HostHeap heap(4096);
  EXPECT_EQ(heap.reserve_slot(), 1u);
  EXPECT_EQ(heap.reserve_slot(), 2u);
  EXPECT_EQ(heap.reserved_slots(), 2u);
}

TEST(HostHeapTest, AddressArithmeticRoundTrips) {
  HostHeap heap(4096);
  const std::uint64_t slot = heap.reserve_slot();
  const HostPtr p = heap.addr(slot, 128);
  EXPECT_EQ(p, slot * 4096 + 128);
  EXPECT_NE(p, kHostNull);
}

TEST(HostHeapTest, StoreThenReadBack) {
  HostHeap heap(256);
  const std::uint64_t slot = heap.reserve_slot();
  std::byte page[256];
  for (int i = 0; i < 256; ++i) page[i] = static_cast<std::byte>(i);
  heap.store_page(slot, page, 256);
  EXPECT_TRUE(heap.slot_stored(slot));
  EXPECT_EQ(*heap.ptr<std::uint8_t>(heap.addr(slot, 7)), 7u);
  EXPECT_EQ(heap.stored_bytes(), 256u);
}

TEST(HostHeapTest, SlotsStoredOutOfOrder) {
  HostHeap heap(64);
  const auto s1 = heap.reserve_slot();
  const auto s2 = heap.reserve_slot();
  std::byte page[64] = {};
  page[0] = std::byte{2};
  heap.store_page(s2, page, 64);
  EXPECT_TRUE(heap.slot_stored(s2));
  EXPECT_FALSE(heap.slot_stored(s1));
  page[0] = std::byte{1};
  heap.store_page(s1, page, 64);
  EXPECT_EQ(*heap.ptr<std::uint8_t>(heap.addr(s1, 0)), 1u);
  EXPECT_EQ(*heap.ptr<std::uint8_t>(heap.addr(s2, 0)), 2u);
}

// ---- BucketGroupAllocator ----

struct AllocRig {
  AllocRig(std::size_t heap_kb, std::size_t page_kb, std::uint32_t groups,
           std::uint32_t classes = 1)
      : rig(4u << 20),
        pool(rig.dev, heap_kb << 10, page_kb << 10),
        heap(page_kb << 10),
        alloc(pool, heap, groups, classes) {}

  Rig rig;
  PagePool pool;
  HostHeap heap;
  BucketGroupAllocator alloc;
};

TEST(BucketGroupAllocatorTest, AllocationsWithinGroupAreContiguous) {
  AllocRig r(64, 4, 4);
  const Allocation a = r.alloc.alloc(0, PageClass::kGeneric, 100, r.rig.stats);
  const Allocation b = r.alloc.alloc(0, PageClass::kGeneric, 100, r.rig.stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.page, b.page);
  EXPECT_EQ(b.dev - a.dev, 104u);  // 100 rounded to 8
  EXPECT_EQ(b.host - a.host, 104u);
}

TEST(BucketGroupAllocatorTest, DifferentGroupsUseDifferentPages) {
  AllocRig r(64, 4, 4);
  const Allocation a = r.alloc.alloc(0, PageClass::kGeneric, 64, r.rig.stats);
  const Allocation b = r.alloc.alloc(1, PageClass::kGeneric, 64, r.rig.stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.page, b.page);
}

TEST(BucketGroupAllocatorTest, ClassesUseSeparatePages) {
  AllocRig r(64, 4, 2, /*classes=*/3);
  const Allocation k = r.alloc.alloc(0, PageClass::kKey, 64, r.rig.stats);
  const Allocation v = r.alloc.alloc(0, PageClass::kValue, 64, r.rig.stats);
  ASSERT_TRUE(k.ok() && v.ok());
  EXPECT_NE(k.page, v.page);
  EXPECT_EQ(r.pool.meta(k.page).cls, PageClass::kKey);
  EXPECT_EQ(r.pool.meta(v.page).cls, PageClass::kValue);
}

TEST(BucketGroupAllocatorTest, FullPageRetiresAndFreshPageTaken) {
  AllocRig r(64, 4, 1);
  const Allocation a =
      r.alloc.alloc(0, PageClass::kGeneric, 3000, r.rig.stats);
  const Allocation b =
      r.alloc.alloc(0, PageClass::kGeneric, 3000, r.rig.stats);  // won't fit
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.page, b.page);
  std::vector<std::uint32_t> retired;
  r.alloc.take_retired_pages(retired);
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0], a.page);
}

TEST(BucketGroupAllocatorTest, FailureMarksGroupPostponed) {
  AllocRig r(8, 4, 2);  // 2 pages total
  ASSERT_TRUE(r.alloc.alloc(0, PageClass::kGeneric, 4000, r.rig.stats).ok());
  ASSERT_TRUE(r.alloc.alloc(1, PageClass::kGeneric, 4000, r.rig.stats).ok());
  EXPECT_EQ(r.alloc.postponed_groups(), 0u);
  EXPECT_FALSE(r.alloc.alloc(0, PageClass::kGeneric, 4000, r.rig.stats).ok());
  EXPECT_EQ(r.alloc.postponed_groups(), 1u);
  // Same group failing again does not double-count.
  EXPECT_FALSE(r.alloc.alloc(0, PageClass::kGeneric, 4000, r.rig.stats).ok());
  EXPECT_EQ(r.alloc.postponed_groups(), 1u);
  EXPECT_FALSE(r.alloc.alloc(1, PageClass::kGeneric, 4000, r.rig.stats).ok());
  EXPECT_EQ(r.alloc.postponed_groups(), 2u);
  r.alloc.reset_postponed();
  EXPECT_EQ(r.alloc.postponed_groups(), 0u);
}

TEST(BucketGroupAllocatorTest, OversizedRequestFailsCleanly) {
  AllocRig r(64, 4, 1);
  EXPECT_FALSE(
      r.alloc.alloc(0, PageClass::kGeneric, (4u << 10) + 8, r.rig.stats).ok());
  EXPECT_EQ(r.rig.stats.snapshot().alloc_fails, 1u);
  // The pool was not touched.
  EXPECT_EQ(r.pool.free_count(), 16u);
}

TEST(BucketGroupAllocatorTest, DetachReturnsActivePages) {
  AllocRig r(64, 4, 3);
  (void)r.alloc.alloc(0, PageClass::kGeneric, 64, r.rig.stats);
  (void)r.alloc.alloc(2, PageClass::kGeneric, 64, r.rig.stats);
  std::vector<std::uint32_t> active;
  r.alloc.detach_active_pages(active);
  EXPECT_EQ(active.size(), 2u);
  // After detaching, new allocations get fresh pages.
  const Allocation again =
      r.alloc.alloc(0, PageClass::kGeneric, 64, r.rig.stats);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::count(active.begin(), active.end(), again.page), 0);
}

// Property: no two allocations overlap, across groups, classes, and page
// recycling (guard-pattern check).
TEST(BucketGroupAllocatorProperty, AllocationsNeverOverlap) {
  AllocRig r(128, 4, 8, /*classes=*/3);
  Rng rng(3);
  struct Span {
    gpusim::DevPtr dev;
    std::uint32_t len;
  };
  std::vector<Span> live;
  for (int i = 0; i < 2000; ++i) {
    const auto group = static_cast<std::uint32_t>(rng.below(8));
    const auto cls = static_cast<PageClass>(rng.below(3));
    const auto len = static_cast<std::uint32_t>(8 + rng.below(300));
    const Allocation a = r.alloc.alloc(group, cls, len, r.rig.stats);
    if (!a.ok()) break;
    live.push_back({a.dev, (len + 7u) & ~7u});
  }
  ASSERT_GT(live.size(), 100u);
  std::sort(live.begin(), live.end(),
            [](const Span& a, const Span& b) { return a.dev < b.dev; });
  for (std::size_t i = 1; i < live.size(); ++i)
    ASSERT_GE(live[i].dev, live[i - 1].dev + live[i - 1].len)
        << "overlap at allocation " << i;
}

// Property: writes through dev pointers land at the matching host addresses
// after the page content is copied (dual-pointer consistency, invariant 5).
TEST(BucketGroupAllocatorProperty, HostMirrorsDeviceContent) {
  AllocRig r(64, 4, 2);
  std::vector<Allocation> allocs;
  for (int i = 0; i < 50; ++i) {
    const Allocation a = r.alloc.alloc(i % 2, PageClass::kGeneric, 40,
                                       r.rig.stats);
    ASSERT_TRUE(a.ok());
    std::memset(r.rig.dev.ptr(a.dev), i, 40);
    allocs.push_back(a);
  }
  // Flush every owned page into the host heap.
  std::vector<std::uint32_t> pages;
  r.alloc.detach_active_pages(pages);
  r.alloc.take_retired_pages(pages);
  for (const std::uint32_t p : pages) {
    const auto& m = r.pool.meta(p);
    r.heap.store_page(m.host_slot.load(std::memory_order_relaxed),
                      r.rig.dev.ptr(r.pool.page_base(p)),
                      m.used.load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    const auto* host = r.heap.ptr<std::uint8_t>(allocs[i].host);
    EXPECT_EQ(*host, static_cast<std::uint8_t>(i)) << i;
  }
}

}  // namespace
}  // namespace sepo::alloc
