// Tests for the Stadium-hashing-style baseline (§VII related work).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "apps/harness.hpp"
#include "baselines/cpu_hash_table.hpp"
#include "baselines/stadium_hash_table.hpp"
#include "common/random.hpp"
#include "test_util.hpp"

namespace sepo::baselines {
namespace {

using test::Rig;
using test::as_u64;

TEST(StadiumTest, StoresAndFindsAllDuplicates) {
  Rig rig(1u << 20);
  StadiumHashTable t(rig.ctx, {.num_buckets = 256});
  t.insert_u64("dup", 1);
  t.insert_u64("dup", 2);
  t.insert_u64("other", 3);
  // §VII: duplicates are separate pairs — no combining.
  EXPECT_EQ(t.entry_count(), 3u);
  const auto vals = t.lookup_all("dup");
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(as_u64(vals[0]) + as_u64(vals[1]), 3u);
  EXPECT_TRUE(t.lookup_all("absent").empty());
}

TEST(StadiumTest, InsertIsExactlyOneRemoteTransaction) {
  Rig rig(1u << 20);
  StadiumHashTable t(rig.ctx, {.num_buckets = 256});
  for (int i = 0; i < 100; ++i) t.insert_u64("k" + std::to_string(i), 1);
  // The device-resident fingerprint index absorbs all probing; only the
  // entry store crosses the bus.
  EXPECT_EQ(rig.dev.bus().snapshot().remote_txns, 100u);
}

TEST(StadiumTest, LookupsTouchHostOnlyOnFingerprintMatches) {
  Rig rig(1u << 20);
  StadiumHashTable t(rig.ctx, {.num_buckets = 1});  // one bucket
  for (int i = 0; i < 200; ++i) t.insert_u64("k" + std::to_string(i), 1);
  const auto before = rig.dev.bus().snapshot().remote_txns;
  (void)t.lookup_all("k7");
  const auto after = rig.dev.bus().snapshot().remote_txns;
  // 200 co-bucket entries, but only fingerprint matches (~1 real + ~0-1
  // 16-bit collisions) are confirmed remotely — far fewer than a pinned
  // table's 200-probe chain walk.
  EXPECT_GE(after - before, 2u);  // key read + value read for the hit
  EXPECT_LE(after - before, 12u);
}

TEST(StadiumTest, MatchesBasicReferenceDigest) {
  Rig rig(2u << 20);
  StadiumHashTable stadium(rig.ctx, {.num_buckets = 1u << 10});
  gpusim::RunStats cpu_stats;
  CpuHashTableConfig ccfg;
  ccfg.org = core::Organization::kBasic;
  CpuHashTable reference(cpu_stats, ccfg);

  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const std::string k = "key-" + std::to_string(rng.below(3000));
    const std::uint64_t v = rng.next();
    stadium.insert_u64(k, v);
    reference.insert_u64(0, k, v);
  }
  EXPECT_EQ(stadium.entry_count(), reference.entry_count());
  EXPECT_EQ(apps::digest_kv(stadium), apps::digest_kv(reference));
  EXPECT_GT(stadium.index_bytes(), 0u);
  // The index is compact: a few bytes per pair.
  EXPECT_LT(stadium.index_bytes(), 20000u * 8u);
}

TEST(StadiumTest, IndexExhaustsDeviceMemoryWithoutSepo) {
  Rig rig(64u << 10);  // tiny device: heads + a few index blocks only
  StadiumHashTable t(rig.ctx, {.num_buckets = 256});
  bool threw = false;
  try {
    for (int i = 0; i < 200000; ++i) t.insert_u64("k" + std::to_string(i), 1);
  } catch (const std::bad_alloc&) {
    threw = true;  // no postponement path exists in this design
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace sepo::baselines
