// Sharded-counter equivalence (gpusim::WorkerStats, DESIGN.md §5 "host
// execution performance").
//
// gpusim::launch installs one counter shard per pool worker for the kernel's
// duration and merges them back at kernel exit. Because uint64 addition is
// commutative, the merged totals must be *bit-identical* to what the
// all-atomic metering path produces — that invariant is what keeps every
// simulated result unchanged by the perf work. The fixture totals below were
// recorded against the pre-change, single-atomic RunStats implementation;
// they pin the invariant across future refactors.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "gpusim/counters.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "gpusim/trace_hook.hpp"

namespace {

using namespace sepo::gpusim;

// Deterministic per-item counter workload (splitmix of the item index):
// totals are independent of threading, batching, and execution order. Shared
// with bench/host_perf.cpp. Do not change it — the fixture totals below were
// recorded against exactly this kernel.
void fixture_kernel(RunStats& stats, std::size_t i) {
  std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  stats.add_records_scanned();
  stats.add_work_units(x % 97);
  stats.add_hash_ops();
  if (x % 3 == 0)
    stats.add_inserts_new();
  else
    stats.add_combines();
  stats.add_chain_links(x % 5);
  stats.add_key_compare_bytes((x >> 8) % 31);
  stats.add_alloc_ops();
  if (x % 7 == 0) stats.add_alloc_fails();
  if (x % 11 == 0) stats.add_page_acquires();
  stats.add_records_processed();
}

constexpr std::size_t kItems = 10000;
constexpr std::size_t kGrid = 256;

// Totals recorded from the pre-change implementation (single shared-atomic
// RunStats, std::function launch) running fixture_kernel over kItems items
// with kGrid grid threads on a 4-worker pool.
StatsSnapshot recorded_fixture() {
  StatsSnapshot f;
  f.records_processed = 10000u;
  f.records_scanned = 10000u;
  f.work_units = 474944u;
  f.hash_ops = 10000u;
  f.key_compare_bytes = 148877u;
  f.chain_links_walked = 20057u;
  f.inserts_new = 3390u;
  f.combines = 6610u;
  f.alloc_ops = 10000u;
  f.alloc_fails = 1441u;
  f.page_acquires = 895u;
  f.kernel_launches = 1u;
  return f;
}

TEST(CounterShardTest, MergedTotalsMatchPreChangeFixture) {
  ThreadPool pool(4);
  RunStats stats;
  launch(pool, stats, kItems,
         [&stats](std::size_t i) { fixture_kernel(stats, i); },
         {.grid_threads = kGrid});
  EXPECT_FALSE(stats.sharded()) << "launch must merge shards at kernel exit";
  EXPECT_EQ(stats.snapshot(), recorded_fixture());
}

TEST(CounterShardTest, ShardedPathEqualsAtomicPath) {
  // The same workload through both metering paths: sharded (inside launch)
  // and all-atomic (direct bumps outside any launch). Bit-identical totals,
  // modulo the launch counter the atomic path never sees.
  ThreadPool pool(4);
  RunStats sharded;
  launch(pool, sharded, kItems,
         [&sharded](std::size_t i) { fixture_kernel(sharded, i); },
         {.grid_threads = kGrid});

  RunStats atomic;
  for (std::size_t i = 0; i < kItems; ++i) fixture_kernel(atomic, i);
  atomic.add_kernel_launches();
  EXPECT_EQ(sharded.snapshot(), atomic.snapshot());
}

TEST(CounterShardTest, FixtureStableAcrossWorkerCounts) {
  // Shard count follows the pool size; totals must not.
  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(workers);
    RunStats stats;
    launch(pool, stats, kItems,
           [&stats](std::size_t i) { fixture_kernel(stats, i); },
           {.grid_threads = kGrid});
    EXPECT_EQ(stats.snapshot(), recorded_fixture()) << "workers=" << workers;
  }
}

TEST(CounterShardTest, StdFunctionOverloadMetersIdentically) {
  // The ABI-stable std::function overload must keep producing the same
  // totals as the devirtualized template path.
  ThreadPool pool(4);
  RunStats stats;
  const std::function<void(std::size_t)> kernel = [&stats](std::size_t i) {
    fixture_kernel(stats, i);
  };
  launch(pool, stats, kItems, kernel, {.grid_threads = kGrid});
  EXPECT_EQ(stats.snapshot(), recorded_fixture());
}

TEST(CounterShardTest, AtomicPathUsedOutsideLaunch) {
  // Host-side bumps (e.g. CPU-baseline parties) never see shards installed.
  RunStats stats;
  EXPECT_FALSE(stats.sharded());
  stats.add_hash_ops(7);
  EXPECT_EQ(stats.snapshot().hash_ops, 7u);
}

TEST(CounterShardTest, ShardScopeMergesOnce) {
  RunStats stats;
  {
    StatsShardScope scope(stats, 2);
    ASSERT_TRUE(stats.sharded());
    stats.add_hash_ops(3);  // lands in shard 0 (calling thread)
    EXPECT_EQ(stats.snapshot().hash_ops, 0u) << "merge happens at scope exit";
    stats.end_sharding();  // explicit early end: scope exit must be a no-op
    EXPECT_EQ(stats.snapshot().hash_ops, 3u);
  }
  EXPECT_EQ(stats.snapshot().hash_ops, 3u);
}

// Hook that records the deltas launch() reports.
class DeltaRecorder : public TraceHook {
 public:
  std::vector<StatsSnapshot> deltas;
  std::vector<std::size_t> items;
  void on_kernel(const StatsSnapshot& delta, std::size_t n_items) override {
    deltas.push_back(delta);
    items.push_back(n_items);
  }
  void on_h2d(std::uint64_t) override {}
  void on_d2h(std::uint64_t) override {}
  void on_remote(std::uint64_t) override {}
  void on_flush(std::uint64_t, std::uint64_t) override {}
  void on_iteration_begin(std::uint32_t) override {}
  void on_iteration_end(std::uint32_t) override {}
};

TEST(CounterShardTest, TraceHookSeesMergedDelta) {
  // The trace hook observes totals at kernel exit — after the shard merge —
  // so its delta must equal the whole fixture, exactly as pre-change.
  ThreadPool pool(4);
  RunStats stats;
  DeltaRecorder rec;
  stats.set_trace_hook(&rec);
  launch(pool, stats, kItems,
         [&stats](std::size_t i) { fixture_kernel(stats, i); },
         {.grid_threads = kGrid});
  stats.set_trace_hook(nullptr);
  ASSERT_EQ(rec.deltas.size(), 1u);
  EXPECT_EQ(rec.deltas[0], recorded_fixture());
  EXPECT_EQ(rec.items[0], kItems);
}

}  // namespace
