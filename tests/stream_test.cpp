// Discrete-event timeline tests: streams serialize their own commands,
// resources are serial engines, cross-stream waits express dependencies,
// the BigKernel ring bounds h2d/compute overlap by its depth, flushes act
// as barriers, and schedules are deterministic run to run.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bigkernel/pipeline.hpp"
#include "common/progress.hpp"
#include "common/strings.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/stream.hpp"
#include "test_util.hpp"

namespace sepo::gpusim {
namespace {

Timeline make_timeline() { return Timeline(kGpuDesc, PcieParams{}); }

TEST(TimelineTest, ResourceIsASerialEngine) {
  Timeline tl = make_timeline();
  const Event a = tl.schedule(TimelineCommandKind::kH2dCopy,
                              TimelineResource::kCopyH2d, 0.0, 1.0, 0, 0);
  // Ready long before the engine frees up: starts when the engine is free.
  const Event b = tl.schedule(TimelineCommandKind::kH2dCopy,
                              TimelineResource::kCopyH2d, 0.0, 2.0, 0, 0);
  EXPECT_DOUBLE_EQ(a.at, 1.0);
  EXPECT_DOUBLE_EQ(b.at, 3.0);
  EXPECT_DOUBLE_EQ(tl.commands()[1].start, 1.0);
  // A later ready time pushes the start past the engine's free time.
  const Event c = tl.schedule(TimelineCommandKind::kH2dCopy,
                              TimelineResource::kCopyH2d, 10.0, 1.0, 0, 0);
  EXPECT_DOUBLE_EQ(c.at, 11.0);
}

TEST(TimelineTest, DistinctResourcesOverlap) {
  Timeline tl = make_timeline();
  tl.schedule(TimelineCommandKind::kH2dCopy, TimelineResource::kCopyH2d, 0.0,
              5.0, 0, 0);
  tl.schedule(TimelineCommandKind::kKernel, TimelineResource::kCompute, 0.0,
              3.0, 0, 0);
  // Both start at zero: engines are independent.
  EXPECT_DOUBLE_EQ(tl.commands()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(tl.commands()[1].start, 0.0);
  EXPECT_DOUBLE_EQ(tl.total_end(), 5.0);
  const TimelineSummary s = tl.summary();
  EXPECT_DOUBLE_EQ(s.h2d_busy, 5.0);
  EXPECT_DOUBLE_EQ(s.compute_busy, 3.0);
  EXPECT_EQ(s.commands, 2u);
}

TEST(StreamTest, CommandsOnOneStreamNeverOverlap) {
  Timeline tl = make_timeline();
  Stream s(tl);
  const Event a = s.h2d(1 << 20);
  const Event b = s.h2d(1 << 20);
  ASSERT_EQ(tl.commands().size(), 2u);
  EXPECT_GE(tl.commands()[1].start, tl.commands()[0].end);
  EXPECT_GT(b.at, a.at);
}

TEST(StreamTest, WaitSerializesAcrossStreams) {
  Timeline tl = make_timeline();
  Stream copy(tl), compute(tl);
  const Event staged = copy.h2d(1 << 20);
  compute.wait(staged);
  StatsSnapshot delta{};
  delta.work_units = 1u << 20;
  compute.kernel(delta, 4096);
  // The kernel is on a different resource but must not start before the
  // copy it waited on completed.
  ASSERT_EQ(tl.commands().size(), 2u);
  EXPECT_GE(tl.commands()[1].start, staged.at - 1e-12);
}

TEST(StreamTest, DefaultEventIsAlreadySignaled) {
  Timeline tl = make_timeline();
  Stream s(tl);
  s.wait(Event{});  // must not delay anything
  const Event a = s.h2d(64);
  EXPECT_DOUBLE_EQ(tl.commands()[0].start, 0.0);
  EXPECT_GT(a.at, 0.0);
}

TEST(TimelinePricing, MatchesAnalyticArithmetic) {
  Timeline tl = make_timeline();
  PcieBus bus(PcieParams{});
  EXPECT_DOUBLE_EQ(tl.price_copy(1u << 20, 1), bus.bulk_time(1u << 20, 1));
  EXPECT_DOUBLE_EQ(tl.price_remote(4096, 64), bus.remote_time(4096, 64));
  StatsSnapshot delta{};
  delta.work_units = 123456;
  delta.hash_ops = 777;
  EXPECT_DOUBLE_EQ(tl.price_kernel(delta), compute_time(kGpuDesc, delta));
}

// ---- ExecContext scheduling semantics ----

// Drives a small pipeline pass and returns the scheduled command list.
std::vector<TimelineCommand> run_pipeline_pass(std::size_t staging_buffers,
                                               std::size_t* chunks_out) {
  test::Rig rig(1u << 20, /*workers=*/2);
  std::string input;
  for (int i = 0; i < 4096; ++i) input += "record-" + std::to_string(i) + "\n";
  const RecordIndex idx = index_lines(input);
  bigkernel::PipelineConfig cfg;
  cfg.records_per_chunk = 512;
  cfg.max_chunk_bytes = 16u << 10;
  cfg.num_staging_buffers = staging_buffers;
  bigkernel::InputPipeline pipe(rig.ctx, cfg);
  ProgressTracker progress(idx.size());
  const auto pass = pipe.run_pass(
      input, idx, progress,
      [](std::size_t, std::string_view) { return core::Status::kSuccess; });
  if (chunks_out) *chunks_out = pass.chunks_staged;
  return rig.ctx.timeline().commands();
}

TEST(ExecContextTest, SingleStagingBufferFullySerializes) {
  std::size_t chunks = 0;
  const auto cmds = run_pipeline_pass(1, &chunks);
  ASSERT_GT(chunks, 2u);
  // With one ring slot, staging chunk k+1 must wait for kernel k (the slot's
  // last reader): no copy may start before every earlier kernel ended.
  double last_kernel_end = 0;
  for (const auto& c : cmds) {
    if (c.kind == TimelineCommandKind::kKernel) {
      last_kernel_end = c.end;
    } else if (c.kind == TimelineCommandKind::kH2dCopy) {
      EXPECT_GE(c.start, last_kernel_end - 1e-12);
    }
  }
}

TEST(ExecContextTest, RingDepthAdmitsOverlapBoundedByBufferCount) {
  std::size_t chunks = 0;
  const auto cmds = run_pipeline_pass(2, &chunks);
  ASSERT_GT(chunks, 2u);
  std::vector<TimelineCommand> h2d, kernels;
  for (const auto& c : cmds) {
    if (c.kind == TimelineCommandKind::kH2dCopy) h2d.push_back(c);
    if (c.kind == TimelineCommandKind::kKernel) kernels.push_back(c);
  }
  ASSERT_EQ(h2d.size(), kernels.size());
  ASSERT_EQ(h2d.size(), chunks);
  // Double-buffering: staging of chunk k+1 overlaps the kernel on chunk k
  // for at least one pair (the BigKernel property).
  bool overlapped = false;
  for (std::size_t k = 0; k + 1 < h2d.size(); ++k)
    if (h2d[k + 1].start < kernels[k].end - 1e-12) overlapped = true;
  EXPECT_TRUE(overlapped);
  // ...but never runs more than num_staging_buffers ahead: staging of chunk
  // k+2 requires the slot kernel k used, so it cannot start before that
  // kernel ends.
  for (std::size_t k = 0; k + 2 < h2d.size(); ++k)
    EXPECT_GE(h2d[k + 2].start, kernels[k].end - 1e-12) << "chunk " << k + 2;
  // Each kernel still waits for its own chunk's staging.
  for (std::size_t k = 0; k < kernels.size(); ++k)
    EXPECT_GE(kernels[k].start, h2d[k].end - 1e-12) << "chunk " << k;
}

TEST(ExecContextTest, FlushIsABarrierAcrossStreams) {
  test::Rig rig(1u << 20, /*workers=*/1);
  std::vector<std::byte> host(32u << 10);
  const DevPtr buf = rig.dev.alloc_static(host.size());

  // Queue work on both engines, then flush, then queue more.
  rig.ctx.stage_h2d(buf, host.data(), host.size());
  rig.ctx.launch(64, [](std::size_t) {});
  const Event flush = rig.ctx.flush_d2h(8u << 10);
  rig.ctx.stage_h2d(buf, host.data(), host.size());
  rig.ctx.launch(64, [](std::size_t) {});

  const auto& cmds = rig.ctx.timeline().commands();
  ASSERT_EQ(cmds.size(), 5u);
  const auto& pre_kernel = cmds[1];
  const auto& d2h = cmds[2];
  const auto& post_h2d = cmds[3];
  const auto& post_kernel = cmds[4];
  ASSERT_EQ(d2h.kind, TimelineCommandKind::kD2hFlush);
  // The flush waits for all queued compute ("flushes halt computation").
  EXPECT_GE(d2h.start, pre_kernel.end - 1e-12);
  // Nothing resumes — on either engine — until the flush completed.
  EXPECT_GE(post_h2d.start, flush.at - 1e-12);
  EXPECT_GE(post_kernel.start, flush.at - 1e-12);
}

TEST(ExecContextTest, RemoteAccessSerializesAfterIssuingKernel) {
  test::Rig rig(1u << 20, /*workers=*/1);
  rig.ctx.launch(16, [&](std::size_t) { rig.dev.bus().remote(64); });
  rig.ctx.launch(16, [](std::size_t) {});
  const auto& cmds = rig.ctx.timeline().commands();
  ASSERT_EQ(cmds.size(), 3u);
  ASSERT_EQ(cmds[1].kind, TimelineCommandKind::kRemoteAccess);
  EXPECT_GE(cmds[1].start, cmds[0].end - 1e-12);
  // The remote batch stalls the next kernel (serial with compute).
  EXPECT_GE(cmds[2].start, cmds[1].end - 1e-12);
  EXPECT_EQ(cmds[1].arg1, 16u);  // one transaction per grid thread
}

TEST(ExecContextTest, ScheduleIsDeterministicRunToRun) {
  std::size_t chunks_a = 0, chunks_b = 0;
  const auto a = run_pipeline_pass(2, &chunks_a);
  const auto b = run_pipeline_pass(2, &chunks_b);
  EXPECT_EQ(chunks_a, chunks_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].resource, b[i].resource) << i;
    // Bit-identical simulated times, not approximately equal.
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].end, b[i].end) << i;
    EXPECT_EQ(a[i].arg0, b[i].arg0) << i;
  }
}

TEST(ExecContextTest, BusyTotalsMatchAnalyticTerms) {
  // Pricing is linear in the counters, so per-resource busy sums must equal
  // the analytic model's per-term totals exactly (the two models differ
  // only in admitted overlap).
  test::Rig rig(1u << 20, /*workers=*/1);
  std::vector<std::byte> host(16u << 10);
  const DevPtr buf = rig.dev.alloc_static(host.size());
  for (int i = 0; i < 3; ++i) {
    rig.dev.bus().h2d(host.size());
    rig.ctx.copy_stream().h2d(host.size());
    rig.ctx.launch(256, [&](std::size_t) { rig.stats.add_work_units(100); });
  }
  (void)buf;
  const TimelineSummary s = rig.ctx.timeline().summary();
  const StatsSnapshot total = rig.stats.snapshot();
  const PcieSnapshot pcie = rig.dev.bus().snapshot();
  EXPECT_DOUBLE_EQ(s.compute_busy, compute_time(kGpuDesc, total));
  EXPECT_DOUBLE_EQ(s.h2d_busy,
                   rig.dev.bus().bulk_time(pcie.h2d_bytes, pcie.h2d_txns));
}

}  // namespace
}  // namespace sepo::gpusim
