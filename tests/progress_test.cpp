// Unit tests for ProgressTracker — per-task completion plus the multi-emit
// resume counters used by re-executed map instances.
#include <gtest/gtest.h>

#include "common/progress.hpp"

namespace sepo {
namespace {

TEST(ProgressTest, SingleEmitActsLikeBitmap) {
  ProgressTracker p(100);
  EXPECT_FALSE(p.is_done(5));
  EXPECT_TRUE(p.mark_done(5));
  EXPECT_FALSE(p.mark_done(5));
  EXPECT_TRUE(p.is_done(5));
  EXPECT_EQ(p.done_count(), 1u);
  EXPECT_FALSE(p.all_done());
}

TEST(ProgressTest, ResumePointZeroWithoutMultiEmit) {
  ProgressTracker p(10, /*multi_emit=*/false);
  p.advance(3, 7);  // no-op
  EXPECT_EQ(p.resume_point(3), 0u);
}

TEST(ProgressTest, ResumeAdvancesWithEmissions) {
  ProgressTracker p(10, /*multi_emit=*/true);
  EXPECT_EQ(p.resume_point(2), 0u);
  p.advance(2, 0);
  p.advance(2, 1);
  p.advance(2, 2);
  EXPECT_EQ(p.resume_point(2), 3u);
  // Other tasks unaffected.
  EXPECT_EQ(p.resume_point(3), 0u);
}

TEST(ProgressTest, ReExecutionSkipsAcceptedPrefix) {
  // Simulates the SepoEmitter protocol: first execution accepts emissions
  // 0..2 then fails; re-execution must skip exactly 3.
  ProgressTracker p(4, /*multi_emit=*/true);
  const std::size_t rec = 1;
  for (std::uint32_t e = 0; e < 3; ++e) p.advance(rec, e);
  // record NOT marked done (emission 3 postponed)
  EXPECT_FALSE(p.is_done(rec));
  const std::uint32_t resume = p.resume_point(rec);
  EXPECT_EQ(resume, 3u);
  // second execution: emissions 0,1,2 skipped; 3 succeeds; mark done.
  p.advance(rec, 3);
  EXPECT_TRUE(p.mark_done(rec));
  EXPECT_EQ(p.resume_point(rec), 4u);
}

TEST(ProgressTest, FirstPendingFromSkipsDone) {
  ProgressTracker p(10);
  for (std::size_t i = 0; i < 5; ++i) p.mark_done(i);
  EXPECT_EQ(p.first_pending_from(0), 5u);
  p.mark_done(5);
  EXPECT_EQ(p.first_pending_from(3), 6u);
}

TEST(ProgressTest, AllDoneAfterEveryTask) {
  ProgressTracker p(17, /*multi_emit=*/true);
  for (std::size_t i = 0; i < 17; ++i) p.mark_done(i);
  EXPECT_TRUE(p.all_done());
  EXPECT_EQ(p.done_count(), 17u);
}

TEST(ProgressTest, ResetClearsState) {
  ProgressTracker p(5, /*multi_emit=*/true);
  p.advance(0, 0);
  p.mark_done(0);
  p.reset(8, /*multi_emit=*/true);
  EXPECT_EQ(p.num_tasks(), 8u);
  EXPECT_FALSE(p.is_done(0));
  EXPECT_EQ(p.resume_point(0), 0u);
}

}  // namespace
}  // namespace sepo
