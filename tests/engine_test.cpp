// Engine registry (apps/engine.hpp): registration sanity, alias resolution,
// and the cross-validation sweep — every registered engine that supports an
// app must produce the same result digest on the same input.
#include "apps/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace sepo::apps {
namespace {

TEST(EngineRegistryTest, AppsAreRegisteredInDisplayOrder) {
  const auto& apps = all_apps();
  ASSERT_EQ(apps.size(), 7u);
  const char* expected[] = {"pvc", "ii", "dna", "netflix", "wc", "pc", "geo"};
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_STREQ(apps[i]->key, expected[i]);
    // Exactly one of the two app kinds is set.
    EXPECT_NE(apps[i]->standalone == nullptr, apps[i]->mr == nullptr);
    EXPECT_NE(apps[i]->table1_key(), nullptr);
  }
  EXPECT_EQ(find_app("pvc"), apps[0]);
  EXPECT_EQ(find_app("geo"), apps[6]);
  EXPECT_EQ(find_app("nope"), nullptr);
}

TEST(EngineRegistryTest, EnginesAreRegisteredWithUniqueNames) {
  const auto& engines = all_engines();
  ASSERT_EQ(engines.size(), 8u);
  std::set<std::string> names;
  for (const Engine* e : engines) {
    EXPECT_TRUE(names.insert(e->name()).second) << e->name();
    EXPECT_NE(e->describe(), nullptr);
    // Every engine runs at least one kind of app.
    EXPECT_TRUE(e->caps().standalone || e->caps().mapreduce) << e->name();
    EXPECT_EQ(find_engine(e->name()), e);
  }
  for (const char* n : {"sepo-gpu", "sepo-mr", "cpu", "phoenix", "pinned",
                        "mapcg", "stadium", "paging-sim"})
    EXPECT_NE(find_engine(n), nullptr) << n;
  EXPECT_EQ(find_engine("gpu"), nullptr);  // alias, not a registry name
}

TEST(EngineRegistryTest, AliasResolutionFollowsAppKind) {
  const AppInfo& pvc = *find_app("pvc");
  const AppInfo& wc = *find_app("wc");
  EXPECT_STREQ(resolve_engine("gpu", pvc)->name(), "sepo-gpu");
  EXPECT_STREQ(resolve_engine("gpu", wc)->name(), "sepo-mr");
  EXPECT_STREQ(resolve_engine("mr", pvc)->name(), "sepo-mr");
  EXPECT_STREQ(resolve_engine("stadium", pvc)->name(), "stadium");
  EXPECT_EQ(resolve_engine("nope", pvc), nullptr);
}

TEST(EngineRegistryTest, BaselineEngineMatchesAppKind) {
  EXPECT_STREQ(baseline_engine(*find_app("dna"))->name(), "cpu");
  EXPECT_STREQ(baseline_engine(*find_app("geo"))->name(), "phoenix");
}

TEST(EngineRegistryTest, SupportMatrixCoversEveryApp) {
  for (const AppInfo* app : all_apps()) {
    int supporting = 0;
    for (const Engine* e : all_engines())
      if (e->supports(*app)) ++supporting;
    // At minimum: the SEPO engine, the reference baseline, and one
    // alternative design per app.
    EXPECT_GE(supporting, 3) << app->key;
    EXPECT_TRUE(resolve_engine("gpu", *app)->supports(*app)) << app->key;
    EXPECT_TRUE(baseline_engine(*app)->supports(*app)) << app->key;
  }
  // stadium runs every standalone app; paging-sim only the count-combining
  // shape it can replay faithfully.
  EXPECT_TRUE(find_engine("stadium")->supports(*find_app("ii")));
  EXPECT_FALSE(find_engine("stadium")->supports(*find_app("wc")));
  EXPECT_TRUE(find_engine("paging-sim")->supports(*find_app("pvc")));
  EXPECT_FALSE(find_engine("paging-sim")->supports(*find_app("dna")));
  EXPECT_FALSE(find_engine("paging-sim")->supports(*find_app("ii")));
}

// The registry's correctness oracle: for each app, every supporting engine
// run on the same tiny input must agree on the order-independent digest —
// including the stadium baseline, whose host-side merge reconstructs the
// combining/grouping semantics its design lacks.
TEST(EngineCrossValidationTest, AllSupportingEnginesAgreeOnDigests) {
  for (const AppInfo* app : all_apps()) {
    const std::string input = app->generate(96u << 10, /*seed=*/7);
    std::map<std::string, RunResult> results;
    for (const Engine* e : all_engines())
      if (e->supports(*app)) results.emplace(e->name(), e->run(*app, input, {}));
    ASSERT_GE(results.size(), 3u) << app->key;
    const RunResult& ref = results.at(baseline_engine(*app)->name());
    ASSERT_FALSE(ref.error) << app->key;
    EXPECT_GT(ref.keys, 0u) << app->key;
    for (const auto& [name, r] : results) {
      ASSERT_FALSE(r.error) << app->key << "/" << name << ": "
                            << r.error.message;
      EXPECT_EQ(r.checksum, ref.checksum) << app->key << "/" << name;
    }
  }
}

// ISSUE 9 capacity sweep: the SEPO contract under memory pressure is
// "postpone or decline, never answer wrong". With device memory at 0.5x,
// 1x, and 4x the input footprint, every engine must either match the
// baseline digest exactly or report a *typed* RunError — no raw exception
// may escape Engine::run (this regressed before the run paths caught
// DeviceOutOfMemory and driver stalls).
TEST(EngineCrossValidationTest, CapacitySweepAgreesOrDeclinesTyped) {
  constexpr std::size_t kInputBytes = 48u << 10;
  for (const AppInfo* app : all_apps()) {
    const std::string input = app->generate(kInputBytes, /*seed=*/21);
    const Engine* base = baseline_engine(*app);
    const RunResult ref = base->run(*app, input, {});
    ASSERT_FALSE(ref.error) << app->key;
    for (const double frac : {0.5, 1.0, 4.0}) {
      EngineConfig cfg;
      // Small bucket array so the static carve-out leaves the heap as the
      // contended resource; 64 KiB cushion covers the statics themselves.
      cfg.gpu.num_buckets = 1u << 10;
      cfg.gpu.device_bytes =
          (64u << 10) +
          static_cast<std::size_t>(frac * static_cast<double>(kInputBytes));
      for (const Engine* e : all_engines()) {
        if (e == base || !e->supports(*app)) continue;
        RunResult r;
        ASSERT_NO_THROW(r = e->run(*app, input, cfg))
            << app->key << "/" << e->name() << " frac=" << frac;
        if (r.error) {
          EXPECT_NE(r.error.kind, RunError::Kind::kNone)
              << app->key << "/" << e->name();
          EXPECT_STRNE(r.error.kind_name(), "none")
              << app->key << "/" << e->name();
          continue;  // a typed decline of service is a legal answer
        }
        EXPECT_EQ(r.checksum, ref.checksum)
            << app->key << "/" << e->name() << " frac=" << frac;
        EXPECT_EQ(r.keys, ref.keys)
            << app->key << "/" << e->name() << " frac=" << frac;
      }
    }
  }
}

}  // namespace
}  // namespace sepo::apps
