// Unit tests for the baseline implementations: CPU hash table, pinned-memory
// hash table, and the demand-paging simulator.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>

#include "baselines/cpu_hash_table.hpp"
#include "baselines/paging_sim.hpp"
#include "baselines/pinned_hash_table.hpp"
#include "common/random.hpp"
#include "test_util.hpp"

namespace sepo::baselines {
namespace {

using test::Rig;
using test::as_u64;

// ---- CpuHashTable ----

TEST(CpuHashTableTest, CombiningSumsValues) {
  gpusim::RunStats stats;
  CpuHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  cfg.num_buckets = 256;
  CpuHashTable t(stats, cfg);
  t.insert_u64(0, "a", 1);
  t.insert_u64(0, "a", 2);
  t.insert_u64(1, "b", 5);
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(as_u64(*t.lookup("a")), 3u);
  EXPECT_EQ(as_u64(*t.lookup("b")), 5u);
  EXPECT_FALSE(t.lookup("c").has_value());
}

TEST(CpuHashTableTest, BasicKeepsDuplicates) {
  gpusim::RunStats stats;
  CpuHashTableConfig cfg;
  cfg.org = core::Organization::kBasic;
  CpuHashTable t(stats, cfg);
  t.insert_u64(0, "dup", 1);
  t.insert_u64(0, "dup", 2);
  EXPECT_EQ(t.lookup_all("dup").size(), 2u);
  EXPECT_EQ(t.entry_count(), 2u);
}

TEST(CpuHashTableTest, MultiValuedGroups) {
  gpusim::RunStats stats;
  CpuHashTableConfig cfg;
  cfg.org = core::Organization::kMultiValued;
  CpuHashTable t(stats, cfg);
  auto ins = [&](std::string_view k, std::string_view v) {
    t.insert(0, k, std::as_bytes(std::span{v.data(), v.size()}));
  };
  ins("k", "v1");
  ins("k", "v2");
  ins("j", "v3");
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.value_count(), 3u);
  EXPECT_EQ(t.lookup_group("k")->size(), 2u);
}

TEST(CpuHashTableTest, ParallelInsertsMatchSerialReference) {
  Rig rig(1u << 16, /*workers=*/4);
  CpuHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  CpuHashTable t(rig.stats, cfg);
  constexpr int kN = 50000, kKeys = 500;
  rig.pool.run_parties(4, [&](std::size_t party) {
    for (int i = static_cast<int>(party); i < kN; i += 4)
      t.insert_u64(static_cast<std::uint32_t>(party),
                   "k" + std::to_string(i % kKeys), 1);
  });
  EXPECT_EQ(t.entry_count(), static_cast<std::size_t>(kKeys));
  std::uint64_t total = 0;
  t.for_each([&](std::string_view, std::span<const std::byte> v) {
    total += as_u64(v);
  });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN));
}

TEST(CpuHashTableTest, TracksAllocationFootprint) {
  gpusim::RunStats stats;
  CpuHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  CpuHashTable t(stats, cfg);
  EXPECT_EQ(t.allocated_bytes(), 0u);
  t.insert_u64(0, "key", 1);
  EXPECT_GT(t.allocated_bytes(), 0u);
  const std::size_t once = t.allocated_bytes();
  t.insert_u64(0, "key", 1);  // combine: no new allocation
  EXPECT_EQ(t.allocated_bytes(), once);
}

TEST(CpuHashTableTest, BucketLoadSeesHotKey) {
  gpusim::RunStats stats;
  CpuHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  CpuHashTable t(stats, cfg);
  for (int i = 0; i < 100; ++i) t.insert_u64(0, "hot", 1);
  for (int i = 0; i < 50; ++i) t.insert_u64(0, "k" + std::to_string(i), 1);
  const auto load = t.bucket_load();
  EXPECT_EQ(load.total_accesses, 150u);
  EXPECT_GE(load.max_bucket_accesses, 100u);
}

// ---- PinnedHashTable ----

TEST(PinnedHashTableTest, CombiningCorrectAndRemoteMetered) {
  Rig rig(1u << 20);
  PinnedHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  cfg.num_buckets = 256;
  PinnedHashTable t(rig.ctx, cfg);
  for (int i = 0; i < 100; ++i)
    t.insert_u64("key-" + std::to_string(i % 10), 1);
  EXPECT_EQ(t.entry_count(), 10u);
  EXPECT_EQ(as_u64(*t.lookup("key-3")), 10u);
  const auto p = rig.dev.bus().snapshot();
  EXPECT_GE(p.remote_txns, 100u);  // every insert crossed the bus
  EXPECT_GT(p.remote_bytes, 0u);
  EXPECT_EQ(p.h2d_bytes, 0u);  // no bulk transfers in this design
}

TEST(PinnedHashTableTest, MultiValuedGroupsSurvive) {
  Rig rig(1u << 20);
  PinnedHashTableConfig cfg;
  cfg.org = core::Organization::kMultiValued;
  PinnedHashTable t(rig.ctx, cfg);
  auto ins = [&](std::string_view k, std::string_view v) {
    t.insert(k, std::as_bytes(std::span{v.data(), v.size()}));
  };
  ins("url", "a");
  ins("url", "b");
  EXPECT_EQ(t.lookup_group("url")->size(), 2u);
  std::size_t groups = 0;
  t.for_each_group([&](std::string_view,
                       const std::vector<std::span<const std::byte>>&) {
    ++groups;
  });
  EXPECT_EQ(groups, 1u);
}

TEST(PinnedHashTableTest, ProbesCostRemoteTransactions) {
  Rig rig(1u << 20);
  PinnedHashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  cfg.num_buckets = 1;  // force one long chain
  PinnedHashTable t(rig.ctx, cfg);
  for (int i = 0; i < 20; ++i) t.insert_u64("k" + std::to_string(i), 1);
  const auto before = rig.dev.bus().snapshot().remote_txns;
  t.insert_u64("k19", 1);  // probes the chain remotely
  const auto after = rig.dev.bus().snapshot().remote_txns;
  EXPECT_GT(after, before);
}

// ---- paging simulator ----

TEST(PagingSimTest, NoReplacementsWhenEverythingFits) {
  const std::uint64_t trace[] = {0, 4096, 8192, 0, 4096, 8192};
  const auto r = simulate_lru(trace, 4096, 1u << 20);
  EXPECT_EQ(r.replacements, 0u);
  EXPECT_EQ(r.bytes_transferred, 0u);
  EXPECT_EQ(r.pages_touched, 3u);
  EXPECT_EQ(r.accesses, 6u);
}

TEST(PagingSimTest, LruEvictsLeastRecentlyUsed) {
  // Cache of 2 pages; touch A,B then A again, then C (evicts B), then B.
  const std::uint64_t A = 0, B = 4096, C = 8192;
  const std::uint64_t trace[] = {A, B, A, C, B};
  const auto r = simulate_lru(trace, 4096, 2 * 4096);
  // C misses at capacity (1 replacement: evicts B), B misses (evicts A).
  EXPECT_EQ(r.replacements, 2u);
  EXPECT_EQ(r.bytes_transferred, 2u * 4096u);
}

TEST(PagingSimTest, ColdFillsAreFree) {
  // The paper counts replacements only ("all pages are initially GPU
  // resident"): first touches below capacity are not charged.
  const std::uint64_t trace[] = {0, 4096, 8192, 12288};
  const auto r = simulate_lru(trace, 4096, 4 * 4096);
  EXPECT_EQ(r.replacements, 0u);
}

TEST(PagingSimTest, SmallerMemoryNeverReducesTransfers) {
  Rng rng(5);
  std::vector<std::uint64_t> trace;
  for (int i = 0; i < 20000; ++i) trace.push_back(rng.below(1u << 20));
  std::uint64_t prev = 0;
  for (const std::uint64_t mem :
       {1u << 20, 1u << 19, 1u << 18, 1u << 17, 1u << 16}) {
    const auto r = simulate_lru(trace, 4096, mem);
    EXPECT_GE(r.bytes_transferred, prev) << "memory " << mem;
    prev = r.bytes_transferred;
  }
}

TEST(PagingSimTest, LargerPagesTransferMoreBytesUnderRandomAccess) {
  Rng rng(6);
  std::vector<std::uint64_t> trace;
  for (int i = 0; i < 20000; ++i) trace.push_back(rng.below(1u << 22));
  const auto small = simulate_lru(trace, 4096, 1u << 20);
  const auto big = simulate_lru(trace, 64u << 10, 1u << 20);
  EXPECT_GT(big.bytes_transferred, small.bytes_transferred);
}

TEST(TracedTableTest, CountsLikeAReferenceMap) {
  TracedCombiningTable t(1u << 8);
  std::unordered_map<std::string, int> ref;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "url-" + std::to_string(rng.below(300));
    t.insert_count(key);
    ref[key]++;
  }
  EXPECT_EQ(t.entry_count(), ref.size());
  EXPECT_GT(t.table_bytes(), (1u << 8) * 16u);  // bucket region + entries
  // Trace: every insert touches the bucket head at least.
  EXPECT_GE(t.trace().size(), 5000u);
}

}  // namespace
}  // namespace sepo::baselines
