// Tests for the SEPO model helpers (§III-A profitability condition) and the
// multi-valued resident-key machinery, including the livelock valve
// regression (DESIGN.md "resident-key cap").
#include <gtest/gtest.h>

#include <sstream>

#include "core/sepo.hpp"
#include "core/sepo_driver.hpp"
#include "common/random.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;

TEST(SepoConditionTest, PostponingProfitableWhenServiceGetsMuchCheaper) {
  // Figure 1: paying pre-computation twice + postponement bookkeeping is
  // worth it when the postponed service is far cheaper.
  SepoCosts c;
  c.pre_computation = 1;
  c.postpone = 0.1;
  c.postponed_service = 1;
  c.inefficient_service = 10;
  c.post_computation = 1;
  EXPECT_TRUE(postponement_profitable(c));
}

TEST(SepoConditionTest, NotProfitableWhenServiceCostsAreClose) {
  SepoCosts c;
  c.pre_computation = 1;
  c.postpone = 0.1;
  c.postponed_service = 9;
  c.inefficient_service = 10;
  c.post_computation = 1;
  EXPECT_FALSE(postponement_profitable(c));
}

TEST(SepoConditionTest, BreakEvenBoundary) {
  // with_sepo = 2*pre + postpone + postponed + post
  // without    = pre + inefficient + post
  // equal when inefficient = pre + postpone + postponed.
  SepoCosts c;
  c.pre_computation = 2;
  c.postpone = 0.5;
  c.postponed_service = 3;
  c.post_computation = 1;
  c.inefficient_service = c.pre_computation + c.postpone + c.postponed_service;
  EXPECT_FALSE(postponement_profitable(c));  // strict inequality required
  c.inefficient_service += 0.001;
  EXPECT_TRUE(postponement_profitable(c));
}

// ---- multi-valued livelock valve (regression) ----

// Many bucket groups + tiny pool: without the resident-key cap, pending key
// pages eventually own every page and value allocation livelocks (the
// scenario discovered during bring-up; see DESIGN.md).
TEST(MultiValuedValveTest, ConvergesDespiteKeyPagePressure) {
  Rig rig(192u << 10);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 256;
  pcfg.max_chunk_bytes = 8u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);

  HashTableConfig cfg;
  cfg.org = Organization::kMultiValued;
  cfg.num_buckets = 1u << 10;
  cfg.buckets_per_group = 16;  // 64 groups x 2 classes >> pool pages
  cfg.page_size = 2u << 10;
  SepoHashTable ht(rig.ctx, cfg);

  Rng rng(99);
  std::ostringstream os;
  for (int i = 0; i < 9000; ++i)
    os << "P" << rng.below(700) << " C" << i << '\n';
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      ht, pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        const auto sp = body.find(' ');
        return ht.insert(body.substr(0, sp),
                         std::as_bytes(std::span{body.data() + sp + 1,
                                                 body.size() - sp - 1}));
      });
  EXPECT_TRUE(progress.all_done());
  EXPECT_LT(res.iterations, 100u);
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.value_count(), 9000u);
  // Duplicate key entries from valve-forced flushes are merged on read.
  std::size_t groups = 0;
  t.for_each_group([&](std::string_view,
                       const std::vector<std::span<const std::byte>>&) {
    ++groups;
  });
  EXPECT_EQ(groups, 700u);
}

TEST(MultiValuedValveTest, CapZeroFlushesEveryIteration) {
  // max_resident_key_frac = 0 disables key-page retention entirely; the
  // table still converges via duplicate-entry merging.
  Rig rig(256u << 10);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 256;
  pcfg.max_chunk_bytes = 8u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);

  HashTableConfig cfg;
  cfg.org = Organization::kMultiValued;
  cfg.num_buckets = 1u << 10;
  cfg.buckets_per_group = 256;
  cfg.page_size = 2u << 10;
  cfg.max_resident_key_frac = 0.0;
  SepoHashTable ht(rig.ctx, cfg);

  std::ostringstream os;
  for (int i = 0; i < 6000; ++i) os << "K" << (i % 200) << " V" << i << '\n';
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t, std::string_view body) {
                     const auto sp = body.find(' ');
                     return ht.insert(
                         body.substr(0, sp),
                         std::as_bytes(std::span{body.data() + sp + 1,
                                                 body.size() - sp - 1}));
                   });
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.value_count(), 6000u);
  std::size_t groups = 0;
  t.for_each_group([&](std::string_view,
                       const std::vector<std::span<const std::byte>>&) {
    ++groups;
  });
  EXPECT_EQ(groups, 200u);
}

// ---- host-table canonicalization ----

TEST(HostTableCanonTest, MergedDuplicatesAreCounted) {
  // Combining with a heap so small that multi-emission postponement creates
  // duplicate key entries; canonicalization must fold them.
  Rig rig(256u << 10);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 64;
  pcfg.max_chunk_bytes = 8u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);

  HashTableConfig cfg;
  cfg.num_buckets = 1u << 8;
  cfg.buckets_per_group = 64;
  cfg.page_size = 2u << 10;
  cfg.combiner = combine_sum_u64;
  SepoHashTable ht(rig.ctx, cfg);

  // Records emit 8 pairs each over a small key universe.
  std::ostringstream os;
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    for (int w = 0; w < 8; ++w) os << "w" << rng.below(2500) << ' ';
    os << '\n';
  }
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size(), /*multi_emit=*/true);
  SepoDriver driver;
  std::uint64_t emitted = 0;
  (void)driver.run(
      ht, pipe, input, idx, progress,
      [&](std::size_t rec, std::string_view body) {
        std::uint32_t idx_e = 0;
        const std::uint32_t resume = progress.resume_point(rec);
        std::size_t start = 0;
        while (start < body.size()) {
          std::size_t end = body.find(' ', start);
          if (end == std::string_view::npos) end = body.size();
          if (end > start) {
            if (idx_e >= resume) {
              if (ht.insert_u64(body.substr(start, end - start), 1) ==
                  Status::kPostpone)
                return Status::kPostpone;
              progress.advance(rec, idx_e);
              ++emitted;
            }
            ++idx_e;
          }
          start = end + 1;
        }
        return Status::kSuccess;
      });
  const HostTable t = ht.finalize();
  // Total count equals total emissions even with duplicates merged.
  std::uint64_t total = 0;
  t.for_each([&](std::string_view, std::span<const std::byte> v) {
    total += test::as_u64(v);
  });
  EXPECT_EQ(total, 3000u * 8u);
  EXPECT_EQ(total, emitted);
}

}  // namespace
}  // namespace sepo::core
