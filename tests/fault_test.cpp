// Fault injection (gpusim/fault.hpp): determinism of the seeded injector,
// pricing of retries on the execution timeline, the zero-rate == no-injector
// guarantee, and end-to-end degradation — SEPO stays exactly correct under
// transient transfer faults and memory pressure (more iterations, never
// wrong answers), while baselines without a postponement story surface a
// typed RunError.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/standalone_app.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"
#include "obs/journal.hpp"
#include "test_util.hpp"

namespace sepo::gpusim {
namespace {

using test::Rig;

// ---- injector unit tests ----

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.h2d_rate = 0.3;
  cfg.remote_rate = 0.1;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.draw_h2d(), b.draw_h2d()) << i;
    EXPECT_EQ(a.draw_remote_failures(100), b.draw_remote_failures(100)) << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultConfig cfg;
  cfg.h2d_rate = 0.5;
  cfg.seed = 1;
  FaultInjector a(cfg);
  cfg.seed = 2;
  FaultInjector b(cfg);
  int differing = 0;
  for (int i = 0; i < 200; ++i)
    if (a.draw_h2d() != b.draw_h2d()) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ZeroRatesDrawNothing) {
  FaultConfig cfg;  // all rates zero
  EXPECT_FALSE(cfg.enabled());
  FaultInjector f(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(f.draw_h2d());
    EXPECT_FALSE(f.draw_d2h());
    EXPECT_FALSE(f.draw_kernel_abort());
    EXPECT_EQ(f.draw_remote_failures(1000), 0u);
  }
  bool new_spike = true;
  EXPECT_EQ(f.pressure_target(64, new_spike), 0u);
  EXPECT_FALSE(new_spike);
}

// A rate-zero class must not consume from the random stream: enabling h2d
// faults may not perturb the d2h schedule, so the h2d draw sequence is the
// same whether or not other classes are configured.
TEST(FaultInjectorTest, ZeroRateClassesDoNotPerturbOthers) {
  FaultConfig only_h2d;
  only_h2d.seed = 99;
  only_h2d.h2d_rate = 0.4;
  FaultConfig both = only_h2d;
  both.d2h_rate = 0.0;  // explicit: still zero
  FaultInjector a(only_h2d), b(both);
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(b.draw_d2h());  // consumes nothing
    EXPECT_EQ(a.draw_h2d(), b.draw_h2d()) << i;
  }
}

TEST(FaultInjectorTest, BackoffIsBoundedExponential) {
  FaultConfig cfg;
  cfg.backoff_base_s = 1e-6;
  cfg.backoff_cap_s = 1e-5;
  FaultInjector f(cfg);
  EXPECT_DOUBLE_EQ(f.backoff_s(1), 1e-6);
  EXPECT_DOUBLE_EQ(f.backoff_s(2), 2e-6);
  EXPECT_DOUBLE_EQ(f.backoff_s(3), 4e-6);
  EXPECT_DOUBLE_EQ(f.backoff_s(4), 8e-6);
  EXPECT_DOUBLE_EQ(f.backoff_s(5), 1e-5);   // capped
  EXPECT_DOUBLE_EQ(f.backoff_s(50), 1e-5);  // stays capped, no overflow
}

TEST(FaultInjectorTest, PressureSpikeHoldsForConfiguredIterations) {
  FaultConfig cfg;
  cfg.pressure_rate = 1.0;  // spike begins immediately
  cfg.pressure_frac = 0.5;
  cfg.pressure_hold_iterations = 2;
  FaultInjector f(cfg);
  bool new_spike = false;
  // Iteration 1: spike begins, seizing half of 64 pages.
  EXPECT_EQ(f.pressure_target(64, new_spike), 32u);
  EXPECT_TRUE(new_spike);
  // Iteration 2: still holding (no new spike).
  EXPECT_EQ(f.pressure_target(64, new_spike), 32u);
  EXPECT_FALSE(new_spike);
  // Iteration 3: the hold expires and the pages are released for one
  // iteration before a fresh spike can be drawn.
  EXPECT_EQ(f.pressure_target(64, new_spike), 0u);
  EXPECT_FALSE(new_spike);
  // Iteration 4: with rate 1.0 a fresh spike begins.
  EXPECT_EQ(f.pressure_target(64, new_spike), 32u);
  EXPECT_TRUE(new_spike);
}

TEST(FaultInjectorTest, RemoteFailuresClampToTransactionCount) {
  FaultConfig cfg;
  cfg.remote_rate = 1.0;
  FaultInjector f(cfg);
  EXPECT_EQ(f.draw_remote_failures(10), 10u);
  EXPECT_EQ(f.draw_remote_failures(0), 0u);
}

// ---- flag parsing ----

TEST(ApplyFaultFlagTest, ParsesKnownFlags) {
  FaultConfig cfg;
  EXPECT_TRUE(apply_fault_flag(cfg, "--fault-seed", "77"));
  EXPECT_TRUE(apply_fault_flag(cfg, "--fault-h2d-rate", "0.25"));
  EXPECT_TRUE(apply_fault_flag(cfg, "--fault-pressure", "0.5"));
  EXPECT_TRUE(apply_fault_flag(cfg, "--fault-max-retries", "3"));
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_DOUBLE_EQ(cfg.h2d_rate, 0.25);
  EXPECT_DOUBLE_EQ(cfg.pressure_rate, 0.5);
  EXPECT_EQ(cfg.max_retries, 3u);
  EXPECT_TRUE(cfg.enabled());
}

TEST(ApplyFaultFlagTest, RejectsGarbageAndOutOfRange) {
  FaultConfig cfg;
  EXPECT_THROW((void)apply_fault_flag(cfg, "--fault-h2d-rate", "abc"),
               std::invalid_argument);
  EXPECT_THROW((void)apply_fault_flag(cfg, "--fault-h2d-rate", "1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)apply_fault_flag(cfg, "--fault-seed", ""),
               std::invalid_argument);
  EXPECT_FALSE(apply_fault_flag(cfg, "--not-a-fault-flag", "1"));
  EXPECT_FALSE(cfg.enabled());  // nothing was applied
}

// ---- execution-path pricing ----

// A transient h2d fault must be *priced*: the failed attempt occupies the
// h2d engine at full transfer cost, the backoff span follows it, and both
// the per-engine FaultSummary and the RunStats counters record it.
TEST(FaultExecTest, TransferRetriesArePricedOnTheEngine) {
  Rig plain(1u << 20), faulty(1u << 20);
  const DevPtr p1 = plain.dev.alloc_static(4096);
  const DevPtr p2 = faulty.dev.alloc_static(4096);
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.h2d_rate = 0.5;
  FaultInjector inj(cfg);
  faulty.ctx.set_faults(&inj);

  char buf[4096] = {1};
  std::uint64_t faults_seen = 0;
  for (int i = 0; i < 32; ++i) {
    (void)plain.ctx.stage_h2d(p1, buf, sizeof buf);
    (void)faulty.ctx.stage_h2d(p2, buf, sizeof buf);
  }
  const FaultSummary& fs = faulty.ctx.timeline().fault_summary();
  faults_seen = fs.engine[static_cast<int>(TimelineResource::kCopyH2d)].faults;
  ASSERT_GT(faults_seen, 0u) << "seed 5 at 50% must fault at least once";
  EXPECT_EQ(fs.total_faults(), faults_seen);
  EXPECT_GT(fs.total_backoff_s(), 0.0);
  EXPECT_EQ(faulty.stats.snapshot().faults_h2d, faults_seen);
  EXPECT_EQ(faulty.stats.snapshot().fault_retries, faults_seen);
  // Each failed attempt was re-metered on the bus at full cost...
  EXPECT_EQ(faulty.dev.bus().snapshot().h2d_txns, 32u + faults_seen);
  // ...so simulated time under faults strictly exceeds the clean run.
  EXPECT_GT(faulty.ctx.sim_elapsed(), plain.ctx.sim_elapsed());
  // The fault-free timeline recorded no fault state at all.
  EXPECT_EQ(plain.ctx.timeline().fault_summary().total_faults(), 0u);
}

TEST(FaultExecTest, RetryExhaustionThrowsFaultError) {
  Rig rig(1u << 20);
  const DevPtr p = rig.dev.alloc_static(256);
  FaultConfig cfg;
  cfg.h2d_rate = 1.0;  // every attempt fails
  cfg.max_retries = 3;
  FaultInjector inj(cfg);
  rig.ctx.set_faults(&inj);
  char buf[256] = {};
  EXPECT_THROW((void)rig.ctx.stage_h2d(p, buf, sizeof buf), FaultError);
  const FaultSummary& fs = rig.ctx.timeline().fault_summary();
  // max_retries priced faulted attempts; the exhausting draw throws before
  // scheduling another retry.
  EXPECT_EQ(fs.engine[static_cast<int>(TimelineResource::kCopyH2d)].faults,
            3u);
}

TEST(FaultExecTest, KernelAbortsArePricedAndRetried) {
  Rig rig(1u << 20);
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.kernel_abort_rate = 0.5;
  FaultInjector inj(cfg);
  rig.ctx.set_faults(&inj);
  std::uint64_t executed = 0;
  for (int i = 0; i < 24; ++i)
    (void)rig.ctx.launch(8, [&](std::size_t) { ++executed; });
  // Every launch eventually executed exactly once despite aborts.
  EXPECT_EQ(executed, 24u * 8u);
  const FaultSummary& fs = rig.ctx.timeline().fault_summary();
  const auto& compute = fs.engine[static_cast<int>(TimelineResource::kCompute)];
  ASSERT_GT(compute.faults, 0u);
  EXPECT_EQ(rig.stats.snapshot().kernel_aborts, compute.faults);
  // Aborted launches never touch the kernel counters.
  EXPECT_EQ(rig.stats.snapshot().kernel_launches, 24u);
}

// The load-bearing regression: an installed injector whose rates are all
// zero must be bit-identical to running with no injector at all — same
// simulated time, same counters, same timeline shape.
TEST(FaultExecTest, ZeroRateConfigBitIdenticalToNoInjector) {
  Rig without(1u << 20), with(1u << 20);
  FaultConfig cfg;  // all rates zero
  FaultInjector inj(cfg);
  with.ctx.set_faults(&inj);

  const DevPtr pa = without.dev.alloc_static(8192);
  const DevPtr pb = with.dev.alloc_static(8192);
  char buf[8192] = {3};
  for (Rig* r : {&without, &with}) {
    const DevPtr p = r == &without ? pa : pb;
    for (int i = 0; i < 8; ++i) {
      const Event staged = r->ctx.stage_h2d(p, buf, sizeof buf);
      (void)r->ctx.launch(64, [](std::size_t) {}, {}, staged);
      (void)r->ctx.flush_d2h(4096);
    }
  }
  EXPECT_EQ(without.ctx.sim_elapsed(), with.ctx.sim_elapsed());  // bit-exact
  EXPECT_EQ(without.stats.snapshot(), with.stats.snapshot());
  const TimelineSummary a = without.ctx.timeline().summary();
  const TimelineSummary b = with.ctx.timeline().summary();
  EXPECT_EQ(a.commands, b.commands);
  EXPECT_EQ(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.h2d_busy, b.h2d_busy);
  EXPECT_EQ(a.d2h_busy, b.d2h_busy);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(with.ctx.timeline().fault_summary().total_faults(), 0u);
}

// ---- end-to-end degradation ----

apps::RunResult run_pvc(const std::string& input, const FaultConfig& faults) {
  apps::PageViewCountApp app;
  apps::GpuConfig cfg;
  cfg.faults = faults;
  return app.run_gpu(input, cfg);
}

TEST(FaultAppTest, SepoExactlyCorrectUnderTransferFaults) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(1u << 20, 42);
  const apps::RunResult clean = run_pvc(input, {});
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.h2d_rate = 0.1;
  cfg.d2h_rate = 0.1;
  const apps::RunResult faulted = run_pvc(input, cfg);
  ASSERT_FALSE(faulted.error) << faulted.error.message;
  // Transient faults cost time, never correctness: identical table digest.
  EXPECT_EQ(faulted.checksum, clean.checksum);
  EXPECT_EQ(faulted.keys, clean.keys);
  EXPECT_GT(faulted.faults.total_faults(), 0u);
  EXPECT_GT(faulted.sim_seconds, clean.sim_seconds);
  EXPECT_EQ(clean.faults.total_faults(), 0u);
}

TEST(FaultAppTest, PressurePostponesButNeverCorrupts) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(1u << 20, 43);
  const apps::RunResult clean = run_pvc(input, {});
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.pressure_rate = 0.8;
  cfg.pressure_frac = 0.5;
  cfg.pressure_hold_iterations = 2;
  const apps::RunResult squeezed = run_pvc(input, cfg);
  ASSERT_FALSE(squeezed.error) << squeezed.error.message;
  // Persistent heap pressure turns into SEPO postponement: extra iterations
  // (paper §III graceful degradation), identical results.
  EXPECT_GE(squeezed.iterations, clean.iterations);
  EXPECT_GT(squeezed.stats.pressure_spikes, 0u);
  EXPECT_EQ(squeezed.checksum, clean.checksum);
  EXPECT_EQ(squeezed.keys, clean.keys);
}

TEST(FaultAppTest, IdenticalSeedAndConfigIsDeterministic) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(512u << 10, 44);
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.h2d_rate = 0.15;
  cfg.d2h_rate = 0.05;
  cfg.pressure_rate = 0.5;
  const apps::RunResult a = run_pvc(input, cfg);
  const apps::RunResult b = run_pvc(input, cfg);
  // Bit-identical, not approximately equal: the fault schedule is part of
  // the deterministic simulation (wall_seconds is host time and excluded).
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.faults.total_faults(), b.faults.total_faults());
  EXPECT_EQ(a.faults.total_backoff_s(), b.faults.total_backoff_s());
}

TEST(FaultAppTest, PinnedBaselineSurfacesTypedErrorOnRemoteExhaustion) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(256u << 10, 45);
  apps::GpuConfig cfg;
  cfg.faults.seed = 3;
  cfg.faults.remote_rate = 0.9;  // remote txns keep failing past the budget
  cfg.faults.max_retries = 2;
  const apps::RunResult r = app.run_pinned(input, cfg);
  ASSERT_TRUE(r.error);
  EXPECT_EQ(r.error.kind, apps::RunError::Kind::kFaultRetriesExhausted);
  EXPECT_FALSE(r.error.message.empty());
  EXPECT_STREQ(r.error.kind_name(), "fault_retries_exhausted");
  // The failure is visible in the fault telemetry, not silently swallowed.
  EXPECT_GT(r.faults.engine[static_cast<int>(TimelineResource::kRemote)]
                .retries,
            0u);
}

// Chaos post-mortem: a run killed by retry exhaustion must leave a usable
// black box behind — the journal dump exists, every line is valid JSONL,
// events are in simulated-time order, and the tail carries the exhausting
// retry chain that explains the death.
TEST(FaultAppTest, PostMortemJournalSurvivesRetryExhaustion) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(256u << 10, 46);
  EventJournal journal;
  apps::GpuConfig cfg;
  cfg.faults.h2d_rate = 1.0;  // the very first staging copy exhausts
  cfg.faults.max_retries = 2;
  cfg.journal = &journal;
  const apps::RunResult r = app.run_gpu(input, cfg);
  ASSERT_TRUE(r.error);
  EXPECT_EQ(r.error.kind, apps::RunError::Kind::kFaultRetriesExhausted);

  const std::string path = testing::TempDir() + "postmortem.jsonl";
  std::string err;
  ASSERT_TRUE(obs::write_journal_jsonl(journal, path, 4096, &err)) << err;
  // read_journal_jsonl fails on any malformed line, so a successful read is
  // the valid-JSONL check.
  const auto events = obs::read_journal_jsonl(path, &err);
  ASSERT_TRUE(events.has_value()) << err;
  ASSERT_FALSE(events->empty());

  std::uint64_t retries = 0, exhausted = 0;
  double prev_ts = 0;
  for (const JournalEvent& e : *events) {
    EXPECT_GE(e.sim_ts, prev_ts);
    prev_ts = e.sim_ts;
    const auto h2d = static_cast<std::uint64_t>(TimelineResource::kCopyH2d);
    if (e.kind == JournalEventKind::kFaultRetry && e.arg0 == h2d) ++retries;
    if (e.kind == JournalEventKind::kFaultExhausted) {
      ++exhausted;
      EXPECT_EQ(e.arg0, h2d);
      EXPECT_EQ(e.arg1, cfg.faults.max_retries);
    }
  }
  EXPECT_GE(retries, cfg.faults.max_retries);
  EXPECT_EQ(exhausted, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sepo::gpusim
