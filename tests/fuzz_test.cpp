// Tests for the differential fuzz harness (apps/fuzz.hpp) and its repro
// artifact serialization (obs/fuzz_repro.hpp): plan-generation determinism,
// differential execution verdicts, forced-corruption shrinking, and the
// JSON round-trip that `sepo_cli fuzz --repro` depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "apps/fuzz.hpp"
#include "obs/fuzz_repro.hpp"

namespace sepo::apps {
namespace {

FuzzOptions small_options() {
  FuzzOptions o;
  o.seed = 1234;
  o.runs = 4;
  o.max_input_bytes = 32u << 10;  // keep unit-test plans small
  return o;
}

bool plans_equal(const FuzzPlan& a, const FuzzPlan& b) {
  return a.id == b.id && a.master_seed == b.master_seed && a.app == b.app &&
         a.engine == b.engine && a.input_bytes == b.input_bytes &&
         a.data_seed == b.data_seed && a.zipf_s == b.zipf_s &&
         a.distinct_keys == b.distinct_keys &&
         a.device_bytes == b.device_bytes && a.num_buckets == b.num_buckets &&
         a.workers == b.workers && a.basic_halt_frac == b.basic_halt_frac &&
         a.faults.seed == b.faults.seed &&
         a.faults.h2d_rate == b.faults.h2d_rate &&
         a.faults.d2h_rate == b.faults.d2h_rate &&
         a.faults.remote_rate == b.faults.remote_rate &&
         a.faults.kernel_abort_rate == b.faults.kernel_abort_rate &&
         a.faults.pressure_rate == b.faults.pressure_rate &&
         a.faults.pressure_frac == b.faults.pressure_frac &&
         a.faults.pressure_hold_iterations == b.faults.pressure_hold_iterations &&
         a.faults.max_retries == b.faults.max_retries &&
         a.faults.backoff_base_s == b.faults.backoff_base_s &&
         a.faults.backoff_cap_s == b.faults.backoff_cap_s &&
         a.corrupt_digest_xor == b.corrupt_digest_xor;
}

TEST(FuzzPlanTest, SameSeedSameIndexYieldsIdenticalPlans) {
  const FuzzRunner r1(small_options());
  const FuzzRunner r2(small_options());
  for (std::uint64_t i = 0; i < 16; ++i) {
    const FuzzPlan a = r1.plan_for(i);
    const FuzzPlan b = r2.plan_for(i);
    EXPECT_TRUE(plans_equal(a, b)) << "plan " << i << " diverged";
    EXPECT_EQ(a.id, i);
    EXPECT_EQ(a.master_seed, 1234u);
    // Sanity on the sampled ranges the generator promises.
    EXPECT_NE(find_app(a.app), nullptr) << a.app;
    EXPECT_NE(find_engine(a.engine), nullptr) << a.engine;
    EXPECT_GT(a.input_bytes, 0u);
    EXPECT_LE(a.input_bytes, r1.options().max_input_bytes);
    EXPECT_GE(a.workers, 1u);
  }
}

TEST(FuzzPlanTest, DifferentSeedsYieldDifferentPlanStreams) {
  FuzzOptions alt = small_options();
  alt.seed = 99;
  const FuzzRunner r1(small_options());
  const FuzzRunner r2(alt);
  int diverged = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    if (!plans_equal(r1.plan_for(i), r2.plan_for(i))) ++diverged;
  EXPECT_GT(diverged, 8);  // streams are (overwhelmingly) independent
}

TEST(FuzzPlanTest, SeedZeroIsAValidDistinctSeed) {
  FuzzOptions zero = small_options();
  zero.seed = 0;
  const FuzzRunner r0(zero);
  const FuzzRunner r1(small_options());
  EXPECT_EQ(r0.plan_for(0).master_seed, 0u);
  int diverged = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    if (!plans_equal(r0.plan_for(i), r1.plan_for(i))) ++diverged;
  EXPECT_GT(diverged, 8);
}

FuzzPlan simple_plan() {
  FuzzPlan p;
  p.id = 0;
  p.master_seed = 7;
  p.app = "pvc";
  p.engine = "sepo-gpu";
  p.input_bytes = 16u << 10;
  p.data_seed = 3;
  p.device_bytes = 4u << 20;  // roomy: no capacity pressure
  p.num_buckets = 1u << 10;
  return p;
}

TEST(FuzzExecuteTest, HealthyPlanAgreesWithBaseline) {
  const FuzzRunner runner(small_options());
  const FuzzResult r = runner.execute(simple_plan());
  EXPECT_EQ(r.verdict, FuzzVerdict::kAgree) << to_string(r.verdict);
  EXPECT_EQ(r.engine.status, FuzzStatus::kOk);
  EXPECT_EQ(r.baseline.status, FuzzStatus::kOk);
  EXPECT_EQ(r.engine.digest, r.baseline.digest);
  EXPECT_EQ(r.engine.keys, r.baseline.keys);
  EXPECT_FALSE(r.failed());
}

TEST(FuzzExecuteTest, ExecutionIsDeterministicInThePlan) {
  const FuzzRunner runner(small_options());
  const FuzzPlan p = simple_plan();
  const FuzzResult a = runner.execute(p);
  const FuzzResult b = runner.execute(p);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.engine.digest, b.engine.digest);
  EXPECT_EQ(a.engine.keys, b.engine.keys);
  EXPECT_EQ(a.engine.iterations, b.engine.iterations);
}

TEST(FuzzExecuteTest, TinyDeviceYieldsTypedDeclineNotWrongAnswer) {
  const FuzzRunner runner(small_options());
  FuzzPlan p = simple_plan();
  p.device_bytes = 16u << 10;  // far below statics + one page
  const FuzzResult r = runner.execute(p);
  // Either the engine squeezed through (agree) or it declined with a typed
  // error; a mismatch or raw exception would be a bug.
  ASSERT_TRUE(r.verdict == FuzzVerdict::kAgree ||
              r.verdict == FuzzVerdict::kEngineDeclined)
      << to_string(r.verdict);
  if (r.verdict == FuzzVerdict::kEngineDeclined) {
    EXPECT_EQ(r.engine.status, FuzzStatus::kTypedError)
        << r.engine.error_kind << ": " << r.engine.message;
    EXPECT_FALSE(r.engine.error_kind.empty());
  }
  EXPECT_FALSE(r.failed());  // declines are not failures
}

TEST(FuzzShrinkTest, ForcedCorruptionShrinksToMinimalFailingPlan) {
  const FuzzRunner runner(small_options());
  FuzzPlan p = simple_plan();
  p.input_bytes = 128u << 10;
  p.workers = 4;
  p.zipf_s = 1.1;
  p.distinct_keys = 500;
  p.faults.h2d_rate = 0.01;
  p.faults.max_retries = 8;
  p.corrupt_digest_xor = 0xdeadbeef;  // deterministic forced mismatch
  const FuzzResult failing = runner.execute(p);
  ASSERT_EQ(failing.verdict, FuzzVerdict::kDigestMismatch);

  const FuzzResult shrunk = runner.shrink(failing);
  // Shrinking must preserve the verdict...
  EXPECT_EQ(shrunk.verdict, FuzzVerdict::kDigestMismatch);
  // ...while reducing every dimension the failure doesn't depend on.
  EXPECT_LE(shrunk.plan.input_bytes, 8u << 10);
  EXPECT_EQ(shrunk.plan.workers, 1u);
  EXPECT_EQ(shrunk.plan.zipf_s, 0.0);
  EXPECT_EQ(shrunk.plan.faults.h2d_rate, 0.0);
  // The corruption hook itself is what the failure depends on, so it stays.
  EXPECT_EQ(shrunk.plan.corrupt_digest_xor, 0xdeadbeefu);
  // And the shrunk plan must still replay to the same failure.
  const FuzzResult replay = runner.execute(shrunk.plan);
  EXPECT_EQ(replay.verdict, FuzzVerdict::kDigestMismatch);
  EXPECT_EQ(replay.engine.digest, shrunk.engine.digest);
}

TEST(FuzzRunTest, SummaryAccountsForEveryPlan) {
  FuzzOptions o = small_options();
  o.runs = 6;
  std::uint64_t observed = 0;
  o.observer = [&observed](const FuzzResult&) { ++observed; };
  const FuzzRunner runner(o);
  const FuzzRunner::Summary s = runner.run();
  EXPECT_EQ(s.executed, 6u);
  EXPECT_EQ(observed, 6u);
  EXPECT_EQ(s.agreed + s.declined + s.failures.size(), s.executed);
  EXPECT_TRUE(s.failures.empty());  // no corruption hook -> engines agree
  EXPECT_FALSE(s.hit_time_budget);
}

TEST(FuzzReproTest, PlanJsonRoundTripsFieldExactly) {
  FuzzPlan p = simple_plan();
  p.id = 17;
  p.master_seed = 0;  // seed 0 must survive the round trip
  p.zipf_s = 1.0625;  // exactly representable
  p.distinct_keys = 321;
  p.workers = 3;
  p.basic_halt_frac = 0.25;
  p.faults.seed = 99;
  p.faults.h2d_rate = 0.015625;
  p.faults.pressure_rate = 0.03125;
  p.faults.pressure_frac = 0.5;
  p.faults.pressure_hold_iterations = 2;
  p.faults.max_retries = 5;
  p.faults.backoff_base_s = 0.001;
  p.faults.backoff_cap_s = 0.25;
  p.corrupt_digest_xor = 0xfeedface12345678ULL;

  std::string err;
  const auto back = obs::fuzz_plan_from_json(obs::to_json(p), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_TRUE(plans_equal(p, *back));
}

TEST(FuzzReproTest, PlanParseRejectsMissingFields) {
  obs::Json j = obs::to_json(simple_plan());
  j.set("engine", obs::Json());  // null out a required field
  std::string err;
  EXPECT_FALSE(obs::fuzz_plan_from_json(j, &err).has_value());
  EXPECT_NE(err.find("engine"), std::string::npos) << err;
}

TEST(FuzzReproTest, ArtifactWriteReadReplayReproducesVerdict) {
  const FuzzRunner runner(small_options());
  FuzzPlan p = simple_plan();
  p.corrupt_digest_xor = 0x1234;
  const FuzzResult failing = runner.execute(p);
  ASSERT_EQ(failing.verdict, FuzzVerdict::kDigestMismatch);

  const std::string path =
      ::testing::TempDir() + "fuzz_test_repro_artifact.json";
  std::string err;
  ASSERT_TRUE(obs::write_fuzz_repro(failing, path, &err)) << err;

  const auto repro = obs::read_fuzz_repro(path, &err);
  ASSERT_TRUE(repro.has_value()) << err;
  EXPECT_EQ(repro->verdict, std::string(to_string(failing.verdict)));
  EXPECT_TRUE(plans_equal(repro->plan, failing.plan));

  const FuzzResult replay = runner.execute(repro->plan);
  EXPECT_EQ(replay.verdict, failing.verdict);
  EXPECT_EQ(replay.engine.digest, failing.engine.digest);
  EXPECT_EQ(replay.baseline.digest, failing.baseline.digest);
  std::remove(path.c_str());
}

TEST(FuzzReproTest, ReadRejectsGarbageAndMissingFiles) {
  std::string err;
  EXPECT_FALSE(
      obs::read_fuzz_repro("/nonexistent/fuzz_repro.json", &err).has_value());
  EXPECT_FALSE(err.empty());

  const std::string path = ::testing::TempDir() + "fuzz_test_garbage.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"fuzz_repro_version\": 99}\n", f);
    std::fclose(f);
  }
  err.clear();
  EXPECT_FALSE(obs::read_fuzz_repro(path, &err).has_value());
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sepo::apps
