// Tests for HostTableBuilder and snapshot save/load (core/table_io.hpp),
// including the round-trip through the SEPO lookup engine.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/random.hpp"
#include "core/sepo_lookup.hpp"
#include "core/table_io.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;
using test::as_u64;

TEST(HostTableBuilderTest, CombiningMergesEagerly) {
  HostTableBuilder b(Organization::kCombining, 256, 1u << 10,
                     combine_sum_u64);
  b.add_u64("x", 1);
  b.add_u64("x", 2);
  b.add_u64("y", 5);
  EXPECT_EQ(b.entry_count(), 2u);
  const HostTable t = b.build();
  EXPECT_EQ(t.lookup_u64("x"), 3u);
  EXPECT_EQ(t.lookup_u64("y"), 5u);
  EXPECT_EQ(t.entry_count(), 2u);
}

TEST(HostTableBuilderTest, BasicKeepsDuplicates) {
  HostTableBuilder b(Organization::kBasic, 64);
  b.add_u64("d", 1);
  b.add_u64("d", 2);
  const HostTable t = b.build();
  EXPECT_EQ(t.lookup_all("d").size(), 2u);
}

TEST(HostTableBuilderTest, MultiValuedGroups) {
  HostTableBuilder b(Organization::kMultiValued, 64);
  auto add = [&](std::string_view k, std::string_view v) {
    b.add(k, std::as_bytes(std::span{v.data(), v.size()}));
  };
  add("k", "v1");
  add("k", "v2");
  add("j", "v3");
  const HostTable t = b.build();
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.value_count(), 3u);
  EXPECT_EQ(t.lookup_group("k")->size(), 2u);
}

TEST(HostTableBuilderTest, SpillsAcrossManyPages) {
  HostTableBuilder b(Organization::kCombining, 1u << 10, /*page=*/512,
                     combine_sum_u64);
  std::unordered_map<std::string, std::uint64_t> ref;
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const std::string k = "key-" + std::to_string(rng.below(5000));
    b.add_u64(k, i);
    ref[k] += static_cast<std::uint64_t>(i);
  }
  const HostTable t = b.build();
  ASSERT_EQ(t.entry_count(), ref.size());
  t.for_each([&](std::string_view k, std::span<const std::byte> v) {
    ASSERT_EQ(as_u64(v), ref.at(std::string(k))) << k;
  });
}

TEST(HostTableBuilderTest, RejectsOversizedEntry) {
  HostTableBuilder b(Organization::kBasic, 64, /*page=*/256);
  const std::string big(500, 'x');
  EXPECT_THROW(b.add_u64(big, 1), std::invalid_argument);
}

TEST(HostTableBuilderTest, BuildIsSingleShot) {
  HostTableBuilder b(Organization::kBasic, 64);
  b.add_u64("a", 1);
  (void)b.build();
  EXPECT_THROW((void)b.build(), std::logic_error);
  EXPECT_THROW(b.add_u64("b", 2), std::logic_error);
}

TEST(SnapshotTest, KvRoundTrip) {
  HostTableBuilder b(Organization::kCombining, 512, 2u << 10,
                     combine_sum_u64);
  std::unordered_map<std::string, std::uint64_t> ref;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const std::string k = "url-" + std::to_string(rng.below(800));
    b.add_u64(k, 1);
    ref[k] += 1;
  }
  const HostTable original = b.build();

  std::stringstream ss;
  save_snapshot(original, ss);
  const LoadedTable loaded = load_snapshot(ss);

  ASSERT_EQ(loaded.table->entry_count(), ref.size());
  loaded.table->for_each([&](std::string_view k, std::span<const std::byte> v) {
    ASSERT_EQ(as_u64(v), ref.at(std::string(k))) << k;
  });
  EXPECT_EQ(loaded.table->organization(), Organization::kCombining);
  EXPECT_EQ(loaded.table->bucket_count(), original.bucket_count());
}

TEST(SnapshotTest, GroupRoundTrip) {
  HostTableBuilder b(Organization::kMultiValued, 128);
  std::map<std::string, std::multiset<std::string>> ref;
  for (int i = 0; i < 2000; ++i) {
    const std::string k = "g" + std::to_string(i % 70);
    const std::string v = "v" + std::to_string(i);
    b.add(k, std::as_bytes(std::span{v.data(), v.size()}));
    ref[k].insert(v);
  }
  std::stringstream ss;
  save_snapshot(b.build(), ss);
  const LoadedTable loaded = load_snapshot(ss);
  std::size_t groups = 0;
  loaded.table->for_each_group(
      [&](std::string_view k,
          const std::vector<std::span<const std::byte>>& vals) {
        ++groups;
        std::multiset<std::string> got;
        for (const auto& v : vals) got.insert(test::bytes_to_string(v));
        EXPECT_EQ(got, ref.at(std::string(k))) << k;
      });
  EXPECT_EQ(groups, ref.size());
}

TEST(SnapshotTest, BinaryKeysAndValuesSurvive) {
  HostTableBuilder b(Organization::kBasic, 64);
  const std::string k("\0key\xff", 5);
  const std::string v("\xde\0\xad", 3);
  b.add(k, std::as_bytes(std::span{v.data(), v.size()}));
  std::stringstream ss;
  save_snapshot(b.build(), ss);
  const LoadedTable loaded = load_snapshot(ss);
  const auto got = loaded.table->lookup(k);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(test::bytes_to_string(*got), v);
}

TEST(SnapshotTest, RejectsGarbage) {
  std::stringstream ss("not a snapshot at all");
  EXPECT_THROW((void)load_snapshot(ss), std::runtime_error);
}

TEST(SnapshotTest, RejectsTruncation) {
  HostTableBuilder b(Organization::kCombining, 64, 8u << 10,
                     combine_sum_u64);
  b.add_u64("k", 1);
  std::stringstream ss;
  save_snapshot(b.build(), ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_snapshot(truncated), std::runtime_error);
}

TEST(SnapshotTest, LoadedTableWorksWithLookupEngine) {
  // Persist a table, reload it, and query it through the SEPO lookup
  // engine on a small device — the end-to-end phase-2 story.
  HostTableBuilder b(Organization::kCombining, 1u << 10, 2u << 10,
                     combine_sum_u64);
  for (int i = 0; i < 20000; ++i)
    b.add_u64("key-" + std::to_string(i % 9000), 1);
  std::stringstream ss;
  save_snapshot(b.build(), ss);
  const LoadedTable loaded = load_snapshot(ss);

  Rig rig(96u << 10);
  SepoLookupEngine engine(rig.ctx, *loaded.table);
  EXPECT_GT(engine.segment_count(), 1u);
  std::vector<std::string> queries{"key-0", "key-8999", "key-9000"};
  std::vector<std::optional<std::vector<std::byte>>> out;
  const LookupBatchResult res = engine.lookup_values(queries, out);
  EXPECT_EQ(res.found, 2u);
  EXPECT_EQ(res.missing, 1u);
  std::uint64_t v = 0;
  std::memcpy(&v, out[0]->data(), 8);
  EXPECT_EQ(v, 20000u / 9000 + (0 < 20000 % 9000 ? 1 : 0));
}

}  // namespace
}  // namespace sepo::core
