// Shape-regression tests: assert the *qualitative* paper results the benches
// demonstrate, on small inputs, so a refactor that silently destroys a
// paper-shape property fails CI rather than only being visible by reading
// bench output. (EXPERIMENTS.md documents the quantitative versions.)
#include <gtest/gtest.h>

#include <string>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"
#include "baselines/mapcg.hpp"

namespace sepo::apps {
namespace {

constexpr std::size_t kInput = 1u << 20;  // 1 MiB keeps this suite fast

TEST(ShapeRegression, PvcGpuBeatsCpu) {
  PageViewCountApp app;
  const std::string input = app.generate(kInput, 71);
  const RunResult gpu = app.run_gpu(input);
  const RunResult cpu = app.run_cpu(input);
  EXPECT_GT(cpu.sim_seconds / gpu.sim_seconds, 2.0);  // paper ~3.5
}

TEST(ShapeRegression, InvertedIndexGpuDoesNotBeatCpu) {
  // §VI-B: II's divergent parser keeps the GPU at or below the CPU.
  InvertedIndexApp app;
  const std::string input = app.generate(2 * kInput, 72);
  const RunResult gpu = app.run_gpu(input);
  const RunResult cpu = app.run_cpu(input);
  EXPECT_LT(cpu.sim_seconds / gpu.sim_seconds, 1.5);
}

TEST(ShapeRegression, WordCountIsTheWeakestMapReduceApp) {
  // §VI-B: Word Count's hot-word lock contention caps its speedup below the
  // other MapReduce apps'.
  const std::string wc_in = word_count_app().generate(2 * kInput, 73);
  const std::string pc_in = patent_citation_app().generate(2 * kInput, 73);
  const double wc_speedup =
      run_mr_phoenix(word_count_app(), wc_in).sim_seconds /
      run_mr_sepo(word_count_app(), wc_in).sim_seconds;
  const double pc_speedup =
      run_mr_phoenix(patent_citation_app(), pc_in).sim_seconds /
      run_mr_sepo(patent_citation_app(), pc_in).sim_seconds;
  EXPECT_LT(wc_speedup, pc_speedup);
}

TEST(ShapeRegression, PinnedIsSlowerThanSepo) {
  // Figure 7: the pinned-in-CPU-memory table loses to SEPO badly.
  PageViewCountApp app;
  const std::string input = app.generate(kInput, 74);
  const RunResult gpu = app.run_gpu(input);
  const RunResult pin = app.run_pinned(input);
  EXPECT_GT(pin.sim_seconds, 2.0 * gpu.sim_seconds);
  EXPECT_EQ(pin.checksum, gpu.checksum);
}

TEST(ShapeRegression, SepoDegradesGracefullyWithShrinkingHeap) {
  // Table III's last column: halving the heap must not double the time.
  PageViewCountApp app;
  const std::string input = app.generate(4 * kInput, 75);
  GpuConfig big, small;
  big.device_bytes = 16u << 20;
  small.device_bytes = 16u << 20;
  big.heap_bytes = 8u << 20;
  small.heap_bytes = 2u << 20;
  const RunResult rb = app.run_gpu(input, big);
  const RunResult rs = app.run_gpu(input, small);
  EXPECT_EQ(rb.iterations, 1u);
  EXPECT_GT(rs.iterations, rb.iterations);
  EXPECT_LT(rs.sim_seconds, 2.0 * rb.sim_seconds);
  EXPECT_EQ(rs.checksum, rb.checksum);
}

TEST(ShapeRegression, MapCgFailsWhereSepoSucceeds) {
  // Table II's bottom half: no SEPO -> hard failure past device memory,
  // surfaced as a typed RunError on the result instead of an escaping throw.
  const auto& wc = word_count_app();
  const std::string input = wc.generate(3u << 20, 76);
  GpuConfig cfg;  // 4 MiB device
  const RunResult theirs = run_mr_mapcg(wc, input, cfg);
  ASSERT_TRUE(theirs.error);
  EXPECT_EQ(theirs.error.kind, RunError::Kind::kDeviceOutOfMemory);
  EXPECT_FALSE(theirs.error.message.empty());
  const RunResult ours = run_mr_sepo(wc, input, cfg);
  EXPECT_FALSE(ours.error);
  EXPECT_GE(ours.iterations, 1u);
}

TEST(ShapeRegression, CombiningUsesLessMemoryThanBasic) {
  // Figure 4: combining's table is a fraction of basic's on duplicate-heavy
  // data.
  PageViewCountApp pvc;  // combining
  // Duplicate-heavy log: the organizations' footprints diverge on repeats.
  const std::string input =
      gen_weblog({.target_bytes = kInput, .seed = 77}, /*distinct_urls=*/2000,
                 /*zipf_s=*/1.0);
  const RunResult combining = pvc.run_gpu(input);

  class BasicPvc final : public StandaloneApp {
   public:
    const char* name() const noexcept override { return "basic-pvc"; }
    const char* table1_key() const noexcept override { return "pvc"; }
    core::Organization organization() const noexcept override {
      return core::Organization::kBasic;
    }
    std::string generate(std::size_t bytes, std::uint64_t seed) const override {
      return gen_weblog({.target_bytes = bytes, .seed = seed});
    }
    void map_record(std::string_view body,
                    mapreduce::Emitter& em) const override {
      PageViewCountApp{}.map_record(body, em);
    }
  } basic;
  const RunResult raw = basic.run_gpu(input);
  EXPECT_LT(combining.table_bytes * 2, raw.table_bytes);
}

}  // namespace
}  // namespace sepo::apps
