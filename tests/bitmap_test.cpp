// Unit tests for sepo::AtomicBitmap — the SEPO "processed records" bitmap.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/bitmap.hpp"

namespace sepo {
namespace {

TEST(BitmapTest, StartsCleared) {
  AtomicBitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(BitmapTest, SetReturnsWhetherBitWasNew) {
  AtomicBitmap b(10);
  EXPECT_TRUE(b.set(3));
  EXPECT_FALSE(b.set(3));
  EXPECT_TRUE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
}

TEST(BitmapTest, UnsetReturnsWhetherBitWasSet) {
  AtomicBitmap b(10);
  EXPECT_FALSE(b.unset(5));
  b.set(5);
  EXPECT_TRUE(b.unset(5));
  EXPECT_FALSE(b.test(5));
}

TEST(BitmapTest, WordBoundaries) {
  AtomicBitmap b(130);
  for (const std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    EXPECT_TRUE(b.set(i)) << i;
    EXPECT_TRUE(b.test(i)) << i;
  }
  EXPECT_EQ(b.count(), 7u);
}

TEST(BitmapTest, AllDetectsCompletion) {
  AtomicBitmap b(65);  // straddles a word boundary
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  EXPECT_FALSE(b.all());
  b.set(64);
  EXPECT_TRUE(b.all());
}

TEST(BitmapTest, FirstUnsetFromScansPastSetRuns) {
  AtomicBitmap b(200);
  for (std::size_t i = 0; i < 150; ++i) b.set(i);
  EXPECT_EQ(b.first_unset_from(0), 150u);
  EXPECT_EQ(b.first_unset_from(150), 150u);
  EXPECT_EQ(b.first_unset_from(151), 151u);
  b.set(150);
  EXPECT_EQ(b.first_unset_from(100), 151u);
}

TEST(BitmapTest, FirstUnsetFromAtWordBoundaries) {
  // 150 bits: the last word is partial (150 = 2*64 + 22), so scans that
  // start at or cross word boundaries must not read past num_bits.
  AtomicBitmap b(150);
  for (const std::size_t i : {63u, 64u, 127u, 128u, 149u}) b.set(i);
  EXPECT_EQ(b.first_unset_from(63), 65u);
  EXPECT_EQ(b.first_unset_from(64), 65u);
  EXPECT_EQ(b.first_unset_from(127), 129u);
  EXPECT_EQ(b.first_unset_from(128), 129u);
  EXPECT_EQ(b.first_unset_from(149), 150u);  // last bit set -> size
  // Fill the final partial word; a scan from inside it must stop at size,
  // not at the 192-bit storage boundary.
  for (std::size_t i = 128; i < 150; ++i) b.set(i);
  EXPECT_EQ(b.first_unset_from(128), 150u);
  EXPECT_EQ(b.first_unset_from(140), 150u);
}

TEST(BitmapTest, FirstUnsetReturnsSizeWhenFull) {
  AtomicBitmap b(70);
  for (std::size_t i = 0; i < 70; ++i) b.set(i);
  EXPECT_EQ(b.first_unset_from(0), 70u);
  EXPECT_EQ(b.first_unset_from(69), 70u);
  EXPECT_EQ(b.first_unset_from(1000), 70u);
}

TEST(BitmapTest, FirstUnsetIgnoresBitsBelowFrom) {
  AtomicBitmap b(100);
  // bit 10 unset, but we start at 20
  for (std::size_t i = 11; i < 50; ++i) b.set(i);
  EXPECT_EQ(b.first_unset_from(20), 50u);
}

TEST(BitmapTest, ClearResetsAllBits) {
  AtomicBitmap b(100);
  for (std::size_t i = 0; i < 100; i += 3) b.set(i);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(BitmapTest, ResetChangesSize) {
  AtomicBitmap b(10);
  b.set(9);
  b.reset(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitmapTest, ZeroSizeIsFullAndEmpty) {
  AtomicBitmap b(0);
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.first_unset_from(0), 0u);
}

// ISSUE 9 regression sweep: exhaustively exercise count() and
// first_unset_from() at the non-multiple-of-64 sizes where the trailing
// storage word has bits past num_bits. Those padding bits must never be
// reported as unset (first_unset_from must return size(), not a padding
// index) and must never inflate count().
TEST(BitmapTest, TrailingWordSizesCountAndScanExactly) {
  for (const std::size_t bits : {63u, 64u, 65u, 127u}) {
    AtomicBitmap b(bits);
    // Alternating pattern: set the even bits, then verify count and that
    // every scan lands on the next odd (unset) index — never on padding.
    for (std::size_t i = 0; i < bits; i += 2) b.set(i);
    EXPECT_EQ(b.count(), (bits + 1) / 2) << "bits=" << bits;
    for (std::size_t from = 0; from < bits; ++from) {
      const std::size_t expect = from | 1;  // next odd index at or after from
      EXPECT_EQ(b.first_unset_from(from), expect < bits ? expect : bits)
          << "bits=" << bits << " from=" << from;
    }
    // Fill completely: the bitmap is full, count is exact, and every scan —
    // including from the last word — reports size(), proving the padding
    // bits of the trailing word are not visible as "unset work".
    for (std::size_t i = 1; i < bits; i += 2) b.set(i);
    EXPECT_EQ(b.count(), bits) << "bits=" << bits;
    EXPECT_TRUE(b.all()) << "bits=" << bits;
    for (std::size_t from = 0; from <= bits + 64; ++from)
      EXPECT_EQ(b.first_unset_from(from), bits)
          << "bits=" << bits << " from=" << from;
  }
}

TEST(BitmapTest, ConcurrentSetsCountEachBitOnce) {
  constexpr std::size_t kBits = 4096;
  AtomicBitmap b(kBits);
  std::atomic<std::size_t> new_bits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kBits; ++i)
        if (b.set(i)) new_bits.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(new_bits.load(), kBits);  // each bit newly set exactly once
  EXPECT_TRUE(b.all());
}

}  // namespace
}  // namespace sepo
