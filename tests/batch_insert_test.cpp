// Batched insert pipeline (DESIGN.md §5d): the batched path must be
// observationally identical to the scalar path — same finished table
// (digest + key counts) and, on deterministic single-worker runs, the same
// simulated counter values bit for bit. Plus unit coverage for the
// CombineBuffer scratch itself and the lock-free HostHeap publication.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/harness.hpp"
#include "common/random.hpp"
#include "core/sepo_driver.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;

// Key schedules: `distinct` possible keys, drawn uniformly or Zipf(theta).
std::string schedule_input(std::size_t records, std::size_t distinct,
                           bool zipf, std::uint64_t seed) {
  std::vector<double> cdf;
  if (zipf) {
    cdf.resize(distinct);
    double sum = 0;
    for (std::size_t i = 0; i < distinct; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), 0.99);
      cdf[i] = sum;
    }
    for (double& c : cdf) c /= sum;
  }
  Rng rng(seed);
  std::ostringstream os;
  for (std::size_t i = 0; i < records; ++i) {
    std::size_t k;
    if (zipf) {
      const double u =
          static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
      k = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    } else {
      k = static_cast<std::size_t>(rng.below(distinct));
    }
    os << "key/" << k << '\n';
  }
  return os.str();
}

struct RunOut {
  std::uint64_t digest = 0;
  std::size_t entries = 0;  // entry_count (kv) / value_count (multi-valued)
  std::size_t distinct = 0;
  std::string stats_json;  // serialized counter snapshot
  CombineBufferTotals totals;
};

RunOut run_once(Organization org, const std::string& input, std::uint32_t cap,
                std::size_t workers, std::size_t device_kb,
                bool assoc_comm = true) {
  Rig rig(device_kb << 10, workers);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 256;
  pcfg.max_chunk_bytes = 24u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);

  HashTableConfig cfg;
  cfg.org = org;
  cfg.num_buckets = 256;
  cfg.buckets_per_group = 16;
  cfg.page_size = 2048;
  cfg.batch_insert_capacity = cap;
  if (org == Organization::kCombining) {
    cfg.combiner = combine_sum_u64;
    cfg.combiner_assoc_comm = assoc_comm;
  }
  SepoHashTable ht(rig.ctx, cfg);

  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t i, std::string_view body) {
                     return ht.insert_u64(body, i + 1);
                   });
  EXPECT_TRUE(progress.all_done());
  EXPECT_EQ(ht.pending_batched_inserts(), 0u);

  RunOut out;
  out.totals = ht.combine_buffer_totals();
  std::ostringstream os;
  obs::to_json(rig.stats.snapshot()).write(os);
  out.stats_json = os.str();

  const HostTable t = ht.finalize();
  if (org == Organization::kMultiValued) {
    out.digest = apps::digest_groups(t);
    out.entries = t.value_count();
    std::size_t groups = 0;
    t.for_each_group([&](std::string_view,
                         const std::vector<std::span<const std::byte>>&) {
      ++groups;
    });
    out.distinct = groups;
  } else {
    out.digest = apps::digest_kv(t);
    out.entries = t.entry_count();
    std::size_t n = 0;
    t.for_each([&](std::string_view, std::span<const std::byte>) { ++n; });
    out.distinct = n;
  }
  return out;
}

// (organization, zipf?)
using ParityParam = std::tuple<Organization, bool>;

class BatchInsertParity : public ::testing::TestWithParam<ParityParam> {};

// Single worker: arrival order is deterministic, so beyond the digest the
// simulated counters must mirror the scalar path bit for bit ("metrics JSON
// identical modulo combine_buffer") for every batch capacity.
TEST_P(BatchInsertParity, MatchesScalarBitIdentically) {
  const auto [org, zipf] = GetParam();
  const std::string input = schedule_input(4000, 500, zipf, 42 + zipf);

  const RunOut scalar = run_once(org, input, 0, 1, 1024);
  EXPECT_FALSE(scalar.totals.enabled);
  for (const std::uint32_t cap : {1u, 7u, 64u, 4096u}) {
    const RunOut batched = run_once(org, input, cap, 1, 1024);
    EXPECT_EQ(batched.digest, scalar.digest) << "cap=" << cap;
    EXPECT_EQ(batched.entries, scalar.entries) << "cap=" << cap;
    EXPECT_EQ(batched.distinct, scalar.distinct) << "cap=" << cap;
    EXPECT_EQ(batched.stats_json, scalar.stats_json) << "cap=" << cap;
    EXPECT_TRUE(batched.totals.enabled);
    EXPECT_EQ(batched.totals.drained_records, 4000u) << "cap=" << cap;
    if (cap > 1) {
      // Bucket-run amortization must actually save lock acquires.
      EXPECT_GT(batched.totals.lock_acquires_saved, 0u) << "cap=" << cap;
    }
  }
}

// Multi-worker: interleaving differs run to run, so only the finished table
// is comparable — digest and key counts, against the scalar run.
TEST_P(BatchInsertParity, MatchesScalarUnderConcurrency) {
  const auto [org, zipf] = GetParam();
  const std::string input = schedule_input(4000, 500, zipf, 91 + zipf);

  const RunOut scalar = run_once(org, input, 0, 4, 1024);
  for (const std::uint32_t cap : {7u, 4096u}) {
    const RunOut batched = run_once(org, input, cap, 4, 1024);
    EXPECT_EQ(batched.digest, scalar.digest) << "cap=" << cap;
    EXPECT_EQ(batched.entries, scalar.entries) << "cap=" << cap;
    EXPECT_EQ(batched.distinct, scalar.distinct) << "cap=" << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, BatchInsertParity,
    ::testing::Combine(::testing::Values(Organization::kBasic,
                                         Organization::kCombining,
                                         Organization::kMultiValued),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ParityParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char c) { return !std::isalnum(c); }),
                 name.end());
      name += std::get<1>(info.param) ? "_zipf" : "_uniform";
      return name;
    });

// A combiner not declared associative+commutative must never be applied in
// scratch — the drain replays the arrival log — and still match scalar.
TEST(BatchInsertParityTest, NonAssocCombinerReplaysInOrder) {
  const std::string input = schedule_input(3000, 200, true, 7);
  const RunOut scalar =
      run_once(Organization::kCombining, input, 0, 1, 1024, false);
  const RunOut batched =
      run_once(Organization::kCombining, input, 64, 1, 1024, false);
  EXPECT_EQ(batched.digest, scalar.digest);
  EXPECT_EQ(batched.stats_json, scalar.stats_json);
  EXPECT_EQ(batched.totals.precombined_records, 0u);
  EXPECT_GT(batched.totals.scratch_hits, 0u);
}

// Postponement under pressure: on a device too small for the working set,
// drains hit kPostpone, the original records are re-queued, and the table
// still converges to exactly the scalar result.
TEST(BatchInsertPostponeTest, RequeuesAndConverges) {
  const std::string input = schedule_input(6000, 5800, false, 13);
  const RunOut scalar = run_once(Organization::kBasic, input, 0, 2, 96);
  const RunOut batched = run_once(Organization::kBasic, input, 4096, 2, 96);
  EXPECT_EQ(batched.digest, scalar.digest);
  EXPECT_EQ(batched.entries, scalar.entries);
  EXPECT_GT(batched.totals.requeued_records, 0u)
      << "device not small enough to force drain-time postponement";
}

// ---- CombineBuffer unit coverage ----

TEST(CombineBufferTest, PrecombinesAssocCommValues) {
  CombineBuffer buf(Organization::kCombining, 8, true, combine_sum_u64);
  const std::uint64_t h = hash_key("k");
  std::uint64_t v1 = 5, v2 = 37;
  ASSERT_TRUE(buf.add(3, h, "k", test::bytes_of(v1)));
  ASSERT_TRUE(buf.add(3, h, "k", test::bytes_of(v2)));
  EXPECT_EQ(buf.record_count(), 2u);  // log keeps both originals
  ASSERT_EQ(buf.slots().size(), 1u);  // scratch deduped to one slot
  EXPECT_EQ(test::as_u64(buf.slot_value(buf.slots()[0])), 42u);
  // Originals retained for postponement re-queue:
  EXPECT_EQ(test::as_u64(buf.log_value(buf.log()[0])), 5u);
  EXPECT_EQ(test::as_u64(buf.log_value(buf.log()[1])), 37u);
  const CombineBufferStats s = buf.take_stats();
  EXPECT_EQ(s.scratch_hits, 1u);
  EXPECT_EQ(s.precombined_records, 1u);
}

TEST(CombineBufferTest, FullBufferRejectsAndClearReuses) {
  CombineBuffer buf(Organization::kBasic, 2, false, nullptr);
  std::uint64_t v = 1;
  ASSERT_TRUE(buf.add(0, hash_key("a"), "a", test::bytes_of(v)));
  ASSERT_TRUE(buf.add(1, hash_key("b"), "b", test::bytes_of(v)));
  EXPECT_FALSE(buf.add(2, hash_key("c"), "c", test::bytes_of(v)));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  ASSERT_TRUE(buf.add(2, hash_key("c"), "c", test::bytes_of(v)));
  EXPECT_EQ(buf.slot_key(buf.slots()[0]), "c");
}

TEST(CombineBufferTest, BasicKeepsDuplicatesAsSeparateSlots) {
  CombineBuffer buf(Organization::kBasic, 4, false, nullptr);
  std::uint64_t v = 9;
  ASSERT_TRUE(buf.add(5, hash_key("dup"), "dup", test::bytes_of(v)));
  ASSERT_TRUE(buf.add(5, hash_key("dup"), "dup", test::bytes_of(v)));
  EXPECT_EQ(buf.slots().size(), 2u);
  EXPECT_EQ(buf.take_stats().scratch_hits, 0u);
}

// ---- HostHeap lock-free publication ----

// Writers store disjoint slots while readers spin on slot_stored and then
// read the published contents: the release/acquire pair must make every
// published page fully visible. Run under TSan via the sanitize label.
TEST(HostHeapConcurrencyTest, ConcurrentStoreAndReadAreRaceFree) {
  constexpr std::size_t kPage = 256;
  constexpr int kWriters = 4;
  constexpr int kSlotsPerWriter = 200;
  alloc::HostHeap heap(kPage);
  std::vector<std::uint64_t> slots(kWriters * kSlotsPerWriter);
  for (auto& s : slots) s = heap.reserve_slot();

  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters * 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::byte page[kPage];
      for (int i = 0; i < kSlotsPerWriter; ++i) {
        const std::uint64_t slot = slots[w * kSlotsPerWriter + i];
        std::fill(page, page + kPage, static_cast<std::byte>(slot & 0xff));
        heap.store_page(slot, page, kPage);
      }
    });
    threads.emplace_back([&, w] {
      for (int i = kSlotsPerWriter - 1; i >= 0; --i) {
        const std::uint64_t slot = slots[w * kSlotsPerWriter + i];
        while (!heap.slot_stored(slot)) std::this_thread::yield();
        const auto* p = heap.ptr<std::uint8_t>(heap.addr(slot, 0));
        const auto* q = heap.ptr<std::uint8_t>(heap.addr(slot, kPage - 1));
        if (*p != (slot & 0xff) || *q != (slot & 0xff)) fail = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(heap.stored_bytes(), slots.size() * kPage);
  EXPECT_EQ(heap.reserved_slots(), slots.size());
}

TEST(HostHeapTest, RestoreKeepsPublishedPointerStable) {
  alloc::HostHeap heap(64);
  const std::uint64_t slot = heap.reserve_slot();
  std::byte page[64] = {};
  page[0] = std::byte{1};
  heap.store_page(slot, page, 64);
  const auto* before = heap.ptr<>(heap.addr(slot, 0));
  page[0] = std::byte{2};
  heap.store_page(slot, page, 64);  // recycled page, flushed again
  EXPECT_EQ(heap.ptr<>(heap.addr(slot, 0)), before);
  EXPECT_EQ(*heap.ptr<std::uint8_t>(heap.addr(slot, 0)), 2u);
  EXPECT_EQ(heap.stored_bytes(), 64u);  // counted once, not per store
}

}  // namespace
}  // namespace sepo::core
