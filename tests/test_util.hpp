// Shared fixtures/helpers for the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::test {

// A bundled virtual device + pool + stats + execution context with a
// configurable capacity.
struct Rig {
  explicit Rig(std::size_t device_bytes, std::size_t workers = 0)
      : dev(device_bytes), pool(workers) {}

  gpusim::Device dev;
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx{dev, pool, stats};
};

inline std::span<const std::byte> bytes_of(const std::uint64_t& v) {
  return std::as_bytes(std::span{&v, 1});
}

inline std::string bytes_to_string(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

inline std::uint64_t as_u64(std::span<const std::byte> b) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min<std::size_t>(8, b.size()));
  return v;
}

}  // namespace sepo::test
