// Application-level tests: every implementation of every app must agree on
// the result digest (GPU-SEPO vs CPU vs pinned vs MapCG), generators must be
// deterministic and sized, and parsers must handle malformed records.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"

namespace sepo::apps {
namespace {

// Small-but-nontrivial input size used across these tests.
constexpr std::size_t kBytes = 384u << 10;

// A device this small forces at least one heap overflow for the bulkier
// apps, exercising SEPO in the comparison.
GpuConfig tiny_gpu() {
  GpuConfig cfg;
  cfg.device_bytes = 1u << 20;
  cfg.page_size = 4u << 10;
  cfg.num_buckets = 1u << 12;
  cfg.buckets_per_group = 256;
  return cfg;
}

// ---- standalone apps: parameterized cross-implementation equivalence ----

enum class Which { kPvc, kIi, kDna, kNetflix };

std::unique_ptr<StandaloneApp> make_app(Which w) {
  switch (w) {
    case Which::kPvc: return std::make_unique<PageViewCountApp>();
    case Which::kIi: return std::make_unique<InvertedIndexApp>();
    case Which::kDna: return std::make_unique<DnaAssemblyApp>();
    case Which::kNetflix: return std::make_unique<NetflixApp>();
  }
  return nullptr;
}

class StandaloneAppSuite : public ::testing::TestWithParam<Which> {};

TEST_P(StandaloneAppSuite, GpuCpuAndPinnedAgree) {
  const auto app = make_app(GetParam());
  const std::string input = app->generate(kBytes, 31337);
  const RunResult gpu = app->run_gpu(input, tiny_gpu());
  const RunResult cpu = app->run_cpu(input);
  const RunResult pin = app->run_pinned(input, tiny_gpu());
  EXPECT_EQ(gpu.checksum, cpu.checksum) << app->name();
  EXPECT_EQ(pin.checksum, cpu.checksum) << app->name();
  EXPECT_EQ(gpu.keys, cpu.keys) << app->name();
  EXPECT_GT(gpu.keys, 0u);
}

TEST_P(StandaloneAppSuite, GeneratorIsDeterministicAndSized) {
  const auto app = make_app(GetParam());
  const std::string a = app->generate(kBytes, 1);
  const std::string b = app->generate(kBytes, 1);
  const std::string c = app->generate(kBytes, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GE(a.size(), kBytes);
  EXPECT_LT(a.size(), kBytes + (8u << 10));
}

TEST_P(StandaloneAppSuite, SepoIterationsForcedByTinyHeap) {
  const auto app = make_app(GetParam());
  const std::string input = app->generate(kBytes, 5);
  GpuConfig cfg = tiny_gpu();
  cfg.device_bytes = 512u << 10;  // even tighter
  cfg.num_buckets = 1u << 11;
  const RunResult gpu = app->run_gpu(input, cfg);
  const RunResult cpu = app->run_cpu(input);
  EXPECT_EQ(gpu.checksum, cpu.checksum) << app->name();
  if (gpu.table_bytes > gpu.heap_bytes) {
    EXPECT_GT(gpu.iterations, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, StandaloneAppSuite,
                         ::testing::Values(Which::kPvc, Which::kIi,
                                           Which::kDna, Which::kNetflix),
                         [](const auto& info) {
                           switch (info.param) {
                             case Which::kPvc: return "PageViewCount";
                             case Which::kIi: return "InvertedIndex";
                             case Which::kDna: return "DnaAssembly";
                             case Which::kNetflix: return "Netflix";
                           }
                           return "?";
                         });

// ---- MapReduce apps ----

class MrAppSuite : public ::testing::TestWithParam<const MrApp*> {};

TEST_P(MrAppSuite, SepoAndPhoenixAgree) {
  const MrApp& app = *GetParam();
  const std::string input = app.generate(kBytes, 41);
  const RunResult ours = run_mr_sepo(app, input, tiny_gpu());
  const RunResult phoenix = run_mr_phoenix(app, input);
  EXPECT_EQ(ours.checksum, phoenix.checksum) << app.name;
  EXPECT_EQ(ours.keys, phoenix.keys) << app.name;
}

TEST_P(MrAppSuite, SepoAndMapCgAgreeOnSmallInput) {
  const MrApp& app = *GetParam();
  const std::string input = app.generate(96u << 10, 42);
  GpuConfig cfg;  // default 4 MiB device: small input fits MapCG
  const RunResult ours = run_mr_sepo(app, input, cfg);
  const RunResult mapcg = run_mr_mapcg(app, input, cfg);
  EXPECT_EQ(ours.checksum, mapcg.checksum) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllMrApps, MrAppSuite,
                         ::testing::Values(&word_count_app(),
                                           &geo_location_app(),
                                           &patent_citation_app()),
                         [](const auto& info) {
                           return std::string(info.param->table1_key);
                         });

// ---- parser robustness ----

class NullEmitter final : public mapreduce::Emitter {
 public:
  core::Status emit(std::string_view, std::span<const std::byte>) override {
    ++emitted;
    return core::Status::kSuccess;
  }
  int emitted = 0;
};

TEST(ParserRobustness, MalformedRecordsEmitNothingAndDontCrash) {
  NullEmitter em;
  PageViewCountApp pvc;
  pvc.map_record("", em);
  pvc.map_record("not a log line", em);
  pvc.map_record("\"GET", em);
  InvertedIndexApp ii;
  ii.map_record("no-tab-here", em);
  ii.map_record("path\t<a href=\"unterminated", em);
  DnaAssemblyApp dna;
  dna.map_record("ACGT", em);  // shorter than k
  NetflixApp netflix;
  netflix.map_record("m1:", em);        // no raters
  netflix.map_record("m1: u5,3", em);   // one rater -> no pairs
  netflix.map_record("garbage", em);
  EXPECT_EQ(em.emitted, 0);
}

TEST(ParserRobustness, NetflixPairKeysAreCanonical) {
  // The pair key must not depend on the order users appear in the record.
  class Capture final : public mapreduce::Emitter {
   public:
    core::Status emit(std::string_view k, std::span<const std::byte>) override {
      keys.push_back(std::string(k));
      return core::Status::kSuccess;
    }
    std::vector<std::string> keys;
  };
  NetflixApp app;
  Capture a, b;
  app.map_record("m1: u5,3 u9,4", a);
  app.map_record("m2: u9,4 u5,3", b);
  ASSERT_EQ(a.keys.size(), 1u);
  ASSERT_EQ(b.keys.size(), 1u);
  EXPECT_EQ(a.keys[0], b.keys[0]);
}

TEST(ParserRobustness, DnaEmitsOneKmerPerPosition) {
  NullEmitter em;
  DnaAssemblyApp dna;
  const std::string read(40, 'A');
  dna.map_record(read, em);
  EXPECT_EQ(em.emitted, static_cast<int>(40 - DnaAssemblyApp::kK + 1));
}

// ---- Table I sizes ----

TEST(DatagenTest, Table1SizesMatchThePaperScaled) {
  EXPECT_EQ(table1_bytes("pvc", 1), static_cast<std::size_t>(0.6 * 1024 * 1024));
  EXPECT_EQ(table1_bytes("dna", 4), static_cast<std::size_t>(8.0 * 1024 * 1024));
  EXPECT_EQ(table1_bytes("wc", 2), static_cast<std::size_t>(2.0 * 1024 * 1024));
  EXPECT_THROW(table1_bytes("nope", 1), std::invalid_argument);
  EXPECT_THROW(table1_bytes("pvc", 5), std::invalid_argument);
}

// ---- discrete-event timeline vs analytic cost model ----

// The timeline prices commands with the same arithmetic as gpu_time() but
// admits only dependency-justified overlap; the two totals must stay close.
// This mirrors the fig6 --tiny sweep (all seven apps, Table I dataset #1,
// same seeds) and bounds the divergence at 15%, per run and in aggregate.
TEST(TimelineCrossCheck, Within15PercentOfAnalyticOnFig6TinySweep) {
  double timeline_total = 0, analytic_total = 0;
  const auto check = [&](const RunResult& r, const char* name) {
    ASSERT_GT(r.sim_seconds_analytic, 0.0) << name;
    ASSERT_GT(r.timeline.commands, 0u) << name;
    EXPECT_NEAR(r.sim_seconds, r.sim_seconds_analytic,
                0.15 * r.sim_seconds_analytic)
        << name;
    timeline_total += r.sim_seconds;
    analytic_total += r.sim_seconds_analytic;
  };

  for (const Which w : {Which::kPvc, Which::kIi, Which::kDna, Which::kNetflix}) {
    const auto app = make_app(w);
    const std::string input =
        app->generate(table1_bytes(app->table1_key(), 1), 1001);
    check(app->run_gpu(input, GpuConfig{}), app->name());
  }
  for (const MrApp* app : {&word_count_app(), &patent_citation_app(),
                           &geo_location_app()}) {
    const std::string input =
        app->generate(table1_bytes(app->table1_key, 1), 2001);
    check(run_mr_sepo(*app, input, GpuConfig{}), app->name);
  }
  EXPECT_NEAR(timeline_total, analytic_total, 0.15 * analytic_total);
}

TEST(DatagenTest, GeneratorsProduceParsableRecords) {
  // Every line of every generator must be accepted by its app's parser.
  PageViewCountApp pvc;
  const std::string log = pvc.generate(64u << 10, 9);
  const RecordIndex idx = index_lines(log);
  NullEmitter em;
  for (std::size_t i = 0; i < idx.size(); ++i)
    pvc.map_record(idx.record(log.data(), i), em);
  EXPECT_EQ(em.emitted, static_cast<int>(idx.size()));
}

}  // namespace
}  // namespace sepo::apps
