// Parameterized property sweeps: the SEPO hash table must be equivalent to
// a sequential reference across the cross-product of organization, page
// size, bucket count, worker count, and heap pressure (DESIGN.md §4
// invariant 1). These are the widest-coverage tests in the suite.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>

#include "common/random.hpp"
#include "core/sepo_driver.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;
using test::as_u64;

// (organization, page_size_log2, num_buckets_log2, workers, device_kb)
using SweepParam = std::tuple<Organization, int, int, int, int>;

class TableSweep : public ::testing::TestWithParam<SweepParam> {};

// Random KV workload with binary-unfriendly keys: embedded spaces, variable
// lengths, shared prefixes.
std::string sweep_input(std::size_t records, std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint64_t k = rng.below(records / 3 + 1);
    os << "prefix/shared/key=" << k;
    // variable-length tail on some keys
    if (k % 7 == 0) os << "/tail-" << std::string(1 + k % 60, 'x');
    os << '\n';
  }
  return os.str();
}

TEST_P(TableSweep, MatchesSequentialReference) {
  const auto [org, page_log2, buckets_log2, workers, device_kb] = GetParam();

  Rig rig(static_cast<std::size_t>(device_kb) << 10,
          static_cast<std::size_t>(workers));
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 256;
  pcfg.max_chunk_bytes = 24u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);

  HashTableConfig cfg;
  cfg.org = org;
  cfg.num_buckets = 1u << buckets_log2;
  cfg.buckets_per_group = std::max(1u, (1u << buckets_log2) / 16);
  cfg.page_size = std::size_t{1} << page_log2;
  if (org == Organization::kCombining) cfg.combiner = combine_sum_u64;
  SepoHashTable ht(rig.ctx, cfg);

  const std::string input = sweep_input(6000, 1000 + buckets_log2);
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t i, std::string_view body) {
                     return ht.insert_u64(body, i + 1);
                   });
  ASSERT_TRUE(progress.all_done());
  const HostTable t = ht.finalize();

  // Sequential reference.
  std::unordered_map<std::string, std::uint64_t> sum_ref;
  std::unordered_map<std::string, std::size_t> count_ref;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::string key(idx.record(input.data(), i));
    sum_ref[key] += i + 1;
    count_ref[key] += 1;
  }

  switch (org) {
    case Organization::kCombining: {
      ASSERT_EQ(t.entry_count(), sum_ref.size());
      std::size_t n = 0;
      t.for_each([&](std::string_view k, std::span<const std::byte> v) {
        ASSERT_EQ(as_u64(v), sum_ref.at(std::string(k))) << k;
        ++n;
      });
      ASSERT_EQ(n, sum_ref.size());
      break;
    }
    case Organization::kBasic: {
      ASSERT_EQ(t.entry_count(), idx.size());
      for (const auto& [k, c] : count_ref)
        ASSERT_EQ(t.lookup_all(k).size(), c) << k;
      break;
    }
    case Organization::kMultiValued: {
      ASSERT_EQ(t.value_count(), idx.size());
      std::size_t groups = 0;
      t.for_each_group(
          [&](std::string_view k,
              const std::vector<std::span<const std::byte>>& vals) {
            ASSERT_EQ(vals.size(), count_ref.at(std::string(k))) << k;
            ++groups;
          });
      ASSERT_EQ(groups, count_ref.size());
      break;
    }
  }
}

// The interesting corners of the cross-product rather than the full blowup:
// every organization under (tight heap, generous heap) x (small, large
// pages) x (1 worker, 4 workers).
INSTANTIATE_TEST_SUITE_P(
    Organizations, TableSweep,
    ::testing::Values(
        SweepParam{Organization::kCombining, 11, 9, 1, 256},
        SweepParam{Organization::kCombining, 11, 9, 4, 256},
        SweepParam{Organization::kCombining, 13, 11, 4, 2048},
        SweepParam{Organization::kCombining, 9, 6, 2, 192},
        SweepParam{Organization::kBasic, 11, 9, 1, 320},
        SweepParam{Organization::kBasic, 11, 9, 4, 320},
        SweepParam{Organization::kBasic, 13, 11, 4, 2048},
        SweepParam{Organization::kBasic, 9, 6, 2, 256},
        SweepParam{Organization::kMultiValued, 11, 9, 1, 320},
        SweepParam{Organization::kMultiValued, 11, 9, 4, 320},
        SweepParam{Organization::kMultiValued, 13, 11, 4, 2048},
        SweepParam{Organization::kMultiValued, 9, 6, 2, 256}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      // NOTE: no structured bindings here — the [a, b] brackets would split
      // the INSTANTIATE macro's arguments.
      std::string name = to_string(std::get<0>(info.param));
      name += "_p" + std::to_string(1 << std::get<1>(info.param)) + "_b" +
              std::to_string(1 << std::get<2>(info.param)) + "_w" +
              std::to_string(std::get<3>(info.param)) + "_kb" +
              std::to_string(std::get<4>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Binary-safe keys and values: embedded NULs, high bytes, zero-length
// values. The table stores bytes, not C strings.
TEST(BinarySafetyTest, KeysAndValuesWithEmbeddedNulsAndHighBytes) {
  Rig rig(2u << 20);
  HashTableConfig cfg;
  cfg.num_buckets = 256;
  cfg.buckets_per_group = 32;
  cfg.page_size = 2u << 10;
  cfg.org = Organization::kBasic;
  SepoHashTable ht(rig.ctx, cfg);
  ht.begin_iteration();

  const std::string k1("\0\x01\xff key", 8);  // trailing byte is the NUL
  const std::string k2("\0\x01\xfe key", 8);  // differs one byte inside
  const std::string v1("\xde\xad\0\xbe\xef", 5);
  ASSERT_EQ(ht.insert(k1, std::as_bytes(std::span{v1.data(), v1.size()})),
            Status::kSuccess);
  ASSERT_EQ(ht.insert(k2, std::span<const std::byte>{}), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  const auto got1 = t.lookup(k1);
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(test::bytes_to_string(*got1), v1);
  const auto got2 = t.lookup(k2);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->size(), 0u);  // zero-length value round-trips
  EXPECT_FALSE(t.lookup(std::string("\0\x01\xfd key", 8)).has_value());
}

TEST(BinarySafetyTest, EmptyKeyIsAValidKey) {
  Rig rig(1u << 20);
  HashTableConfig cfg;
  cfg.num_buckets = 64;
  cfg.buckets_per_group = 8;
  cfg.page_size = 1u << 10;
  cfg.combiner = combine_sum_u64;
  SepoHashTable ht(rig.ctx, cfg);
  ht.begin_iteration();
  ASSERT_EQ(ht.insert_u64("", 5), Status::kSuccess);
  ASSERT_EQ(ht.insert_u64("", 6), Status::kSuccess);
  ht.end_iteration();
  const HostTable t = ht.finalize();
  EXPECT_EQ(t.lookup_u64(""), 11u);
}

// Worker-count robustness for the full driver loop under heap pressure.
class WorkerSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkerSweep, DriverConvergesAndCountsMatch) {
  Rig rig(256u << 10, static_cast<std::size_t>(GetParam()));
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 128;
  pcfg.max_chunk_bytes = 8u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);
  HashTableConfig cfg;
  cfg.num_buckets = 1u << 9;
  cfg.buckets_per_group = 32;
  cfg.page_size = 2u << 10;
  cfg.combiner = combine_sum_u64;
  SepoHashTable ht(rig.ctx, cfg);

  Rng rng(GetParam());
  std::ostringstream os;
  for (int i = 0; i < 16000; ++i) os << "key-" << rng.below(16000) << '\n';
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      ht, pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        return ht.insert_u64(body, 1);
      });
  EXPECT_GT(res.iterations, 1u);
  const HostTable t = ht.finalize();
  std::uint64_t total = 0;
  t.for_each([&](std::string_view, std::span<const std::byte> v) {
    total += as_u64(v);
  });
  EXPECT_EQ(total, 16000u);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace sepo::core
