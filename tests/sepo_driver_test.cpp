// Integration + property tests for the SEPO iteration protocol: tables that
// grow beyond device memory must converge over multiple iterations and end
// up equivalent to a sequential reference (DESIGN.md §4 invariants 1, 2, 6).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/random.hpp"
#include "core/sepo_driver.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;
using test::as_u64;

// Builds a synthetic key-per-line input with `n` records drawn from
// `distinct` keys (Zipf-skewed when zipf > 0).
std::string make_input(std::size_t n, std::size_t distinct, double zipf,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  if (zipf > 0) {
    Zipf z(distinct, zipf);
    for (std::size_t i = 0; i < n; ++i)
      os << "key-" << z.sample(rng) << "\n";
  } else {
    for (std::size_t i = 0; i < n; ++i)
      os << "key-" << rng.below(distinct) << "\n";
  }
  return os.str();
}

struct DriverRig {
  DriverRig(std::size_t device_bytes, Organization org,
            std::size_t page_size = 4u << 10, std::size_t heap_bytes = 0)
      : rig(device_bytes) {
    // Static structures (input staging ring) are allocated before the hash
    // table so its heap gets only what remains (paper §IV-A ordering).
    bigkernel::PipelineConfig pcfg;
    pcfg.records_per_chunk = 512;
    pcfg.max_chunk_bytes = 16u << 10;
    pcfg.num_staging_buffers = 2;
    pipe = std::make_unique<bigkernel::InputPipeline>(rig.ctx, pcfg);
    HashTableConfig cfg;
    cfg.org = org;
    cfg.num_buckets = 1u << 10;
    cfg.buckets_per_group = 16;
    cfg.page_size = page_size;
    cfg.heap_bytes = heap_bytes;
    if (org == Organization::kCombining) cfg.combiner = combine_sum_u64;
    ht = std::make_unique<SepoHashTable>(rig.ctx, cfg);
  }

  Rig rig;
  std::unique_ptr<SepoHashTable> ht;
  std::unique_ptr<bigkernel::InputPipeline> pipe;
};

// Runs a page-view-count-style workload (insert <line, 1>, combining) and
// checks the result against a sequential std::unordered_map.
void run_combining_and_check(std::size_t device_kb, std::size_t n,
                             std::size_t distinct, double zipf,
                             std::uint32_t* iterations_out = nullptr) {
  const std::string input = make_input(n, distinct, zipf, /*seed=*/n + distinct);
  const RecordIndex idx = index_lines(input);

  DriverRig d(device_kb << 10, Organization::kCombining, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        return d.ht->insert_u64(body, 1);
      });
  EXPECT_TRUE(progress.all_done());
  const HostTable t = d.ht->finalize();

  std::unordered_map<std::string, std::uint64_t> ref;
  for (std::size_t i = 0; i < idx.size(); ++i)
    ref[std::string(idx.record(input.data(), i))] += 1;

  ASSERT_EQ(t.entry_count(), ref.size())
      << "iterations=" << res.iterations;
  std::size_t seen = 0;
  t.for_each([&](std::string_view k, std::span<const std::byte> v) {
    auto it = ref.find(std::string(k));
    ASSERT_NE(it, ref.end()) << k;
    EXPECT_EQ(as_u64(v), it->second) << k;
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
  if (iterations_out) *iterations_out = res.iterations;
}

TEST(SepoDriverCombining, SingleIterationWhenTableFits) {
  std::uint32_t iters = 0;
  run_combining_and_check(/*device_kb=*/4096, /*n=*/5000, /*distinct=*/500,
                          /*zipf=*/0.0, &iters);
  EXPECT_EQ(iters, 1u);
}

TEST(SepoDriverCombining, MultipleIterationsWhenTableExceedsMemory) {
  std::uint32_t iters = 0;
  // ~20k distinct keys of ~30 bytes each ≈ 1.2 MB of entries; 256 KB device.
  run_combining_and_check(/*device_kb=*/256, /*n=*/40000, /*distinct=*/20000,
                          /*zipf=*/0.0, &iters);
  EXPECT_GT(iters, 1u);
}

TEST(SepoDriverCombining, ZipfSkewStillConverges) {
  run_combining_and_check(/*device_kb=*/256, /*n=*/30000, /*distinct=*/15000,
                          /*zipf=*/1.05);
}

// DESIGN.md invariant 2: under Combining, a key appears exactly once in the
// final table regardless of the number of iterations. run_combining_and_check
// already asserts entry_count == |distinct keys|; this parameterized sweep
// drives heap sizes from "fits easily" to "16x too small".
class CombiningHeapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CombiningHeapSweep, KeyAppearsExactlyOnce) {
  run_combining_and_check(/*device_kb=*/GetParam(), /*n=*/20000,
                          /*distinct=*/10000, /*zipf=*/0.8);
}

INSTANTIATE_TEST_SUITE_P(HeapSizes, CombiningHeapSweep,
                         ::testing::Values(96, 128, 192, 256, 512, 1024, 4096));

TEST(SepoDriverBasic, AllDuplicatesRetainedAcrossIterations) {
  const std::size_t n = 20000;
  const std::string input = make_input(n, /*distinct=*/4000, /*zipf=*/0.9, 7);
  const RecordIndex idx = index_lines(input);

  DriverRig d(256u << 10, Organization::kBasic, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  std::uint64_t emitted = 0;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t i, std::string_view body) {
        const Status s = d.ht->insert_u64(body, i);
        return s;
      });
  EXPECT_GT(res.iterations, 1u);
  (void)emitted;
  const HostTable t = d.ht->finalize();
  // Every record produced exactly one entry.
  EXPECT_EQ(t.entry_count(), n);

  std::unordered_map<std::string, std::size_t> ref;
  for (std::size_t i = 0; i < idx.size(); ++i)
    ref[std::string(idx.record(input.data(), i))]++;
  for (const auto& [k, cnt] : ref)
    ASSERT_EQ(t.lookup_all(k).size(), cnt) << k;
}

TEST(SepoDriverBasic, HaltTriggersMidPass) {
  // With a heap far smaller than the data, the basic organization must halt
  // passes early (50% rule) rather than scan the whole input uselessly.
  const std::string input = make_input(30000, 30000, 0.0, 11);
  const RecordIndex idx = index_lines(input);
  DriverRig d(192u << 10, Organization::kBasic, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        return d.ht->insert_u64(body, 1);
      });
  EXPECT_GT(res.iterations, 2u);
  EXPECT_TRUE(progress.all_done());
}

TEST(SepoDriverMultiValued, GroupsSurviveIterations) {
  // patent-citation-style input: "cited citing" pairs; group by cited.
  Rng rng(99);
  std::ostringstream os;
  std::map<std::string, std::multiset<std::string>> ref;
  for (int i = 0; i < 12000; ++i) {
    const std::string cited = "P" + std::to_string(rng.below(900));
    const std::string citing = "C" + std::to_string(i);
    os << cited << ' ' << citing << '\n';
    ref[cited].insert(citing);
  }
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);

  DriverRig d(160u << 10, Organization::kMultiValued, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        const auto sp = body.find(' ');
        const std::string_view key = body.substr(0, sp);
        const std::string_view val = body.substr(sp + 1);
        return d.ht->insert(key,
                            std::as_bytes(std::span{val.data(), val.size()}));
      });
  EXPECT_GT(res.iterations, 1u);
  const HostTable t = d.ht->finalize();
  // Key entries may exceed distinct keys when the resident-key cap forced a
  // flush of pending key pages; groups are merged at read time.
  ASSERT_GE(t.entry_count(), ref.size());
  std::size_t groups_checked = 0;
  t.for_each_group([&](std::string_view k,
                       const std::vector<std::span<const std::byte>>& vals) {
    auto it = ref.find(std::string(k));
    ASSERT_NE(it, ref.end());
    std::multiset<std::string> got;
    for (const auto& v : vals) got.insert(test::bytes_to_string(v));
    EXPECT_EQ(got, it->second) << k;
    ++groups_checked;
  });
  EXPECT_EQ(groups_checked, ref.size());
  EXPECT_EQ(t.value_count(), 12000u);
}

TEST(SepoDriverMultiValued, SingleIterationWhenFits) {
  std::ostringstream os;
  for (int i = 0; i < 500; ++i) os << "k" << (i % 50) << " v" << i << '\n';
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  DriverRig d(4u << 20, Organization::kMultiValued);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        const auto sp = body.find(' ');
        return d.ht->insert(body.substr(0, sp),
                            std::as_bytes(std::span{body.data() + sp + 1,
                                                    body.size() - sp - 1}));
      });
  EXPECT_EQ(res.iterations, 1u);
  EXPECT_EQ(d.ht->finalize().value_count(), 500u);
}

TEST(SepoDriverError, ThrowsWhenNoProgressPossible) {
  // A single record whose entry exceeds the entire heap can never be stored.
  std::string input(3000, 'x');
  input += "\n";
  const RecordIndex idx = index_lines(input);
  DriverRig d(96u << 10, Organization::kBasic, /*page_size=*/1u << 10,
              /*heap_bytes=*/2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  EXPECT_THROW(driver.run(*d.ht, *d.pipe, input, idx, progress,
                          [&](std::size_t, std::string_view body) {
                            return d.ht->insert_u64(body, 1);
                          }),
               std::runtime_error);
}

TEST(SepoDriverTransfers, SkippedChunksSaveStaging) {
  // Second and later iterations must not re-stage chunks whose records are
  // all processed ("reorganizes the computation so as to minimize CPU-GPU
  // data transfers").
  const std::string input = make_input(20000, 10000, 0.0, 5);
  const RecordIndex idx = index_lines(input);
  DriverRig d(256u << 10, Organization::kCombining, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        return d.ht->insert_u64(body, 1);
      });
  ASSERT_GT(res.iterations, 1u);
  EXPECT_GT(res.chunks_skipped, 0u);
  // Total bytes staged is less than iterations * input size.
  EXPECT_LT(res.bytes_staged, res.iterations * input.size());
}

// Invariant 6: combining terminates in roughly ceil(table/heap)+1 iterations.
TEST(SepoDriverCombining, IterationCountIsBounded) {
  const std::string input = make_input(30000, 30000, 0.0, 3);
  const RecordIndex idx = index_lines(input);
  DriverRig d(192u << 10, Organization::kCombining, 2u << 10);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  const DriverResult res = driver.run(
      *d.ht, *d.pipe, input, idx, progress,
      [&](std::size_t, std::string_view body) {
        return d.ht->insert_u64(body, 1);
      });
  const auto ts = d.ht->table_stats();
  const double heap_bytes =
      static_cast<double>(d.ht->page_pool().heap_bytes());
  const auto bound = static_cast<std::uint32_t>(
      static_cast<double>(ts.table_bytes) / heap_bytes + 3.0);
  EXPECT_LE(res.iterations, bound);
}

}  // namespace
}  // namespace sepo::core
