// Randomized differential testing: random table/pipeline configurations x
// random workloads, each checked against a HostTableBuilder reference built
// from the same emission stream. Catches interactions between knobs that
// the fixed-corner sweeps (property_sweep_test.cpp) do not enumerate.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/random.hpp"
#include "core/sepo_driver.hpp"
#include "core/table_io.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;
using test::as_u64;

class RandomConfig : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfig, GpuPathMatchesBuilderReference) {
  Rng rng(GetParam());

  // --- random configuration ---
  const auto org = static_cast<Organization>(rng.below(3));
  const std::uint32_t num_buckets = 1u << (6 + rng.below(6));     // 64..2048
  const std::uint32_t bpg = std::max<std::uint32_t>(
      1, num_buckets >> (2 + rng.below(4)));                      // 4..many
  const std::size_t page_size = std::size_t{1} << (9 + rng.below(4));
  const std::size_t device_kb = 160 + rng.below(1900);
  const std::size_t workers = 1 + rng.below(4);
  const std::size_t records = 2000 + rng.below(8000);
  const std::size_t key_space = 50 + rng.below(4000);

  SCOPED_TRACE("org=" + std::string(to_string(org)) +
               " buckets=" + std::to_string(num_buckets) +
               " bpg=" + std::to_string(bpg) +
               " page=" + std::to_string(page_size) +
               " device_kb=" + std::to_string(device_kb) +
               " workers=" + std::to_string(workers) +
               " records=" + std::to_string(records) +
               " keys=" + std::to_string(key_space));

  // --- workload ---
  std::ostringstream os;
  {
    Rng wl(GetParam() ^ 0xabcdef);
    for (std::size_t i = 0; i < records; ++i)
      os << "k" << wl.below(key_space) << '\n';
  }
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);

  // --- device run ---
  Rig rig(device_kb << 10, workers);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 64 + rng.below(512);
  pcfg.max_chunk_bytes = 16u << 10;
  pcfg.num_staging_buffers = 1 + rng.below(3);
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);
  HashTableConfig cfg;
  cfg.org = org;
  cfg.num_buckets = num_buckets;
  cfg.buckets_per_group = bpg;
  cfg.page_size = page_size;
  if (org == Organization::kCombining) cfg.combiner = combine_sum_u64;
  SepoHashTable ht(rig.ctx, cfg);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t i, std::string_view body) {
                     return ht.insert_u64(body, i + 1);
                   });
  const HostTable got = ht.finalize();

  // --- reference via the host-side builder ---
  HostTableBuilder ref_builder(org, num_buckets, 8u << 10,
                               org == Organization::kCombining
                                   ? combine_sum_u64
                                   : nullptr);
  for (std::size_t i = 0; i < idx.size(); ++i)
    ref_builder.add_u64(idx.record(input.data(), i), i + 1);
  const HostTable ref = ref_builder.build();

  // --- compare, organization-appropriately ---
  switch (org) {
    case Organization::kCombining: {
      ASSERT_EQ(got.entry_count(), ref.entry_count());
      ref.for_each([&](std::string_view k, std::span<const std::byte> v) {
        const auto g = got.lookup(k);
        ASSERT_TRUE(g.has_value()) << k;
        ASSERT_EQ(as_u64(*g), as_u64(v)) << k;
      });
      break;
    }
    case Organization::kBasic: {
      ASSERT_EQ(got.entry_count(), ref.entry_count());
      // Same multiset of per-key duplicate counts + value sums.
      ref.for_each([&](std::string_view k, std::span<const std::byte>) {
        ASSERT_EQ(got.lookup_all(k).size(), ref.lookup_all(k).size()) << k;
      });
      break;
    }
    case Organization::kMultiValued: {
      ASSERT_EQ(got.value_count(), ref.value_count());
      std::size_t groups = 0;
      ref.for_each_group(
          [&](std::string_view k,
              const std::vector<std::span<const std::byte>>& vals) {
            const auto g = got.lookup_group(k);
            ASSERT_TRUE(g.has_value()) << k;
            std::uint64_t sum_got = 0, sum_ref = 0;
            for (const auto& v : *g) sum_got += as_u64(v);
            for (const auto& v : vals) sum_ref += as_u64(v);
            ASSERT_EQ(sum_got, sum_ref) << k;
            ++groups;
          });
      ASSERT_EQ(groups, got.entry_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfig,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace sepo::core
