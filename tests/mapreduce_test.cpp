// Tests for the MapReduce stack: our SEPO runtime (§V), the Phoenix++-style
// CPU baseline, and the MapCG-style GPU baseline — all validated against
// sequential references, including under heaps small enough to force many
// SEPO iterations with multi-emission map functions.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include "baselines/mapcg.hpp"
#include "baselines/phoenix.hpp"
#include "common/random.hpp"
#include "mapreduce/runtime.hpp"
#include "test_util.hpp"

namespace sepo::mapreduce {
namespace {

using test::Rig;
using test::as_u64;

void map_words(std::string_view record, Emitter& em) {
  std::size_t start = 0;
  while (start < record.size()) {
    std::size_t end = record.find(' ', start);
    if (end == std::string_view::npos) end = record.size();
    if (end > start) {
      if (em.emit_u64(record.substr(start, end - start), 1) ==
          core::Status::kPostpone)
        return;
    }
    start = end + 1;
  }
}

void map_pairs(std::string_view record, Emitter& em) {
  const std::size_t sp = record.find(' ');
  if (sp == std::string_view::npos) return;
  (void)em.emit(record.substr(sp + 1),
                std::as_bytes(std::span{record.data(), sp}));
}

std::string word_input(int lines, int vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  for (int i = 0; i < lines; ++i) {
    const int words = 3 + static_cast<int>(rng.below(8));
    for (int w = 0; w < words; ++w)
      os << "w" << rng.below(static_cast<std::uint64_t>(vocab))
         << (w + 1 < words ? ' ' : '\n');
  }
  return os.str();
}

std::unordered_map<std::string, std::uint64_t> word_reference(
    std::string_view input) {
  std::unordered_map<std::string, std::uint64_t> ref;
  const RecordIndex idx = index_lines(input);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::string_view body = idx.record(input.data(), i);
    std::size_t start = 0;
    while (start < body.size()) {
      std::size_t end = body.find(' ', start);
      if (end == std::string_view::npos) end = body.size();
      if (end > start) ref[std::string(body.substr(start, end - start))]++;
      start = end + 1;
    }
  }
  return ref;
}

// ---- our runtime ----

struct RuntimeRig {
  explicit RuntimeRig(std::size_t device_bytes) : rig(device_bytes) {
    cfg.pipeline.records_per_chunk = 256;
    cfg.pipeline.max_chunk_bytes = 16u << 10;
    cfg.pipeline.num_staging_buffers = 2;
    cfg.table.num_buckets = 1u << 10;
    cfg.table.buckets_per_group = 128;
    cfg.table.page_size = 2u << 10;
    runtime = std::make_unique<MapReduceRuntime>(rig.ctx,
                                                 cfg);
  }

  Rig rig;
  RuntimeConfig cfg;
  std::unique_ptr<MapReduceRuntime> runtime;
};

TEST(MapReduceRuntimeTest, WordCountMatchesReference) {
  RuntimeRig r(2u << 20);
  const std::string input = word_input(2000, 200, 1);
  const RunOutcome out = r.runtime->run(
      input, {.mode = Mode::kMapReduce, .map = map_words,
              .combine = core::combine_sum_u64});
  const auto ref = word_reference(input);
  ASSERT_EQ(out.table->entry_count(), ref.size());
  out.table->for_each([&](std::string_view k, std::span<const std::byte> v) {
    const auto it = ref.find(std::string(k));
    ASSERT_NE(it, ref.end()) << k;
    EXPECT_EQ(as_u64(v), it->second) << k;
  });
}

TEST(MapReduceRuntimeTest, MultiEmitSurvivesTinyHeap) {
  // The heap is small enough that map instances are postponed mid-record;
  // resume counters must prevent double counting (DESIGN.md, mapreduce).
  RuntimeRig r(320u << 10);
  const std::string input = word_input(9000, 30000, 2);
  const RunOutcome out = r.runtime->run(
      input, {.mode = Mode::kMapReduce, .map = map_words,
              .combine = core::combine_sum_u64});
  EXPECT_GT(out.driver.iterations, 1u);
  const auto ref = word_reference(input);
  std::uint64_t total = 0, ref_total = 0;
  out.table->for_each([&](std::string_view, std::span<const std::byte> v) {
    total += as_u64(v);
  });
  for (const auto& [k, v] : ref) ref_total += v;
  EXPECT_EQ(total, ref_total);
  ASSERT_EQ(out.table->entry_count(), ref.size());
}

TEST(MapReduceRuntimeTest, MapGroupCollectsAllValues) {
  RuntimeRig r(2u << 20);
  std::ostringstream os;
  std::map<std::string, std::multiset<std::string>> ref;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const std::string v = "v" + std::to_string(i);
    const std::string k = "k" + std::to_string(rng.below(100));
    os << v << ' ' << k << '\n';
    ref[k].insert(v);
  }
  const std::string input = os.str();
  const RunOutcome out =
      r.runtime->run(input, {.mode = Mode::kMapGroup, .map = map_pairs});
  std::size_t groups = 0;
  out.table->for_each_group(
      [&](std::string_view k,
          const std::vector<std::span<const std::byte>>& vals) {
        ++groups;
        const auto it = ref.find(std::string(k));
        ASSERT_NE(it, ref.end());
        std::multiset<std::string> got;
        for (const auto& v : vals) got.insert(test::bytes_to_string(v));
        EXPECT_EQ(got, it->second);
      });
  EXPECT_EQ(groups, ref.size());
}

TEST(MapReduceRuntimeTest, SecondRunRejected) {
  RuntimeRig r(2u << 20);
  const std::string input = word_input(100, 10, 4);
  const MrSpec spec{.mode = Mode::kMapReduce, .map = map_words,
                    .combine = core::combine_sum_u64};
  (void)r.runtime->run(input, spec);
  EXPECT_THROW((void)r.runtime->run(input, spec), std::logic_error);
}

TEST(MapReduceRuntimeTest, MapReduceNeedsCombine) {
  RuntimeRig r(2u << 20);
  EXPECT_THROW((void)r.runtime->run(
                   "a b\n", {.mode = Mode::kMapReduce, .map = map_words}),
               std::invalid_argument);
}

TEST(MapReduceRuntimeTest, CustomPartitioner) {
  RuntimeRig r(2u << 20);
  // Partition on ';' instead of newline.
  const std::string input = "a b;c a;b b b";
  const RunOutcome out = r.runtime->run(
      input,
      {.mode = Mode::kMapReduce, .map = map_words,
       .combine = core::combine_sum_u64},
      [](std::string_view in) {
        RecordIndex idx;
        std::size_t start = 0;
        while (start < in.size()) {
          std::size_t end = in.find(';', start);
          if (end == std::string_view::npos) end = in.size();
          idx.offsets.push_back(start);
          idx.lengths.push_back(static_cast<std::uint32_t>(end - start));
          start = end + 1;
        }
        return idx;
      });
  EXPECT_EQ(*out.table->lookup_u64("b"), 4u);
  EXPECT_EQ(*out.table->lookup_u64("a"), 2u);
}

// ---- Phoenix baseline ----

TEST(PhoenixTest, WordCountMatchesReference) {
  Rig rig(1u << 16, /*workers=*/2);
  baselines::PhoenixRuntime phoenix(rig.pool, rig.stats, {.num_threads = 4});
  const std::string input = word_input(3000, 300, 5);
  const auto table = phoenix.run(
      input, {.mode = Mode::kMapReduce, .map = map_words,
              .combine = core::combine_sum_u64});
  const auto ref = word_reference(input);
  ASSERT_EQ(table->entry_count(), ref.size());
  table->for_each([&](std::string_view k, std::span<const std::byte> v) {
    EXPECT_EQ(as_u64(v), ref.at(std::string(k))) << k;
  });
}

TEST(PhoenixTest, MapGroupKeepsEveryValue) {
  Rig rig(1u << 16, /*workers=*/2);
  baselines::PhoenixRuntime phoenix(rig.pool, rig.stats, {.num_threads = 4});
  std::ostringstream os;
  for (int i = 0; i < 1000; ++i) os << "v" << i << " k" << (i % 7) << "\n";
  const auto table =
      phoenix.run(os.str(), {.mode = Mode::kMapGroup, .map = map_pairs});
  EXPECT_EQ(table->entry_count(), 7u);
  EXPECT_EQ(table->value_count(), 1000u);
}

// ---- MapCG baseline ----

TEST(MapCgTest, WordCountReducesCorrectly) {
  Rig rig(2u << 20);
  baselines::MapCgRuntime mapcg(rig.ctx,
                                {.num_buckets = 1u << 10});
  const std::string input = word_input(1500, 150, 6);
  mapcg.run(input, {.mode = Mode::kMapReduce, .map = map_words,
                    .combine = core::combine_sum_u64});
  const auto ref = word_reference(input);
  EXPECT_EQ(mapcg.key_count(), ref.size());
  std::size_t checked = 0;
  mapcg.for_each_reduced([&](std::string_view k,
                             std::span<const std::byte> v) {
    EXPECT_EQ(as_u64(v), ref.at(std::string(k))) << k;
    ++checked;
  });
  EXPECT_EQ(checked, ref.size());
  EXPECT_GT(mapcg.serial_atomic_ops(), 0u);
}

TEST(MapCgTest, FailsWhenDeviceMemoryExhausted) {
  Rig rig(96u << 10);  // tiny device
  baselines::MapCgRuntime mapcg(rig.ctx,
                                {.num_buckets = 256});
  const std::string input = word_input(4000, 4000, 7);
  EXPECT_THROW(mapcg.run(input, {.mode = Mode::kMapReduce, .map = map_words,
                                 .combine = core::combine_sum_u64}),
               baselines::MapCgOutOfMemory);
}

TEST(MapCgTest, GroupModeKeepsValueLists) {
  Rig rig(2u << 20);
  baselines::MapCgRuntime mapcg(rig.ctx,
                                {.num_buckets = 256});
  std::ostringstream os;
  for (int i = 0; i < 500; ++i) os << "v" << i << " k" << (i % 5) << "\n";
  const std::string input = os.str();
  mapcg.run(input, {.mode = Mode::kMapGroup, .map = map_pairs});
  EXPECT_EQ(mapcg.key_count(), 5u);
  EXPECT_EQ(mapcg.value_count(), 500u);
  std::size_t values = 0;
  mapcg.for_each_group([&](std::string_view,
                           const std::vector<std::span<const std::byte>>& v) {
    values += v.size();
  });
  EXPECT_EQ(values, 500u);
}

}  // namespace
}  // namespace sepo::mapreduce
