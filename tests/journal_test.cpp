// Flight recorder (gpusim/journal.hpp + obs/journal.hpp): ring-buffer
// semantics of the per-worker shards, the (sim_ts, seq, worker) merge order,
// the JSONL dump/parse round trip, the events the wired execution path
// actually records, and the two invariants the recorder must never break —
// journal-on vs journal-off runs are bit-identical, and the always-on
// occupancy sampler emits exactly one sample per SEPO iteration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "apps/standalone_app.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace sepo::gpusim {
namespace {

using test::Rig;

// The drain() contract: non-decreasing (sim_ts, seq, worker).
bool merge_ordered(const std::vector<JournalEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    const JournalEvent& a = events[i - 1];
    const JournalEvent& b = events[i];
    if (a.sim_ts != b.sim_ts) {
      if (a.sim_ts > b.sim_ts) return false;
    } else if (a.seq != b.seq) {
      if (a.seq > b.seq) return false;
    } else if (a.worker > b.worker) {
      return false;
    }
  }
  return true;
}

TEST(JournalTest, RecordAndDrainSingleShard) {
  EventJournal j(1, 8);
  j.set_now(1.5);
  j.record(JournalEventKind::kPageAcquire, 3, 2);
  j.set_now(2.0);
  j.record(JournalEventKind::kPageRelease, 3, 3);
  const auto events = j.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, JournalEventKind::kPageAcquire);
  EXPECT_DOUBLE_EQ(events[0].sim_ts, 1.5);
  EXPECT_EQ(events[0].arg0, 3u);
  EXPECT_EQ(events[0].arg1, 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].kind, JournalEventKind::kPageRelease);
  EXPECT_DOUBLE_EQ(events[1].sim_ts, 2.0);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(j.events_recorded(), 2u);
  EXPECT_EQ(j.events_overwritten(), 0u);
}

TEST(JournalTest, RingOverwriteKeepsNewestWindow) {
  EventJournal j(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.set_now(static_cast<double>(i));
    j.record(JournalEventKind::kKernelLaunch, i, 0);
  }
  const auto events = j.drain();
  ASSERT_EQ(events.size(), 4u);
  // A flight recorder keeps the tail: the last 4 of the 10 records.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
  }
  EXPECT_EQ(j.events_recorded(), 10u);
  EXPECT_EQ(j.events_overwritten(), 6u);
}

TEST(JournalTest, DrainMergesShardsInTimestampOrder) {
  ThreadPool pool(4);
  EventJournal j(pool.worker_count(), 64);
  j.set_now(0.5);
  // Records land in the calling worker's shard; the pool decides which
  // worker runs which grid index, so the shard fill pattern is arbitrary —
  // exactly what the merge has to cope with.
  pool.parallel_for(pool.worker_count(), [&](std::size_t t) {
    for (std::uint64_t k = 0; k < 5; ++k)
      j.record(JournalEventKind::kPageAcquire, t, k);
  });
  const auto events = j.drain();
  EXPECT_EQ(events.size(), 5u * pool.worker_count());
  EXPECT_TRUE(merge_ordered(events));
  EXPECT_EQ(j.events_recorded(), 5u * pool.worker_count());
}

TEST(JournalTest, KindNamesRoundTripThroughParser) {
  for (int k = 0; k < kNumJournalEventKinds; ++k) {
    const auto kind = static_cast<JournalEventKind>(k);
    const auto parsed = obs::journal_kind_from_name(journal_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << journal_kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(obs::journal_kind_from_name("not_a_kind").has_value());
  EXPECT_FALSE(obs::journal_kind_from_name("").has_value());
}

TEST(JournalTest, JsonlDumpRoundTrips) {
  EventJournal j(1, 16);
  j.set_now(0.25);
  j.record(JournalEventKind::kKernelLaunch, 128, 0);
  j.set_now(0.50);
  j.record(JournalEventKind::kKernelFinish, 128, 999);
  j.set_now(0.75);
  j.record(JournalEventKind::kFlushBarrier, 0, 4096);

  const std::string path = testing::TempDir() + "journal_roundtrip.jsonl";
  std::string err;
  ASSERT_TRUE(obs::write_journal_jsonl(j, path, 4096, &err)) << err;
  const auto back = obs::read_journal_jsonl(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  const auto original = j.drain();
  ASSERT_EQ(back->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ((*back)[i].sim_ts, original[i].sim_ts);
    EXPECT_EQ((*back)[i].seq, original[i].seq);
    EXPECT_EQ((*back)[i].worker, original[i].worker);
    EXPECT_EQ((*back)[i].kind, original[i].kind);
    EXPECT_EQ((*back)[i].arg0, original[i].arg0);
    EXPECT_EQ((*back)[i].arg1, original[i].arg1);
  }
  std::remove(path.c_str());
}

TEST(JournalTest, JsonlDumpHonorsMaxEventsWindow) {
  EventJournal j(1, 16);
  for (std::uint64_t i = 0; i < 6; ++i) {
    j.set_now(static_cast<double>(i));
    j.record(JournalEventKind::kPageAcquire, i, 0);
  }
  const std::string path = testing::TempDir() + "journal_window.jsonl";
  std::string err;
  ASSERT_TRUE(obs::write_journal_jsonl(j, path, /*max_events=*/2, &err))
      << err;
  const auto back = obs::read_journal_jsonl(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_EQ(back->size(), 2u);
  // Newest window: the dump keeps the last events, not the first.
  EXPECT_EQ((*back)[0].arg0, 4u);
  EXPECT_EQ((*back)[1].arg0, 5u);
  std::remove(path.c_str());
}

TEST(JournalTest, ReadRejectsMalformedLines) {
  const std::string path = testing::TempDir() + "journal_bad.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"ts\": 0.1, \"kind\": \"page_acquire\"}\n", f);
  std::fputs("{\"ts\": 0.2, \"kind\": \"no_such_kind\"}\n", f);
  std::fclose(f);
  std::string err;
  EXPECT_FALSE(obs::read_journal_jsonl(path, &err).has_value());
  EXPECT_NE(err.find(":2:"), std::string::npos) << err;
  std::remove(path.c_str());
}

// ---- execution-path wiring ----

TEST(JournalTest, ExecContextRecordsKernelAndFlushEvents) {
  Rig rig(1u << 20);
  EventJournal j;
  rig.ctx.set_journal(&j);
  const DevPtr p = rig.dev.alloc_static(4096);
  char buf[4096] = {1};
  const Event staged = rig.ctx.stage_h2d(p, buf, sizeof buf);
  (void)rig.ctx.launch(64, [](std::size_t) {}, {}, staged);
  (void)rig.ctx.flush_d2h(2048);

  const auto events = j.drain();
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(merge_ordered(events));
  std::uint64_t launches = 0, finishes = 0, flushes = 0;
  for (const JournalEvent& e : events) {
    if (e.kind == JournalEventKind::kKernelLaunch) {
      ++launches;
      EXPECT_EQ(e.arg0, 64u);
    }
    if (e.kind == JournalEventKind::kKernelFinish) ++finishes;
    if (e.kind == JournalEventKind::kFlushBarrier) {
      ++flushes;
      EXPECT_EQ(e.arg1, 2048u);
    }
  }
  EXPECT_EQ(launches, 1u);
  EXPECT_EQ(finishes, 1u);
  EXPECT_EQ(flushes, 1u);
}

TEST(JournalTest, FaultRetryChainIsJournaled) {
  Rig rig(1u << 20);
  EventJournal j;
  rig.ctx.set_journal(&j);
  FaultConfig cfg;
  cfg.h2d_rate = 1.0;  // every attempt fails
  cfg.max_retries = 2;
  FaultInjector inj(cfg);
  rig.ctx.set_faults(&inj);
  const DevPtr p = rig.dev.alloc_static(256);
  char buf[256] = {};
  EXPECT_THROW((void)rig.ctx.stage_h2d(p, buf, sizeof buf), FaultError);

  std::uint64_t retries = 0, backoffs = 0, exhausted = 0;
  for (const JournalEvent& e : j.drain()) {
    const auto h2d = static_cast<std::uint64_t>(TimelineResource::kCopyH2d);
    if (e.kind == JournalEventKind::kFaultRetry) {
      ++retries;
      EXPECT_EQ(e.arg0, h2d);
    }
    if (e.kind == JournalEventKind::kFaultBackoff) ++backoffs;
    if (e.kind == JournalEventKind::kFaultExhausted) {
      ++exhausted;
      EXPECT_EQ(e.arg0, h2d);
      EXPECT_EQ(e.arg1, 2u);  // max_retries
    }
  }
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(backoffs, 2u);
  EXPECT_EQ(exhausted, 1u);
}

// ---- whole-run invariants ----

// The load-bearing regression: installing a journal must not perturb the
// simulation. Everything except host wall clock is compared through the
// full metrics serialization — bit-identical JSON.
TEST(JournalTest, JournalOnOffRunsAreBitIdentical) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(512u << 10, 42);
  apps::GpuConfig plain_cfg;
  apps::RunResult plain = app.run_gpu(input, plain_cfg);
  EventJournal j;
  apps::GpuConfig journal_cfg;
  journal_cfg.journal = &j;
  apps::RunResult recorded = app.run_gpu(input, journal_cfg);
  ASSERT_FALSE(plain.error);
  ASSERT_FALSE(recorded.error);
  EXPECT_GT(j.events_recorded(), 0u);
  // Host wall clock is the one legitimately differing field.
  plain.wall_seconds = 0;
  recorded.wall_seconds = 0;
  EXPECT_EQ(obs::to_json(plain).dump(), obs::to_json(recorded).dump());
}

TEST(JournalTest, SamplerEmitsOneOccupancySamplePerIteration) {
  apps::PageViewCountApp app;
  const std::string input = app.generate(512u << 10, 43);
  const apps::RunResult r = app.run_gpu(input, {});
  ASSERT_FALSE(r.error);
  ASSERT_GT(r.iterations, 0u);
  ASSERT_EQ(r.timeseries.size(), r.iterations);
  double prev_ts = 0;
  for (std::size_t i = 0; i < r.timeseries.size(); ++i) {
    const OccupancySample& s = r.timeseries[i];
    EXPECT_EQ(s.iteration, i + 1);
    EXPECT_GE(s.sim_ts, prev_ts);
    prev_ts = s.sim_ts;
    EXPECT_GT(s.pages_total, 0u);
    EXPECT_LE(s.pages_free, s.pages_total);
    EXPECT_GT(s.staging_slots, 0u);
    EXPECT_LE(s.staging_busy, s.staging_slots);
    EXPECT_GE(s.engine_end[0], 0.0);
  }
  // Samples ride into the metrics file as the v4 "timeseries" array.
  const obs::Json run_json = obs::to_json(r);
  ASSERT_TRUE(run_json["timeseries"].is_array());
  EXPECT_EQ(run_json["timeseries"].size(), r.timeseries.size());
}

}  // namespace
}  // namespace sepo::gpusim
