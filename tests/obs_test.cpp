// Telemetry-layer tests: the JSON writer/parser round-trips exactly, the
// metrics schema round-trips a real WordCount run, trace spans are monotone
// and well-nested on the simulated clock, recording never perturbs simulated
// results, and the X-macro-generated counter plumbing stays consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"
#include "gpusim/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sepo::obs {
namespace {

using apps::GpuConfig;
using apps::RunResult;

GpuConfig small_gpu() {
  GpuConfig cfg;
  cfg.device_bytes = 1u << 20;
  cfg.page_size = 4u << 10;
  cfg.num_buckets = 1u << 12;
  cfg.buckets_per_group = 256;
  return cfg;
}

// ---- JSON value tree ----

TEST(JsonTest, RoundTripsTypesExactly) {
  Json j = Json::object();
  j.set("u", std::uint64_t{18446744073709551615ull});  // > int64 max
  j.set("i", std::int64_t{-42});
  j.set("d", 0.125);
  j.set("s", "line\n\"quoted\"\t\\");
  j.set("b", true);
  j.set("n", nullptr);
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json::object().set("k", 3));
  j.set("a", std::move(arr));

  for (const int indent : {0, 2}) {
    std::string err;
    const auto back = Json::parse(j.dump(indent), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ((*back)["u"].as_u64(), 18446744073709551615ull);
    EXPECT_EQ((*back)["i"].as_i64(), -42);
    EXPECT_EQ((*back)["d"].as_double(), 0.125);
    EXPECT_EQ((*back)["s"].as_string(), "line\n\"quoted\"\t\\");
    EXPECT_TRUE((*back)["b"].as_bool());
    EXPECT_TRUE((*back)["n"].is_null());
    EXPECT_EQ((*back)["a"].size(), 3u);
    EXPECT_EQ((*back)["a"].at(1).as_string(), "two");
    EXPECT_EQ((*back)["a"].at(2)["k"].as_i64(), 3);
  }
}

TEST(JsonTest, PreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1).set("alpha", 2).set("mid", 3);
  const auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->items().size(), 3u);
  EXPECT_EQ(parsed->items()[0].first, "zebra");
  EXPECT_EQ(parsed->items()[1].first, "alpha");
  EXPECT_EQ(parsed->items()[2].first, "mid");
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("{", &err).has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1,}", &err).has_value());  // trailing comma
  EXPECT_FALSE(Json::parse("[1 2]", &err).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// ---- nearly_equal: the metrics-diff float comparison discipline ----

TEST(NearlyEqualTest, ExactAndRelativeMatches) {
  EXPECT_TRUE(nearly_equal(0.0, 0.0));
  EXPECT_TRUE(nearly_equal(1.5, 1.5));
  EXPECT_TRUE(nearly_equal(-3.25, -3.25));
  // A few ULP of drift at any magnitude stays within the default 1e-9.
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(nearly_equal(1e12, 1e12 * (1.0 + 1e-12)));
  EXPECT_TRUE(nearly_equal(1e-12, 1e-12 * (1.0 + 1e-12)));
}

TEST(NearlyEqualTest, RealDifferencesAreDetected) {
  EXPECT_FALSE(nearly_equal(1.0, 1.0001));
  EXPECT_FALSE(nearly_equal(1e12, 1.0001e12));  // relative, not absolute
  EXPECT_FALSE(nearly_equal(0.0, 1e-300));      // zero only equals zero
  EXPECT_FALSE(nearly_equal(1.0, -1.0));
}

TEST(NearlyEqualTest, CustomEpsilonAndNonFinite) {
  EXPECT_TRUE(nearly_equal(100.0, 101.0, 0.02));
  EXPECT_FALSE(nearly_equal(100.0, 103.0, 0.02));
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(nearly_equal(inf, inf));  // a == b short-circuit
  EXPECT_FALSE(nearly_equal(inf, -inf));
  EXPECT_FALSE(nearly_equal(inf, 1.0));
  EXPECT_FALSE(nearly_equal(nan, nan));
  EXPECT_FALSE(nearly_equal(nan, 0.0));
}

// ---- metrics schema over a real run ----

class WordCountMetrics : public ::testing::Test {
 protected:
  static const RunResult& run() {
    static const RunResult r = [] {
      const auto& app = apps::word_count_app();
      const std::string input = app.generate(256u << 10, 7);
      return apps::run_mr_sepo(app, input, small_gpu());
    }();
    return r;
  }
};

TEST_F(WordCountMetrics, MetricsFileParsesAndCountersRoundTrip) {
  MetricsReport report("obs_test");
  Json extra = Json::object();
  extra.set("dataset", 1);
  report.add_run("wc", run(), std::move(extra));

  std::string err;
  const auto parsed = Json::parse(report.to_json().dump(2), &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  const Json& m = *parsed;
  EXPECT_EQ(m["schema_version"].as_i64(), kMetricsSchemaVersion);
  EXPECT_EQ(m["tool"].as_string(), "obs_test");
  ASSERT_EQ(m["runs"].size(), 1u);
  const Json& r = m["runs"].at(0);
  EXPECT_EQ(r["app"].as_string(), "wc");
  EXPECT_EQ(r["impl"].as_string(), "sepo-mr");
  EXPECT_EQ(r["dataset"].as_i64(), 1);
  EXPECT_GT(r["sim_seconds"].as_double(), 0.0);

  // Every generated counter field must round-trip bit-exactly.
  const Json& stats = r["stats"];
  std::size_t fields = 0;
  run().stats.for_each_field([&](const char* name, std::uint64_t v) {
    ++fields;
    ASSERT_TRUE(stats[name].is_number()) << name;
    EXPECT_EQ(stats[name].as_u64(), v) << name;
  });
  EXPECT_EQ(stats.size(), fields);

  // Checksum survives as a 16-digit hex string.
  const std::string hex = r["checksum_hex"].as_string();
  ASSERT_EQ(hex.size(), 16u);
  EXPECT_EQ(std::stoull(hex, nullptr, 16), run().checksum);

  // Per-iteration profiles made it through with sane invariants.
  ASSERT_EQ(r["iteration_profiles"].size(), run().iterations);
  std::uint64_t processed = 0;
  for (const Json& p : r["iteration_profiles"].elements()) {
    const double rate = p["postpone_rate"].as_double();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    processed += p["records_processed"].as_u64();
  }
  EXPECT_EQ(processed, run().stats.records_processed);

  // The bucket histogram accounts for every bucket, and its chain lengths
  // cannot exceed the distinct key count (the last bin aggregates longer
  // chains, so the weighted sum is a lower bound on keys).
  std::uint64_t entries_lb = 0, buckets = 0;
  const auto& hist = r["bucket_histogram"].elements();
  ASSERT_FALSE(hist.empty());
  for (std::size_t len = 0; len < hist.size(); ++len) {
    buckets += hist[len].as_u64();
    entries_lb += hist[len].as_u64() * len;
  }
  EXPECT_EQ(buckets, small_gpu().num_buckets);
  EXPECT_LE(entries_lb, run().keys);
  EXPECT_GT(entries_lb, 0u);

  // The validator the CLI uses agrees.
  EXPECT_TRUE(m["runs"].at(0)["wall_seconds_host"].is_number());
}

// ---- simulated-time tracing ----

class TracedRun : public ::testing::Test {
 protected:
  // TraceRecorder holds a mutex (non-movable), so the shared instance is
  // built in place and populated once.
  static const TraceRecorder& rec() {
    static TraceRecorder* r = [] {
      auto* rec = new TraceRecorder;
      const auto& app = apps::word_count_app();
      const std::string input = app.generate(256u << 10, 7);
      GpuConfig cfg = small_gpu();
      cfg.trace = rec;
      (void)apps::run_mr_sepo(app, input, cfg);
      return rec;
    }();
    return *r;
  }
};

TEST_F(TracedRun, SpansAreMonotoneAndNonOverlappingPerTrack) {
  std::map<int, std::vector<const TraceRecorder::Span*>> by_track;
  for (const auto& s : rec().spans()) by_track[s.track].push_back(&s);
  ASSERT_FALSE(by_track.empty());
  // Device activity must include kernels, h2d staging, and iterations.
  EXPECT_TRUE(by_track.count(TraceRecorder::kTrackKernel));
  EXPECT_TRUE(by_track.count(TraceRecorder::kTrackH2d));
  EXPECT_TRUE(by_track.count(TraceRecorder::kTrackIteration));

  for (auto& [track, spans] : by_track) {
    std::vector<const TraceRecorder::Span*> sorted = spans;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->ts_us < b->ts_us; });
    // Emission order is already simulated-time order.
    EXPECT_EQ(sorted, spans) << "track " << track;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      EXPECT_LE(sorted[i]->ts_us + sorted[i]->dur_us,
                sorted[i + 1]->ts_us + 1e-6)
          << "track " << track << " span " << i;
    }
    for (const auto* s : sorted) EXPECT_GE(s->dur_us, 0.0);
  }
}

TEST_F(TracedRun, KernelSpansNestInsideIterationSpans) {
  std::vector<const TraceRecorder::Span*> iters;
  for (const auto& s : rec().spans())
    if (s.track == TraceRecorder::kTrackIteration) iters.push_back(&s);
  ASSERT_FALSE(iters.empty());
  for (const auto& s : rec().spans()) {
    if (s.track != TraceRecorder::kTrackKernel) continue;
    const bool inside = std::any_of(
        iters.begin(), iters.end(), [&](const TraceRecorder::Span* it) {
          return s.ts_us >= it->ts_us - 1e-6 &&
                 s.ts_us + s.dur_us <= it->ts_us + it->dur_us + 1e-6;
        });
    EXPECT_TRUE(inside) << "kernel span at " << s.ts_us;
  }
}

TEST_F(TracedRun, TraceJsonIsChromeLoadable) {
  std::string err;
  const auto parsed = Json::parse(rec().trace_json().dump(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const Json& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());
  std::size_t spans = 0, metadata = 0, counters = 0;
  for (const Json& e : events.elements()) {
    const std::string& ph = e["ph"].as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "i") continue;  // section labels
    if (ph == "C") {          // occupancy counter tracks (PR 7 sampler)
      ++counters;
      EXPECT_TRUE(e["ts"].is_number());
      EXPECT_TRUE(e["args"].is_object());
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++spans;
    EXPECT_TRUE(e["ts"].is_number());
    EXPECT_TRUE(e["dur"].is_number());
    EXPECT_GE(e["tid"].as_i64(), 1);
    EXPECT_LE(e["tid"].as_i64(), 6);
  }
  EXPECT_EQ(spans, rec().spans().size());
  EXPECT_GE(metadata, 2u);  // process_name + at least one thread_name
  // Each occupancy sample renders as two counter events (heap pages +
  // staging in flight).
  EXPECT_EQ(counters, rec().counter_samples().size() * 2);
  EXPECT_GT(counters, 0u);
}

TEST_F(TracedRun, H2dStagingOverlapsComputeInTrace) {
  // BigKernel double-buffering must be visible in the trace: some staging
  // copy runs concurrently with some kernel (the intervals intersect with
  // positive measure). The old analytic model assumed this; the timeline
  // has to earn it from the ring dependencies.
  std::vector<const TraceRecorder::Span*> kernels, h2d;
  for (const auto& s : rec().spans()) {
    if (s.track == TraceRecorder::kTrackKernel) kernels.push_back(&s);
    if (s.track == TraceRecorder::kTrackH2d) h2d.push_back(&s);
  }
  ASSERT_GT(kernels.size(), 1u);
  ASSERT_GT(h2d.size(), 1u);
  bool overlapped = false;
  for (const auto* c : h2d)
    for (const auto* k : kernels) {
      const double lo = std::max(c->ts_us, k->ts_us);
      const double hi =
          std::min(c->ts_us + c->dur_us, k->ts_us + k->dur_us);
      if (hi - lo > 1e-9) overlapped = true;
    }
  EXPECT_TRUE(overlapped);
}

TEST(MetricsDeterminism, IdenticalRunsExportBitIdenticalJson) {
  // Two identical runs must serialize to byte-identical metrics JSON.
  // pool_workers=1 pins the host interleaving (lock_contended and
  // atomic_retries are scheduling-dependent with more workers); the host
  // wall clock is zeroed as the one intentionally host-dependent field.
  auto run_once = [] {
    const auto& app = apps::word_count_app();
    const std::string input = app.generate(128u << 10, 13);
    GpuConfig cfg = small_gpu();
    cfg.pool_workers = 1;
    RunResult r = apps::run_mr_sepo(app, input, cfg);
    r.wall_seconds = 0;
    return r;
  };
  const RunResult a = run_once();
  const RunResult b = run_once();

  MetricsReport ra("determinism"), rb("determinism");
  ra.add_run("wc", a);
  rb.add_run("wc", b);
  EXPECT_EQ(ra.to_json().dump(2), rb.to_json().dump(2));
  // The timeline itself is part of that guarantee.
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.timeline.total, b.timeline.total);
  EXPECT_EQ(a.timeline.commands, b.timeline.commands);
}

TEST(TraceDeterminism, SimulatedResultsIdenticalWithAndWithoutTracing) {
  const auto& app = apps::word_count_app();
  const std::string input = app.generate(256u << 10, 11);

  const RunResult plain = apps::run_mr_sepo(app, input, small_gpu());
  TraceRecorder rec;
  GpuConfig cfg = small_gpu();
  cfg.trace = &rec;
  const RunResult traced = apps::run_mr_sepo(app, input, cfg);

  // Bit-identical, not approximately equal: recording must not perturb the
  // simulation.
  EXPECT_EQ(plain.sim_seconds, traced.sim_seconds);
  EXPECT_EQ(plain.checksum, traced.checksum);
  EXPECT_EQ(plain.stats, traced.stats);
  EXPECT_EQ(plain.iterations, traced.iterations);
  EXPECT_FALSE(rec.spans().empty());
  EXPECT_GT(rec.timeline_end_seconds(), 0.0);
}

// ---- X-macro counter plumbing ----

TEST(StatsFields, GeneratedPlumbingIsConsistent) {
  gpusim::StatsSnapshot a{};
  std::size_t n = 0;
  a.for_each_field([&](const char*, std::uint64_t) { ++n; });
  EXPECT_EQ(n, 26u);  // update alongside SEPO_STATS_FIELDS

  gpusim::RunStats stats;
  stats.add_hash_ops(3);
  stats.add_records_processed();
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.hash_ops, 3u);
  EXPECT_EQ(snap.records_processed, 1u);

  const auto sum = snap + snap;
  EXPECT_EQ(sum.hash_ops, 6u);
  const auto diff = sum - snap;
  EXPECT_EQ(diff, snap);
#ifdef NDEBUG
  EXPECT_EQ(snap - sum, gpusim::StatsSnapshot{});  // saturating in release
#else
  // Debug builds assert on saturation: a shrinking counter means the deltas
  // were taken at the wrong observation points.
  EXPECT_DEATH(snap - sum, "saturated");
#endif

  stats.reset();
  EXPECT_EQ(stats.snapshot(), gpusim::StatsSnapshot{});
}

}  // namespace
}  // namespace sepo::obs
