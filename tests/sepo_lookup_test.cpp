// Tests for the SEPO lookup engine (core/sepo_lookup.hpp): phase-2 lookups
// on a host-resident table larger than device memory, answered by staging
// bucket segments and postponing queries for non-resident portions.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/random.hpp"
#include "core/sepo_driver.hpp"
#include "core/sepo_lookup.hpp"
#include "test_util.hpp"

namespace sepo::core {
namespace {

using test::Rig;

// Populates a combining table (via the SEPO insert path) and returns it.
struct PopulatedTable {
  PopulatedTable(std::size_t device_bytes, std::size_t n_keys,
                 std::uint64_t seed)
      : rig(device_bytes) {
    bigkernel::PipelineConfig pcfg;
    pcfg.records_per_chunk = 512;
    pcfg.max_chunk_bytes = 32u << 10;
    pcfg.num_staging_buffers = 2;
    pipe = std::make_unique<bigkernel::InputPipeline>(rig.ctx, pcfg);
    HashTableConfig cfg;
    cfg.num_buckets = 1u << 10;
    cfg.buckets_per_group = 128;
    cfg.page_size = 2u << 10;
    cfg.combiner = combine_sum_u64;
    ht = std::make_unique<SepoHashTable>(rig.ctx, cfg);

    Rng rng(seed);
    std::ostringstream os;
    for (std::size_t i = 0; i < 4 * n_keys; ++i) {
      const std::uint64_t k = rng.below(n_keys);
      os << "key-" << k << '\n';
      ref["key-" + std::to_string(k)] += 1;
    }
    input = os.str();
    const RecordIndex idx = index_lines(input);
    ProgressTracker progress(idx.size());
    SepoDriver driver;
    iterations = driver
                     .run(*ht, *pipe, input, idx, progress,
                          [&](std::size_t, std::string_view body) {
                            return ht->insert_u64(body, 1);
                          })
                     .iterations;
    table = std::make_unique<HostTable>(ht->finalize());
  }

  Rig rig;
  std::unique_ptr<bigkernel::InputPipeline> pipe;
  std::unique_ptr<SepoHashTable> ht;
  std::unique_ptr<HostTable> table;
  std::unordered_map<std::string, std::uint64_t> ref;
  std::string input;
  std::uint32_t iterations = 0;
};

TEST(SepoLookupTest, AnswersEveryQueryCorrectly) {
  PopulatedTable pt(448u << 10, /*n_keys=*/12000, 1);
  ASSERT_GT(pt.iterations, 1u);  // the table genuinely exceeded the device

  // Lookups run on a fresh, smaller device — the table must not fit.
  Rig rig(64u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  ASSERT_GT(engine.segment_count(), 1u)
      << "table must span multiple segments for this test";

  std::vector<std::string> queries;
  Rng rng(2);
  for (int i = 0; i < 3000; ++i)
    queries.push_back("key-" + std::to_string(rng.below(16000)));  // some miss
  std::vector<std::optional<std::vector<std::byte>>> out;
  const LookupBatchResult res = engine.lookup_values(queries, out);

  ASSERT_EQ(out.size(), queries.size());
  std::uint64_t found = 0, missing = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto it = pt.ref.find(queries[i]);
    if (it == pt.ref.end()) {
      EXPECT_FALSE(out[i].has_value()) << queries[i];
      ++missing;
    } else {
      ASSERT_TRUE(out[i].has_value()) << queries[i];
      std::uint64_t v = 0;
      std::memcpy(&v, out[i]->data(), 8);
      EXPECT_EQ(v, it->second) << queries[i];
      ++found;
    }
  }
  EXPECT_EQ(res.found, found);
  EXPECT_EQ(res.missing, missing);
  EXPECT_GT(res.iterations, 1u);  // several segments had pending queries
}

TEST(SepoLookupTest, PostponesQueriesForNonResidentSegments) {
  PopulatedTable pt(448u << 10, 12000, 3);
  Rig rig(96u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  std::vector<std::string> queries{"key-1", "key-2", "key-3", "key-4"};
  std::vector<std::optional<std::vector<std::byte>>> out;
  (void)engine.lookup_values(queries, out);
  // With >1 segments and queries spread by hash, some executions were
  // declined because the portion was not resident.
  EXPECT_GT(rig.stats.snapshot().records_postponed, 0u);
}

TEST(SepoLookupTest, SegmentsWithoutQueriesAreSkipped) {
  PopulatedTable pt(448u << 10, 12000, 4);
  Rig rig(64u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  ASSERT_GT(engine.segment_count(), 2u);
  // One query -> exactly one segment is relevant; the rest must be skipped
  // without staging.
  std::vector<std::string> queries{"key-42"};
  std::vector<std::optional<std::vector<std::byte>>> out;
  const LookupBatchResult res = engine.lookup_values(queries, out);
  EXPECT_EQ(res.iterations, 1u);  // exactly one segment was staged
  // Earlier segments are skipped without staging; once the query is
  // answered the batch stops early, so later ones are never visited.
  EXPECT_LE(res.segments_skipped, res.segments - 1);
  EXPECT_LT(res.staged_bytes, engine.serialized_bytes());
}

TEST(SepoLookupTest, StagingIsMeteredAsBulkTransfers) {
  PopulatedTable pt(512u << 10, 4000, 5);
  Rig rig(128u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  std::vector<std::string> queries;
  for (int i = 0; i < 500; ++i) queries.push_back("key-" + std::to_string(i));
  std::vector<std::optional<std::vector<std::byte>>> out;
  const LookupBatchResult res = engine.lookup_values(queries, out);
  const auto p = rig.dev.bus().snapshot();
  EXPECT_EQ(p.h2d_bytes, res.staged_bytes);
  EXPECT_EQ(p.h2d_txns, res.iterations);  // one bulky DMA per staged segment
  EXPECT_EQ(p.remote_txns, 0u);           // never touches host memory remotely
}

TEST(SepoLookupTest, GroupLookupsOnMultiValuedTable) {
  Rig rig(1u << 20);
  bigkernel::PipelineConfig pcfg;
  pcfg.records_per_chunk = 256;
  pcfg.max_chunk_bytes = 16u << 10;
  pcfg.num_staging_buffers = 2;
  bigkernel::InputPipeline pipe(rig.ctx, pcfg);
  HashTableConfig cfg;
  cfg.org = Organization::kMultiValued;
  cfg.num_buckets = 1u << 9;
  cfg.buckets_per_group = 64;
  cfg.page_size = 2u << 10;
  SepoHashTable ht(rig.ctx, cfg);

  std::ostringstream os;
  std::map<std::string, std::multiset<std::string>> ref;
  for (int i = 0; i < 4000; ++i) {
    const std::string k = "grp-" + std::to_string(i % 300);
    const std::string v = "val-" + std::to_string(i);
    os << k << ' ' << v << '\n';
    ref[k].insert(v);
  }
  const std::string input = os.str();
  const RecordIndex idx = index_lines(input);
  ProgressTracker progress(idx.size());
  SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t, std::string_view body) {
                     const auto sp = body.find(' ');
                     return ht.insert(
                         body.substr(0, sp),
                         std::as_bytes(std::span{body.data() + sp + 1,
                                                 body.size() - sp - 1}));
                   });
  const HostTable table = ht.finalize();

  Rig lrig(64u << 10);
  SepoLookupEngine engine(lrig.ctx, table);
  std::vector<std::string> queries{"grp-0", "grp-299", "grp-77", "absent"};
  std::vector<std::optional<std::vector<std::vector<std::byte>>>> out;
  const LookupBatchResult res = engine.lookup_groups(queries, out);
  EXPECT_EQ(res.found, 3u);
  EXPECT_EQ(res.missing, 1u);
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(out[q].has_value()) << queries[q];
    std::multiset<std::string> got;
    for (const auto& v : *out[q])
      got.insert(std::string(reinterpret_cast<const char*>(v.data()),
                             v.size()));
    EXPECT_EQ(got, ref[queries[q]]) << queries[q];
  }
  EXPECT_FALSE(out[3].has_value());
}

TEST(SepoLookupTest, WrongOrganizationRejected) {
  PopulatedTable pt(512u << 10, 100, 6);
  Rig rig(64u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  std::vector<std::string> queries{"key-1"};
  std::vector<std::optional<std::vector<std::vector<std::byte>>>> out;
  EXPECT_THROW((void)engine.lookup_groups(queries, out), std::logic_error);
}

TEST(SepoLookupTest, EmptyQueryBatch) {
  PopulatedTable pt(512u << 10, 100, 7);
  Rig rig(64u << 10);
  SepoLookupEngine engine(rig.ctx, *pt.table);
  std::vector<std::string> queries;
  std::vector<std::optional<std::vector<std::byte>>> out;
  const LookupBatchResult res = engine.lookup_values(queries, out);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_EQ(res.found + res.missing, 0u);
}

}  // namespace
}  // namespace sepo::core
