// Unit tests for the virtual-GPU substrate: thread pool, device memory,
// kernel launch, device locks, PCIe metering, cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/pcie.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::gpusim {
namespace {

// ---- thread pool ----

TEST(ThreadPoolTest, ParallelForVisitsEachItemOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(97, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 97);
  }
}

TEST(ThreadPoolTest, RunPartiesGivesDistinctIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(8);
  pool.run_parties(8, [&](std::size_t party) { seen[party].fetch_add(1); });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, StdFunctionOverloadStillWorks) {
  // The type-erased overloads are the ABI-stable entry points; make sure
  // overload resolution actually reaches them and they behave identically.
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    sum.fetch_add(i + 1);
  };
  pool.parallel_for(100, body);
  EXPECT_EQ(sum.load(), 100u * 101u / 2);
  sum.store(0);
  pool.run_parties(5, body);
  EXPECT_EQ(sum.load(), 1u + 2 + 3 + 4 + 5);
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  // current_worker_index() addresses WorkerStats shards sized to
  // worker_count(); an out-of-range index would corrupt neighboring memory.
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  std::vector<std::atomic<int>> seen(pool.worker_count());
  pool.parallel_for(100000, [&](std::size_t) {
    const std::size_t w = current_worker_index();
    if (w >= seen.size())
      bad.fetch_add(1);
    else
      seen[w].fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(seen[0].load(), 0) << "submitting thread participates as 0";
}

TEST(ThreadPoolTest, StressReuseManyRoundsVaryingSizes) {
  // Rapid-fire reuse across wildly varying job sizes: exercises the
  // publish/claim/drain handshake (job_seq_, in_flight, cv_done_) under the
  // tsan preset via the sanitize label.
  ThreadPool pool(4);
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = static_cast<std::size_t>((round * 37) % 613) + 1;
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerializeSafely) {
  // parallel_for from several foreign threads at once: the pool's single job
  // slot must serialize them without losing items or tearing a live Job.
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 50;
  std::vector<std::atomic<std::size_t>> sums(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t n = static_cast<std::size_t>(100 + s * 13 + round);
        pool.parallel_for(n,
                          [&](std::size_t i) { sums[s].fetch_add(i + 1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    std::size_t expect = 0;
    for (int round = 0; round < kRounds; ++round) {
      const std::size_t n = static_cast<std::size_t>(100 + s * 13 + round);
      expect += n * (n + 1) / 2;
    }
    EXPECT_EQ(sums[s].load(), expect) << "submitter " << s;
  }
}

TEST(ThreadPoolTest, InterleavedParallelForAndParties) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(501, [&](std::size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 501u * 500u / 2);
    std::vector<std::atomic<int>> seen(4);
    pool.run_parties(4, [&](std::size_t p) { seen[p].fetch_add(1); });
    for (auto& s : seen) ASSERT_EQ(s.load(), 1);
  }
}

// ---- device ----

TEST(DeviceTest, StaticAllocationsAreAlignedAndDisjoint) {
  Device dev(1u << 20);
  const DevPtr a = dev.alloc_static(100, 8);
  const DevPtr b = dev.alloc_static(100, 64);
  EXPECT_NE(a, kDevNull);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(DeviceTest, NullOffsetNeverAllocated) {
  Device dev(1u << 16);
  EXPECT_GE(dev.alloc_static(8), 64u);  // first 64 bytes burned for null
}

TEST(DeviceTest, ThrowsWhenExhausted) {
  Device dev(4096);
  (void)dev.alloc_static(3000);
  EXPECT_THROW((void)dev.alloc_static(3000), std::bad_alloc);
}

TEST(DeviceTest, OutOfMemoryCarriesDiagnostics) {
  Device dev(4096);
  (void)dev.alloc_static(3000);
  try {
    (void)dev.alloc_static(2000);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 2000u);
    EXPECT_GE(e.used(), 3000u);  // includes the burned null region
    EXPECT_EQ(e.capacity(), 4096u);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2000"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4096"), std::string::npos) << msg;
  }
}

TEST(DeviceTest, MemFreeAccountsForAlignment) {
  Device dev(1u << 16);
  (void)dev.alloc_static(100);
  const std::size_t free = dev.mem_free(64);
  // The next 64-aligned allocation of exactly `free` bytes must succeed.
  EXPECT_NO_THROW((void)dev.alloc_static(free, 64));
  EXPECT_THROW((void)dev.alloc_static(1), std::bad_alloc);
}

TEST(DeviceTest, CopiesAreMeteredOnTheBus) {
  Device dev(1u << 16);
  const DevPtr p = dev.alloc_static(256);
  char host[256] = {42};
  dev.copy_h2d(p, host, 256);
  char back[256] = {};
  dev.copy_d2h(back, p, 128);
  const PcieSnapshot s = dev.bus().snapshot();
  EXPECT_EQ(s.h2d_bytes, 256u);
  EXPECT_EQ(s.h2d_txns, 1u);
  EXPECT_EQ(s.d2h_bytes, 128u);
  EXPECT_EQ(back[0], 42);
}

// ---- launch ----

TEST(LaunchTest, GridStrideCoversAllItems) {
  ThreadPool pool(2);
  RunStats stats;
  std::vector<std::atomic<int>> hits(10000);
  launch(pool, stats, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
         {.grid_threads = 64});
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_EQ(stats.snapshot().kernel_launches, 1u);
}

TEST(LaunchTest, DefaultGridIsOneThreadPerItem) {
  ThreadPool pool(2);
  RunStats stats;
  std::atomic<int> n{0};
  launch(pool, stats, 100, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
}

TEST(DeviceLockTest, MutualExclusion) {
  ThreadPool pool(4);
  RunStats stats;
  DeviceLock lock;
  std::int64_t counter = 0;  // protected by `lock`
  pool.parallel_for(20000, [&](std::size_t) {
    DeviceLockGuard g(lock, stats);
    ++counter;
  });
  EXPECT_EQ(counter, 20000);
  EXPECT_EQ(stats.snapshot().lock_acquires, 20000u);
}

TEST(DeviceLockTest, BackoffUnderHeavyContentionStaysExact) {
  // Many more virtual threads than workers, all hammering one lock: the
  // bounded-exponential-backoff path must preserve mutual exclusion and
  // exact accounting.
  ThreadPool pool(8);
  RunStats stats;
  DeviceLock lock;
  std::int64_t counter = 0;  // protected by `lock`
  launch(pool, stats, 50000,
         [&](std::size_t) {
           DeviceLockGuard g(lock, stats);
           ++counter;
         },
         {.grid_threads = 512});
  EXPECT_EQ(counter, 50000);
  EXPECT_EQ(stats.snapshot().lock_acquires, 50000u);
}

TEST(DeviceLockTest, ContendedAcquireBacksOffUntilReleased) {
  // Deterministic contention (host core count notwithstanding): the main
  // thread holds the lock until the waiter has provably entered the backoff
  // loop (lock_contended is recorded before the first retry spin).
  RunStats stats;
  DeviceLock lock;
  lock.lock(stats);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock(stats);
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  while (stats.snapshot().lock_contended == 0) std::this_thread::yield();
  // The waiter is spinning in the backoff loop; mutual exclusion holds.
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
  EXPECT_EQ(stats.snapshot().lock_acquires, 2u);
  EXPECT_EQ(stats.snapshot().lock_contended, 1u);
}

TEST(DeviceLockTest, TryLockReportsHeldState) {
  RunStats stats;
  DeviceLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ---- pcie ----

TEST(PcieTest, BulkTimeIsLatencyPlusBandwidth) {
  PcieBus bus({.bandwidth_bytes_per_s = 1e9, .latency_s = 1e-6});
  // 10 txns x 1us + 1e6 bytes / 1e9 B/s = 10us + 1000us
  EXPECT_NEAR(bus.bulk_time(1000000, 10), 1.01e-3, 1e-9);
}

TEST(PcieTest, CountersAccumulate) {
  PcieBus bus;
  bus.h2d(100);
  bus.h2d(200);
  bus.d2h(50);
  bus.remote(8);
  bus.remote(8);
  const PcieSnapshot s = bus.snapshot();
  EXPECT_EQ(s.h2d_bytes, 300u);
  EXPECT_EQ(s.h2d_txns, 2u);
  EXPECT_EQ(s.d2h_txns, 1u);
  EXPECT_EQ(s.remote_bytes, 16u);
  EXPECT_EQ(s.remote_txns, 2u);
}

TEST(PcieTest, RemoteAccessesCostMoreThanBulkPerByte) {
  PcieBus bus;
  const double bulk = bus.bulk_time(1u << 20, 1);
  const double remote = bus.remote_time(1u << 20, 16384);  // 64B txns
  EXPECT_GT(remote, bulk * 5);
}

// ---- cost model ----

TEST(CostModelTest, MoreWorkCostsMoreTime) {
  StatsSnapshot a, b;
  a.work_units = 1000;
  b.work_units = 2000;
  EXPECT_LT(compute_time(kGpuDesc, a), compute_time(kGpuDesc, b));
  EXPECT_LT(compute_time(kCpuDesc, a), compute_time(kCpuDesc, b));
}

TEST(CostModelTest, GpuBeatsCpuOnRawThroughput) {
  StatsSnapshot s;
  s.work_units = 100u << 20;
  EXPECT_LT(compute_time(kGpuDesc, s), compute_time(kCpuDesc, s));
}

TEST(CostModelTest, DivergenceOnlyHurtsTheGpu) {
  StatsSnapshot s;
  s.divergent_units = 1u << 20;
  EXPECT_GT(compute_time(kGpuDesc, s), 0.0);
  EXPECT_EQ(compute_time(kCpuDesc, s), 0.0);
}

TEST(CostModelTest, H2dOverlapsComputeButD2hDoesNot) {
  StatsSnapshot s;
  s.work_units = 24u << 20;  // 1ms of GPU compute at 24 GB/s
  PcieBus bus;
  PcieSnapshot p;
  p.h2d_bytes = 6u << 20;  // 0.5ms of transfer: hidden under compute
  p.h2d_txns = 6;
  const GpuTimeBreakdown b1 = gpu_time(kGpuDesc, s, bus, p);
  EXPECT_NEAR(b1.total, b1.compute, b1.compute * 0.01);
  p.d2h_bytes = 6u << 20;  // flushes serialize
  p.d2h_txns = 6;
  const GpuTimeBreakdown b2 = gpu_time(kGpuDesc, s, bus, p);
  EXPECT_GT(b2.total, b1.total);
}

TEST(CostModelTest, HotLockSerializationKicksInAboveFairShare) {
  SerializationInputs fair{.total_lock_ops = 2048 * 100,
                           .max_same_lock_ops = 100,
                           .serial_atomic_ops = 0};
  EXPECT_EQ(serialization_time(kGpuDesc, fair), 0.0);
  SerializationInputs hot{.total_lock_ops = 2048 * 100,
                          .max_same_lock_ops = 50000,
                          .serial_atomic_ops = 0};
  EXPECT_GT(serialization_time(kGpuDesc, hot), 0.0);
}

TEST(CostModelTest, CpuToleratesHotterLocksThanGpu) {
  // The same hot-key distribution hurts a 2048-context device long before an
  // 8-thread CPU (paper §VI-B on Word Count).
  SerializationInputs s{.total_lock_ops = 100000,
                        .max_same_lock_ops = 7000,
                        .serial_atomic_ops = 0};
  EXPECT_GT(serialization_time(kGpuDesc, s), serialization_time(kCpuDesc, s));
}

TEST(CostModelTest, SerialAtomicsArePureOverhead) {
  SerializationInputs s{.total_lock_ops = 0,
                        .max_same_lock_ops = 0,
                        .serial_atomic_ops = 1000000};
  EXPECT_NEAR(serialization_time(kGpuDesc, s),
              1e6 * kGpuDesc.sec_per_serial_atomic, 1e-12);
}

}  // namespace
}  // namespace sepo::gpusim
