// Ablation — cost-model sensitivity.
//
// The benches report simulated time: measured event counts priced by the
// machine descriptions in gpusim/cost_model.hpp. This ablation stresses the
// reproduction's validity claim (DESIGN.md §1): the *qualitative* Figure 6
// result — Inverted Index at the bottom, Word Count weakest among the
// MapReduce apps, the combining-heavy apps on top, GPU winning on average —
// must survive large perturbations of the unit costs. Each application runs
// ONCE; the recorded counts are then re-priced under each scenario.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"
#include "gpusim/cost_model.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

// Scales the aggregate compute throughput of a machine (f > 1 = faster).
gpusim::MachineDesc scale_compute(gpusim::MachineDesc m, double f) {
  m.sec_per_work_unit /= f;
  m.sec_per_hash_op /= f;
  m.sec_per_compare_byte /= f;
  m.sec_per_chain_link /= f;
  m.sec_per_alloc /= f;
  m.sec_per_lock /= f;
  m.sec_per_divergent_unit /= f;
  return m;
}

gpusim::MachineDesc scale_serialization(gpusim::MachineDesc m, double f) {
  m.sec_per_critical_section *= f;
  m.sec_per_serial_atomic *= f;
  return m;
}

struct AppRun {
  std::string name;
  RunResult gpu, cpu;
};

double reprice_speedup(const AppRun& r, const gpusim::MachineDesc& gdesc,
                       const gpusim::MachineDesc& cdesc) {
  const gpusim::PcieBus bus;  // default parameters for transfer repricing
  const auto b = gpusim::gpu_time(gdesc, r.gpu.stats, bus, r.gpu.pcie);
  const double gpu_t =
      b.total + gpusim::serialization_time(gdesc, r.gpu.serial);
  const double cpu_t = gpusim::cpu_time(cdesc, r.cpu.stats) +
                       gpusim::serialization_time(cdesc, r.cpu.serial);
  return cpu_t / gpu_t;
}

}  // namespace

int main() {
  std::printf("== Ablation: cost-model sensitivity (does the Figure 6 shape "
              "survive unit-cost perturbations?) ==\n\n");

  // One real execution per app at dataset #2 (fast, still multi-iteration
  // for the bulky apps).
  std::vector<AppRun> runs;
  {
    PageViewCountApp pvc;
    InvertedIndexApp ii;
    DnaAssemblyApp dna;
    NetflixApp netflix;
    for (const StandaloneApp* app :
         std::initializer_list<const StandaloneApp*>{&netflix, &dna, &pvc,
                                                     &ii}) {
      const std::string input =
          app->generate(table1_bytes(app->table1_key(), 2), 88);
      runs.push_back({app->name(), app->run_gpu(input), app->run_cpu(input)});
    }
  }
  for (const MrApp* app :
       {&word_count_app(), &patent_citation_app(), &geo_location_app()}) {
    const std::string input = app->generate(table1_bytes(app->table1_key, 2), 88);
    runs.push_back({app->name, run_mr_sepo(*app, input),
                    run_mr_phoenix(*app, input)});
  }

  struct Scenario {
    const char* name;
    gpusim::MachineDesc gpu;
    gpusim::MachineDesc cpu;
  };
  const Scenario scenarios[] = {
      {"baseline", gpusim::kGpuDesc, gpusim::kCpuDesc},
      {"gpu 2x slower", scale_compute(gpusim::kGpuDesc, 0.5), gpusim::kCpuDesc},
      {"gpu 2x faster", scale_compute(gpusim::kGpuDesc, 2.0), gpusim::kCpuDesc},
      {"cpu 2x slower", gpusim::kGpuDesc, scale_compute(gpusim::kCpuDesc, 0.5)},
      {"cpu 2x faster", gpusim::kGpuDesc, scale_compute(gpusim::kCpuDesc, 2.0)},
      {"locks 2x costlier", scale_serialization(gpusim::kGpuDesc, 2.0),
       scale_serialization(gpusim::kCpuDesc, 2.0)},
      {"locks 2x cheaper", scale_serialization(gpusim::kGpuDesc, 0.5),
       scale_serialization(gpusim::kCpuDesc, 0.5)},
  };

  std::vector<std::string> headers{"scenario"};
  for (const AppRun& r : runs) headers.push_back(r.name);
  headers.push_back("II lowest?");
  headers.push_back("avg");
  TablePrinter table(headers);

  for (const Scenario& sc : scenarios) {
    std::vector<std::string> row{sc.name};
    double min_speedup = 1e9, ii_speedup = 0, sum = 0;
    for (const AppRun& r : runs) {
      const double s = reprice_speedup(r, sc.gpu, sc.cpu);
      row.push_back(TablePrinter::fmt(s, 2));
      min_speedup = std::min(min_speedup, s);
      sum += s;
      if (r.name == std::string("Inverted Index")) ii_speedup = s;
    }
    row.push_back(ii_speedup <= min_speedup + 1e-9 ? "yes" : "NO");
    row.push_back(TablePrinter::fmt(sum / static_cast<double>(runs.size()), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nexpected shape: across every scenario the bottom two stay "
              "{Inverted Index, Word Count} (they may trade places when lock "
              "costs are perturbed — both are the paper's \"do not perform "
              "as well\" pair), the combining-heavy apps (Netflix, DNA) stay "
              "on top, and the average stays well above 1. The paper-shape "
              "conclusions do not hinge on the exact unit costs.\n");
  return 0;
}
