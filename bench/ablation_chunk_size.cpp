// Ablation — BigKernel chunk size (the input-pipeline substrate, §V / [10]).
//
// Small chunks pay per-transfer latency and per-kernel-launch overhead many
// times over; large chunks amortize both but claim more device memory for
// staging (shrinking the heap) and coarsen the skip-done-chunks
// optimization on later SEPO iterations. The sweep runs PVC dataset #4.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

int main() {
  std::printf("== Ablation: BigKernel chunk size (input staging pipeline) "
              "==\n\n");
  PageViewCountApp pvc;
  const std::string input = pvc.generate(table1_bytes("pvc", 4), 95);

  TablePrinter table({"target chunk", "h2d txns", "kernel launches",
                      "iterations", "heap (MiB)", "sim time (ms)"});
  for (const std::size_t chunk_kb : {4u, 16u, 64u, 224u, 448u}) {
    GpuConfig cfg;
    cfg.target_chunk_bytes = chunk_kb << 10;
    const RunResult r = pvc.run_gpu(input, cfg);
    table.add_row(
        {TablePrinter::fmt_bytes(chunk_kb << 10),
         TablePrinter::fmt_int(static_cast<long long>(r.pcie.h2d_txns)),
         TablePrinter::fmt_int(static_cast<long long>(r.stats.kernel_launches)),
         TablePrinter::fmt_int(r.iterations),
         TablePrinter::fmt(static_cast<double>(r.heap_bytes) / (1 << 20), 2),
         TablePrinter::fmt(r.sim_seconds * 1e3, 3)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: tiny chunks multiply PCIe transactions and "
              "kernel launches (latency-bound); beyond ~100-200 KiB the "
              "curve flattens while the staging ring starts eating into the "
              "heap (more SEPO iterations on larger tables).\n");
  return 0;
}
