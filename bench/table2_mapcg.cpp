// Table II — "Speedups over MapCG."
//
// Runs the three MapReduce applications on our SEPO runtime and on the
// MapCG-style baseline. As in the paper (§VI-C), MapCG only works for the
// smallest datasets: it has no SEPO, so execution fails when device memory
// runs out — demonstrated at the end.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/engine.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

int main() {
  std::printf("== Table II: speedups of our MapReduce runtime over MapCG ==\n");
  std::printf("   datasets: 0.55 MiB (paper used 200-600 MB against a 3 GB "
              "card; same ~1:1000 scale)\n\n");

  TablePrinter table({"application", "ours (ms)", "MapCG (ms)", "speedup",
                      "MapCG serial atomics", "results"});
  const Engine& sepo = *find_engine("sepo-mr");
  const Engine& mapcg_eng = *find_engine("mapcg");
  for (const AppInfo* app : all_apps()) {
    if (!app->is_mapreduce()) continue;
    const std::string input =
        app->generate(static_cast<std::size_t>(0.55 * 1024 * 1024), 77);
    const RunResult ours = sepo.run(*app, input, {});
    const RunResult mapcg = mapcg_eng.run(*app, input, {});
    table.add_row({app->title, TablePrinter::fmt(ours.sim_seconds * 1e3, 3),
                   TablePrinter::fmt(mapcg.sim_seconds * 1e3, 3),
                   TablePrinter::fmt(mapcg.sim_seconds / ours.sim_seconds, 2) +
                       "X",
                   TablePrinter::fmt_int(static_cast<long long>(
                       mapcg.serial.serial_atomic_ops)),
                   ours.checksum == mapcg.checksum ? "match" : "MISMATCH"});
  }
  table.print(std::cout);
  std::printf("\npaper reports: Word Count 1.05X, Patent Citation 2.42X, "
              "Geo Location 2.55X\n");

  // §VI-C: "the execution fails when there is no more free memory to store
  // newly inserted KV pairs" — MapCG cannot process dataset #2 and beyond.
  std::printf("\nMapCG on larger datasets (no SEPO, no larger-than-memory "
              "support):\n");
  for (int d = 2; d <= 4; ++d) {
    const AppInfo& app = *find_app("wc");
    const std::string input = app.generate(table1_bytes("wc", d), 78);
    const RunResult failed = mapcg_eng.run(app, input, {});
    if (failed.error)
      std::printf("  Word Count dataset #%d (%.1f MiB): FAILED (%s) — %s\n", d,
                  static_cast<double>(input.size()) / (1 << 20),
                  failed.error.kind_name(), failed.error.message.c_str());
    else
      std::printf("  Word Count dataset #%d: unexpectedly succeeded\n", d);
    // Ours processes the same input by iterating (SEPO).
    const RunResult ours = sepo.run(app, input, {});
    std::printf("    ours: OK in %u iteration(s), %.3f ms\n", ours.iterations,
                ours.sim_seconds * 1e3);
  }
  return 0;
}
