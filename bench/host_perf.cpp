// host_perf — wall-clock benchmarks of the simulator's own execution hot
// path (EXPERIMENTS.md "Wall-clock benchmarking").
//
// Everything else in bench/ reports *simulated* seconds, which are derived
// from event counts and therefore host-independent. This binary is the one
// place that times the host for its own sake: how fast the virtual GPU
// executes, which is what bounds every bench/ctest run. It times
//
//   counter_bump_atomic    the pre-change hot-path shape: per-item
//                          std::function dispatch, every virtual thread
//                          bumping the shared RunStats atomics
//   counter_bump_sharded   the same counter workload through gpusim::launch:
//                          devirtualized dispatch + per-worker WorkerStats
//                          shards (the contention-free path)
//   journal_disabled       sharded counter workload with a nullable
//                          EventJournal* left null (the branch every journal
//                          hook costs when no journal is installed)
//   journal_event_sharded  identical code shape with the journal installed:
//                          ~1/11 items record a flight-recorder event into
//                          the worker's ring shard
//   empty_dispatch         per-item scheduling overhead alone (devirtualized
//                          launch of a no-op kernel)
//   insert_scalar_zipf     SEPO table inserts, scalar path, Word-Count-shaped
//                          Zipf(1.05) keys (hot keys hammer few bucket locks)
//   insert_batched_zipf    the same records through the batched insert
//                          pipeline (per-worker CombineBuffers, DESIGN.md
//                          §5d); digest cross-checked against scalar
//   insert_*_uniform       the same pair under uniform keys (the low-reuse
//                          regime where batching helps least)
//   fig6_pvc_gpu           an end-to-end Page View Count SEPO-GPU run
//
// and writes BENCH_host.json (obs::kBenchSchemaVersion) when --metrics-out
// is given; `sepo_cli bench-check` validates it, `sepo_cli bench-diff`
// compares two of them. Each bench takes the best of --reps runs to damp
// scheduler noise. The atomic/sharded pair double-checks bit-identity: their
// merged counter totals must match exactly or the binary exits 1, and the
// journal pair repeats the same check (recording events must not perturb the
// metered counters). The journal pair's relative cost is written as
// journal_overhead_pct; `sepo_cli bench-check` fails the file when it
// exceeds 10%.
//
//   host_perf [--tiny] [--workers N] [--reps N] [--metrics-out=FILE]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include <cmath>
#include <span>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"
#include "core/hash_table.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/journal.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

using namespace sepo;
using namespace sepo::gpusim;

namespace {

// The deterministic per-item counter workload shared with the
// CounterShardTest fixture (tests/counter_shard_test.cpp): bumps derived
// from a splitmix of the item index, so totals are independent of threading
// and batch order.
void fixture_kernel(RunStats& stats, std::size_t i) {
  std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  stats.add_records_scanned();
  stats.add_work_units(x % 97);
  stats.add_hash_ops();
  if (x % 3 == 0)
    stats.add_inserts_new();
  else
    stats.add_combines();
  stats.add_chain_links(x % 5);
  stats.add_key_compare_bytes((x >> 8) % 31);
  stats.add_alloc_ops();
  if (x % 7 == 0) stats.add_alloc_fails();
  if (x % 11 == 0) stats.add_page_acquires();
  stats.add_records_processed();
}

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct BenchResult {
  std::string name;
  std::uint64_t items = 0;
  std::uint64_t reps = 0;
  double wall_seconds = 0;  // best rep
  double ops_per_sec = 0;   // items / wall_seconds
};

// Runs `body()` reps times and keeps the fastest rep: the minimum is the
// least noisy estimator of the code's actual cost under scheduler jitter.
template <typename Body>
BenchResult bench(const std::string& name, std::uint64_t items, int reps,
                  Body&& body) {
  BenchResult r;
  r.name = name;
  r.items = items;
  r.reps = static_cast<std::uint64_t>(reps);
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double s = now_minus(t0);
    if (rep == 0 || s < r.wall_seconds) r.wall_seconds = s;
  }
  r.ops_per_sec = static_cast<double>(items) / r.wall_seconds;
  return r;
}

// Reproduces the pre-change hot path exactly: RunStats is not sharded (every
// bump is a relaxed fetch_add on the shared atomics) and both the grid body
// and the per-item kernel go through std::function, as the old non-template
// launch/parallel_for did.
void run_atomic_path(ThreadPool& pool, RunStats& stats, std::size_t items,
                     std::size_t grid) {
  const std::function<void(std::size_t)> kernel = [&stats](std::size_t i) {
    fixture_kernel(stats, i);
  };
  stats.add_kernel_launches();
  const std::function<void(std::size_t)> body = [&](std::size_t t) {
    for (std::size_t i = t; i < items; i += grid) kernel(i);
  };
  pool.parallel_for(grid, body);
}

// The journal-overhead pair runs this exact kernel twice, differing only in
// whether `j` is null. Both variants pay the splitmix recompute and the
// branch, so the measured delta is the cost of record() itself (~1/11 items
// fire, mirroring the allocator's page-acquire rate in fixture_kernel).
void run_journal_path(ThreadPool& pool, RunStats& stats, EventJournal* j,
                      std::size_t items, std::size_t grid) {
  launch(pool, stats, items,
         [&stats, j](std::size_t i) {
           fixture_kernel(stats, i);
           std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull;
           x ^= x >> 30;
           x *= 0xBF58476D1CE4E5B9ull;
           x ^= x >> 27;
           if (x % 11 == 0 && j != nullptr)
             j->record(JournalEventKind::kPageAcquire, i, x % 97);
         },
         {.grid_threads = grid});
}

// Precomputed key schedule for the insert pair: `order[i]` indexes `keys`.
// Zipf(s) over the key set via an inverted CDF, sampled with a splitmix of
// the item index — deterministic, threading-independent, built before any
// timer starts.
std::vector<std::uint32_t> key_schedule(std::size_t items, std::size_t distinct,
                                        double zipf_s, std::uint64_t seed) {
  std::vector<double> cdf(distinct);
  double total = 0;
  for (std::size_t k = 0; k < distinct; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  std::vector<std::uint32_t> order(items);
  for (std::size_t i = 0; i < items; ++i) {
    std::uint64_t x = (i + seed) * 0x9E3779B97F4A7C15ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    const double u =
        static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    order[i] = static_cast<std::uint32_t>(it - cdf.begin());
  }
  return order;
}

// One timed SEPO-table insert pass: fresh device/table per rep (tables are
// not resettable), only the launch — where every insert and every
// CombineBuffer drain happens — inside the timer. Returns the finalized
// digest so the caller can cross-check scalar vs batched.
struct InsertRun {
  double wall_seconds = 0;
  std::uint64_t digest = 0;
  std::uint64_t keys = 0;
};

InsertRun run_insert_pass(std::size_t workers,
                          const std::vector<std::string>& keys,
                          const std::vector<std::uint32_t>& order,
                          std::uint32_t batch_capacity) {
  Device dev(16u << 20);
  ThreadPool pool(workers);
  RunStats stats;
  ExecContext ctx(dev, pool, stats);
  core::HashTableConfig tcfg;
  tcfg.org = core::Organization::kCombining;
  tcfg.combiner = core::combine_sum_u64;
  tcfg.combiner_assoc_comm = true;
  tcfg.batch_insert_capacity = batch_capacity;
  // Bucket array sized so chains average ~32 entries: the deep-chain,
  // larger-than-memory regime the SEPO table exists for (the paper keeps
  // the table bigger than device memory, so the bucket array is starved
  // relative to the key population). Here the scalar path pays a long
  // probe per record — hot Zipf keys sit at the chain tail because §III-B
  // prepends at the head — while the batched drain probes each distinct
  // key once per drain and mirrors repeat probes arithmetically.
  tcfg.num_buckets = 256;
  tcfg.buckets_per_group = 64;  // keep a few allocation groups
  core::SepoHashTable ht(ctx, tcfg);

  const std::uint64_t one = 1;
  const auto value = std::as_bytes(std::span{&one, 1});
  const auto t0 = std::chrono::steady_clock::now();
  ctx.launch(
      order.size(),
      [&](std::size_t i) { (void)ht.insert(keys[order[i]], value); },
      {.grid_threads = 4096});
  InsertRun r;
  r.wall_seconds = now_minus(t0);
  const core::HostTable table = ht.finalize();
  r.keys = table.entry_count();
  r.digest = apps::digest_kv(table);
  return r;
}

// The scalar/batched pair under one key distribution. Reps are interleaved
// (like the journal pair) so drifting machine load biases both sides
// equally; the digests and key counts must agree or the binary exits 1.
void run_insert_pair(std::vector<BenchResult>& results, const char* dist,
                     std::size_t workers, int reps, std::size_t items,
                     std::size_t distinct, double zipf_s) {
  std::vector<std::string> keys(distinct);
  for (std::size_t k = 0; k < distinct; ++k)
    keys[k] = "key" + std::to_string(k) + "x";
  const std::vector<std::uint32_t> order =
      key_schedule(items, distinct, zipf_s, 7);

  BenchResult scalar, batched;
  scalar.name = std::string("insert_scalar_") + dist;
  batched.name = std::string("insert_batched_") + dist;
  scalar.items = batched.items = items;
  scalar.reps = batched.reps = static_cast<std::uint64_t>(reps);
  InsertRun s{}, b{};
  for (int rep = 0; rep < reps; ++rep) {
    s = run_insert_pass(workers, keys, order, 0);
    if (rep == 0 || s.wall_seconds < scalar.wall_seconds)
      scalar.wall_seconds = s.wall_seconds;
    // Batched capacity sized to the per-worker record share: every record
    // is buffered once and the pipeline drains at kernel exit, the
    // amortization-optimal setting (each distinct key's chain is probed
    // once per worker). Any capacity works correctly — smaller ones just
    // drain (and re-probe) more often.
    const auto batch_cap = static_cast<std::uint32_t>(std::min<std::size_t>(
        1u << 20, std::bit_ceil(items / std::max<std::size_t>(1, workers))));
    b = run_insert_pass(workers, keys, order, batch_cap);
    if (rep == 0 || b.wall_seconds < batched.wall_seconds)
      batched.wall_seconds = b.wall_seconds;
    if (s.digest != b.digest || s.keys != b.keys) {
      std::fprintf(stderr,
                   "FATAL: batched insert result diverges from scalar "
                   "(%s: digest %llx vs %llx, keys %llu vs %llu)\n",
                   dist, static_cast<unsigned long long>(s.digest),
                   static_cast<unsigned long long>(b.digest),
                   static_cast<unsigned long long>(s.keys),
                   static_cast<unsigned long long>(b.keys));
      std::exit(1);
    }
  }
  scalar.ops_per_sec = static_cast<double>(items) / scalar.wall_seconds;
  batched.ops_per_sec = static_cast<double>(items) / batched.wall_seconds;
  results.push_back(scalar);
  results.push_back(batched);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::OutputOptions out = obs::OutputOptions::from_args(argc, argv);
  const std::size_t workers = apps::pool_workers_from_args(argc, argv);
  const std::uint32_t fig6_batch = apps::batch_insert_from_args(argc, argv);
  bool tiny = false;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tiny") {
      tiny = true;
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps <= 0) reps = 1;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      std::fprintf(stderr,
                   "usage: host_perf [--tiny] [--workers N] [--reps N] "
                   "[--metrics-out=FILE]\n");
      return 1;
    }
  }

  const std::size_t items = tiny ? 200'000 : 2'000'000;
  const std::size_t grid = 4096;
  ThreadPool pool(workers);

  std::printf("== host_perf: wall-clock cost of the simulate-and-meter hot "
              "path ==\n");
  std::printf("   workers: %zu, counter items: %zu, reps: %d (best kept)%s\n\n",
              pool.worker_count(), items, reps, tiny ? ", --tiny" : "");

  std::vector<BenchResult> results;

  // Hot-path pair: identical counter math through the old and new path; the
  // totals must be bit-identical (that is the sharding invariant).
  RunStats stats_atomic;
  results.push_back(bench("counter_bump_atomic", items, reps, [&] {
    run_atomic_path(pool, stats_atomic, items, grid);
  }));
  RunStats stats_sharded;
  results.push_back(bench("counter_bump_sharded", items, reps, [&] {
    launch(pool, stats_sharded, items,
           [&stats_sharded](std::size_t i) { fixture_kernel(stats_sharded, i); },
           {.grid_threads = grid});
  }));
  if (stats_atomic.snapshot() != stats_sharded.snapshot()) {
    std::fprintf(stderr,
                 "FATAL: sharded counter totals diverge from the atomic "
                 "path\n");
    return 1;
  }

  // Flight-recorder overhead pair: same kernel shape, journal pointer null
  // vs installed. Ring overwrite is the steady state (a flight recorder
  // keeps the newest window), so a modest per-shard capacity measures the
  // honest hot-path cost. The two sides' reps are interleaved so drifting
  // machine load biases both equally — this ratio is gated at 10% by
  // bench-check, it must not wobble with the scheduler.
  RunStats stats_jd, stats_je;
  EventJournal journal(pool.worker_count(), /*capacity_per_shard=*/1 << 14);
  BenchResult jd, je;
  jd.name = "journal_disabled";
  je.name = "journal_event_sharded";
  jd.items = je.items = items;
  const int pair_reps = std::max(reps, 3);
  jd.reps = je.reps = static_cast<std::uint64_t>(pair_reps);
  for (int rep = 0; rep < pair_reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    run_journal_path(pool, stats_jd, nullptr, items, grid);
    const double sd = now_minus(t0);
    if (rep == 0 || sd < jd.wall_seconds) jd.wall_seconds = sd;
    t0 = std::chrono::steady_clock::now();
    run_journal_path(pool, stats_je, &journal, items, grid);
    const double se = now_minus(t0);
    if (rep == 0 || se < je.wall_seconds) je.wall_seconds = se;
  }
  jd.ops_per_sec = static_cast<double>(items) / jd.wall_seconds;
  je.ops_per_sec = static_cast<double>(items) / je.wall_seconds;
  results.push_back(jd);
  results.push_back(je);
  if (stats_jd.snapshot() != stats_je.snapshot()) {
    std::fprintf(stderr,
                 "FATAL: recording journal events perturbed the metered "
                 "counters\n");
    return 1;
  }
  const double journal_overhead_pct =
      (results[3].wall_seconds - results[2].wall_seconds) /
      results[2].wall_seconds * 100.0;

  // Scheduling overhead alone: a kernel the compiler cannot delete but that
  // does no metering or work.
  RunStats stats_empty;
  results.push_back(bench("empty_dispatch", items, reps, [&] {
    launch(pool, stats_empty, items,
           [](std::size_t i) { asm volatile("" : : "r"(i)); },
           {.grid_threads = grid});
  }));

  // Batched-insert pair (DESIGN.md §5d): the same records through the scalar
  // and the batched SEPO-table insert path, under the Word-Count-shaped
  // Zipf(1.05) skew the pipeline targets and under uniform keys as the
  // low-reuse control. bench-check gates the zipf speedup at 2x (full runs).
  const std::size_t insert_items = tiny ? 150'000 : 1'000'000;
  run_insert_pair(results, "zipf", workers, reps, insert_items,
                  /*distinct=*/8192, /*zipf_s=*/1.05);
  run_insert_pair(results, "uniform", workers, reps, insert_items,
                  /*distinct=*/8192, /*zipf_s=*/0.0);
  const std::size_t zipf_at = results.size() - 4;
  const double insert_speedup_zipf =
      results[zipf_at].wall_seconds / results[zipf_at + 1].wall_seconds;
  const double insert_speedup_uniform =
      results[zipf_at + 2].wall_seconds / results[zipf_at + 3].wall_seconds;

  // End-to-end anchor: one Page View Count SEPO-GPU run, the fig6 workload.
  {
    apps::PageViewCountApp pvc;
    const std::size_t bytes =
        tiny ? (64u << 10) : apps::table1_bytes(pvc.table1_key(), 2);
    const std::string input = pvc.generate(bytes, 1001);
    apps::GpuConfig gcfg;
    gcfg.pool_workers = workers;
    gcfg.batch_insert = fig6_batch;
    results.push_back(bench("fig6_pvc_gpu", bytes, reps, [&] {
      const apps::RunResult r = pvc.run_gpu(input, gcfg);
      if (r.error || r.checksum == 0) {
        std::fprintf(stderr, "FATAL: pvc run failed\n");
        std::exit(1);
      }
    }));
  }

  TablePrinter table({"bench", "items", "wall (ms)", "Mops/s"});
  for (const BenchResult& r : results)
    table.add_row({r.name, TablePrinter::fmt_int(r.items),
                   TablePrinter::fmt(r.wall_seconds * 1e3, 3),
                   TablePrinter::fmt(r.ops_per_sec / 1e6, 2)});
  table.print(std::cout);

  const double speedup =
      results[0].wall_seconds / results[1].wall_seconds;
  std::printf("\ncounter-bump speedup (sharded vs atomic hot path): %.2fx\n",
              speedup);
  std::printf("journal overhead (event recording vs disabled): %.2f%% "
              "(%llu events recorded, %llu overwritten)\n",
              journal_overhead_pct,
              static_cast<unsigned long long>(journal.events_recorded()),
              static_cast<unsigned long long>(journal.events_overwritten()));
  std::printf("batched-insert speedup (batched vs scalar): %.2fx zipf, "
              "%.2fx uniform\n",
              insert_speedup_zipf, insert_speedup_uniform);

  if (out.metrics_enabled()) {
    obs::Json root = obs::Json::object();
    root.set("schema_version", obs::kBenchSchemaVersion);
    root.set("tool", "host_perf");
    root.set("workers", static_cast<std::uint64_t>(pool.worker_count()));
    root.set("tiny", tiny);
    root.set("counter_bump_speedup", speedup);
    root.set("journal_overhead_pct", journal_overhead_pct);
    root.set("insert_batched_speedup_zipf", insert_speedup_zipf);
    root.set("insert_batched_speedup_uniform", insert_speedup_uniform);
    obs::Json benches = obs::Json::array();
    for (const BenchResult& r : results) {
      obs::Json b = obs::Json::object();
      b.set("name", r.name);
      b.set("items", r.items);
      b.set("reps", r.reps);
      b.set("wall_seconds", r.wall_seconds);
      b.set("ops_per_sec", r.ops_per_sec);
      benches.push_back(std::move(b));
    }
    root.set("benches", std::move(benches));
    std::ofstream f(out.metrics_path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   out.metrics_path.c_str());
      return 1;
    }
    root.write(f, 2);
    f << '\n';
    if (!f.good()) {
      std::fprintf(stderr, "write to %s failed\n", out.metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench results written to %s\n",
                 out.metrics_path.c_str());
  }
  return 0;
}
