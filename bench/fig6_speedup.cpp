// Figure 6 — "Application speedup over CPU multi-threaded implementation.
// For the last three, the baseline is Phoenix++."
//
// Runs all seven applications over the four Table-I dataset sizes (scaled
// 1:1000) and prints, per bar: the speedup of the SEPO-GPU implementation
// over its CPU baseline and the number of SEPO iterations (the number shown
// on top of each bar in the paper's figure). Result checksums of the two
// implementations are cross-validated on every run.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

struct Row {
  std::string app;
  int dataset;
  std::size_t input_bytes;
  RunResult gpu, cpu;
};

Row run_standalone(const StandaloneApp& app, int dataset) {
  const std::size_t bytes = table1_bytes(app.table1_key(), dataset);
  const std::string input = app.generate(bytes, 1000 + dataset);
  return {app.name(), dataset, input.size(), app.run_gpu(input),
          app.run_cpu(input)};
}

Row run_mr(const MrApp& app, int dataset) {
  const std::size_t bytes = table1_bytes(app.table1_key, dataset);
  const std::string input = app.generate(bytes, 2000 + dataset);
  return {app.name, dataset, input.size(), run_mr_sepo(app, input),
          run_mr_phoenix(app, input)};
}

}  // namespace

int main() {
  std::printf("== Figure 6: speedup over CPU multi-threaded baseline "
              "(MapReduce apps: over Phoenix++) ==\n");
  std::printf("   datasets: paper Table I scaled 1:1000 (GB -> MB); device: "
              "4 MiB (~1:1000 of the usable GTX 780ti capacity)\n\n");

  std::vector<Row> rows;
  {
    PageViewCountApp pvc;
    InvertedIndexApp ii;
    DnaAssemblyApp dna;
    NetflixApp netflix;
    const StandaloneApp* standalone[] = {&netflix, &dna, &pvc, &ii};
    for (const StandaloneApp* app : standalone)
      for (int d = 1; d <= 4; ++d) rows.push_back(run_standalone(*app, d));
  }
  for (const MrApp* app :
       {&word_count_app(), &patent_citation_app(), &geo_location_app()})
    for (int d = 1; d <= 4; ++d) rows.push_back(run_mr(*app, d));

  TablePrinter table({"app", "dataset", "input", "iterations", "table/heap",
                      "gpu sim (ms)", "cpu sim (ms)", "speedup", "results"});
  double sum_speedup = 0;
  for (const Row& r : rows) {
    const double speedup = r.cpu.sim_seconds / r.gpu.sim_seconds;
    sum_speedup += speedup;
    table.add_row(
        {r.app, "#" + std::to_string(r.dataset),
         TablePrinter::fmt_bytes(r.input_bytes),
         TablePrinter::fmt_int(r.gpu.iterations),
         TablePrinter::fmt(static_cast<double>(r.gpu.table_bytes) /
                               static_cast<double>(r.gpu.heap_bytes),
                           2),
         TablePrinter::fmt(r.gpu.sim_seconds * 1e3, 3),
         TablePrinter::fmt(r.cpu.sim_seconds * 1e3, 3),
         TablePrinter::fmt(speedup, 2),
         r.gpu.checksum == r.cpu.checksum ? "match" : "MISMATCH"});
  }
  table.print(std::cout);
  std::printf("\naverage speedup: %.2f (paper reports 3.5 on average)\n",
              sum_speedup / static_cast<double>(rows.size()));
  std::printf("paper shape: Inverted Index and Word Count do not perform "
              "well (divergence / lock contention); others see clear "
              "speedups; iteration counts rise with dataset size.\n");
  return 0;
}
