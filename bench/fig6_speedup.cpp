// Figure 6 — "Application speedup over CPU multi-threaded implementation.
// For the last three, the baseline is Phoenix++."
//
// Runs all seven applications over the four Table-I dataset sizes (scaled
// 1:1000) and prints, per bar: the speedup of the SEPO-GPU implementation
// over its CPU baseline and the number of SEPO iterations (the number shown
// on top of each bar in the paper's figure). Result checksums of the two
// implementations are cross-validated on every run.
//
//   fig6_speedup [--tiny] [--workers N] [--fault-* ...]
//                [--metrics-out=FILE] [--trace-out=FILE]
//
// --tiny restricts to dataset #1 (the ctest metrics fixture uses it);
// --fault-* flags (see sepo_cli usage) enable seeded fault injection on the
// GPU runs — the chaos fixture exercises this: under transfer faults the
// SEPO result must still digest-match the CPU baseline; --metrics-out
// writes the full per-run telemetry (EXPERIMENTS.md "BENCH_*.json");
// --trace-out records the GPU runs onto one simulated timeline, one section
// per (app, dataset). Exits 1 on any digest MISMATCH.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/engine.hpp"
#include "common/table_printer.hpp"
#include "gpusim/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

struct Row {
  std::string app;
  int dataset;
  std::size_t input_bytes;
  RunResult gpu, cpu;
};

// One Figure-6 bar: the SEPO engine for the app's kind vs its reference
// baseline, resolved through the registry. Seeds stay per-kind (1000+d
// standalone, 2000+d MapReduce) to keep the generated inputs — and thus the
// committed BENCH_fig6.json — identical to the pre-registry harness.
Row run_one(const AppInfo& app, int dataset, const gpusim::FaultConfig& faults,
            std::size_t workers, std::uint32_t batch_insert,
            obs::TraceRecorder* rec) {
  const std::size_t bytes = table1_bytes(app.table1_key(), dataset);
  const std::uint64_t seed = (app.is_mapreduce() ? 2000 : 1000) + dataset;
  const std::string input = app.generate(bytes, seed);
  if (rec) rec->begin_section(std::string(app.title) + " #" +
                              std::to_string(dataset));
  EngineConfig cfg;
  cfg.gpu.faults = faults;
  cfg.gpu.trace = rec;
  cfg.gpu.pool_workers = workers;
  cfg.gpu.batch_insert = batch_insert;
  cfg.cpu.pool_workers = workers;
  EngineConfig bcfg = cfg;
  bcfg.gpu.trace = nullptr;
  return {app.title, dataset, input.size(),
          resolve_engine("gpu", app)->run(app, input, cfg),
          baseline_engine(app)->run(app, input, bcfg)};
}

}  // namespace

int main(int argc, char** argv) {
  const obs::OutputOptions out = obs::OutputOptions::from_args(argc, argv);
  const std::size_t workers = pool_workers_from_args(argc, argv);
  const std::uint32_t batch_insert = batch_insert_from_args(argc, argv);
  bool tiny = false;
  gpusim::FaultConfig faults;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tiny") {
      tiny = true;
    } else if (a.rfind("--fault-", 0) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        return 1;
      }
      try {
        if (!gpusim::apply_fault_flag(faults, a, argv[++i])) {
          std::fprintf(stderr, "unknown option: %s\n", a.c_str());
          return 1;
        }
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return 1;
    }
  }
  const int max_dataset = tiny ? 1 : 4;

  std::printf("== Figure 6: speedup over CPU multi-threaded baseline "
              "(MapReduce apps: over Phoenix++) ==\n");
  std::printf("   datasets: paper Table I scaled 1:1000 (GB -> MB); device: "
              "4 MiB (~1:1000 of the usable GTX 780ti capacity)%s\n\n",
              tiny ? "; --tiny: dataset #1 only" : "");

  std::unique_ptr<obs::TraceRecorder> rec;
  if (out.trace_enabled()) rec = std::make_unique<obs::TraceRecorder>();

  std::vector<Row> rows;
  // The figure's bar order, not the registry's display order.
  for (const char* key : {"netflix", "dna", "pvc", "ii", "wc", "pc", "geo"})
    for (int d = 1; d <= max_dataset; ++d)
      rows.push_back(
          run_one(*find_app(key), d, faults, workers, batch_insert, rec.get()));

  TablePrinter table({"app", "dataset", "input", "iterations", "table/heap",
                      "gpu sim (ms)", "cpu sim (ms)", "speedup", "results"});
  double sum_speedup = 0;
  int mismatches = 0;
  for (const Row& r : rows) {
    const double speedup = r.cpu.sim_seconds / r.gpu.sim_seconds;
    sum_speedup += speedup;
    const bool ok = !r.gpu.error && r.gpu.checksum == r.cpu.checksum;
    if (!ok) ++mismatches;
    table.add_row(
        {r.app, "#" + std::to_string(r.dataset),
         TablePrinter::fmt_bytes(r.input_bytes),
         TablePrinter::fmt_int(r.gpu.iterations),
         TablePrinter::fmt(static_cast<double>(r.gpu.table_bytes) /
                               static_cast<double>(r.gpu.heap_bytes),
                           2),
         TablePrinter::fmt(r.gpu.sim_seconds * 1e3, 3),
         TablePrinter::fmt(r.cpu.sim_seconds * 1e3, 3),
         TablePrinter::fmt(speedup, 2),
         r.gpu.error ? r.gpu.error.kind_name()
                     : (ok ? "match" : "MISMATCH")});
  }
  table.print(std::cout);
  std::printf("\naverage speedup: %.2f (paper reports 3.5 on average)\n",
              sum_speedup / static_cast<double>(rows.size()));
  std::printf("paper shape: Inverted Index and Word Count do not perform "
              "well (divergence / lock contention); others see clear "
              "speedups; iteration counts rise with dataset size.\n");

  if (out.metrics_enabled()) {
    obs::MetricsReport report("fig6_speedup");
    report.set_field("tiny", tiny);
    report.set_field("average_speedup",
                     sum_speedup / static_cast<double>(rows.size()));
    for (const Row& r : rows) {
      obs::Json extra = obs::Json::object();
      extra.set("dataset", r.dataset);
      extra.set("input_bytes", static_cast<std::uint64_t>(r.input_bytes));
      extra.set("speedup", r.cpu.sim_seconds / r.gpu.sim_seconds);
      extra.set("digest_match", r.gpu.checksum == r.cpu.checksum);
      obs::Json extra_cpu = extra;
      report.add_run(r.app, r.gpu, std::move(extra));
      report.add_run(r.app, r.cpu, std::move(extra_cpu));
    }
    report.add_table("fig6", table);
    std::string err;
    if (!report.write_file(out.metrics_path, &err)) {
      std::fprintf(stderr, "metrics: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", out.metrics_path.c_str());
  }
  if (rec) {
    std::string err;
    if (!rec->write_file(out.trace_path, &err)) {
      std::fprintf(stderr, "trace: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", out.trace_path.c_str());
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "%d run(s) failed or mismatched the CPU baseline\n",
                 mismatches);
    return 1;
  }
  return 0;
}
