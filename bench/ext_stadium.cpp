// Extension bench — Stadium-hashing-style baseline (paper §VII).
//
// The paper dismisses Stadium hashing and Mega-KV qualitatively: they keep
// the data in CPU memory behind a device-resident index, and "store pairs
// with duplicate keys as if they are pairs with different keys". This bench
// makes that argument quantitative on PVC (duplicate-heavy) and on a
// near-unique workload where Stadium's design is at its best:
//
//   * vs the §VI-D pinned table, the fingerprint index removes the remote
//     chain walks -> Stadium is far faster than naive pinned (its paper
//     claims 2-3x over earlier GPU tables; we see more because the pinned
//     strawman walks chains remotely);
//   * vs SEPO, Stadium still pays one small remote transaction per pair and
//     cannot combine duplicates on the fly, so SEPO wins on the Big Data
//     workloads the paper targets.
#include <cstdio>
#include <iostream>
#include <new>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "baselines/stadium_hash_table.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "common/timer.hpp"
#include "mapreduce/spec.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

class StadiumEmitter final : public mapreduce::Emitter {
 public:
  explicit StadiumEmitter(baselines::StadiumHashTable& t) noexcept : t_(t) {}
  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    t_.insert(key, value);
    return core::Status::kSuccess;
  }

 private:
  baselines::StadiumHashTable& t_;
};

RunResult run_stadium(const StandaloneApp& app, std::string_view input) {
  WallTimer timer;
  gpusim::Device dev(8u << 20);  // the index needs headroom: 8 MiB device
  gpusim::RunStats stats;
  gpusim::ThreadPool pool(1);
  gpusim::ExecContext ctx(dev, pool, stats);
  baselines::StadiumHashTable table(ctx, {.num_buckets = 1u << 14});
  StadiumEmitter em(table);
  const RecordIndex idx = index_lines(input);
  RunResult r;
  r.impl = "stadium";
  // Input still streams through staged chunks; meter it as one bulk pass.
  dev.bus().h2d(input.size());
  try {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const std::string_view body = idx.record(input.data(), i);
      stats.add_work_units(body.size());
      app.map_record(body, em);
      stats.add_records_processed();
    }
  } catch (const std::bad_alloc& e) {
    // The fingerprint index outgrew the device: Stadium has no SEPO, so the
    // run fails structurally rather than returning a partial table.
    r.error = run_error_from(e);
  }
  const auto load = table.bucket_load();
  r.stats = stats.snapshot();
  r.pcie = dev.bus().snapshot();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = 0};
  r.iterations = 1;
  if (!r.error) r.keys = table.entry_count();
  r.sim_seconds =
      gpu_sim_seconds(r.stats, dev.bus(), r.pcie, r.serial, &r.gpu_breakdown);
  r.wall_seconds = timer.seconds();
  return r;
}

}  // namespace

int main() {
  std::printf("== Extension: Stadium-hashing-style baseline (paper §VII "
              "related work) ==\n\n");

  TablePrinter table({"workload", "impl", "sim time (ms)", "remote txns",
                      "stored pairs", "speedup vs cpu"});
  PageViewCountApp pvc;
  struct Workload {
    const char* name;
    std::string input;
  };
  const Workload workloads[] = {
      // Duplicate-heavy: the regime the paper targets (combining matters).
      {"PVC duplicate-heavy",
       gen_weblog({.target_bytes = 2u << 20, .seed = 61}, 4000, 1.0)},
      // Near-unique keys: Stadium's design assumption.
      {"PVC near-unique",
       gen_weblog({.target_bytes = 2u << 20, .seed = 62}, 1000000, 0.3)},
  };

  for (const Workload& w : workloads) {
    const RunResult cpu = pvc.run_cpu(w.input);
    const RunResult sepo = pvc.run_gpu(w.input);
    const RunResult pinned = pvc.run_pinned(w.input);
    const RunResult stadium = run_stadium(pvc, w.input);
    for (const RunResult* r : {&sepo, &stadium, &pinned, &cpu}) {
      table.add_row(
          {w.name, r->impl, TablePrinter::fmt(r->sim_seconds * 1e3, 3),
           TablePrinter::fmt_int(static_cast<long long>(r->pcie.remote_txns)),
           TablePrinter::fmt_int(static_cast<long long>(r->keys)),
           TablePrinter::fmt(cpu.sim_seconds / r->sim_seconds, 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: Stadium beats the naive pinned table (the "
      "device-resident fingerprint index halves the remote transactions by "
      "eliminating chain walks; its advantage grows with chain length) but "
      "stores every duplicate pair (no on-the-fly combining: compare the "
      "stored-pairs column) and still pays one small PCIe transaction per "
      "pair, so SEPO keeps a clear lead on the Big Data workloads the paper "
      "targets — the quantitative version of the paper's §VII critique.\n");
  return 0;
}
