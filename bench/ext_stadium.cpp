// Extension bench — Stadium-hashing-style baseline (paper §VII).
//
// The paper dismisses Stadium hashing and Mega-KV qualitatively: they keep
// the data in CPU memory behind a device-resident index, and "store pairs
// with duplicate keys as if they are pairs with different keys". This bench
// makes that argument quantitative on PVC (duplicate-heavy) and on a
// near-unique workload where Stadium's design is at its best:
//
//   * vs the §VI-D pinned table, the fingerprint index removes the remote
//     chain walks -> Stadium is far faster than naive pinned (its paper
//     claims 2-3x over earlier GPU tables; we see more because the pinned
//     strawman walks chains remotely);
//   * vs SEPO, Stadium still pays one small remote transaction per pair and
//     cannot combine duplicates on the fly, so SEPO wins on the Big Data
//     workloads the paper targets.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/engine.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

int main() {
  std::printf("== Extension: Stadium-hashing-style baseline (paper §VII "
              "related work) ==\n\n");

  TablePrinter table({"workload", "impl", "sim time (ms)", "remote txns",
                      "stored pairs", "speedup vs cpu"});
  const AppInfo& pvc = *find_app("pvc");
  // The stadium engine's fingerprint index needs headroom: 8 MiB device.
  EngineConfig stadium_cfg;
  stadium_cfg.gpu.device_bytes = 8u << 20;
  struct Workload {
    const char* name;
    std::string input;
  };
  const Workload workloads[] = {
      // Duplicate-heavy: the regime the paper targets (combining matters).
      {"PVC duplicate-heavy",
       gen_weblog({.target_bytes = 2u << 20, .seed = 61}, 4000, 1.0)},
      // Near-unique keys: Stadium's design assumption.
      {"PVC near-unique",
       gen_weblog({.target_bytes = 2u << 20, .seed = 62}, 1000000, 0.3)},
  };

  for (const Workload& w : workloads) {
    const RunResult cpu = find_engine("cpu")->run(pvc, w.input, {});
    const RunResult sepo = find_engine("sepo-gpu")->run(pvc, w.input, {});
    const RunResult pinned = find_engine("pinned")->run(pvc, w.input, {});
    const RunResult stadium =
        find_engine("stadium")->run(pvc, w.input, stadium_cfg);
    for (const RunResult* r : {&sepo, &stadium, &pinned, &cpu}) {
      // stats.inserts_new counts materialized entries: every duplicate pair
      // on stadium, distinct keys on the combining tables.
      table.add_row(
          {w.name, r->impl, TablePrinter::fmt(r->sim_seconds * 1e3, 3),
           TablePrinter::fmt_int(static_cast<long long>(r->pcie.remote_txns)),
           TablePrinter::fmt_int(static_cast<long long>(r->stats.inserts_new)),
           TablePrinter::fmt(cpu.sim_seconds / r->sim_seconds, 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: Stadium beats the naive pinned table (the "
      "device-resident fingerprint index halves the remote transactions by "
      "eliminating chain walks; its advantage grows with chain length) but "
      "stores every duplicate pair (no on-the-fly combining: compare the "
      "stored-pairs column) and still pays one small PCIe transaction per "
      "pair, so SEPO keeps a clear lead on the Big Data workloads the paper "
      "targets — the quantitative version of the paper's §VII critique.\n");
  return 0;
}
