// Ablation — Basic-organization halt threshold (paper §IV-C, footnote 5:
// "We observed acceptable performance with setting the threshold to 50%").
//
// The Basic organization halts an iteration when the given fraction of
// bucket groups is postponing. A low threshold halts early (little useful
// work per heap fill, many iterations and input re-transfers); a high
// threshold keeps scanning input while most inserts fail (wasted staging
// and scanning). The sweep uses a Basic-organization workload whose table
// is several times the heap.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"
#include "mapreduce/spec.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

// A Basic-organization app: stores every log line keyed by URL (duplicates
// kept separately, e.g. for per-request analytics).
class RequestLogApp final : public StandaloneApp {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "Request Log (basic)";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "pvc";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kBasic;
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override {
    return gen_weblog({.target_bytes = bytes, .seed = seed}, 100000, 0.9);
  }
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override {
    const std::size_t get = body.find("\"GET ");
    if (get == std::string_view::npos) return;
    const std::size_t start = get + 5;
    const std::size_t end = body.find(' ', start);
    if (end == std::string_view::npos) return;
    const std::string_view rest = body.substr(end + 1);
    em.emit(body.substr(start, end - start),
            std::as_bytes(std::span{rest.data(), rest.size()}));
  }
};

}  // namespace

int main() {
  std::printf("== Ablation: Basic-organization halt threshold (paper §IV-C "
              "footnote 5) ==\n\n");
  RequestLogApp app;
  // Dataset #4: the basic-organization table (~2.5x the heap) forces the
  // halt/flush/restart cycle the threshold governs.
  const std::string input = app.generate(table1_bytes("pvc", 4), 92);

  TablePrinter table({"halt threshold", "iterations", "records scanned",
                      "input bytes staged", "postponed execs",
                      "sim time (ms)"});
  for (const double frac : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    GpuConfig cfg;
    cfg.basic_halt_frac = frac;
    const RunResult r = app.run_gpu(input, cfg);
    table.add_row(
        {TablePrinter::fmt(frac, 2), TablePrinter::fmt_int(r.iterations),
         TablePrinter::fmt_int(static_cast<long long>(r.stats.records_scanned)),
         TablePrinter::fmt_bytes(r.pcie.h2d_bytes),
         TablePrinter::fmt_int(
             static_cast<long long>(r.stats.records_postponed)),
         TablePrinter::fmt(r.sim_seconds * 1e3, 3)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: a bowl around the paper's 50%% — very low "
              "thresholds flush underfilled heaps (more iterations), very "
              "high ones scan/stage input that can no longer be stored.\n");
  return 0;
}
