// Ablation — bucket-group size (paper §IV-A).
//
// "While having several pages to allocate memory from improves the
// performance of the memory allocator, it increases the potential for
// memory fragmentation... Our hash table library, therefore, allows each
// application to balance this trade-off by adjusting the size of the bucket
// groups."
//
// Sweeps buckets_per_group for PVC and reports: allocator-lock distribution
// (fewer ops per allocator lock with more groups), fragmentation (bytes
// flushed vs bytes of live entries — partially-used pages waste the gap),
// SEPO iterations, and modelled time.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

int main() {
  std::printf("== Ablation: bucket-group size (allocator scalability vs "
              "fragmentation, paper §IV-A) ==\n\n");
  PageViewCountApp pvc;
  // Twice dataset #4: the table exceeds the heap, so per-group active-page
  // fragmentation translates directly into extra iterations.
  const std::string input = pvc.generate(2 * table1_bytes("pvc", 4), 91);

  TablePrinter table({"buckets/group", "groups", "iterations", "table/heap",
                      "flushed pages", "sim time (ms)", "alloc fails"});
  for (const std::uint32_t bpg : {32u, 64u, 128u, 256u, 512u, 2048u, 8192u}) {
    GpuConfig cfg;
    cfg.buckets_per_group = bpg;
    const RunResult r = pvc.run_gpu(input, cfg);
    table.add_row(
        {TablePrinter::fmt_int(bpg),
         TablePrinter::fmt_int(cfg.num_buckets / bpg),
         TablePrinter::fmt_int(r.iterations),
         TablePrinter::fmt(static_cast<double>(r.table_bytes) /
                               static_cast<double>(r.heap_bytes),
                           2),
         TablePrinter::fmt_int(static_cast<long long>(r.stats.page_acquires)),
         TablePrinter::fmt(r.sim_seconds * 1e3, 3),
         TablePrinter::fmt_int(static_cast<long long>(r.stats.alloc_fails))});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: many small groups distribute allocation "
              "load but strand free space in per-group active pages "
              "(fragmentation -> more iterations); very large groups "
              "concentrate allocations on few pages.\n");
  return 0;
}
