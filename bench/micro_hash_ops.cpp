// Microbenchmark — raw hash-table operation throughput (host wall-clock,
// google-benchmark). Complements the modelled-time benches: exercises the
// real data-structure code paths (§VI-C "the efficiency of the basic design
// of our hash table, including dynamic memory allocation and
// synchronization").
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baselines/cpu_hash_table.hpp"
#include "common/random.hpp"
#include "core/hash_table.hpp"
#include "gpusim/device.hpp"
#include "gpusim/thread_pool.hpp"

using namespace sepo;

namespace {

std::vector<std::string> make_keys(std::size_t n, std::size_t distinct) {
  Rng rng(7);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back("key-" + std::to_string(rng.below(distinct)));
  return keys;
}

void BM_SepoInsertCombining(benchmark::State& state) {
  const auto keys = make_keys(1u << 14, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    gpusim::Device dev(16u << 20);
    gpusim::ThreadPool pool(1);
    gpusim::RunStats stats;
    gpusim::ExecContext ctx(dev, pool, stats);
    core::HashTableConfig cfg;
    cfg.combiner = core::combine_sum_u64;
    cfg.num_buckets = 1u << 14;
    core::SepoHashTable ht(ctx, cfg);
    state.ResumeTiming();
    for (const auto& k : keys) benchmark::DoNotOptimize(ht.insert_u64(k, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_SepoInsertCombining)->Arg(64)->Arg(4096)->Arg(1 << 14);

void BM_SepoInsertBasic(benchmark::State& state) {
  const auto keys = make_keys(1u << 14, 1u << 13);
  for (auto _ : state) {
    state.PauseTiming();
    gpusim::Device dev(16u << 20);
    gpusim::ThreadPool pool(1);
    gpusim::RunStats stats;
    gpusim::ExecContext ctx(dev, pool, stats);
    core::HashTableConfig cfg;
    cfg.org = core::Organization::kBasic;
    cfg.num_buckets = 1u << 14;
    core::SepoHashTable ht(ctx, cfg);
    state.ResumeTiming();
    for (const auto& k : keys) benchmark::DoNotOptimize(ht.insert_u64(k, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_SepoInsertBasic);

void BM_SepoInsertMultiValued(benchmark::State& state) {
  const auto keys = make_keys(1u << 14, 1u << 10);
  for (auto _ : state) {
    state.PauseTiming();
    gpusim::Device dev(16u << 20);
    gpusim::ThreadPool pool(1);
    gpusim::RunStats stats;
    gpusim::ExecContext ctx(dev, pool, stats);
    core::HashTableConfig cfg;
    cfg.org = core::Organization::kMultiValued;
    cfg.num_buckets = 1u << 14;
    core::SepoHashTable ht(ctx, cfg);
    state.ResumeTiming();
    for (const auto& k : keys)
      benchmark::DoNotOptimize(
          ht.insert(k, std::as_bytes(std::span{k.data(), k.size()})));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_SepoInsertMultiValued);

void BM_CpuInsertCombining(benchmark::State& state) {
  const auto keys = make_keys(1u << 14, 4096);
  for (auto _ : state) {
    state.PauseTiming();
    gpusim::RunStats stats;
    baselines::CpuHashTableConfig cfg;
    cfg.combiner = core::combine_sum_u64;
    cfg.num_buckets = 1u << 14;
    baselines::CpuHashTable ht(stats, cfg);
    state.ResumeTiming();
    for (const auto& k : keys) ht.insert_u64(0, k, 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_CpuInsertCombining);

void BM_HostTableLookup(benchmark::State& state) {
  gpusim::Device dev(16u << 20);
  gpusim::ThreadPool pool(1);
  gpusim::RunStats stats;
  gpusim::ExecContext ctx(dev, pool, stats);
  core::HashTableConfig cfg;
  cfg.combiner = core::combine_sum_u64;
  core::SepoHashTable ht(ctx, cfg);
  const auto keys = make_keys(1u << 14, 1u << 12);
  ht.begin_iteration();
  for (const auto& k : keys) (void)ht.insert_u64(k, 1);
  ht.end_iteration();
  const core::HostTable t = ht.finalize();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup_u64(keys[i]));
    i = (i + 1) & ((1u << 14) - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HostTableLookup);

}  // namespace

BENCHMARK_MAIN();
