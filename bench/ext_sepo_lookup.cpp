// Extension bench — SEPO lookups on a larger-than-memory table (the §IV-C
// "mental exercise", implemented in core/sepo_lookup.hpp).
//
// Phase 1 builds a PVC table several times larger than the lookup device;
// phase 2 answers query batches two ways:
//   * SEPO segments: stage bucket ranges into device memory in bulky
//     transfers; postpone queries for non-resident portions;
//   * remote probes (the pinned-memory §VI-D alternative applied to
//     lookups): leave the table in host memory and dereference every chain
//     entry across the bus.
// The crossover mirrors the insert-side story: per-byte bulk staging beats
// per-entry small transactions as soon as queries share segments.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/random.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "core/hash_table.hpp"
#include "core/sepo_driver.hpp"
#include "core/sepo_lookup.hpp"
#include "gpusim/cost_model.hpp"
#include "mapreduce/sepo_emitter.hpp"

using namespace sepo;
using namespace sepo::apps;

int main() {
  std::printf("== Extension: SEPO lookups on a larger-than-memory table "
              "(paper §IV-C mental exercise) ==\n\n");

  // Phase 1: build the table with the regular insert path.
  PageViewCountApp pvc;
  const std::string input = pvc.generate(table1_bytes("pvc", 4), 321);
  gpusim::Device build_dev(4u << 20);
  gpusim::ThreadPool pool;
  gpusim::RunStats build_stats;
  gpusim::ExecContext build_ctx(build_dev, pool, build_stats);
  const RecordIndex idx = index_lines(input);
  bigkernel::PipelineConfig pcfg;
  choose_chunking(idx, GpuConfig{}, pcfg);
  bigkernel::InputPipeline pipe(build_ctx, pcfg);
  core::HashTableConfig tcfg;
  tcfg.combiner = core::combine_sum_u64;
  core::SepoHashTable ht(build_ctx, tcfg);
  ProgressTracker progress(idx.size());
  core::SepoDriver driver;
  (void)driver.run(ht, pipe, input, idx, progress,
                   [&](std::size_t rec, std::string_view body) {
                     mapreduce::SepoEmitter em(ht, progress, rec);
                     pvc.map_record(body, em);
                     return em.failed() ? core::Status::kPostpone
                                        : core::Status::kSuccess;
                   });
  const core::HostTable table = ht.finalize();
  std::printf("table: %zu keys, %s serialized\n", table.entry_count(),
              TablePrinter::fmt_bytes(ht.table_stats().table_bytes).c_str());

  // Phase 2: query batches of growing size, on a device ~1/8 the table.
  TablePrinter out({"queries", "segments staged", "staged bytes",
                    "sepo lookup (ms)", "remote probes (ms)", "sepo wins"});
  Rng rng(11);
  // Reuse real keys for ~2/3 of queries.
  std::vector<std::string> universe;
  table.for_each([&](std::string_view k, std::span<const std::byte>) {
    if (universe.size() < 40000) universe.emplace_back(k);
  });

  for (const std::size_t batch : {100u, 1000u, 10000u, 40000u}) {
    gpusim::Device dev(512u << 10);
    gpusim::RunStats stats;
    gpusim::ExecContext ctx(dev, pool, stats);
    core::SepoLookupEngine engine(ctx, table);

    std::vector<std::string> queries;
    queries.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      if (rng.chance(0.67))
        queries.push_back(universe[rng.below(universe.size())]);
      else
        queries.push_back("http://missing.example.com/" + std::to_string(i));
    }
    std::vector<std::optional<std::vector<std::byte>>> answers;
    const core::LookupBatchResult res = engine.lookup_values(queries, answers);

    const double sepo_time =
        gpu_sim_seconds(stats.snapshot(), dev.bus(), dev.bus().snapshot(), {});

    // Remote-probe alternative: each chain entry visited is one small PCIe
    // transaction (header + key), plus the answer readback.
    gpusim::Device rdev(512u << 10);
    gpusim::RunStats rstats;
    std::uint64_t found = 0;
    for (const auto& q : queries) {
      rstats.add_hash_ops();
      const std::uint32_t b = static_cast<std::uint32_t>(hash_key(q)) &
                              static_cast<std::uint32_t>(table.bucket_count() - 1);
      for (core::HostPtr p = table.bucket_head(b); p != alloc::kHostNull;) {
        const auto* e = table.heap().ptr<core::KvEntry>(p);
        rstats.add_chain_links();
        rdev.bus().remote(sizeof(core::KvEntry) + e->key_len);
        if (e->key() == q) {
          rdev.bus().remote(e->val_len);
          ++found;
          break;
        }
        p = e->next_host;
      }
    }
    const double remote_time = gpu_sim_seconds(
        rstats.snapshot(), rdev.bus(), rdev.bus().snapshot(), {});

    out.add_row({TablePrinter::fmt_int(static_cast<long long>(batch)),
                 TablePrinter::fmt_int(res.iterations),
                 TablePrinter::fmt_bytes(res.staged_bytes),
                 TablePrinter::fmt(sepo_time * 1e3, 3),
                 TablePrinter::fmt(remote_time * 1e3, 3),
                 sepo_time < remote_time ? "yes" : "no"});
  }
  out.print(std::cout);
  std::printf(
      "\nexpected shape: tiny batches favor remote probes (staging a segment "
      "for one query is wasteful); as batches grow, queries amortize segment "
      "staging and SEPO lookups win by an increasing margin — the same "
      "bulky-vs-small-transaction economics as the insert path (Fig. 7).\n");
  return 0;
}
