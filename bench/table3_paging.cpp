// Table III — "Calculated lower bound data transfer time if PVC was run on a
// demand paging-equipped hardware compared to the total execution time when
// PVC is run using our hash table."
//
// Methodology reproduced from §VI-D: instrument PVC's hash-table access
// pattern, replay the trace through an LRU page-cache simulation for a grid
// of (assumed physical GPU memory, page size), convert replacement counts to
// PCIe transfer time (bandwidth only — it is a lower bound), and set the
// result against the *total* execution time of PVC on our SEPO hash table
// with a heap of the same size.
//
// Scaling: page sizes are hardware constants (4 KB / 128 KB / 1 MB cannot
// shrink with the table), so this experiment runs at a larger scale than
// the other benches: the table is ~1/25 of the paper's 1.2 GB (≈48 MB) and
// the "assumed physical GPU memory" column keeps the paper's 400..1200
// labels, each scaled-MB being table_bytes/1200 real bytes. All
// memory-to-table ratios and real page sizes match the paper's grid.
// --metrics-out=FILE (or $SEPO_METRICS_OUT) additionally writes each SEPO
// run's full telemetry plus the paging lower bounds per memory size.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "baselines/paging_sim.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "gpusim/pcie.hpp"
#include "mapreduce/spec.hpp"
#include "obs/metrics.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

class TraceEmitter final : public mapreduce::Emitter {
 public:
  explicit TraceEmitter(baselines::TracedCombiningTable& t) : t_(t) {}
  core::Status emit(std::string_view key, std::span<const std::byte>) override {
    t_.insert_count(key);
    return core::Status::kSuccess;
  }

 private:
  baselines::TracedCombiningTable& t_;
};

}  // namespace

int main(int argc, char** argv) {
  const obs::OutputOptions out = obs::OutputOptions::from_args(argc, argv);
  obs::MetricsReport report("table3_paging");

  std::printf("== Table III: demand-paging lower-bound transfer time vs SEPO "
              "total execution time (PVC) ==\n\n");

  // PVC input sized so the populated table reaches ~1/25 of the paper's
  // 1.2 GB. A deep URL tail (weak skew) keeps page locality realistic.
  PageViewCountApp pvc;
  const std::string input =
      gen_weblog({.target_bytes = 110u << 20, .seed = 55},
                 /*distinct_urls=*/1500000, /*zipf_s=*/0.8);

  // 1) Record the access trace with the instrumented table.
  baselines::TracedCombiningTable traced(1u << 19);
  TraceEmitter em(traced);
  const RecordIndex idx = index_lines(input);
  for (std::size_t i = 0; i < idx.size(); ++i)
    pvc.map_record(idx.record(input.data(), i), em);

  const std::uint64_t table_bytes = traced.table_bytes();
  // One scaled-MB; the margin makes the 1200 row hold the entire table with
  // page-boundary slack ("so that the entire hash table fits in GPU memory
  // and no paging is required"), as in the paper.
  const std::uint64_t unit = (table_bytes + (2u << 20)) / 1200;
  std::printf("traced PVC table: %.1f MiB real (%zu entries, %zu accesses); "
              "1 scaled-MB = %llu bytes\n\n",
              static_cast<double>(table_bytes) / (1 << 20),
              traced.entry_count(), traced.trace().size(),
              static_cast<unsigned long long>(unit));

  const gpusim::PcieBus bus;  // same PCIe model used everywhere
  const std::uint64_t page_sizes[3] = {1u << 20, 128u << 10, 4u << 10};

  TablePrinter table({"assumed GPU mem (scaled MB)", "xfer time (1MB pages)",
                      "xfer time (128KB pages)", "xfer time (4KB pages)",
                      "SEPO total exec time"});

  for (int mem_mb = 1200; mem_mb >= 400; mem_mb -= 100) {
    const std::uint64_t mem_bytes = static_cast<std::uint64_t>(mem_mb) * unit;

    std::string cells[3];
    obs::Json paging = obs::Json::object();
    for (int c = 0; c < 3; ++c) {
      const auto res =
          baselines::simulate_lru(traced.trace(), page_sizes[c], mem_bytes);
      // Bandwidth-only lower bound, as in the paper.
      const double t = static_cast<double>(res.bytes_transferred) /
                       bus.params().bandwidth_bytes_per_s;
      cells[c] = TablePrinter::fmt(t, 3) + " s";
      obs::Json col = obs::Json::object();
      col.set("page_bytes", page_sizes[c]);
      col.set("bytes_transferred", res.bytes_transferred);
      col.set("xfer_lower_bound_seconds", t);
      paging.set("page_" + std::to_string(page_sizes[c] >> 10) + "k",
                 std::move(col));
    }

    // SEPO total execution time with a heap pinned to the same size.
    GpuConfig cfg;
    cfg.device_bytes = 96u << 20;
    cfg.heap_bytes = mem_bytes;
    cfg.page_size = 64u << 10;
    cfg.num_buckets = 1u << 18;
    cfg.buckets_per_group = 1u << 13;
    cfg.target_chunk_bytes = 2u << 20;
    const RunResult sepo = pvc.run_gpu(input, cfg);
    table.add_row({TablePrinter::fmt_int(mem_mb), cells[0], cells[1], cells[2],
                   TablePrinter::fmt(sepo.sim_seconds, 3) + " s (" +
                       std::to_string(sepo.iterations) + " iters)"});
    if (out.metrics_enabled()) {
      obs::Json extra = obs::Json::object();
      extra.set("assumed_mem_scaled_mb", mem_mb);
      extra.set("assumed_mem_bytes", mem_bytes);
      extra.set("paging_lower_bounds", std::move(paging));
      report.add_run("pvc", sepo, std::move(extra));
    }
  }
  table.print(std::cout);
  if (out.metrics_enabled()) {
    report.set_field("traced_table_bytes", table_bytes);
    report.set_field("scaled_mb_bytes", unit);
    report.add_table("table3", table);
    std::string err;
    if (!report.write_file(out.metrics_path, &err)) {
      std::fprintf(stderr, "metrics: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", out.metrics_path.c_str());
  }
  std::printf(
      "\npaper shape: the transfer lower bound explodes with page size and "
      "with shrinking memory (1 MB pages: 14.8 s -> 2148 s); SEPO's own time "
      "degrades gracefully (1.22 s -> 2.02 s) and beats demand paging in all "
      "cases where the table is ~1.5x memory or more.\n");
  return 0;
}
