// Figure 7 — "Speedups compared to the pinned version."
//
// §VI-D: the alternative system-level design allocates the allocator heap as
// a pinned CPU-memory region directly accessed by GPU threads over PCIe.
// For every application, dataset #4, this bench reports the speedup over the
// CPU baseline of (a) our SEPO hash table and (b) the pinned variant. The
// paper's finding: SEPO wins despite needing multiple iterations, and the
// pinned variant is often slower than the CPU itself because the table is
// accessed through "many small PCIe transactions".
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/engine.hpp"
#include "common/table_printer.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

// The MapReduce apps run on the standalone framework here: Figure 7
// compares hash-table designs, so each app's map function feeds either
// table directly.
class MrAsStandalone final : public StandaloneApp {
 public:
  explicit MrAsStandalone(const MrApp& app) : app_(app) {}
  [[nodiscard]] const char* name() const noexcept override { return app_.name; }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return app_.table1_key;
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return app_.mode == mapreduce::Mode::kMapReduce
               ? core::Organization::kCombining
               : core::Organization::kMultiValued;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    return app_.combine;
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override {
    return app_.generate(bytes, seed);
  }
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override {
    app_.map(body, em);
  }

 private:
  const MrApp& app_;
};

}  // namespace

int main() {
  std::printf("== Figure 7: SEPO vs pinned-in-CPU-memory hash table "
              "(dataset #4; speedups relative to the CPU baseline) ==\n\n");

  MrAsStandalone wc(word_count_app());
  MrAsStandalone pc(patent_citation_app());
  MrAsStandalone geo(geo_location_app());
  const StandaloneApp* apps[] = {find_app("netflix")->standalone,
                                 find_app("dna")->standalone,
                                 find_app("pvc")->standalone,
                                 find_app("ii")->standalone,
                                 &wc, &pc, &geo};

  TablePrinter table({"app", "sepo speedup", "pinned speedup",
                      "pinned remote txns", "pinned remote bytes", "results"});
  int pinned_slower_than_cpu = 0;
  for (const StandaloneApp* app : apps) {
    const std::string input =
        app->generate(table1_bytes(app->table1_key(), 4), 400);
    const RunResult cpu = app->run_cpu(input);
    const RunResult gpu = app->run_gpu(input);
    const RunResult pin = app->run_pinned(input);
    const double sepo_speedup = cpu.sim_seconds / gpu.sim_seconds;
    const double pinned_speedup = cpu.sim_seconds / pin.sim_seconds;
    if (pinned_speedup < 1.0) ++pinned_slower_than_cpu;
    const bool ok = gpu.checksum == cpu.checksum && pin.checksum == cpu.checksum;
    table.add_row({app->name(), TablePrinter::fmt(sepo_speedup, 2),
                   TablePrinter::fmt(pinned_speedup, 2),
                   TablePrinter::fmt_int(static_cast<long long>(
                       pin.pcie.remote_txns)),
                   TablePrinter::fmt_bytes(pin.pcie.remote_bytes),
                   ok ? "match" : "MISMATCH"});
  }
  table.print(std::cout);
  std::printf("\n%d of 7 applications run SLOWER with the pinned table than "
              "on the CPU alone (paper: 4 of 7); the cause is the volume of "
              "small PCIe transactions, not raw byte count.\n",
              pinned_slower_than_cpu);
  return 0;
}
