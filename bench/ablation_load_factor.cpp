// Ablation — load factor > 1 (paper §IV: separate chaining with dynamic
// allocation "allows the hash table to approach and surpass a load factor
// of 1 while having its performance degrade gracefully").
//
// Fixes the key count and sweeps the bucket count so the load factor spans
// 0.25x .. 16x; reports probe work (chain links walked per op) and modelled
// time. No reorganization is ever needed — the failure mode of
// open-addressing near load factor 1 does not exist here.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/standalone_app.hpp"
#include "common/random.hpp"
#include "common/table_printer.hpp"
#include "mapreduce/spec.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

class KeyStreamApp final : public StandaloneApp {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "key stream";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "pvc";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kCombining;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    return core::combine_sum_u64;
  }
  [[nodiscard]] std::string generate(std::size_t, std::uint64_t seed) const override {
    // 32k distinct keys, 160k records.
    Rng rng(seed);
    std::ostringstream os;
    for (int i = 0; i < 160000; ++i) os << "key-" << rng.below(32768) << "\n";
    return os.str();
  }
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override {
    em.emit_u64(body, 1);
  }
};

}  // namespace

int main() {
  std::printf("== Ablation: chaining past load factor 1 (paper §IV) ==\n\n");
  KeyStreamApp app;
  const std::string input = app.generate(0, 94);

  TablePrinter table({"buckets", "load factor", "links walked / op",
                      "iterations", "sim time (ms)"});
  for (const std::uint32_t buckets :
       {1u << 17, 1u << 16, 1u << 15, 1u << 14, 1u << 13, 1u << 12, 1u << 11}) {
    GpuConfig cfg;
    cfg.num_buckets = buckets;
    cfg.buckets_per_group = buckets / 32;
    const RunResult r = app.run_gpu(input, cfg);
    table.add_row(
        {TablePrinter::fmt_int(buckets),
         TablePrinter::fmt(32768.0 / static_cast<double>(buckets), 2),
         TablePrinter::fmt(static_cast<double>(r.stats.chain_links_walked) /
                               static_cast<double>(r.stats.hash_ops),
                           2),
         TablePrinter::fmt_int(r.iterations),
         TablePrinter::fmt(r.sim_seconds * 1e3, 3)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: probe work grows linearly with load factor "
              "and time degrades smoothly — no cliff at load factor 1, no "
              "table reorganizations.\n");
  return 0;
}
