// Ablation — bucket-organization memory footprint (paper Figure 4).
//
// "Figure 4 shows a snapshot of the hash table when using each of the three
// different bucket organizations for PVC. As can be seen, providing the
// additional bucket organization methods can potentially save a substantial
// amount of memory."
//
// Runs the same PVC workload under basic / multi-valued / combining and
// reports table bytes, entry counts, and SEPO iterations.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"
#include "common/table_printer.hpp"
#include "mapreduce/spec.hpp"

using namespace sepo;
using namespace sepo::apps;

namespace {

// PVC with a configurable organization: <url, 1> pairs; the combining
// variant sums counts, multi-valued keeps a list of 1s per url, basic keeps
// every pair.
class PvcVariant final : public StandaloneApp {
 public:
  explicit PvcVariant(core::Organization org) : org_(org) {}
  [[nodiscard]] const char* name() const noexcept override {
    return to_string(org_);
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "pvc";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return org_;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    return org_ == core::Organization::kCombining ? core::combine_sum_u64
                                                  : nullptr;
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override {
    return gen_weblog({.target_bytes = bytes, .seed = seed}, 40000, 1.0);
  }
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override {
    const std::size_t get = body.find("\"GET ");
    if (get == std::string_view::npos) return;
    const std::size_t start = get + 5;
    const std::size_t end = body.find(' ', start);
    if (end == std::string_view::npos) return;
    em.emit_u64(body.substr(start, end - start), 1);
  }

 private:
  core::Organization org_;
};

}  // namespace

int main() {
  std::printf("== Ablation: bucket organizations on the same PVC data "
              "(paper Figure 4) ==\n\n");
  const std::string input =
      PvcVariant(core::Organization::kCombining)
          .generate(table1_bytes("pvc", 3), 93);

  TablePrinter table({"organization", "table bytes", "entries", "values",
                      "iterations", "sim time (ms)"});
  for (const auto org :
       {core::Organization::kBasic, core::Organization::kMultiValued,
        core::Organization::kCombining}) {
    PvcVariant app(org);
    const RunResult r = app.run_gpu(input);
    table.add_row({to_string(org), TablePrinter::fmt_bytes(r.table_bytes),
                   TablePrinter::fmt_int(static_cast<long long>(r.keys)),
                   TablePrinter::fmt_int(static_cast<long long>(
                       r.stats.inserts_new + r.stats.value_appends)),
                   TablePrinter::fmt_int(r.iterations),
                   TablePrinter::fmt(r.sim_seconds * 1e3, 3)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape (Figure 4): basic stores one full KV entry "
              "per request; multi-valued stores the key once plus one value "
              "node per request; combining stores one entry per distinct "
              "url — by far the smallest table and fewest iterations.\n");
  return 0;
}
