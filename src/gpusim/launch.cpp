#include "gpusim/launch.hpp"

namespace sepo::gpusim {

void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            const std::function<void(std::size_t)>& kernel, LaunchConfig cfg) {
  // Forward to the template with an explicit type so this overload does not
  // recurse into itself; the per-item std::function dispatch is confined to
  // call sites that erased the kernel type on purpose.
  launch<const std::function<void(std::size_t)>&>(pool, stats, n_items, kernel,
                                                  cfg);
}

}  // namespace sepo::gpusim
