#include "gpusim/launch.hpp"

namespace sepo::gpusim {

void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            const std::function<void(std::size_t)>& kernel, LaunchConfig cfg) {
  stats.add_kernel_launches();
  if (n_items == 0) return;
  const std::size_t grid =
      cfg.grid_threads == 0 ? n_items : cfg.grid_threads;
  if (grid >= n_items) {
    pool.parallel_for(n_items, kernel);
    return;
  }
  // Grid-stride loop: virtual thread t handles items t, t+grid, t+2*grid, ...
  pool.parallel_for(grid, [&](std::size_t t) {
    for (std::size_t i = t; i < n_items; i += grid) kernel(i);
  });
}

}  // namespace sepo::gpusim
