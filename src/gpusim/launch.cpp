#include "gpusim/launch.hpp"

#include "gpusim/trace_hook.hpp"

namespace sepo::gpusim {

namespace {

void run_grid(ThreadPool& pool, std::size_t n_items,
              const std::function<void(std::size_t)>& kernel,
              const LaunchConfig& cfg) {
  const std::size_t grid = cfg.grid_threads == 0 ? n_items : cfg.grid_threads;
  if (grid >= n_items) {
    pool.parallel_for(n_items, kernel);
    return;
  }
  // Grid-stride loop: virtual thread t handles items t, t+grid, t+2*grid, ...
  pool.parallel_for(grid, [&](std::size_t t) {
    for (std::size_t i = t; i < n_items; i += grid) kernel(i);
  });
}

}  // namespace

void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            const std::function<void(std::size_t)>& kernel, LaunchConfig cfg) {
  TraceHook* const hook = stats.trace_hook();
  if (!hook) {
    stats.add_kernel_launches();
    if (n_items != 0) run_grid(pool, n_items, kernel, cfg);
    return;
  }
  // Telemetry: report the counter delta this kernel produced (including its
  // own launch cost). Launches are serial on the host side, so before/after
  // snapshots bracket exactly this kernel's events.
  const StatsSnapshot before = stats.snapshot();
  stats.add_kernel_launches();
  if (n_items != 0) run_grid(pool, n_items, kernel, cfg);
  hook->on_kernel(stats.snapshot() - before, n_items);
}

}  // namespace sepo::gpusim
