#include "gpusim/cost_model.hpp"

namespace sepo::gpusim {

double compute_time(const MachineDesc& m, const StatsSnapshot& s) {
  double t = 0.0;
  t += static_cast<double>(s.work_units) * m.sec_per_work_unit;
  t += static_cast<double>(s.hash_ops) * m.sec_per_hash_op;
  t += static_cast<double>(s.key_compare_bytes) * m.sec_per_compare_byte;
  t += static_cast<double>(s.chain_links_walked) * m.sec_per_chain_link;
  t += static_cast<double>(s.alloc_ops) * m.sec_per_alloc;
  t += static_cast<double>(s.lock_acquires) * m.sec_per_lock;
  t += static_cast<double>(s.lock_contended) * m.sec_per_contended_lock;
  t += static_cast<double>(s.atomic_retries) * m.sec_per_atomic_retry;
  t += static_cast<double>(s.divergent_units) * m.sec_per_divergent_unit;
  t += static_cast<double>(s.kernel_launches) * m.sec_per_kernel_launch;
  return t;
}

GpuTimeBreakdown gpu_time(const MachineDesc& m, const StatsSnapshot& s,
                          const PcieBus& bus, const PcieSnapshot& p) {
  GpuTimeBreakdown b;
  b.compute = compute_time(m, s);
  b.h2d = bus.h2d_time(p);
  b.d2h = bus.d2h_time(p);
  b.remote = bus.remote_access_time(p);
  b.total = std::max(b.compute, b.h2d) + b.d2h + b.remote;
  return b;
}

double cpu_time(const MachineDesc& m, const StatsSnapshot& s) {
  return compute_time(m, s);
}

double serialization_time(const MachineDesc& m, const SerializationInputs& s) {
  const double fair_share =
      static_cast<double>(s.total_lock_ops) / m.concurrency;
  const double hot = static_cast<double>(s.max_same_lock_ops);
  double t = 0.0;
  if (hot > fair_share)
    t += (hot - fair_share) * m.sec_per_critical_section;
  t += static_cast<double>(s.serial_atomic_ops) * m.sec_per_serial_atomic;
  return t;
}

}  // namespace sepo::gpusim
