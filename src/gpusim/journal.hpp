// Flight recorder for the virtual GPU (DESIGN.md §5b "Flight recorder").
//
// An EventJournal is a per-worker, cache-line-sharded, fixed-capacity ring
// buffer of typed events. It answers "what was the allocator / fault machinery
// doing right before this run died?" — the question end-of-run aggregate
// counters cannot. The hot path is deliberately shaped like the WorkerStats
// counter shards (PR 6): record() is one plain index bump plus a struct store
// into the calling worker's own cache-line-aligned shard — no locks, no
// atomics on the event path, no allocation. Shards are drained only at
// quiescent points (after a run completes, or from the error path once every
// kernel has unwound), where the same job-publication ordering that makes the
// counter-shard merge safe makes these plain reads safe.
//
// Timestamps are *simulated* seconds. Worker threads cannot read the Timeline
// directly (its doubles are host-owned), so the host publishes the current
// simulated clock into an atomic after every scheduling step
// (ExecContext::set_journal wires this); record() reads it relaxed. Events
// recorded from inside a kernel therefore carry the simulated time at which
// that kernel *started* — they sort before the kernel's own kKernelFinish,
// which is the order they logically happened in.
//
// Consumers hold a nullable EventJournal*; with none installed every hook is
// one branch, which is what keeps journal-on and journal-off runs
// bit-identical (regression-tested in tests/journal_test.cpp).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/trace_hook.hpp"
#include "gpusim/worker_id.hpp"

namespace sepo::gpusim {

// Everything the flight recorder knows how to witness. Keep
// journal_kind_name() (journal.cpp) and the obs-side parser in sync.
enum class JournalEventKind : std::uint32_t {
  kPageAcquire = 0,     // arg0 = page index, arg1 = free pages after
  kPageRelease = 1,     // arg0 = page index, arg1 = free pages after
  kPageDoubleRelease = 2,  // arg0 = page index (release rejected)
  kPressureBegin = 3,   // arg0 = pages the spike wants seized
  kPressureEnd = 4,     // arg0 = pages that had been seized
  kFaultRetry = 5,      // arg0 = TimelineResource, arg1 = attempt number
  kFaultBackoff = 6,    // arg0 = TimelineResource, arg1 = attempt number
  kFaultExhausted = 7,  // arg0 = TimelineResource, arg1 = max_retries
  kKernelLaunch = 8,    // arg0 = n_items
  kKernelFinish = 9,    // arg0 = n_items, arg1 = work units this kernel
  kFlushBarrier = 10,   // arg0 = pages (0 when unknown), arg1 = bytes flushed
  kIterationBegin = 11, // arg0 = iteration number
  kIterationEnd = 12,   // arg0 = iteration number, arg1 = records postponed
  kBatchDrain = 13,     // arg0 = records drained, arg1 = records re-queued
};
inline constexpr int kNumJournalEventKinds = 14;

// Stable lowercase name ("page_acquire", ...) used by the JSONL dump.
[[nodiscard]] const char* journal_kind_name(JournalEventKind k) noexcept;

// One recorded event. `seq` is the recording shard's own event count at the
// time of the store, so (sim_ts, seq, worker) is a deterministic total order
// for the merge — many events share a sim_ts (everything inside one kernel
// does).
struct JournalEvent {
  double sim_ts = 0;         // simulated seconds (Timeline clock)
  std::uint64_t seq = 0;     // per-shard sequence number
  std::uint32_t worker = 0;  // current_worker_index() of the recorder
  JournalEventKind kind = JournalEventKind::kPageAcquire;
  std::uint64_t arg0 = 0, arg1 = 0;
};

// One occupancy snapshot, taken by the SepoDriver at every iteration
// boundary. The sampler is *always on* (samples ride on DriverResult next to
// the iteration profiles) — it only reads state, so it cannot perturb results
// whether or not a journal is installed.
struct OccupancySample {
  double sim_ts = 0;              // timeline total_end() at the boundary
  std::uint32_t iteration = 0;    // 1-based, matches IterationProfile
  std::uint32_t pages_total = 0;  // PagePool size
  std::uint32_t pages_free = 0;   // free right now
  std::uint32_t pages_seized = 0; // held by a fault-injected pressure spike
  std::uint64_t resident_entry_bytes = 0;  // live table payload on device
  std::uint32_t staging_slots = 0;  // BigKernel input ring size
  std::uint32_t staging_busy = 0;   // slots still owned by in-flight copies
  double engine_end[kNumTimelineResources] = {};   // per-engine clock
  double engine_busy[kNumTimelineResources] = {};  // per-engine busy total
};

class EventJournal {
 public:
  static constexpr std::size_t kDefaultShardCapacity = 1024;

  // `shards`: one per pool worker (current_worker_index() range). The count
  // can be grown later with ensure_shards() — ExecContext::set_journal does
  // this with its pool's worker count, so callers that only hold a pointer
  // (the CLI) can default-construct without knowing the pool size.
  explicit EventJournal(std::size_t shards = 1,
                        std::size_t capacity_per_shard = kDefaultShardCapacity);

  // Grow to at least `shards` shards. Host-only; must not race record().
  void ensure_shards(std::size_t shards);

  // Hot path: one bump + one store into the calling worker's shard. The ring
  // overwrites its oldest event when full — a flight recorder keeps the
  // newest window, not the oldest.
  void record(JournalEventKind kind, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) noexcept {
    const std::size_t w = current_worker_index();
    Shard& sh = *shards_[w < shards_.size() ? w : shards_.size() - 1];
    JournalEvent& e = sh.ring[sh.head % sh.ring.size()];
    e.sim_ts = now();
    e.seq = sh.head;
    e.worker = static_cast<std::uint32_t>(w);
    e.kind = kind;
    e.arg0 = arg0;
    e.arg1 = arg1;
    ++sh.head;
  }

  // Host publishes the simulated clock; workers read it relaxed. Bit-cast
  // through uint64 because std::atomic<double> is not lock-free everywhere.
  void set_now(double sim_seconds) noexcept {
    now_bits_.store(std::bit_cast<std::uint64_t>(sim_seconds),
                    std::memory_order_relaxed);
  }
  [[nodiscard]] double now() const noexcept {
    return std::bit_cast<double>(now_bits_.load(std::memory_order_relaxed));
  }

  // Quiescent-point drain: every surviving event from every shard, merged
  // into (sim_ts, seq, worker) order. Does not clear the rings.
  [[nodiscard]] std::vector<JournalEvent> drain() const;

  // Events ever recorded / lost to ring overwrite, across all shards.
  [[nodiscard]] std::uint64_t events_recorded() const noexcept;
  [[nodiscard]] std::uint64_t events_overwritten() const noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t capacity_per_shard() const noexcept {
    return capacity_;
  }

 private:
  // Plain (non-atomic) head: each shard is written by exactly one worker,
  // and drains happen only when workers are quiescent — the same
  // memory-ordering argument as WorkerStats (counters.hpp). The alignas
  // keeps neighbouring shards' heads off each other's cache lines; unique_ptr
  // keeps shard addresses stable across ensure_shards() growth.
  struct alignas(kCacheLineBytes) Shard {
    explicit Shard(std::size_t cap) : ring(cap) {}
    std::uint64_t head = 0;  // events ever recorded by this shard
    std::vector<JournalEvent> ring;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> now_bits_{0};
};

}  // namespace sepo::gpusim
