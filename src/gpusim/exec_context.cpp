#include "gpusim/exec_context.hpp"

#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"

namespace sepo::gpusim {

ExecContext::ExecContext(Device& dev, ThreadPool& pool, RunStats& stats,
                         const MachineDesc& machine)
    : dev_(dev),
      pool_(pool),
      stats_(stats),
      timeline_(machine, dev.bus().params()),
      compute_(timeline_),
      copy_(timeline_),
      flush_(timeline_) {}

void ExecContext::set_trace(TraceHook* hook) {
  stats_.set_trace_hook(hook);
  timeline_.set_hook(hook);
  if (hook) hook->on_timeline_attach();
}

void ExecContext::set_journal(EventJournal* journal) {
  journal_ = journal;
  if (journal_ != nullptr) {
    journal_->ensure_shards(pool_.worker_count());
    publish_sim_now();
  }
}

void ExecContext::publish_sim_now() noexcept {
  if (journal_ != nullptr) journal_->set_now(timeline_.total_end());
}

void ExecContext::fault_transfer_attempts(bool is_d2h, std::uint64_t bytes) {
  FaultInjector& f = *faults_;
  Stream& s = is_d2h ? flush_ : copy_;
  const TimelineResource r =
      is_d2h ? TimelineResource::kCopyD2h : TimelineResource::kCopyH2d;
  std::uint32_t attempt = 0;
  while (is_d2h ? f.draw_d2h() : f.draw_h2d()) {
    if (++attempt > f.config().max_retries) {
      if (journal_ != nullptr)
        journal_->record(JournalEventKind::kFaultExhausted,
                         static_cast<std::uint64_t>(r),
                         f.config().max_retries);
      throw FaultError(std::string(is_d2h ? "d2h" : "h2d") +
                       " transfer failed after " +
                       std::to_string(f.config().max_retries) + " retries");
    }
    // The failed attempt still crossed the bus and occupied the copy engine
    // at full price; meter both so busy == analytic-term equality holds
    // under faults too. Then wait out the backoff before the next attempt.
    timeline_.note_fault(r);
    stats_.add_fault_retries();
    if (is_d2h) {
      stats_.add_faults_d2h();
      dev_.bus().d2h(bytes);
      s.d2h_flush(bytes);
    } else {
      stats_.add_faults_h2d();
      dev_.bus().h2d(bytes);
      s.h2d(bytes);
    }
    publish_sim_now();
    if (journal_ != nullptr)
      journal_->record(JournalEventKind::kFaultRetry,
                       static_cast<std::uint64_t>(r), attempt);
    s.backoff(r, f.backoff_s(attempt));
    publish_sim_now();
    if (journal_ != nullptr)
      journal_->record(JournalEventKind::kFaultBackoff,
                       static_cast<std::uint64_t>(r), attempt);
  }
}

void ExecContext::fault_launch_aborts() {
  FaultInjector& f = *faults_;
  std::uint32_t attempt = 0;
  while (f.draw_kernel_abort()) {
    if (++attempt > f.config().max_retries) {
      if (journal_ != nullptr)
        journal_->record(JournalEventKind::kFaultExhausted,
                         static_cast<std::uint64_t>(TimelineResource::kCompute),
                         f.config().max_retries);
      throw FaultError("kernel launch aborted " +
                       std::to_string(f.config().max_retries) +
                       " times; retries exhausted");
    }
    // An aborted chunk launch costs the launch overhead (the kernel never
    // ran, so no counter delta) plus the retry backoff.
    timeline_.note_fault(TimelineResource::kCompute);
    stats_.add_kernel_aborts();
    stats_.add_fault_retries();
    compute_.aborted_launch(timeline_.machine().sec_per_kernel_launch);
    publish_sim_now();
    if (journal_ != nullptr)
      journal_->record(JournalEventKind::kFaultRetry,
                       static_cast<std::uint64_t>(TimelineResource::kCompute),
                       attempt);
    compute_.backoff(TimelineResource::kCompute, f.backoff_s(attempt));
    publish_sim_now();
    if (journal_ != nullptr)
      journal_->record(JournalEventKind::kFaultBackoff,
                       static_cast<std::uint64_t>(TimelineResource::kCompute),
                       attempt);
  }
}

Event ExecContext::stage_h2d(DevPtr dst, const void* src, std::size_t bytes,
                             Event after) {
  dev_.copy_h2d(dst, src, bytes);
  copy_.wait(after);
  if (faults_) fault_transfer_attempts(/*is_d2h=*/false, bytes);
  const Event done = copy_.h2d(bytes);
  publish_sim_now();
  return done;
}

Event ExecContext::launch(std::size_t n_items,
                          const std::function<void(std::size_t)>& kernel,
                          LaunchConfig cfg, Event after) {
  // Forward to the member template with an explicit type so this overload
  // does not recurse into itself.
  return launch<const std::function<void(std::size_t)>&>(n_items, kernel, cfg,
                                                         after);
}

ExecContext::LaunchBaseline ExecContext::begin_launch(Event after,
                                                      std::size_t n_items) {
  compute_.wait(after);
  // Abort faults are decided *before* the chunk physically executes — an
  // aborted launch must have no side effects, and the simulator cannot undo
  // a kernel's real work after the fact.
  if (faults_) fault_launch_aborts();
  publish_sim_now();
  if (journal_ != nullptr)
    journal_->record(JournalEventKind::kKernelLaunch, n_items);
  return {stats_.snapshot(), dev_.bus().snapshot()};
}

Event ExecContext::finish_launch(const LaunchBaseline& base,
                                 std::size_t n_items) {
  const StatsSnapshot delta = stats_.snapshot() - base.stats_before;
  const PcieSnapshot& bus_before = base.bus_before;
  const PcieSnapshot bus_after = dev_.bus().snapshot();

  Event done = compute_.kernel(delta, n_items);
  publish_sim_now();
  if (journal_ != nullptr)
    journal_->record(JournalEventKind::kKernelFinish, n_items,
                     delta.work_units);

  // Remote accesses the kernel issued (pinned baseline) serialize with the
  // issuing warps: schedule them right after the kernel and stall subsequent
  // compute until they drain.
  const std::uint64_t remote_txns =
      bus_after.remote_txns - bus_before.remote_txns;
  if (remote_txns > 0) {
    const std::uint64_t remote_bytes =
        bus_after.remote_bytes - bus_before.remote_bytes;
    done = timeline_.schedule(
        TimelineCommandKind::kRemoteAccess, TimelineResource::kRemote, done.at,
        timeline_.price_remote(remote_bytes, remote_txns), remote_bytes,
        remote_txns);

    // A slice of those transactions may fail; the failed slice re-issues
    // (same per-transaction price) after a backoff, and can fail again.
    // Retry transactions are priced on the timeline but not re-metered on
    // the bus: the analytic model is fault-blind, and the timeline's remote
    // busy total only counts first attempts to keep the term equality.
    if (faults_) {
      FaultInjector& f = *faults_;
      std::uint64_t failed = f.draw_remote_failures(remote_txns);
      std::uint32_t attempt = 0;
      while (failed > 0) {
        if (++attempt > f.config().max_retries) {
          if (journal_ != nullptr)
            journal_->record(
                JournalEventKind::kFaultExhausted,
                static_cast<std::uint64_t>(TimelineResource::kRemote),
                f.config().max_retries);
          throw FaultError("remote transactions failed after " +
                           std::to_string(f.config().max_retries) +
                           " retries");
        }
        timeline_.note_fault(TimelineResource::kRemote);
        stats_.add_faults_remote(failed);
        stats_.add_fault_retries();
        const std::uint64_t failed_bytes = remote_bytes * failed / remote_txns;
        done = timeline_.schedule(TimelineCommandKind::kRetryBackoff,
                                  TimelineResource::kRemote, done.at,
                                  f.backoff_s(attempt), 0, 0);
        publish_sim_now();
        if (journal_ != nullptr)
          journal_->record(
              JournalEventKind::kFaultBackoff,
              static_cast<std::uint64_t>(TimelineResource::kRemote), attempt);
        done = timeline_.schedule(TimelineCommandKind::kRetryBackoff,
                                  TimelineResource::kRemote, done.at,
                                  timeline_.price_remote(failed_bytes, failed),
                                  failed_bytes, failed);
        publish_sim_now();
        if (journal_ != nullptr)
          journal_->record(
              JournalEventKind::kFaultRetry,
              static_cast<std::uint64_t>(TimelineResource::kRemote), attempt);
        failed = f.draw_remote_failures(failed);
      }
    }
    compute_.wait(done);
  }
  publish_sim_now();
  return done;
}

Event ExecContext::flush_d2h(std::uint64_t bytes) {
  // The flush cannot start before queued compute finishes, and computation
  // (and further staging) halts until it completes (paper §IV-C).
  flush_.wait(compute_.record());
  if (faults_) fault_transfer_attempts(/*is_d2h=*/true, bytes);
  const Event done = flush_.d2h_flush(bytes);
  compute_.wait(done);
  copy_.wait(done);
  publish_sim_now();
  if (journal_ != nullptr)
    journal_->record(JournalEventKind::kFlushBarrier, 0, bytes);
  return done;
}

}  // namespace sepo::gpusim
