#include "gpusim/exec_context.hpp"

namespace sepo::gpusim {

ExecContext::ExecContext(Device& dev, ThreadPool& pool, RunStats& stats,
                         const MachineDesc& machine)
    : dev_(dev),
      pool_(pool),
      stats_(stats),
      timeline_(machine, dev.bus().params()),
      compute_(timeline_),
      copy_(timeline_),
      flush_(timeline_) {}

void ExecContext::set_trace(TraceHook* hook) {
  stats_.set_trace_hook(hook);
  timeline_.set_hook(hook);
  if (hook) hook->on_timeline_attach();
}

Event ExecContext::stage_h2d(DevPtr dst, const void* src, std::size_t bytes,
                             Event after) {
  dev_.copy_h2d(dst, src, bytes);
  copy_.wait(after);
  return copy_.h2d(bytes);
}

Event ExecContext::launch(std::size_t n_items,
                          const std::function<void(std::size_t)>& kernel,
                          LaunchConfig cfg, Event after) {
  const StatsSnapshot stats_before = stats_.snapshot();
  const PcieSnapshot bus_before = dev_.bus().snapshot();
  gpusim::launch(pool_, stats_, n_items, kernel, cfg);
  const StatsSnapshot delta = stats_.snapshot() - stats_before;
  const PcieSnapshot bus_after = dev_.bus().snapshot();

  compute_.wait(after);
  Event done = compute_.kernel(delta, n_items);

  // Remote accesses the kernel issued (pinned baseline) serialize with the
  // issuing warps: schedule them right after the kernel and stall subsequent
  // compute until they drain.
  const std::uint64_t remote_txns =
      bus_after.remote_txns - bus_before.remote_txns;
  if (remote_txns > 0) {
    const std::uint64_t remote_bytes =
        bus_after.remote_bytes - bus_before.remote_bytes;
    done = timeline_.schedule(
        TimelineCommandKind::kRemoteAccess, TimelineResource::kRemote, done.at,
        timeline_.price_remote(remote_bytes, remote_txns), remote_bytes,
        remote_txns);
    compute_.wait(done);
  }
  return done;
}

Event ExecContext::flush_d2h(std::uint64_t bytes) {
  // The flush cannot start before queued compute finishes, and computation
  // (and further staging) halts until it completes (paper §IV-C).
  flush_.wait(compute_.record());
  const Event done = flush_.d2h_flush(bytes);
  compute_.wait(done);
  copy_.wait(done);
  return done;
}

}  // namespace sepo::gpusim
