// Telemetry hook points for the virtual device (DESIGN.md "Telemetry &
// tracing").
//
// The simulator never keeps a running wall clock — simulated time is derived
// from event counts — so tracing works on *events*: the device reports a
// kernel's counter delta or a bus transfer's byte count, and the execution
// timeline (gpusim::Timeline) prices and schedules them. Hooks are nullable
// pointers checked with one branch on the recording paths; with no hook
// installed nothing else changes, which is what keeps tier-1 results
// bit-identical with telemetry off.
//
// Callback context: on_kernel / on_flush / on_iteration fire from the host
// between kernels (serial). on_h2d / on_d2h fire from the host staging /
// flush loops (serial). on_remote fires from *inside kernels* and may be
// concurrent — implementations must synchronize that path themselves.
// on_timeline_command fires from the host whenever the Timeline schedules a
// command (serial), carrying the command's exact simulated begin/end.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gpusim/counters.hpp"

namespace sepo::gpusim {

struct OccupancySample;  // gpusim/journal.hpp

// The per-resource simulated engines commands are scheduled onto. Compute
// and the three bus paths advance independent clocks; dependencies between
// commands (stream order, events) are what bound their overlap.
enum class TimelineResource : int {
  kCompute = 0,  // kernel execution
  kCopyH2d = 1,  // input staging (BigKernel ring)
  kCopyD2h = 2,  // heap flushes
  kRemote = 3,   // pinned-memory remote access path
};
inline constexpr int kNumTimelineResources = 4;

enum class TimelineCommandKind : int {
  kKernel = 0,
  kH2dCopy = 1,
  kD2hFlush = 2,
  kRemoteAccess = 3,
  // Fault-injection overhead (gpusim::FaultInjector). These occupy their
  // engine in simulated time but are excluded from the engine's busy total,
  // which keeps busy == analytic-term equality intact: failed attempts are
  // scheduled as ordinary commands of the kinds above, and only the *extra*
  // waiting lands here.
  kRetryBackoff = 4,    // bounded-exponential wait before a retry
  kAbortedLaunch = 5,   // kernel launch the injector aborted (launch cost)
};

// One scheduled command on the execution timeline: priced by the cost model,
// placed at the earliest simulated instant permitted by its dependencies and
// its resource's availability.
struct TimelineCommand {
  TimelineCommandKind kind = TimelineCommandKind::kKernel;
  TimelineResource resource = TimelineResource::kCompute;
  double start = 0;  // simulated seconds
  double end = 0;    // simulated seconds
  // kKernel: items / work units. Copies: bytes / 0. kRemoteAccess:
  // bytes / transactions.
  std::uint64_t arg0 = 0, arg1 = 0;
};

class TraceHook {
 public:
  virtual ~TraceHook() = default;

  // One kernel finished; `delta` is the counter change it produced.
  virtual void on_kernel(const StatsSnapshot& delta, std::size_t n_items) = 0;

  // Bus transfers, as metered by PcieBus.
  virtual void on_h2d(std::uint64_t bytes) = 0;
  virtual void on_d2h(std::uint64_t bytes) = 0;
  virtual void on_remote(std::uint64_t bytes) = 0;

  // A heap flush (SepoHashTable::flush_pages) completed; its page-level d2h
  // transfers were already reported through on_d2h and scheduled as
  // kD2hFlush timeline commands.
  virtual void on_flush(std::uint64_t pages, std::uint64_t bytes) = 0;

  // SEPO iteration boundaries (SepoDriver).
  virtual void on_iteration_begin(std::uint32_t iteration) = 0;
  virtual void on_iteration_end(std::uint32_t iteration) = 0;

  // An ExecContext adopted this hook: commands that follow belong to a fresh
  // timeline whose clock restarts at zero (recorders concatenating several
  // runs use this to offset them).
  virtual void on_timeline_attach() {}

  // The Timeline scheduled a command (exact priced begin/end, simulated).
  virtual void on_timeline_command(const TimelineCommand& /*cmd*/) {}

  // The SepoDriver took an occupancy snapshot at an iteration boundary
  // (gpusim/journal.hpp). Fires from the host, serial. Default no-op so
  // implementations that only care about spans keep compiling.
  virtual void on_occupancy_sample(const OccupancySample& /*sample*/) {}
};

}  // namespace sepo::gpusim
