// Telemetry hook points for the virtual device (DESIGN.md "Telemetry &
// tracing").
//
// The simulator never keeps a running clock — simulated time is derived
// from event counts after the fact — so tracing works the same way: the
// device reports *events* (a kernel's counter delta, a bus transfer's byte
// count) and the recorder (obs::TraceRecorder) prices them into simulated
// timestamps. Hooks are nullable pointers checked with one branch on the
// recording paths; with no hook installed nothing else changes, which is
// what keeps tier-1 results bit-identical with telemetry off.
//
// Callback context: on_kernel / on_flush / on_iteration fire from the host
// between kernels (serial). on_h2d / on_d2h fire from the host staging /
// flush loops (serial). on_remote fires from *inside kernels* and may be
// concurrent — implementations must synchronize that path themselves.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gpusim/counters.hpp"

namespace sepo::gpusim {

class TraceHook {
 public:
  virtual ~TraceHook() = default;

  // One kernel finished; `delta` is the counter change it produced.
  virtual void on_kernel(const StatsSnapshot& delta, std::size_t n_items) = 0;

  // Bus transfers, as metered by PcieBus.
  virtual void on_h2d(std::uint64_t bytes) = 0;
  virtual void on_d2h(std::uint64_t bytes) = 0;
  virtual void on_remote(std::uint64_t bytes) = 0;

  // A heap flush (SepoHashTable::flush_pages) completed; its page-level d2h
  // transfers were already reported through on_d2h.
  virtual void on_flush(std::uint64_t pages, std::uint64_t bytes) = 0;

  // SEPO iteration boundaries (SepoDriver).
  virtual void on_iteration_begin(std::uint32_t iteration) = 0;
  virtual void on_iteration_end(std::uint32_t iteration) = 0;
};

}  // namespace sepo::gpusim
