// Discrete-event execution timeline for the virtual device (DESIGN.md §5).
//
// The simulator derives time from event counts, but *when* those events may
// overlap is a scheduling question: BigKernel staging of chunk k+1 overlaps
// the kernel on chunk k only if a free staging buffer exists, and a SEPO
// heap flush halts computation outright (paper §IV-C, Figure 5). The
// Timeline models this explicitly: h2d copies, kernel launches, d2h flushes
// and remote accesses are commands priced with the existing CostModel /
// PcieParams arithmetic and scheduled onto per-resource simulated clocks
// (compute engine, h2d copy engine, d2h path, remote path). A command starts
// at the latest of: its stream's cursor (stream order), its resource's free
// time (engines are serial), and any awaited events (cross-stream
// dependencies). Overlap is therefore bounded by actual dependencies and
// ring depth instead of assumed infinite, which is what the old analytic
// `max(compute, h2d) + d2h` did.
//
// All pricing is linear in the event counts, so the sum of command durations
// per resource equals the analytic model's per-term totals exactly; the two
// models differ only in how much overlap the schedule admits. gpu_time()
// stays as a cross-check (see apps::RunResult::sim_seconds_analytic).
//
// Streams/events mirror the CUDA primitives they stand in for: a Stream is
// an ordered work queue with a moving cursor, an Event is a simulated
// timestamp recorded on a stream that other streams can wait on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/pcie.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::gpusim {

// A simulated timestamp. Default-constructed events are "already signaled"
// (time zero), so an unset dependency never delays a command.
struct Event {
  double at = 0.0;
};

// Per-resource busy/end totals for metrics export (obs schema v2).
struct TimelineSummary {
  double compute_busy = 0;  // sum of kernel command durations
  double h2d_busy = 0;      // sum of h2d copy durations
  double d2h_busy = 0;      // sum of d2h flush durations
  double remote_busy = 0;   // sum of remote access durations
  double total = 0;         // end of the last command (timeline makespan)
  std::uint64_t commands = 0;
};

// Per-engine fault/retry accounting (obs schema v3). `backoff_s` is the
// simulated time the engine spent on fault overhead — retry backoff waits
// plus aborted launch costs — which the busy totals above exclude so that
// busy == analytic-term equality survives fault injection.
struct EngineFaults {
  std::uint64_t faults = 0;   // injected failures observed on this engine
  std::uint64_t retries = 0;  // overhead commands scheduled (backoffs/aborts)
  double backoff_s = 0;       // simulated seconds of that overhead
};

struct FaultSummary {
  std::array<EngineFaults, kNumTimelineResources> engine{};

  [[nodiscard]] std::uint64_t total_faults() const noexcept {
    std::uint64_t n = 0;
    for (const EngineFaults& e : engine) n += e.faults;
    return n;
  }
  [[nodiscard]] double total_backoff_s() const noexcept {
    double s = 0;
    for (const EngineFaults& e : engine) s += e.backoff_s;
    return s;
  }
};

class Timeline {
 public:
  Timeline(const MachineDesc& machine, PcieParams pcie)
      : machine_(machine), pcie_(pcie) {}

  // Prices, per the same arithmetic the analytic model uses.
  [[nodiscard]] double price_kernel(const StatsSnapshot& delta) const {
    return compute_time(machine_, delta);
  }
  [[nodiscard]] double price_copy(std::uint64_t bytes,
                                  std::uint64_t txns) const noexcept {
    return static_cast<double>(txns) * pcie_.latency_s +
           static_cast<double>(bytes) / pcie_.bandwidth_bytes_per_s;
  }
  [[nodiscard]] double price_remote(std::uint64_t bytes,
                                    std::uint64_t txns) const noexcept;

  // Schedules one command: start = max(ready, resource free time). Returns
  // the completion event and advances the resource clock.
  Event schedule(TimelineCommandKind kind, TimelineResource resource,
                 double ready, double duration, std::uint64_t arg0,
                 std::uint64_t arg1);

  [[nodiscard]] double resource_end(TimelineResource r) const noexcept {
    return end_[static_cast<int>(r)];
  }
  // End of the last command across all resources (simulated makespan).
  [[nodiscard]] double total_end() const noexcept;
  [[nodiscard]] double busy(TimelineResource r) const noexcept {
    return busy_[static_cast<int>(r)];
  }
  [[nodiscard]] std::uint64_t command_count() const noexcept {
    return n_commands_;
  }
  [[nodiscard]] const std::vector<TimelineCommand>& commands() const noexcept {
    return commands_;
  }
  [[nodiscard]] TimelineSummary summary() const noexcept;

  // Fault accounting. note_fault records an injected failure against an
  // engine; the overhead commands themselves (kRetryBackoff/kAbortedLaunch)
  // are tallied by schedule().
  void note_fault(TimelineResource r) noexcept {
    ++faults_.engine[static_cast<int>(r)].faults;
  }
  [[nodiscard]] const FaultSummary& fault_summary() const noexcept {
    return faults_;
  }

  [[nodiscard]] const MachineDesc& machine() const noexcept { return machine_; }
  [[nodiscard]] const PcieParams& pcie() const noexcept { return pcie_; }

  void set_hook(TraceHook* hook) noexcept { hook_ = hook; }

 private:
  MachineDesc machine_;
  PcieParams pcie_;
  std::array<double, kNumTimelineResources> end_{};
  std::array<double, kNumTimelineResources> busy_{};
  FaultSummary faults_;
  std::vector<TimelineCommand> commands_;
  std::uint64_t n_commands_ = 0;
  TraceHook* hook_ = nullptr;
};

// An ordered command queue on a Timeline (the CUDA-stream analogue):
// commands pushed to the same stream never overlap each other, and wait()
// makes the stream's next command additionally wait for an event recorded
// elsewhere.
class Stream {
 public:
  explicit Stream(Timeline& tl) noexcept : tl_(&tl) {}

  // The stream's next command will not start before `e`.
  void wait(Event e) noexcept { cursor_ = std::max(cursor_, e.at); }

  // An event signaled when all work queued on this stream so far is done.
  [[nodiscard]] Event record() const noexcept { return {cursor_}; }

  Event h2d(std::uint64_t bytes);
  Event d2h_flush(std::uint64_t bytes);
  Event kernel(const StatsSnapshot& delta, std::size_t n_items);
  Event remote(std::uint64_t bytes, std::uint64_t txns);

  // Fault-injection overhead spans (see gpusim::FaultInjector). backoff
  // parks the stream on `r` for `seconds`; aborted_launch charges the
  // machine's launch cost on the compute engine without running anything.
  Event backoff(TimelineResource r, double seconds);
  Event aborted_launch(double seconds);

 private:
  Event push(TimelineCommandKind kind, TimelineResource resource,
             double duration, std::uint64_t arg0, std::uint64_t arg1);

  Timeline* tl_;
  double cursor_ = 0.0;
};

}  // namespace sepo::gpusim
