// Analytic time model (DESIGN.md §5).
//
// All benches report *simulated* time computed from measured event counts:
//
//   t_gpu = max(t_compute, t_h2d) + t_d2h + t_remote
//   t_cpu = t_compute_cpu (+ allocation and contention terms)
//
// The unit costs below are fixed parameters derived from the paper's
// testbed description (§VI-A and footnote 1): an Nvidia GTX 780ti
// (2880 cores @ 875 MHz, 336 GB/s) against a quad-core, 8-thread Xeon E5 @
// 3.8 GHz (115 GB/s peak, quad-channel 1800 MHz in practice). Big-data
// record processing is memory-bandwidth- and latency-bound, not FLOP-bound,
// so throughput ratios are taken from achievable memory throughput with a
// discount for the GPU's lower per-thread efficiency on irregular code.
// The absolute values only scale the time axis; the paper-shape conclusions
// (who wins, crossovers) depend on the *ratios* and on the measured counts.
#pragma once

#include <algorithm>
#include <cstdint>

#include "gpusim/counters.hpp"
#include "gpusim/pcie.hpp"

namespace sepo::gpusim {

// Per-event costs of one *processor-second* of the machine, expressed as
// seconds of aggregate machine time per event.
struct MachineDesc {
  const char* name;

  // Seconds of machine time to chew one work unit (≈ one input byte parsed
  // plus its share of emitted bytes), aggregated over all cores/threads.
  double sec_per_work_unit;
  // Fixed cost of one hash-table operation (hash + bucket fetch).
  double sec_per_hash_op;
  // Cost per byte of key comparison while probing a chain.
  double sec_per_compare_byte;
  // Cost per chain link dereference (dependent memory load).
  double sec_per_chain_link;
  // Cost of one dynamic allocation (bump or malloc).
  double sec_per_alloc;
  // Cost of one uncontended lock acquire/release pair.
  double sec_per_lock;
  // Extra serialized cost when an acquire found the lock held.
  double sec_per_contended_lock;
  // Cost of one failed CAS / spin cycle.
  double sec_per_atomic_retry;
  // Extra cost per work unit executed under warp divergence: a long
  // data-dependent switch makes the warp run every taken path serially, a
  // ~15x slowdown on the affected bytes (zero for OOO CPU cores).
  double sec_per_divergent_unit;
  // Fixed cost per kernel launch (driver + scheduling), zero for the CPU.
  double sec_per_kernel_launch;
  // Number of hardware contexts that can contend for one lock at once.
  double concurrency;
  // Time a bucket lock is held per operation (hash probe + combine). Used by
  // the hot-lock serialization term below.
  double sec_per_critical_section;
  // Serialized cost of one atomic RMW on a single shared word (e.g. a global
  // bump-allocator counter à la MapCG).
  double sec_per_serial_atomic;
};

// Inputs for the deterministic lock-serialization model. Real measured
// contention on the simulation host would under-represent a 2880-core GPU,
// so serialization is *modelled* from access counts: N lock-protected ops
// over many locks complete in max(N/G, max_same_lock_ops) critical sections
// — the hottest lock is a serial chain no parallelism can hide. This is the
// mechanism behind the paper's Word Count result (§VI-B: "suffers from lock
// contention ... because of the small number of distinct keys and large
// number of duplicate keys" and "A CPU implementation also suffers from
// lock contention, but not as much, given the significantly lower number of
// threads").
struct SerializationInputs {
  std::uint64_t total_lock_ops = 0;      // ops taking some bucket lock
  std::uint64_t max_same_lock_ops = 0;   // ops on the hottest bucket
  std::uint64_t serial_atomic_ops = 0;   // ops on a single shared atomic
};

// Extra time beyond ideal parallelism caused by serialization.
[[nodiscard]] double serialization_time(const MachineDesc& m,
                                        const SerializationInputs& s);

// GTX-780ti-like device. Aggregate parsing throughput modelled at ~24 GB/s
// of effective irregular-access throughput (336 GB/s peak discounted ~14x
// for uncoalesced, short, data-dependent accesses).
constexpr MachineDesc kGpuDesc{
    .name = "gpu-780ti",
    .sec_per_work_unit = 1.0 / 24.0e9,
    .sec_per_hash_op = 8.0e-9 / 2048.0,       // 8ns per op, 2048-way parallel
    .sec_per_compare_byte = 1.0 / 24.0e9,
    .sec_per_chain_link = 60.0e-9 / 2048.0,   // dependent load latency, overlapped
    .sec_per_alloc = 24.0e-9 / 2048.0,
    .sec_per_lock = 20.0e-9 / 2048.0,
    .sec_per_contended_lock = 350.0e-9 / 64.0,  // serialization collapses overlap
    .sec_per_atomic_retry = 24.0e-9 / 64.0,
    .sec_per_divergent_unit = 15.0 / 24.0e9,  // 15x on divergent bytes
    .sec_per_kernel_launch = 8.0e-6,
    .concurrency = 2048.0,
    .sec_per_critical_section = 120.0e-9,  // lock + probe + combine, serial
    .sec_per_serial_atomic = 25.0e-9,  // contended same-address atomic RMW
};

// Xeon-E5-like host with 8 hardware threads. Aggregate parse+insert
// throughput ~1.2 GB/s (8 threads x ~150 MB/s each — byte-wise parsing plus
// a pointer-chasing hash insert per record is far below memcpy speed).
constexpr MachineDesc kCpuDesc{
    .name = "cpu-xeon-e5",
    .sec_per_work_unit = 1.0 / 1.2e9,
    .sec_per_hash_op = 10.0e-9 / 8.0,
    .sec_per_compare_byte = 1.0 / 16.0e9,
    .sec_per_chain_link = 70.0e-9 / 8.0,     // LLC/DRAM-latency-bound pointer chase
    .sec_per_alloc = 30.0e-9 / 8.0,          // TCMalloc fast path
    .sec_per_lock = 15.0e-9 / 8.0,
    .sec_per_contended_lock = 120.0e-9 / 4.0,
    .sec_per_atomic_retry = 15.0e-9 / 4.0,
    .sec_per_divergent_unit = 0.0,           // OOO cores hide the switch
    .sec_per_kernel_launch = 0.0,
    .concurrency = 8.0,
    .sec_per_critical_section = 60.0e-9,
    .sec_per_serial_atomic = 8.0e-9,
};

// Pure compute time of `s` on machine `m` (no bus transfers).
[[nodiscard]] double compute_time(const MachineDesc& m, const StatsSnapshot& s);

struct GpuTimeBreakdown {
  double compute = 0;   // kernels
  double h2d = 0;       // input staging (overlappable with compute)
  double d2h = 0;       // heap flushes (serial: computation is halted)
  double remote = 0;    // pinned-memory remote accesses (serial with compute)
  double total = 0;     // max(compute, h2d) + d2h + remote
};

// Combines kernel compute time with bus transfer times. Input staging (h2d)
// overlaps with compute thanks to the BigKernel pipeline; heap flushes (d2h)
// halt the computation (paper §IV-C), and remote accesses serialize with the
// issuing warps.
[[nodiscard]] GpuTimeBreakdown gpu_time(const MachineDesc& m,
                                        const StatsSnapshot& s,
                                        const PcieBus& bus,
                                        const PcieSnapshot& p);

// CPU-side total: compute only (the baseline has no bus).
[[nodiscard]] double cpu_time(const MachineDesc& m, const StatsSnapshot& s);

}  // namespace sepo::gpusim
