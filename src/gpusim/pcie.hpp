// PCIe bus model.
//
// The paper's headline comparisons (SEPO vs pinned-in-CPU-memory vs demand
// paging, §VI-D) are decided by how many bytes cross the bus in how many
// transactions: "the data is transferred over many small PCIe transactions,
// which is much costlier than a few bulky PCIe transactions". We therefore
// meter every transfer as (transaction count, byte count) and convert to time
// with a latency + bandwidth model, exactly the arithmetic the paper uses to
// compute Table III's lower bounds.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/trace_hook.hpp"

namespace sepo::gpusim {

struct PcieParams {
  // Effective host<->device bandwidth for bulk copies. PCIe Gen3 x16 is
  // 15.75 GB/s raw; ~12 GB/s is a typical achieved figure.
  double bandwidth_bytes_per_s = 12.0e9;
  // Per-transaction setup latency (driver + DMA descriptor + link).
  double latency_s = 1.3e-6;
  // Small remote accesses (a GPU thread dereferencing pinned CPU memory)
  // pay a round-trip and achieve very poor effective bandwidth.
  double remote_roundtrip_s = 0.9e-6;
  double remote_bandwidth_bytes_per_s = 0.8e9;
};

struct PcieSnapshot {
  std::uint64_t h2d_bytes = 0, h2d_txns = 0;
  std::uint64_t d2h_bytes = 0, d2h_txns = 0;
  std::uint64_t remote_bytes = 0, remote_txns = 0;

  PcieSnapshot& operator+=(const PcieSnapshot& o) {
    h2d_bytes += o.h2d_bytes;
    h2d_txns += o.h2d_txns;
    d2h_bytes += o.d2h_bytes;
    d2h_txns += o.d2h_txns;
    remote_bytes += o.remote_bytes;
    remote_txns += o.remote_txns;
    return *this;
  }
};

class PcieBus {
 public:
  explicit PcieBus(PcieParams params = {}) : params_(params) {}

  // Bulk host-to-device copy (input staging).
  void h2d(std::uint64_t bytes) noexcept {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    h2d_txns_.fetch_add(1, std::memory_order_relaxed);
    if (trace_hook_) trace_hook_->on_h2d(bytes);
  }

  // Bulk device-to-host copy (heap flushes).
  void d2h(std::uint64_t bytes) noexcept {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    d2h_txns_.fetch_add(1, std::memory_order_relaxed);
    if (trace_hook_) trace_hook_->on_d2h(bytes);
  }

  // Small remote access from a device thread to pinned host memory.
  void remote(std::uint64_t bytes) noexcept {
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    remote_txns_.fetch_add(1, std::memory_order_relaxed);
    if (trace_hook_) trace_hook_->on_remote(bytes);
  }

  // Telemetry hook (obs::TraceRecorder). Install from the host before the
  // run; null keeps the metering paths hook-free apart from one branch.
  void set_trace_hook(TraceHook* hook) noexcept { trace_hook_ = hook; }
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }

  [[nodiscard]] PcieSnapshot snapshot() const noexcept {
    PcieSnapshot s;
    s.h2d_bytes = h2d_bytes_.load(std::memory_order_relaxed);
    s.h2d_txns = h2d_txns_.load(std::memory_order_relaxed);
    s.d2h_bytes = d2h_bytes_.load(std::memory_order_relaxed);
    s.d2h_txns = d2h_txns_.load(std::memory_order_relaxed);
    s.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
    s.remote_txns = remote_txns_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    h2d_bytes_ = h2d_txns_ = d2h_bytes_ = d2h_txns_ = remote_bytes_ =
        remote_txns_ = 0;
  }

  [[nodiscard]] const PcieParams& params() const noexcept { return params_; }

  // Time for bulk transfers: per-transaction latency plus streaming time.
  [[nodiscard]] double bulk_time(std::uint64_t bytes,
                                 std::uint64_t txns) const noexcept {
    return static_cast<double>(txns) * params_.latency_s +
           static_cast<double>(bytes) / params_.bandwidth_bytes_per_s;
  }

  // Time for remote word-granularity accesses. Round-trips overlap across
  // the thousands of concurrent device threads, so we charge the round-trip
  // amortized by a pipelining factor rather than serially.
  [[nodiscard]] double remote_time(std::uint64_t bytes,
                                   std::uint64_t txns) const noexcept {
    constexpr double kOverlapFactor = 64.0;  // in-flight remote requests
    return static_cast<double>(txns) * params_.remote_roundtrip_s /
               kOverlapFactor +
           static_cast<double>(bytes) / params_.remote_bandwidth_bytes_per_s;
  }

  [[nodiscard]] double h2d_time(const PcieSnapshot& s) const noexcept {
    return bulk_time(s.h2d_bytes, s.h2d_txns);
  }
  [[nodiscard]] double d2h_time(const PcieSnapshot& s) const noexcept {
    return bulk_time(s.d2h_bytes, s.d2h_txns);
  }
  [[nodiscard]] double remote_access_time(const PcieSnapshot& s) const noexcept {
    return remote_time(s.remote_bytes, s.remote_txns);
  }

 private:
  PcieParams params_;
  TraceHook* trace_hook_ = nullptr;
  std::atomic<std::uint64_t> h2d_bytes_{0}, h2d_txns_{0};
  std::atomic<std::uint64_t> d2h_bytes_{0}, d2h_txns_{0};
  std::atomic<std::uint64_t> remote_bytes_{0}, remote_txns_{0};
};

}  // namespace sepo::gpusim
