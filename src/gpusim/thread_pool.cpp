#include "gpusim/thread_pool.hpp"

namespace sepo::gpusim {

namespace {
// Index of this OS thread within the pool whose job it is running. Helpers
// set it once at startup; the submitting thread pins it to 0 for the span of
// each job it participates in (see run_job), so the value is always in
// [0, worker_count) of the pool that owns the current job.
thread_local std::size_t t_worker_index = 0;
}  // namespace

std::size_t current_worker_index() noexcept { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    workers = hc > 0 ? hc : 1;
  }
  // The calling thread is always participant 0; spawn workers-1 helpers with
  // indices 1..workers-1.
  const std::size_t helpers = workers > 0 ? workers - 1 : 0;
  threads_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    threads_.emplace_back([this, idx = i + 1] { worker_loop(idx); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  std::uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen); });
      if (stop_) return;
      job = job_;
      seen = job_seq_;
      // Register under the lock: the submitter cannot observe remaining==0
      // and tear the job down between our job_ read and this increment.
      job->in_flight.fetch_add(1, std::memory_order_relaxed);
    }
    help(*job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      job->in_flight.fetch_sub(1, std::memory_order_relaxed);
      // Only the single submitter ever waits on cv_done_ (submissions are
      // serialized by submit_mu_), so one wakeup is exactly enough.
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::help(Job& job) {
  while (true) {
    const std::size_t start = job.next.fetch_add(job.batch, std::memory_order_relaxed);
    if (start >= job.n) break;
    const std::size_t end = std::min(start + job.batch, job.n);
    job.invoke(job.body, start, end);
    if (job.remaining.fetch_sub(end - start, std::memory_order_acq_rel) ==
        end - start) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_one();
    }
  }
}

// Shared submit/execute/drain path behind both parallel_for and run_parties.
void ThreadPool::run_job(std::size_t n, std::size_t batch, BatchFn invoke,
                         void* body) {
  std::lock_guard<std::mutex> submit(submit_mu_);
  Job job;
  job.invoke = invoke;
  job.body = body;
  job.n = n;
  job.batch = batch;
  job.remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  cv_work_.notify_all();
  // Participate as worker 0 of *this* pool for the span of the job; save and
  // restore so a submitter that is itself a helper of some other pool does
  // not leak a foreign index into this pool's shard addressing.
  const std::size_t saved_index = t_worker_index;
  t_worker_index = 0;
  help(job);
  t_worker_index = saved_index;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.in_flight.load(std::memory_order_relaxed) == 0;
    });
    job_ = nullptr;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Batch so that each worker sees on the order of 16 batches — small enough
  // for balance, large enough to amortize the atomic claim.
  run_job(n, std::max<std::size_t>(1, n / (worker_count() * 16)),
          &invoke_batch<const std::function<void(std::size_t)>>, body_ptr(body));
}

void ThreadPool::run_parties(std::size_t parties,
                             const std::function<void(std::size_t)>& body) {
  if (parties == 0) return;
  run_job(parties, 1, &invoke_batch<const std::function<void(std::size_t)>>,
          body_ptr(body));
}

}  // namespace sepo::gpusim
