#include "gpusim/thread_pool.hpp"

#include <algorithm>

namespace sepo::gpusim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    workers = hc > 0 ? hc : 1;
  }
  // The calling thread is always a participant; spawn workers-1 helpers.
  const std::size_t helpers = workers > 0 ? workers - 1 : 0;
  threads_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen); });
      if (stop_) return;
      job = job_;
      seen = job_seq_;
      // Register under the lock: the submitter cannot observe remaining==0
      // and tear the job down between our job_ read and this increment.
      job->in_flight.fetch_add(1, std::memory_order_relaxed);
    }
    help(*job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      job->in_flight.fetch_sub(1, std::memory_order_relaxed);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::help(Job& job) {
  while (true) {
    const std::size_t start = job.next.fetch_add(job.batch, std::memory_order_relaxed);
    if (start >= job.n) break;
    const std::size_t end = std::min(start + job.batch, job.n);
    for (std::size_t i = start; i < end; ++i) job.body(i);
    if (job.remaining.fetch_sub(end - start, std::memory_order_acq_rel) ==
        end - start) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  Job job;
  job.body = body;
  job.n = n;
  // Batch so that each worker sees on the order of 16 batches — small enough
  // for balance, large enough to amortize the atomic claim.
  job.batch = std::max<std::size_t>(1, n / (worker_count() * 16));
  job.remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  cv_work_.notify_all();
  help(job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.in_flight.load(std::memory_order_relaxed) == 0;
    });
    job_ = nullptr;
  }
}

void ThreadPool::run_parties(std::size_t parties,
                             const std::function<void(std::size_t)>& body) {
  if (parties == 0) return;
  Job job;
  job.body = body;
  job.n = parties;
  job.batch = 1;
  job.remaining.store(parties, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  cv_work_.notify_all();
  help(job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.in_flight.load(std::memory_order_relaxed) == 0;
    });
    job_ = nullptr;
  }
}

}  // namespace sepo::gpusim
