#include "gpusim/fault.hpp"

#include "common/parse.hpp"

namespace sepo::gpusim {

namespace {

[[noreturn]] void bad_value(std::string_view name, std::string_view value,
                            std::string_view expect) {
  throw std::invalid_argument("invalid value for " + std::string(name) + ": '" +
                              std::string(value) + "' (expected " +
                              std::string(expect) + ")");
}

double parse_rate(std::string_view name, std::string_view value) {
  const auto v = parse_number<double>(value);
  if (!v || *v < 0.0 || *v > 1.0) bad_value(name, value, "a rate in [0, 1]");
  return *v;
}

}  // namespace

bool apply_fault_flag(FaultConfig& cfg, std::string_view name,
                      std::string_view value) {
  if (name == "--fault-seed") {
    const auto v = parse_number<std::uint64_t>(value);
    if (!v) bad_value(name, value, "an unsigned 64-bit integer");
    cfg.seed = *v;
  } else if (name == "--fault-h2d-rate") {
    cfg.h2d_rate = parse_rate(name, value);
  } else if (name == "--fault-d2h-rate") {
    cfg.d2h_rate = parse_rate(name, value);
  } else if (name == "--fault-remote-rate") {
    cfg.remote_rate = parse_rate(name, value);
  } else if (name == "--fault-kernel-rate") {
    cfg.kernel_abort_rate = parse_rate(name, value);
  } else if (name == "--fault-pressure") {
    cfg.pressure_rate = parse_rate(name, value);
  } else if (name == "--fault-pressure-frac") {
    cfg.pressure_frac = parse_rate(name, value);
  } else if (name == "--fault-pressure-hold") {
    const auto v = parse_number<std::uint32_t>(value);
    if (!v) bad_value(name, value, "an iteration count");
    cfg.pressure_hold_iterations = *v;
  } else if (name == "--fault-max-retries") {
    const auto v = parse_number<std::uint32_t>(value);
    if (!v || *v == 0) bad_value(name, value, "a positive retry count");
    cfg.max_retries = *v;
  } else {
    return false;
  }
  return true;
}

}  // namespace sepo::gpusim
