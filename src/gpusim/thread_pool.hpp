// Host thread pool that executes virtual-GPU kernels (gpusim/launch.hpp).
//
// The pool provides the *concurrency* of the simulated device — thousands of
// virtual threads are multiplexed onto the pool — while the *throughput* of
// the device is modelled separately by gpusim::CostModel (DESIGN.md §5).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sepo::gpusim {

class ThreadPool {
 public:
  // `workers == 0` selects the hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size() + 1;  // workers + the calling thread
  }

  // Runs `body(i)` for every i in [0, n). Blocks until all items complete.
  // Items are claimed dynamically in small batches so skewed per-item costs
  // balance across workers. The calling thread participates.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Runs `body(t)` once per participant t in [0, parties); each call runs on
  // its own thread (calling thread is participant 0). Used for persistent
  // per-thread work such as the CPU-baseline insert loops.
  void run_parties(std::size_t parties,
                   const std::function<void(std::size_t)>& body);

 private:
  struct Job {
    std::function<void(std::size_t)> body;
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::size_t batch = 1;
    std::atomic<std::size_t> remaining{0};
    // Workers currently inside help() for this job; parallel_for must not
    // return (and destroy the stack-allocated Job) while any remain.
    std::atomic<int> in_flight{0};
  };

  void worker_loop();
  void help(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;  // current job, guarded by mu_ for publication
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace sepo::gpusim
