// Host thread pool that executes virtual-GPU kernels (gpusim/launch.hpp).
//
// The pool provides the *concurrency* of the simulated device — thousands of
// virtual threads are multiplexed onto the pool — while the *throughput* of
// the device is modelled separately by gpusim::CostModel (DESIGN.md §5).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "gpusim/worker_id.hpp"

namespace sepo::gpusim {

class ThreadPool {
 public:
  // `workers == 0` selects the hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size() + 1;  // workers + the calling thread
  }

  // Runs `body(i)` for every i in [0, n). Blocks until all items complete.
  // Items are claimed dynamically in small batches so skewed per-item costs
  // balance across workers. The calling thread participates.
  //
  // std::function overload: ABI-stable entry point for call sites that
  // already hold type-erased callables (defined in thread_pool.cpp).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Devirtualized overload: instantiated per concrete callable, so the
  // per-item call inlines into the batch loop instead of going through
  // std::function dispatch. Overload resolution picks this for lambdas and
  // functors; std::function lvalues/rvalues keep the overload above.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body) {
    if (n == 0) return;
    run_job(n, std::max<std::size_t>(1, n / (worker_count() * 16)),
            &invoke_batch<std::remove_reference_t<Body>>, body_ptr(body));
  }

  // Runs `body(t)` once per participant t in [0, parties); each call runs on
  // its own thread (calling thread is participant 0). Used for persistent
  // per-thread work such as the CPU-baseline insert loops.
  void run_parties(std::size_t parties,
                   const std::function<void(std::size_t)>& body);

  template <typename Body>
  void run_parties(std::size_t parties, Body&& body) {
    if (parties == 0) return;
    run_job(parties, 1, &invoke_batch<std::remove_reference_t<Body>>,
            body_ptr(body));
  }

 private:
  // Type-erased *batch* entry point: one function pointer per concrete
  // callable type, instantiated where the callable's type is visible, so the
  // compiler inlines the per-item call into this loop. Erasing at batch
  // granularity instead of item granularity is what removes the per-item
  // indirect call from the hot path while keeping Job non-templated.
  using BatchFn = void (*)(void* body, std::size_t begin, std::size_t end);

  template <typename B>
  static void invoke_batch(void* body, std::size_t begin, std::size_t end) {
    B& b = *static_cast<B*>(body);
    for (std::size_t i = begin; i < end; ++i) b(i);
  }

  template <typename B>
  [[nodiscard]] static void* body_ptr(B& body) noexcept {
    // invoke_batch<B> restores the exact cv-qualification before calling.
    return const_cast<void*>(static_cast<const void*>(std::addressof(body)));
  }

  struct Job {
    BatchFn invoke = nullptr;
    void* body = nullptr;
    std::size_t n = 0;
    std::size_t batch = 1;
    // The two hot atomics live on their own cache lines: `next` is hammered
    // by every claim and `remaining` by every batch retirement, so letting
    // them share a line with each other (or with the read-mostly fields
    // above) would reintroduce the false sharing this layout exists to kill.
    alignas(kCacheLineBytes) std::atomic<std::size_t> next{0};
    alignas(kCacheLineBytes) std::atomic<std::size_t> remaining{0};
    // Workers currently inside help() for this job; run_job must not return
    // (and destroy the stack-allocated Job) while any remain.
    alignas(kCacheLineBytes) std::atomic<int> in_flight{0};
  };

  void run_job(std::size_t n, std::size_t batch, BatchFn invoke, void* body);
  void worker_loop(std::size_t index);
  void help(Job& job);

  std::vector<std::thread> threads_;
  // Serializes submitters: the pool has a single job slot, and holding this
  // across a whole job makes parallel_for/run_parties safe to call
  // concurrently from multiple threads (they simply queue up).
  std::mutex submit_mu_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;  // current job, guarded by mu_ for publication
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace sepo::gpusim
