// SIMT-style kernel launch on the virtual device.
//
// A "kernel" is a callable executed once per virtual thread id over a grid.
// Virtual threads are multiplexed onto the host ThreadPool. Kernel code may
// use std::atomic operations on device memory (standing in for CUDA atomics)
// and the sepo::alloc allocator. Divergence and contention are *counted*
// (RunStats) rather than slowing the host down; the CostModel prices them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "gpusim/counters.hpp"
#include "gpusim/thread_pool.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::gpusim {

inline constexpr std::size_t kWarpSize = 32;

struct LaunchConfig {
  // Number of virtual threads in the grid. Defaults to one thread per work
  // item when 0.
  std::size_t grid_threads = 0;
};

namespace detail {

// Distributes items over grid threads and runs them on the pool, with the
// counters sharded for exactly the kernel's duration: every stats bump from
// inside the kernel lands in the executing worker's private WorkerStats
// line, and the shards fold back into the canonical atomics when the scope
// closes — after the pool has quiesced, before any snapshot can observe the
// totals. Host-side bumps outside this scope keep using the atomics.
template <typename Kernel>
void run_grid(ThreadPool& pool, RunStats& stats, std::size_t n_items,
              Kernel& kernel, const LaunchConfig& cfg) {
  StatsShardScope shards(stats, pool.worker_count());
  const std::size_t grid = cfg.grid_threads == 0 ? n_items : cfg.grid_threads;
  if (grid >= n_items) {
    pool.parallel_for(n_items, kernel);
    return;
  }
  // Grid-stride loop: virtual thread t handles items t, t+grid, t+2*grid, ...
  pool.parallel_for(grid, [&](std::size_t t) {
    for (std::size_t i = t; i < n_items; i += grid) kernel(i);
  });
}

}  // namespace detail

// Launches `kernel(item)` for every item in [0, n_items). Items are
// distributed over grid threads in a grid-stride loop, like the canonical
// CUDA pattern; grid threads are in turn multiplexed onto the pool.
//
// std::function overload: ABI-stable entry point for call sites holding
// type-erased kernels (defined in launch.cpp).
void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            const std::function<void(std::size_t)>& kernel,
            LaunchConfig cfg = {});

// Devirtualized overload: instantiated per concrete kernel type so the
// per-item call inlines all the way into ThreadPool's batch loop. Overload
// resolution picks this for lambdas/functors and keeps the std::function
// overload above for std::function lvalues.
template <typename Kernel>
void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            Kernel&& kernel, LaunchConfig cfg = {}) {
  TraceHook* const hook = stats.trace_hook();
  if (!hook) {
    stats.add_kernel_launches();
    if (n_items != 0) detail::run_grid(pool, stats, n_items, kernel, cfg);
    return;
  }
  // Telemetry: report the counter delta this kernel produced (including its
  // own launch cost). Launches are serial on the host side, so before/after
  // snapshots bracket exactly this kernel's events — run_grid's shard scope
  // has already folded by the time the "after" snapshot is taken.
  const StatsSnapshot before = stats.snapshot();
  stats.add_kernel_launches();
  if (n_items != 0) detail::run_grid(pool, stats, n_items, kernel, cfg);
  hook->on_kernel(stats.snapshot() - before, n_items);
}

// A spinlock in device memory (stands in for a CUDA atomicCAS lock). The
// acquire is counted so the cost model can price contention: the paper
// attributes Word Count's poor GPU showing to exactly this ("suffers from
// lock contention when accessing buckets", §VI-B).
class DeviceLock {
 public:
  void lock(RunStats& stats) noexcept {
    stats.add_lock_acquires();
    if (flag_.exchange(1, std::memory_order_acquire) == 0) return;
    stats.add_lock_contended();
    // Test-and-test-and-set with bounded exponential backoff. The raw
    // exchange loop livelock-spins when grid_threads far exceeds the host
    // pool: the holder's OS thread can be descheduled while waiters burn
    // its core. Backoff spins read-only (no cache-line ping-pong) and
    // yields once saturated so the holder gets scheduled.
    std::uint64_t retries = 0;
    std::uint32_t backoff = 1;
    constexpr std::uint32_t kMaxBackoff = 1024;
    for (;;) {
      for (std::uint32_t i = 0; i < backoff; ++i)
        if (flag_.load(std::memory_order_relaxed) == 0) break;
      if (flag_.exchange(1, std::memory_order_acquire) == 0) break;
      ++retries;
      if (backoff < kMaxBackoff)
        backoff <<= 1;
      else
        std::this_thread::yield();
    }
    stats.add_atomic_retries(retries);
  }

  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

  [[nodiscard]] bool try_lock() noexcept {
    return flag_.exchange(1, std::memory_order_acquire) == 0;
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

// RAII guard for DeviceLock.
class DeviceLockGuard {
 public:
  DeviceLockGuard(DeviceLock& l, RunStats& stats) : l_(l) { l_.lock(stats); }
  ~DeviceLockGuard() { l_.unlock(); }
  DeviceLockGuard(const DeviceLockGuard&) = delete;
  DeviceLockGuard& operator=(const DeviceLockGuard&) = delete;

 private:
  DeviceLock& l_;
};

// One hash bucket's lock and its host-side access tally, padded onto a
// private cache line so neighbouring buckets never false-share. The tables'
// *device-memory* accounting (alloc_static footprint) is unchanged by this
// host-side layout — a real GPU bucket would not carry the padding, so the
// simulated heap must not either.
struct alignas(kCacheLineBytes) PaddedBucketLock {
  DeviceLock lock;
  std::uint32_t accesses = 0;  // bumped under `lock`, read when quiescent
};

}  // namespace sepo::gpusim
