// SIMT-style kernel launch on the virtual device.
//
// A "kernel" is a callable executed once per virtual thread id over a grid.
// Virtual threads are multiplexed onto the host ThreadPool. Kernel code may
// use std::atomic operations on device memory (standing in for CUDA atomics)
// and the sepo::alloc allocator. Divergence and contention are *counted*
// (RunStats) rather than slowing the host down; the CostModel prices them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "gpusim/counters.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::gpusim {

inline constexpr std::size_t kWarpSize = 32;

struct LaunchConfig {
  // Number of virtual threads in the grid. Defaults to one thread per work
  // item when 0.
  std::size_t grid_threads = 0;
};

// Launches `kernel(item)` for every item in [0, n_items). Items are
// distributed over grid threads in a grid-stride loop, like the canonical
// CUDA pattern; grid threads are in turn multiplexed onto the pool.
void launch(ThreadPool& pool, RunStats& stats, std::size_t n_items,
            const std::function<void(std::size_t)>& kernel,
            LaunchConfig cfg = {});

// A spinlock in device memory (stands in for a CUDA atomicCAS lock). The
// acquire is counted so the cost model can price contention: the paper
// attributes Word Count's poor GPU showing to exactly this ("suffers from
// lock contention when accessing buckets", §VI-B).
class DeviceLock {
 public:
  void lock(RunStats& stats) noexcept {
    stats.add_lock_acquires();
    if (flag_.exchange(1, std::memory_order_acquire) == 0) return;
    stats.add_lock_contended();
    // Test-and-test-and-set with bounded exponential backoff. The raw
    // exchange loop livelock-spins when grid_threads far exceeds the host
    // pool: the holder's OS thread can be descheduled while waiters burn
    // its core. Backoff spins read-only (no cache-line ping-pong) and
    // yields once saturated so the holder gets scheduled.
    std::uint64_t retries = 0;
    std::uint32_t backoff = 1;
    constexpr std::uint32_t kMaxBackoff = 1024;
    for (;;) {
      for (std::uint32_t i = 0; i < backoff; ++i)
        if (flag_.load(std::memory_order_relaxed) == 0) break;
      if (flag_.exchange(1, std::memory_order_acquire) == 0) break;
      ++retries;
      if (backoff < kMaxBackoff)
        backoff <<= 1;
      else
        std::this_thread::yield();
    }
    stats.add_atomic_retries(retries);
  }

  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

  [[nodiscard]] bool try_lock() noexcept {
    return flag_.exchange(1, std::memory_order_acquire) == 0;
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

// RAII guard for DeviceLock.
class DeviceLockGuard {
 public:
  DeviceLockGuard(DeviceLock& l, RunStats& stats) : l_(l) { l_.lock(stats); }
  ~DeviceLockGuard() { l_.unlock(); }
  DeviceLockGuard(const DeviceLockGuard&) = delete;
  DeviceLockGuard& operator=(const DeviceLockGuard&) = delete;

 private:
  DeviceLock& l_;
};

}  // namespace sepo::gpusim
