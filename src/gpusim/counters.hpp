// Event counters recorded during real execution of the simulated device.
// gpusim::CostModel converts a snapshot of these counts into simulated time
// (DESIGN.md §5). Counting events instead of measuring host wall-clock is
// what makes the reproduction independent of the host machine.
#pragma once

#include <atomic>
#include <cstdint>

namespace sepo::gpusim {

// Plain-value snapshot of RunStats, safe to copy and do arithmetic on.
struct StatsSnapshot {
  // Task-level
  std::uint64_t records_processed = 0;  // tasks that completed successfully
  std::uint64_t records_postponed = 0;  // task executions that ended in POSTPONE
  std::uint64_t records_scanned = 0;    // task slots visited (incl. done-skips)
  std::uint64_t work_units = 0;         // app work, in bytes parsed/produced

  // Hash-table level
  std::uint64_t hash_ops = 0;           // insert/lookup operations started
  std::uint64_t key_compare_bytes = 0;  // bytes compared while probing chains
  std::uint64_t chain_links_walked = 0; // entries visited while probing
  std::uint64_t inserts_new = 0;        // new entries materialized
  std::uint64_t combines = 0;           // in-place value merges
  std::uint64_t value_appends = 0;      // multi-valued appends

  // Allocator level
  std::uint64_t alloc_ops = 0;
  std::uint64_t alloc_fails = 0;        // POSTPONE-producing failures
  std::uint64_t page_acquires = 0;

  // Synchronization level
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;     // acquires that found the lock held
  std::uint64_t atomic_retries = 0;     // CAS retries

  // Control level
  std::uint64_t divergent_units = 0;    // work units executed under warp divergence
  std::uint64_t kernel_launches = 0;
  std::uint64_t iterations = 0;         // SEPO iterations over the input

  StatsSnapshot& operator+=(const StatsSnapshot& o) {
    records_processed += o.records_processed;
    records_postponed += o.records_postponed;
    records_scanned += o.records_scanned;
    work_units += o.work_units;
    hash_ops += o.hash_ops;
    key_compare_bytes += o.key_compare_bytes;
    chain_links_walked += o.chain_links_walked;
    inserts_new += o.inserts_new;
    combines += o.combines;
    value_appends += o.value_appends;
    alloc_ops += o.alloc_ops;
    alloc_fails += o.alloc_fails;
    page_acquires += o.page_acquires;
    lock_acquires += o.lock_acquires;
    lock_contended += o.lock_contended;
    atomic_retries += o.atomic_retries;
    divergent_units += o.divergent_units;
    kernel_launches += o.kernel_launches;
    iterations += o.iterations;
    return *this;
  }
};

// Thread-safe accumulating counters. All increments are relaxed: counts are
// read only between kernel launches, when virtual threads are quiescent.
class RunStats {
 public:
  void add_records_processed(std::uint64_t n = 1) noexcept { bump(records_processed_, n); }
  void add_records_postponed(std::uint64_t n = 1) noexcept { bump(records_postponed_, n); }
  void add_records_scanned(std::uint64_t n = 1) noexcept { bump(records_scanned_, n); }
  void add_work_units(std::uint64_t n) noexcept { bump(work_units_, n); }
  void add_hash_ops(std::uint64_t n = 1) noexcept { bump(hash_ops_, n); }
  void add_key_compare_bytes(std::uint64_t n) noexcept { bump(key_compare_bytes_, n); }
  void add_chain_links(std::uint64_t n = 1) noexcept { bump(chain_links_walked_, n); }
  void add_inserts_new(std::uint64_t n = 1) noexcept { bump(inserts_new_, n); }
  void add_combines(std::uint64_t n = 1) noexcept { bump(combines_, n); }
  void add_value_appends(std::uint64_t n = 1) noexcept { bump(value_appends_, n); }
  void add_alloc_ops(std::uint64_t n = 1) noexcept { bump(alloc_ops_, n); }
  void add_alloc_fails(std::uint64_t n = 1) noexcept { bump(alloc_fails_, n); }
  void add_page_acquires(std::uint64_t n = 1) noexcept { bump(page_acquires_, n); }
  void add_lock_acquires(std::uint64_t n = 1) noexcept { bump(lock_acquires_, n); }
  void add_lock_contended(std::uint64_t n = 1) noexcept { bump(lock_contended_, n); }
  void add_atomic_retries(std::uint64_t n = 1) noexcept { bump(atomic_retries_, n); }
  void add_divergent_units(std::uint64_t n) noexcept { bump(divergent_units_, n); }
  void add_kernel_launches(std::uint64_t n = 1) noexcept { bump(kernel_launches_, n); }
  void add_iterations(std::uint64_t n = 1) noexcept { bump(iterations_, n); }

  [[nodiscard]] StatsSnapshot snapshot() const noexcept {
    StatsSnapshot s;
    s.records_processed = records_processed_.load(std::memory_order_relaxed);
    s.records_postponed = records_postponed_.load(std::memory_order_relaxed);
    s.records_scanned = records_scanned_.load(std::memory_order_relaxed);
    s.work_units = work_units_.load(std::memory_order_relaxed);
    s.hash_ops = hash_ops_.load(std::memory_order_relaxed);
    s.key_compare_bytes = key_compare_bytes_.load(std::memory_order_relaxed);
    s.chain_links_walked = chain_links_walked_.load(std::memory_order_relaxed);
    s.inserts_new = inserts_new_.load(std::memory_order_relaxed);
    s.combines = combines_.load(std::memory_order_relaxed);
    s.value_appends = value_appends_.load(std::memory_order_relaxed);
    s.alloc_ops = alloc_ops_.load(std::memory_order_relaxed);
    s.alloc_fails = alloc_fails_.load(std::memory_order_relaxed);
    s.page_acquires = page_acquires_.load(std::memory_order_relaxed);
    s.lock_acquires = lock_acquires_.load(std::memory_order_relaxed);
    s.lock_contended = lock_contended_.load(std::memory_order_relaxed);
    s.atomic_retries = atomic_retries_.load(std::memory_order_relaxed);
    s.divergent_units = divergent_units_.load(std::memory_order_relaxed);
    s.kernel_launches = kernel_launches_.load(std::memory_order_relaxed);
    s.iterations = iterations_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto* c :
         {&records_processed_, &records_postponed_, &records_scanned_,
          &work_units_, &hash_ops_, &key_compare_bytes_, &chain_links_walked_,
          &inserts_new_, &combines_, &value_appends_, &alloc_ops_,
          &alloc_fails_, &page_acquires_, &lock_acquires_, &lock_contended_,
          &atomic_retries_, &divergent_units_, &kernel_launches_,
          &iterations_})
      c->store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> records_processed_{0}, records_postponed_{0},
      records_scanned_{0}, work_units_{0}, hash_ops_{0}, key_compare_bytes_{0},
      chain_links_walked_{0}, inserts_new_{0}, combines_{0}, value_appends_{0},
      alloc_ops_{0}, alloc_fails_{0}, page_acquires_{0}, lock_acquires_{0},
      lock_contended_{0}, atomic_retries_{0}, divergent_units_{0},
      kernel_launches_{0}, iterations_{0};
};

}  // namespace sepo::gpusim
