// Event counters recorded during real execution of the simulated device.
// gpusim::CostModel converts a snapshot of these counts into simulated time
// (DESIGN.md §5). Counting events instead of measuring host wall-clock is
// what makes the reproduction independent of the host machine.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gpusim/worker_id.hpp"

namespace sepo::gpusim {

class TraceHook;

// The single source of truth for the counter set. StatsSnapshot fields,
// RunStats atomics/adders, snapshot(), reset(), arithmetic, and the JSON
// serializer (obs::to_json) are all generated from this list, so adding a
// counter is one line here and one nowhere else.
//
//   X(field, comment)
#define SEPO_STATS_FIELDS(X)                                                   \
  /* Task-level */                                                             \
  X(records_processed, "tasks that completed successfully")                    \
  X(records_postponed, "task executions that ended in POSTPONE")               \
  X(records_scanned, "task slots visited (incl. done-skips)")                  \
  X(work_units, "app work, in bytes parsed/produced")                          \
  /* Hash-table level */                                                       \
  X(hash_ops, "insert/lookup operations started")                              \
  X(key_compare_bytes, "bytes compared while probing chains")                  \
  X(chain_links_walked, "entries visited while probing")                       \
  X(inserts_new, "new entries materialized")                                   \
  X(combines, "in-place value merges")                                         \
  X(value_appends, "multi-valued appends")                                     \
  /* Allocator level */                                                        \
  X(alloc_ops, "allocation attempts")                                          \
  X(alloc_fails, "POSTPONE-producing failures")                                \
  X(page_acquires, "pages claimed from the pool")                              \
  /* Synchronization level */                                                  \
  X(lock_acquires, "lock acquire/release pairs")                               \
  X(lock_contended, "acquires that found the lock held")                       \
  X(atomic_retries, "CAS retries")                                             \
  /* Control level */                                                          \
  X(divergent_units, "work units executed under warp divergence")              \
  X(kernel_launches, "kernel launches")                                        \
  X(iterations, "SEPO iterations over the input")                              \
  /* Fault-injection level (gpusim::FaultInjector) */                          \
  X(faults_h2d, "injected h2d transfer failures")                              \
  X(faults_d2h, "injected d2h transfer failures")                              \
  X(faults_remote, "injected remote transaction failures")                     \
  X(kernel_aborts, "injected kernel launch aborts")                            \
  X(fault_retries, "priced retry rounds after injected faults")                \
  X(pressure_spikes, "device-memory pressure spikes begun")                    \
  X(page_double_releases, "rejected double releases of a heap page")

// Plain-value snapshot of RunStats, safe to copy and do arithmetic on.
struct StatsSnapshot {
#define SEPO_X(field, comment) std::uint64_t field = 0; /* comment */
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X

  StatsSnapshot& operator+=(const StatsSnapshot& o) {
#define SEPO_X(field, comment) field += o.field;
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return *this;
  }

  // Saturating per-field difference (deltas between two points in a run;
  // counters are monotone so saturation only guards against misuse). The
  // debug assert makes that misuse — e.g. a shard-merge bug producing an
  // "after" snapshot smaller than "before" — fail loudly in the asan/tsan
  // presets instead of silently clamping to zero.
  StatsSnapshot& operator-=(const StatsSnapshot& o) {
#define SEPO_X(field, comment)                                                 \
  assert(field >= o.field && "StatsSnapshot::operator-= saturated: " #field);  \
  field = field >= o.field ? field - o.field : 0;
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return *this;
  }

  [[nodiscard]] friend StatsSnapshot operator+(StatsSnapshot a,
                                               const StatsSnapshot& b) {
    return a += b;
  }
  [[nodiscard]] friend StatsSnapshot operator-(StatsSnapshot a,
                                               const StatsSnapshot& b) {
    return a -= b;
  }

  [[nodiscard]] bool operator==(const StatsSnapshot&) const = default;

  // Visits every counter as fn(name, value); the serializers and tests use
  // this so their field list cannot drift from the struct.
  template <typename Fn>
  void for_each_field(Fn&& fn) const {
#define SEPO_X(field, comment) fn(#field, field);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  }
};

// One pool worker's private counter shard: plain (non-atomic) fields on a
// worker-exclusive set of cache lines. Kernel code bumps its own shard with
// ordinary additions — no lock-prefixed RMW, no line shared with any other
// worker — and gpusim::launch merges all shards into the canonical RunStats
// atomics at kernel exit, while the virtual threads are quiescent. Generated
// from the same SEPO_STATS_FIELDS X-macro, so the shard cannot drift from
// the counter set.
struct alignas(kCacheLineBytes) WorkerStats {
#define SEPO_X(field, comment) std::uint64_t field = 0; /* comment */
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
};

// Thread-safe accumulating counters. Counts are read only between kernel
// launches, when virtual threads are quiescent.
//
// Two metering paths:
//  * Outside a kernel (host code, CPU-baseline parties): relaxed fetch_add
//    on the shared atomics — correct from any thread, any time.
//  * Inside a kernel (between begin_sharding/end_sharding, installed by
//    gpusim::launch): each pool worker bumps its private WorkerStats shard;
//    end_sharding folds the shards back into the atomics. Because uint64
//    addition is commutative and wraps mod 2^64, the merged totals are
//    bit-identical to what the all-atomic path would have produced, and the
//    merge happens at the exact quiescent point (kernel exit) where
//    snapshots, trace hooks, and the fault injector already observe totals.
class RunStats {
 public:
#define SEPO_X(field, comment)                                                 \
  void add_##field(std::uint64_t n = 1) noexcept {                             \
    if (WorkerStats* shard = shards_)                                          \
      shard[current_worker_index()].field += n;                                \
    else                                                                       \
      bump(field##_, n);                                                       \
  }
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X

  // Historical short name kept for kernel-code brevity.
  void add_chain_links(std::uint64_t n = 1) noexcept {
    add_chain_links_walked(n);
  }

  [[nodiscard]] StatsSnapshot snapshot() const noexcept {
    StatsSnapshot s;
#define SEPO_X(field, comment)                                                 \
  s.field = field##_.load(std::memory_order_relaxed);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return s;
  }

  void reset() noexcept {
#define SEPO_X(field, comment) field##_.store(0, std::memory_order_relaxed);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  }

  // Optional telemetry hook (obs::TraceRecorder). Install before a run, from
  // the host, while virtual threads are quiescent; null (the default) keeps
  // the hot path a single predictable branch and recording changes no
  // counter, so simulated results are identical with or without it.
  void set_trace_hook(TraceHook* hook) noexcept { trace_hook_ = hook; }
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }

  // --- sharded metering (installed by gpusim::launch) ---
  // Call from the host while virtual threads are quiescent, before the
  // kernel's pool job is published: the pool's job-publication mutex then
  // orders the plain shards_ write before any worker's read. Shard storage
  // is owned here and reused across launches, so steady-state launches do
  // not allocate.
  void begin_sharding(std::size_t workers) {
    assert(shards_ == nullptr && "launches do not nest");
    if (shard_storage_.size() < workers) shard_storage_.resize(workers);
    std::fill_n(shard_storage_.begin(), workers, WorkerStats{});
    n_shards_ = workers;
    shards_ = shard_storage_.data();
  }

  // Folds the shards into the atomics and returns to the all-atomic path.
  // Idempotent; called at kernel exit (again: virtual threads quiescent, the
  // pool's completion wait ordered every shard write before this read).
  void end_sharding() noexcept {
    WorkerStats* const shards = shards_;
    if (shards == nullptr) return;
    shards_ = nullptr;
    for (std::size_t w = 0; w < n_shards_; ++w) {
#define SEPO_X(field, comment)                                                 \
  if (shards[w].field != 0) bump(field##_, shards[w].field);
      SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    }
  }

  [[nodiscard]] bool sharded() const noexcept { return shards_ != nullptr; }

 private:
  static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }

#define SEPO_X(field, comment) std::atomic<std::uint64_t> field##_{0};
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  TraceHook* trace_hook_ = nullptr;
  WorkerStats* shards_ = nullptr;  // non-null only while a kernel executes
  std::size_t n_shards_ = 0;
  std::vector<WorkerStats> shard_storage_;
};

// RAII sharding scope for one kernel launch: constructor installs one shard
// per pool worker, destructor merges them back — exception-safe, so a
// throwing kernel still leaves totals consistent.
class StatsShardScope {
 public:
  StatsShardScope(RunStats& stats, std::size_t workers) : stats_(stats) {
    stats_.begin_sharding(workers);
  }
  ~StatsShardScope() { stats_.end_sharding(); }
  StatsShardScope(const StatsShardScope&) = delete;
  StatsShardScope& operator=(const StatsShardScope&) = delete;

 private:
  RunStats& stats_;
};

}  // namespace sepo::gpusim
