// Event counters recorded during real execution of the simulated device.
// gpusim::CostModel converts a snapshot of these counts into simulated time
// (DESIGN.md §5). Counting events instead of measuring host wall-clock is
// what makes the reproduction independent of the host machine.
#pragma once

#include <atomic>
#include <cstdint>

namespace sepo::gpusim {

class TraceHook;

// The single source of truth for the counter set. StatsSnapshot fields,
// RunStats atomics/adders, snapshot(), reset(), arithmetic, and the JSON
// serializer (obs::to_json) are all generated from this list, so adding a
// counter is one line here and one nowhere else.
//
//   X(field, comment)
#define SEPO_STATS_FIELDS(X)                                                   \
  /* Task-level */                                                             \
  X(records_processed, "tasks that completed successfully")                    \
  X(records_postponed, "task executions that ended in POSTPONE")               \
  X(records_scanned, "task slots visited (incl. done-skips)")                  \
  X(work_units, "app work, in bytes parsed/produced")                          \
  /* Hash-table level */                                                       \
  X(hash_ops, "insert/lookup operations started")                              \
  X(key_compare_bytes, "bytes compared while probing chains")                  \
  X(chain_links_walked, "entries visited while probing")                       \
  X(inserts_new, "new entries materialized")                                   \
  X(combines, "in-place value merges")                                         \
  X(value_appends, "multi-valued appends")                                     \
  /* Allocator level */                                                        \
  X(alloc_ops, "allocation attempts")                                          \
  X(alloc_fails, "POSTPONE-producing failures")                                \
  X(page_acquires, "pages claimed from the pool")                              \
  /* Synchronization level */                                                  \
  X(lock_acquires, "lock acquire/release pairs")                               \
  X(lock_contended, "acquires that found the lock held")                       \
  X(atomic_retries, "CAS retries")                                             \
  /* Control level */                                                          \
  X(divergent_units, "work units executed under warp divergence")              \
  X(kernel_launches, "kernel launches")                                        \
  X(iterations, "SEPO iterations over the input")                              \
  /* Fault-injection level (gpusim::FaultInjector) */                          \
  X(faults_h2d, "injected h2d transfer failures")                              \
  X(faults_d2h, "injected d2h transfer failures")                              \
  X(faults_remote, "injected remote transaction failures")                     \
  X(kernel_aborts, "injected kernel launch aborts")                            \
  X(fault_retries, "priced retry rounds after injected faults")                \
  X(pressure_spikes, "device-memory pressure spikes begun")                    \
  X(page_double_releases, "rejected double releases of a heap page")

// Plain-value snapshot of RunStats, safe to copy and do arithmetic on.
struct StatsSnapshot {
#define SEPO_X(field, comment) std::uint64_t field = 0; /* comment */
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X

  StatsSnapshot& operator+=(const StatsSnapshot& o) {
#define SEPO_X(field, comment) field += o.field;
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return *this;
  }

  // Saturating per-field difference (deltas between two points in a run;
  // counters are monotone so saturation only guards against misuse).
  StatsSnapshot& operator-=(const StatsSnapshot& o) {
#define SEPO_X(field, comment) field = field >= o.field ? field - o.field : 0;
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return *this;
  }

  [[nodiscard]] friend StatsSnapshot operator+(StatsSnapshot a,
                                               const StatsSnapshot& b) {
    return a += b;
  }
  [[nodiscard]] friend StatsSnapshot operator-(StatsSnapshot a,
                                               const StatsSnapshot& b) {
    return a -= b;
  }

  [[nodiscard]] bool operator==(const StatsSnapshot&) const = default;

  // Visits every counter as fn(name, value); the serializers and tests use
  // this so their field list cannot drift from the struct.
  template <typename Fn>
  void for_each_field(Fn&& fn) const {
#define SEPO_X(field, comment) fn(#field, field);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  }
};

// Thread-safe accumulating counters. All increments are relaxed: counts are
// read only between kernel launches, when virtual threads are quiescent.
class RunStats {
 public:
#define SEPO_X(field, comment)                                                 \
  void add_##field(std::uint64_t n = 1) noexcept { bump(field##_, n); }
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X

  // Historical short name kept for kernel-code brevity.
  void add_chain_links(std::uint64_t n = 1) noexcept {
    add_chain_links_walked(n);
  }

  [[nodiscard]] StatsSnapshot snapshot() const noexcept {
    StatsSnapshot s;
#define SEPO_X(field, comment)                                                 \
  s.field = field##_.load(std::memory_order_relaxed);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
    return s;
  }

  void reset() noexcept {
#define SEPO_X(field, comment) field##_.store(0, std::memory_order_relaxed);
    SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  }

  // Optional telemetry hook (obs::TraceRecorder). Install before a run, from
  // the host, while virtual threads are quiescent; null (the default) keeps
  // the hot path a single predictable branch and recording changes no
  // counter, so simulated results are identical with or without it.
  void set_trace_hook(TraceHook* hook) noexcept { trace_hook_ = hook; }
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }

 private:
  static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }

#define SEPO_X(field, comment) std::atomic<std::uint64_t> field##_{0};
  SEPO_STATS_FIELDS(SEPO_X)
#undef SEPO_X
  TraceHook* trace_hook_ = nullptr;
};

}  // namespace sepo::gpusim
