#include "gpusim/stream.hpp"

#include <algorithm>

namespace sepo::gpusim {

double Timeline::price_remote(std::uint64_t bytes,
                              std::uint64_t txns) const noexcept {
  // Same arithmetic as PcieBus::remote_time: round-trips overlap across the
  // in-flight requests of thousands of device threads.
  constexpr double kOverlapFactor = 64.0;
  return static_cast<double>(txns) * pcie_.remote_roundtrip_s /
             kOverlapFactor +
         static_cast<double>(bytes) / pcie_.remote_bandwidth_bytes_per_s;
}

Event Timeline::schedule(TimelineCommandKind kind, TimelineResource resource,
                         double ready, double duration, std::uint64_t arg0,
                         std::uint64_t arg1) {
  const int r = static_cast<int>(resource);
  const double start = std::max(ready, end_[r]);
  const double end = start + duration;
  end_[r] = end;
  if (kind == TimelineCommandKind::kRetryBackoff ||
      kind == TimelineCommandKind::kAbortedLaunch) {
    // Fault overhead occupies the engine but is accounted separately so the
    // busy totals keep matching the analytic per-term pricing exactly.
    ++faults_.engine[r].retries;
    faults_.engine[r].backoff_s += duration;
  } else {
    busy_[r] += duration;
  }
  ++n_commands_;
  const TimelineCommand cmd{kind, resource, start, end, arg0, arg1};
  commands_.push_back(cmd);
  if (hook_) hook_->on_timeline_command(cmd);
  return {end};
}

double Timeline::total_end() const noexcept {
  return std::max(std::max(end_[0], end_[1]), std::max(end_[2], end_[3]));
}

TimelineSummary Timeline::summary() const noexcept {
  TimelineSummary s;
  s.compute_busy = busy_[static_cast<int>(TimelineResource::kCompute)];
  s.h2d_busy = busy_[static_cast<int>(TimelineResource::kCopyH2d)];
  s.d2h_busy = busy_[static_cast<int>(TimelineResource::kCopyD2h)];
  s.remote_busy = busy_[static_cast<int>(TimelineResource::kRemote)];
  s.total = total_end();
  s.commands = n_commands_;
  return s;
}

Event Stream::push(TimelineCommandKind kind, TimelineResource resource,
                   double duration, std::uint64_t arg0, std::uint64_t arg1) {
  const Event done =
      tl_->schedule(kind, resource, cursor_, duration, arg0, arg1);
  cursor_ = done.at;
  return done;
}

Event Stream::h2d(std::uint64_t bytes) {
  return push(TimelineCommandKind::kH2dCopy, TimelineResource::kCopyH2d,
              tl_->price_copy(bytes, 1), bytes, 0);
}

Event Stream::d2h_flush(std::uint64_t bytes) {
  return push(TimelineCommandKind::kD2hFlush, TimelineResource::kCopyD2h,
              tl_->price_copy(bytes, 1), bytes, 0);
}

Event Stream::kernel(const StatsSnapshot& delta, std::size_t n_items) {
  return push(TimelineCommandKind::kKernel, TimelineResource::kCompute,
              tl_->price_kernel(delta), static_cast<std::uint64_t>(n_items),
              delta.work_units);
}

Event Stream::remote(std::uint64_t bytes, std::uint64_t txns) {
  return push(TimelineCommandKind::kRemoteAccess, TimelineResource::kRemote,
              tl_->price_remote(bytes, txns), bytes, txns);
}

Event Stream::backoff(TimelineResource r, double seconds) {
  return push(TimelineCommandKind::kRetryBackoff, r, seconds, 0, 0);
}

Event Stream::aborted_launch(double seconds) {
  return push(TimelineCommandKind::kAbortedLaunch, TimelineResource::kCompute,
              seconds, 0, 0);
}

}  // namespace sepo::gpusim
