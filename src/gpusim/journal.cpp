#include "gpusim/journal.hpp"

#include <algorithm>

namespace sepo::gpusim {

const char* journal_kind_name(JournalEventKind k) noexcept {
  switch (k) {
    case JournalEventKind::kPageAcquire: return "page_acquire";
    case JournalEventKind::kPageRelease: return "page_release";
    case JournalEventKind::kPageDoubleRelease: return "page_double_release";
    case JournalEventKind::kPressureBegin: return "pressure_begin";
    case JournalEventKind::kPressureEnd: return "pressure_end";
    case JournalEventKind::kFaultRetry: return "fault_retry";
    case JournalEventKind::kFaultBackoff: return "fault_backoff";
    case JournalEventKind::kFaultExhausted: return "fault_exhausted";
    case JournalEventKind::kKernelLaunch: return "kernel_launch";
    case JournalEventKind::kKernelFinish: return "kernel_finish";
    case JournalEventKind::kFlushBarrier: return "flush_barrier";
    case JournalEventKind::kIterationBegin: return "iteration_begin";
    case JournalEventKind::kIterationEnd: return "iteration_end";
    case JournalEventKind::kBatchDrain: return "batch_drain";
  }
  return "unknown";
}

EventJournal::EventJournal(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_(std::max<std::size_t>(1, capacity_per_shard)) {
  ensure_shards(std::max<std::size_t>(1, shards));
}

void EventJournal::ensure_shards(std::size_t shards) {
  while (shards_.size() < shards)
    shards_.push_back(std::make_unique<Shard>(capacity_));
}

std::vector<JournalEvent> EventJournal::drain() const {
  std::vector<JournalEvent> out;
  out.reserve(events_recorded() - events_overwritten());
  for (const auto& sh : shards_) {
    const std::size_t cap = sh->ring.size();
    const std::uint64_t n = std::min<std::uint64_t>(sh->head, cap);
    // Oldest surviving event first: the ring slot after the newest one.
    const std::uint64_t start = sh->head - n;
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(sh->ring[(start + i) % cap]);
  }
  std::sort(out.begin(), out.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              if (a.sim_ts != b.sim_ts) return a.sim_ts < b.sim_ts;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.worker < b.worker;
            });
  return out;
}

std::uint64_t EventJournal::events_recorded() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->head;
  return n;
}

std::uint64_t EventJournal::events_overwritten() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_)
    if (sh->head > sh->ring.size()) n += sh->head - sh->ring.size();
  return n;
}

}  // namespace sepo::gpusim
