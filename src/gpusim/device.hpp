// Virtual GPU device: a device-memory arena with a hard capacity.
//
// Device pointers are 64-bit byte offsets into the arena (DevPtr), with 0
// reserved as the null pointer. Static structures (bucket arrays, locks,
// staging buffers) are carved from the front of the arena; the heap for the
// dynamic memory allocator takes whatever remains, matching the paper's
// §IV-A: "we wait until all other data structures have been allocated, then
// query GPU memory for its remaining free space, and then allocate the heap
// with that size".
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "gpusim/pcie.hpp"

namespace sepo::gpusim {

using DevPtr = std::uint64_t;
inline constexpr DevPtr kDevNull = 0;

// Static device allocation failed. Derives from std::bad_alloc (so existing
// catch sites keep working) but carries the numbers a diagnosis needs:
// what was requested, what was already in use, and the device capacity.
class DeviceOutOfMemory : public std::bad_alloc {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t used,
                    std::size_t capacity)
      : requested_(requested),
        used_(used),
        capacity_(capacity),
        msg_("device out of memory: requested " + std::to_string(requested) +
             " bytes with " + std::to_string(used) + " of " +
             std::to_string(capacity) + " bytes in use") {}

  [[nodiscard]] const char* what() const noexcept override {
    return msg_.c_str();
  }
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t requested_;
  std::size_t used_;
  std::size_t capacity_;
  std::string msg_;
};

class Device {
 public:
  explicit Device(std::size_t capacity_bytes, PcieParams pcie = {})
      : capacity_(capacity_bytes),
        mem_(std::make_unique<std::byte[]>(capacity_bytes)),
        bus_(pcie) {
    // Burn the first 64 bytes so that offset 0 can serve as null.
    static_used_ = 64;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Allocates a static region (never freed until device reset). Throws
  // DeviceOutOfMemory (a std::bad_alloc) when the device cannot hold it —
  // static allocations are sized by the host before kernels run, so an
  // exception is the right failure mode (unlike heap allocations, which
  // POSTPONE).
  DevPtr alloc_static(std::size_t bytes, std::size_t align = 8) {
    const std::size_t base = (static_used_ + align - 1) & ~(align - 1);
    if (base + bytes > capacity_ || base + bytes < base)
      throw DeviceOutOfMemory(bytes, static_used_, capacity_);
    static_used_ = base + bytes;
    return static_cast<DevPtr>(base);
  }

  // Remaining free device memory (what the heap may claim), accounting for
  // the alignment the subsequent alloc_static will apply.
  [[nodiscard]] std::size_t mem_free(std::size_t align = 64) const noexcept {
    const std::size_t base = (static_used_ + align - 1) & ~(align - 1);
    return base >= capacity_ ? 0 : capacity_ - base;
  }

  [[nodiscard]] std::size_t static_used() const noexcept { return static_used_; }

  // Translates a device pointer to a host-visible raw pointer. In a real GPU
  // this is the device address space; in the simulator both sides can form
  // the pointer but only kernel code and explicit copies should use it.
  template <typename T = std::byte>
  [[nodiscard]] T* ptr(DevPtr p) noexcept {
    assert(p != kDevNull && p + sizeof(T) <= capacity_);
    return reinterpret_cast<T*>(mem_.get() + p);
  }

  template <typename T = std::byte>
  [[nodiscard]] const T* ptr(DevPtr p) const noexcept {
    assert(p != kDevNull && p + sizeof(T) <= capacity_);
    return reinterpret_cast<const T*>(mem_.get() + p);
  }

  // Explicit metered copies across the bus.
  void copy_h2d(DevPtr dst, const void* src, std::size_t bytes) noexcept {
    std::memcpy(ptr(dst), src, bytes);
    bus_.h2d(bytes);
  }

  void copy_d2h(void* dst, DevPtr src, std::size_t bytes) noexcept {
    std::memcpy(dst, ptr(src), bytes);
    bus_.d2h(bytes);
  }

  [[nodiscard]] PcieBus& bus() noexcept { return bus_; }
  [[nodiscard]] const PcieBus& bus() const noexcept { return bus_; }

 private:
  std::size_t capacity_;
  std::size_t static_used_ = 0;
  std::unique_ptr<std::byte[]> mem_;
  PcieBus bus_;
};

}  // namespace sepo::gpusim
