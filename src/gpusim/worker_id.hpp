// Host-execution identity and layout constants for the simulator's own hot
// path. The virtual device is multiplexed onto a small host ThreadPool;
// contention-free metering (gpusim::WorkerStats shards) and false-sharing
// padding both need to know which pool worker is running and how big a
// cache line is.
#pragma once

#include <cstddef>

namespace sepo::gpusim {

// Destructive-interference granularity of the host. Hardcoded rather than
// std::hardware_destructive_interference_size so struct layouts (and the
// committed BENCH_host.json baselines) do not depend on the build machine.
inline constexpr std::size_t kCacheLineBytes = 64;

// Stable index of the calling OS thread within the executing ThreadPool:
// 0 for the submitting thread (which participates in every job), 1..N-1 for
// the pool's helper threads. Threads that never joined a pool report 0.
// Defined in thread_pool.cpp (thread-local, set once per helper).
[[nodiscard]] std::size_t current_worker_index() noexcept;

}  // namespace sepo::gpusim
