// Unified execution context for the virtual device.
//
// Every layer above gpusim used to thread the same parameter triple
// (Device&, ThreadPool&, RunStats&) through its constructors and then price
// time analytically after the fact. ExecContext bundles the triple with a
// discrete-event Timeline and the three streams the SEPO execution model
// needs:
//
//   * copy stream     h2d input staging (BigKernel ring). Overlaps compute;
//                     bounded by buffer-reuse dependencies.
//   * compute stream  kernel launches; remote accesses serialize after the
//                     kernel that issued them (pinned baseline).
//   * flush stream    d2h heap flushes. A flush is a barrier: it waits for
//                     all queued compute and halts both compute and staging
//                     until it completes (paper §IV-C).
//
// The context wraps the physical operations (the memcpy + bus metering stay
// exactly as before, so counters and checksums are untouched) and schedules
// the priced command onto the timeline. sim_elapsed() is the resulting
// makespan; the analytic gpu_time() remains available as a cross-check.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::gpusim {

class EventJournal;
class FaultInjector;

class ExecContext {
 public:
  // Non-owning: bundles an existing device/pool/stats. The timeline prices
  // with `machine` and the device bus's PCIe parameters.
  ExecContext(Device& dev, ThreadPool& pool, RunStats& stats,
              const MachineDesc& machine = kGpuDesc);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] Device& device() noexcept { return dev_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] RunStats& stats() noexcept { return stats_; }
  [[nodiscard]] PcieBus& bus() noexcept { return dev_.bus(); }
  [[nodiscard]] Timeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }
  [[nodiscard]] Stream& compute_stream() noexcept { return compute_; }
  [[nodiscard]] Stream& copy_stream() noexcept { return copy_; }
  [[nodiscard]] Stream& flush_stream() noexcept { return flush_; }

  // Installs a telemetry hook on the run's counters and the timeline and
  // announces the attach (recorders offset subsequent commands by their
  // current end so several runs concatenate onto one trace). The bus keeps
  // no hook: resource spans now come from exact timeline commands.
  void set_trace(TraceHook* hook);

  // Installs a fault injector (non-owning; null disables injection). With an
  // injector installed, stage_h2d / launch / flush_d2h interpose transient
  // faults: each failed attempt is scheduled at full cost on its engine,
  // followed by a priced kRetryBackoff span, and a FaultError is thrown once
  // max_retries consecutive attempts fail. All draws happen on the (serial)
  // host scheduling path, so the fault schedule is deterministic.
  void set_faults(FaultInjector* faults) noexcept { faults_ = faults; }
  [[nodiscard]] FaultInjector* faults() const noexcept { return faults_; }

  // Installs a flight-recorder journal (non-owning; null disables). Sizes
  // the journal's shards for this pool and republishes the simulated clock
  // into it after every scheduling step so events recorded from inside
  // kernels carry the right timestamp. With no journal installed every hook
  // site is a single branch — journal-on and journal-off runs are
  // bit-identical (tests/journal_test.cpp).
  void set_journal(EventJournal* journal);
  [[nodiscard]] EventJournal* journal() const noexcept { return journal_; }

  // Stages `bytes` host->device (metered memcpy, as Device::copy_h2d) and
  // schedules the copy on the h2d engine, not before `after` (typically the
  // event of the kernel that last read the target staging buffer). Returns
  // the copy's completion event.
  Event stage_h2d(DevPtr dst, const void* src, std::size_t bytes,
                  Event after = {});

  // Runs `kernel` over [0, n_items) on the virtual grid (as gpusim::launch)
  // and schedules the priced kernel on the compute engine, not before
  // `after` (typically its input chunk's staging event). Remote traffic the
  // kernel generated (pinned baseline) is scheduled directly after it and
  // halts later compute, matching the analytic serialization rule.
  //
  // std::function overload: ABI-stable entry point (exec_context.cpp).
  Event launch(std::size_t n_items,
               const std::function<void(std::size_t)>& kernel,
               LaunchConfig cfg = {}, Event after = {});

  // Devirtualized overload: the kernel type flows through to the pool's
  // batch loop so per-item dispatch inlines. The scheduling bookkeeping on
  // both sides of the physical execution is shared with the std::function
  // overload via begin_launch/finish_launch.
  template <typename Kernel>
  Event launch(std::size_t n_items, Kernel&& kernel, LaunchConfig cfg = {},
               Event after = {}) {
    const LaunchBaseline base = begin_launch(after, n_items);
    gpusim::launch(pool_, stats_, n_items, std::forward<Kernel>(kernel), cfg);
    if (launch_epilogue_) launch_epilogue_();
    return finish_launch(base, n_items);
  }

  // Installs a callback that runs at every kernel exit — after the physical
  // execution, before the launch is priced, on the submitting thread (the
  // pool is quiescent). The batched insert pipeline uses it to drain its
  // per-worker CombineBuffers so deferred store work lands inside the same
  // priced launch window where the scalar path would have performed it;
  // counter deltas, and with them the timeline, stay bit-identical. Pass
  // an empty function to uninstall.
  void set_launch_epilogue(std::function<void()> fn) noexcept {
    launch_epilogue_ = std::move(fn);
  }

  // Schedules a d2h flush transfer of `bytes` (the caller already performed
  // the page copy and bus metering). Flushes halt computation (§IV-C): the
  // transfer waits for all queued compute, and both the compute and copy
  // streams resume only after it completes.
  Event flush_d2h(std::uint64_t bytes);

  // Simulated makespan so far: end of the last scheduled command.
  [[nodiscard]] double sim_elapsed() const noexcept {
    return timeline_.total_end();
  }

 private:
  // Counter/bus state captured just before a kernel physically executes;
  // finish_launch turns it into the kernel's delta for pricing.
  struct LaunchBaseline {
    StatsSnapshot stats_before;
    PcieSnapshot bus_before;
  };

  // The serial host-side scheduling work bracketing every kernel launch:
  // begin_launch orders the kernel after `after`, interposes abort faults,
  // and snapshots the baseline; finish_launch prices the counter delta,
  // schedules the compute command, and drains any remote traffic the kernel
  // generated (with its fault retries).
  LaunchBaseline begin_launch(Event after, std::size_t n_items);
  Event finish_launch(const LaunchBaseline& base, std::size_t n_items);

  // Publishes the timeline clock into the journal (no-op without one).
  void publish_sim_now() noexcept;

  // Prices the failed attempts (and their backoffs) a transfer suffers
  // before its successful attempt; throws FaultError on retry exhaustion.
  void fault_transfer_attempts(bool is_d2h, std::uint64_t bytes);
  void fault_launch_aborts();

  Device& dev_;
  ThreadPool& pool_;
  RunStats& stats_;
  Timeline timeline_;
  Stream compute_;
  Stream copy_;
  Stream flush_;
  FaultInjector* faults_ = nullptr;
  EventJournal* journal_ = nullptr;
  std::function<void()> launch_epilogue_;
};

}  // namespace sepo::gpusim
