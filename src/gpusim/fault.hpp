// Deterministic fault injection for the virtual device.
//
// The SEPO model is graceful degradation — a requestee may decline service
// and the requestor retries later (paper §III) — but without an adversary the
// retry machinery is dead code on the happy path. FaultInjector is that
// adversary: a seed-driven source that can fail PCIe h2d/d2h/remote
// transactions at a configured rate, abort kernel chunk launches, and inject
// device-memory pressure spikes that shrink the usable heap mid-run.
//
// Determinism contract: the injector owns a private sepo::Rng seeded from
// config — no wall clock, no global RNG — and every draw happens on the host
// scheduling path, which is serial. Identical config + seed therefore yields
// a bit-identical fault schedule, preserving the run-to-run determinism
// guarantee of the execution timeline. A rate of zero for a fault class draws
// nothing from the stream, so an all-zero config is bit-identical to running
// without an injector at all (guarded by a regression test).
//
// Every injected fault is *priced*: the failed attempt occupies its engine at
// full cost, then the retry waits out a bounded exponential backoff span
// (kRetryBackoff timeline commands) before re-enqueueing. Faults thus show up
// in simulated time, Chrome traces, and metrics rather than being free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/random.hpp"

namespace sepo::gpusim {

struct FaultConfig {
  std::uint64_t seed = 0x5eedfa17ULL;

  // Per-class transient failure probabilities in [0, 1]. A transaction (or
  // launch) fails with this probability on every attempt, including retries.
  double h2d_rate = 0.0;
  double d2h_rate = 0.0;
  double remote_rate = 0.0;
  double kernel_abort_rate = 0.0;

  // Probability (drawn once per SEPO iteration) that a device-memory
  // pressure spike begins, seizing `pressure_frac` of the heap's pages for
  // `pressure_hold_iterations` iterations. Persistent pressure turns into
  // SEPO postponement: more iterations, never wrong answers.
  double pressure_rate = 0.0;
  double pressure_frac = 0.25;
  std::uint32_t pressure_hold_iterations = 2;

  // Retry policy: a faulted operation retries up to max_retries times with
  // bounded exponential backoff (base * 2^(attempt-1), capped) before the
  // run surfaces a typed error.
  std::uint32_t max_retries = 8;
  double backoff_base_s = 4.0e-6;
  double backoff_cap_s = 1.0e-3;

  [[nodiscard]] bool enabled() const noexcept {
    return h2d_rate > 0 || d2h_rate > 0 || remote_rate > 0 ||
           kernel_abort_rate > 0 || pressure_rate > 0;
  }
};

// A faulted operation exhausted its retry budget. Baselines with no
// postponement story surface this as a typed RunError; SEPO runs only see it
// when the transient rate is high enough that max_retries consecutive
// attempts all fail.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg) noexcept
      : cfg_(cfg), rng_(cfg.seed) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled(); }

  // Per-attempt transient draws. A class with rate zero never consumes from
  // the random stream, so enabling one fault class cannot perturb another's
  // schedule — and an all-zero config consumes nothing at all.
  [[nodiscard]] bool draw_h2d() noexcept { return draw(cfg_.h2d_rate); }
  [[nodiscard]] bool draw_d2h() noexcept { return draw(cfg_.d2h_rate); }
  [[nodiscard]] bool draw_kernel_abort() noexcept {
    return draw(cfg_.kernel_abort_rate);
  }

  // Remote transactions are issued in bulk from inside kernels, so the
  // injector draws the number of failures in one binomial-mean step:
  // floor(rate * txns) plus one more with the fractional probability.
  [[nodiscard]] std::uint64_t draw_remote_failures(std::uint64_t txns) noexcept {
    if (cfg_.remote_rate <= 0 || txns == 0) return 0;
    const double mean = cfg_.remote_rate * static_cast<double>(txns);
    auto failures = static_cast<std::uint64_t>(mean);
    if (rng_.chance(mean - static_cast<double>(failures))) ++failures;
    return failures < txns ? failures : txns;
  }

  // Backoff before retry `attempt` (1-based): bounded exponential.
  [[nodiscard]] double backoff_s(std::uint32_t attempt) const noexcept {
    double d = cfg_.backoff_base_s;
    for (std::uint32_t i = 1; i < attempt && d < cfg_.backoff_cap_s; ++i)
      d *= 2.0;
    return d < cfg_.backoff_cap_s ? d : cfg_.backoff_cap_s;
  }

  // Called once per SEPO iteration with the heap's page count; returns how
  // many pages the current pressure spike seizes (0 when no spike is
  // active). `new_spike` reports a spike beginning this iteration.
  [[nodiscard]] std::uint32_t pressure_target(std::uint32_t page_count,
                                              bool& new_spike) noexcept {
    new_spike = false;
    if (cfg_.pressure_rate <= 0) return 0;
    if (pressure_left_ > 0) {
      --pressure_left_;
    } else if (rng_.chance(cfg_.pressure_rate)) {
      new_spike = true;
      pressure_left_ = cfg_.pressure_hold_iterations;
      pressure_pages_ = static_cast<std::uint32_t>(
          cfg_.pressure_frac * static_cast<double>(page_count));
    }
    return pressure_left_ > 0 ? pressure_pages_ : 0;
  }

 private:
  [[nodiscard]] bool draw(double rate) noexcept {
    return rate > 0 && rng_.chance(rate);
  }

  FaultConfig cfg_;
  Rng rng_;
  std::uint32_t pressure_left_ = 0;   // iterations the active spike still holds
  std::uint32_t pressure_pages_ = 0;  // pages the active spike seizes
};

// Applies one `--fault-*` command-line flag to `cfg`. Returns false when
// `name` is not a fault flag; throws std::invalid_argument on a fault flag
// with an unparsable or out-of-range value. Shared by sepo_cli and the
// benches so the chaos-run vocabulary stays in one place.
bool apply_fault_flag(FaultConfig& cfg, std::string_view name,
                      std::string_view value);

}  // namespace sepo::gpusim
