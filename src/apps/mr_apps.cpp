#include "apps/mr_apps.hpp"

#include <new>
#include <optional>

#include "apps/datagen.hpp"
#include "baselines/mapcg.hpp"
#include "baselines/phoenix.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "mapreduce/runtime.hpp"

namespace sepo::apps {

namespace {

void map_word_count(std::string_view record, mapreduce::Emitter& em) {
  std::size_t start = 0;
  while (start < record.size()) {
    std::size_t end = record.find(' ', start);
    if (end == std::string_view::npos) end = record.size();
    if (end > start) {
      if (em.emit_u64(record.substr(start, end - start), 1) ==
          core::Status::kPostpone)
        return;
    }
    start = end + 1;
  }
}

void map_geo_location(std::string_view record, mapreduce::Emitter& em) {
  // <articleId>\t<geo cell string>  ->  <cell, articleId>
  const std::size_t tab = record.find('\t');
  if (tab == std::string_view::npos) return;
  const std::string_view id = record.substr(0, tab);
  const std::string_view cell = record.substr(tab + 1);
  em.emit(cell, std::as_bytes(std::span{id.data(), id.size()}));
}

void map_patent_citation(std::string_view record, mapreduce::Emitter& em) {
  // "C<citing> P<cited>"  ->  <cited, citing>
  const std::size_t sp = record.find(' ');
  if (sp == std::string_view::npos) return;
  const std::string_view citing = record.substr(0, sp);
  const std::string_view cited = record.substr(sp + 1);
  em.emit(cited, std::as_bytes(std::span{citing.data(), citing.size()}));
}

std::string gen_wc(std::size_t bytes, std::uint64_t seed) {
  return gen_text({.target_bytes = bytes, .seed = seed});
}
std::string gen_geo(std::size_t bytes, std::uint64_t seed) {
  // Mild skew: geotag cells are many and no single cell dominates.
  return gen_geo_articles({.target_bytes = bytes, .seed = seed},
                          /*cells=*/40000, /*zipf_s=*/0.5);
}
std::string gen_pc(std::size_t bytes, std::uint64_t seed) {
  return gen_patents({.target_bytes = bytes, .seed = seed},
                     /*patents=*/60000, /*zipf_s=*/0.4);
}

// Adapter so digest_kv works over MapCG's reduced view.
struct MapCgReducedView {
  const baselines::MapCgRuntime& rt;
  template <typename Fn>
  void for_each(const Fn& fn) const {
    rt.for_each_reduced(fn);
  }
};
struct MapCgGroupView {
  const baselines::MapCgRuntime& rt;
  template <typename Fn>
  void for_each_group(const Fn& fn) const {
    rt.for_each_group(fn);
  }
};

}  // namespace

const MrApp& word_count_app() {
  static const MrApp app{.name = "Word Count",
                         .table1_key = "wc",
                         .mode = mapreduce::Mode::kMapReduce,
                         .generate = gen_wc,
                         .map = map_word_count,
                         .combine = core::combine_sum_u64,
                         .combine_assoc_comm = true};
  return app;
}

const MrApp& geo_location_app() {
  static const MrApp app{.name = "Geo Location",
                         .table1_key = "geo",
                         .mode = mapreduce::Mode::kMapGroup,
                         .generate = gen_geo,
                         .map = map_geo_location,
                         .combine = nullptr};
  return app;
}

const MrApp& patent_citation_app() {
  static const MrApp app{.name = "Patent Citation",
                         .table1_key = "pc",
                         .mode = mapreduce::Mode::kMapGroup,
                         .generate = gen_pc,
                         .map = map_patent_citation,
                         .combine = nullptr};
  return app;
}

RunResult run_mr_sepo(const MrApp& app, std::string_view input,
                      const GpuConfig& cfg) {
  SimRun sim(cfg);
  gpusim::Device& dev = sim.dev;
  gpusim::RunStats& stats = sim.stats;
  gpusim::ExecContext& ctx = sim.ctx;

  mapreduce::RuntimeConfig rcfg;
  rcfg.table.num_buckets = cfg.num_buckets;
  rcfg.table.buckets_per_group = cfg.buckets_per_group;
  rcfg.table.page_size = cfg.page_size;
  rcfg.table.batch_insert_capacity = cfg.batch_insert;
  choose_chunking(index_lines(input), cfg, rcfg.pipeline);

  // Constructed inside the try: the runtime's table can already exceed the
  // device (typed DeviceOutOfMemory), and like any other structural failure
  // that must surface as a RunError, not a raw exception.
  std::optional<mapreduce::MapReduceRuntime> runtime;
  const auto fail = [&](const std::exception& e) {
    RunResult r;
    r.impl = "sepo-mr";
    r.stats = stats.snapshot();
    r.pcie = dev.bus().snapshot();
    r.error = run_error_from(e);
    fill_gpu_times(r, ctx, dev.bus());
    r.wall_seconds = sim.timer.seconds();
    return r;
  };

  mapreduce::RunOutcome out;
  try {
    runtime.emplace(ctx, rcfg);
    out = runtime->run(input, app.spec());
  } catch (const gpusim::FaultError& e) {
    return fail(e);
  } catch (const std::bad_alloc& e) {
    return fail(e);
  } catch (const std::runtime_error& e) {
    // Driver stall (iteration cap / zero progress) — typed kNoProgress.
    return fail(e);
  }

  RunResult r;
  r.impl = "sepo-mr";
  r.stats = stats.snapshot();
  r.pcie = dev.bus().snapshot();
  const auto load = runtime->table()->bucket_load();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = 0};
  r.iterations = out.driver.iterations;
  r.table_bytes = runtime->table()->table_stats().table_bytes;
  r.heap_bytes = runtime->table()->page_pool().heap_bytes();
  r.keys = out.table->entry_count();
  r.checksum = app.mode == mapreduce::Mode::kMapGroup
                   ? digest_groups(*out.table)
                   : digest_kv(*out.table);
  r.iteration_profiles = out.driver.profiles;
  r.timeseries = out.driver.timeseries;
  r.bucket_histogram = out.table->occupancy_histogram();
  r.combine_buffer = runtime->table()->combine_buffer_totals();
  fill_gpu_times(r, ctx, dev.bus());
  r.wall_seconds = sim.timer.seconds();
  return r;
}

RunResult run_mr_phoenix(const MrApp& app, std::string_view input,
                         const CpuConfig& cfg) {
  WallTimer timer;
  gpusim::ThreadPool pool(cfg.pool_workers);
  gpusim::RunStats stats;

  baselines::PhoenixConfig pcfg;
  pcfg.num_threads = cfg.num_threads;
  pcfg.merged_table_buckets = cfg.num_buckets;
  baselines::PhoenixRuntime phoenix(pool, stats, pcfg);
  const auto table = phoenix.run(input, app.spec());

  RunResult r;
  r.impl = "phoenix";
  r.stats = stats.snapshot();
  const auto load = table->bucket_load();
  r.serial = {.total_lock_ops = 0,  // private containers: no shared locks
              .max_same_lock_ops = 0,
              .serial_atomic_ops = 0};
  r.iterations = 1;
  r.table_bytes = table->allocated_bytes();
  r.keys = table->entry_count();
  r.checksum = app.mode == mapreduce::Mode::kMapGroup ? digest_groups(*table)
                                                      : digest_kv(*table);
  (void)load;
  r.sim_seconds = cpu_sim_seconds(r.stats, r.serial);
  r.sim_seconds_analytic = r.sim_seconds;
  r.wall_seconds = timer.seconds();
  return r;
}

RunResult run_mr_mapcg(const MrApp& app, std::string_view input,
                       const GpuConfig& cfg) {
  SimRun sim(cfg);
  gpusim::Device& dev = sim.dev;
  gpusim::RunStats& stats = sim.stats;
  gpusim::ExecContext& ctx = sim.ctx;

  baselines::MapCgConfig mcfg;
  mcfg.num_buckets = cfg.num_buckets;
  baselines::MapCgRuntime mapcg(ctx, mcfg);

  RunResult r;
  r.impl = "mapcg";
  try {
    mapcg.run(input, app.spec());
  } catch (const baselines::MapCgOutOfMemory& e) {
    // MapCG has no SEPO: a table that outgrows the device arena is a
    // structural failure of the whole run (paper §II).
    r.error = run_error_from(e);
  } catch (const gpusim::FaultError& e) {
    r.error = run_error_from(e);
  } catch (const std::bad_alloc& e) {
    r.error = run_error_from(e);
  }

  r.stats = stats.snapshot();
  r.pcie = dev.bus().snapshot();
  const auto load = mapcg.bucket_load();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = mapcg.serial_atomic_ops()};
  r.iterations = 1;
  if (!r.error) {
    r.keys = mapcg.key_count();
    r.checksum = app.mode == mapreduce::Mode::kMapGroup
                     ? digest_groups(MapCgGroupView{mapcg})
                     : digest_kv(MapCgReducedView{mapcg});
  }
  fill_gpu_times(r, ctx, dev.bus());
  r.wall_seconds = sim.timer.seconds();
  return r;
}

}  // namespace sepo::apps
