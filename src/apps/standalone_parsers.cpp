// Record parsers and generators for the four standalone applications
// (paper §VI-A).
#include <array>
#include <cstdio>

#include "apps/datagen.hpp"
#include "apps/standalone_app.hpp"

namespace sepo::apps {

namespace {

std::span<const std::byte> as_value(const std::uint32_t& v) {
  return std::as_bytes(std::span{&v, 1});
}

std::span<const std::byte> as_value(const double& v) {
  return std::as_bytes(std::span{&v, 1});
}

constexpr int base_index(char c) noexcept {
  switch (c) {
    case 'A': return 0;
    case 'C': return 1;
    case 'G': return 2;
    case 'T': return 3;
  }
  return -1;
}

}  // namespace

// --- Page View Count: <url, 1>, combining (paper §III-B) ---

std::string PageViewCountApp::generate(std::size_t bytes,
                                       std::uint64_t seed) const {
  // A deep URL tail keeps new keys arriving throughout the log so the large
  // datasets push the table past the device heap.
  return gen_weblog({.target_bytes = bytes, .seed = seed},
                    /*distinct_urls=*/400000, /*zipf_s=*/0.7);
}

void PageViewCountApp::map_record(std::string_view body,
                                  mapreduce::Emitter& em) const {
  // ... "GET <url> HTTP/1.1" ...
  const std::size_t get = body.find("\"GET ");
  if (get == std::string_view::npos) return;
  const std::size_t start = get + 5;
  const std::size_t end = body.find(' ', start);
  if (end == std::string_view::npos) return;
  em.emit_u64(body.substr(start, end - start), 1);
}

// --- Inverted Index: <hyperlink, pagePath>, multi-valued (Figure 3) ---

std::string InvertedIndexApp::generate(std::size_t bytes,
                                       std::uint64_t seed) const {
  return gen_html_pages({.target_bytes = bytes, .seed = seed});
}

void InvertedIndexApp::map_record(std::string_view body,
                                  mapreduce::Emitter& em) const {
  const std::size_t tab = body.find('\t');
  if (tab == std::string_view::npos) return;
  const std::string_view path = body.substr(0, tab);
  std::string_view html = body.substr(tab + 1);
  static constexpr std::string_view kHref = "href=\"";
  while (true) {
    const std::size_t at = html.find(kHref);
    if (at == std::string_view::npos) return;
    html.remove_prefix(at + kHref.size());
    const std::size_t close = html.find('"');
    if (close == std::string_view::npos) return;
    const std::string_view url = html.substr(0, close);
    html.remove_prefix(close + 1);
    if (em.emit(url, std::as_bytes(std::span{path.data(), path.size()})) ==
        core::Status::kPostpone)
      return;
  }
}

// --- DNA Assembly: <k-mer, extension-edge bitmask>, combining ---

std::string DnaAssemblyApp::generate(std::size_t bytes,
                                     std::uint64_t seed) const {
  // Genome length bounds the distinct k-mer count: 128 KiB of genome yields
  // a table ~4x the default device heap at dataset #4, the paper's extreme
  // ("grow up to more than four times larger", §I).
  return gen_dna_reads({.target_bytes = bytes, .seed = seed},
                       /*genome_len=*/128u << 10, /*read_len=*/64);
}

void DnaAssemblyApp::map_record(std::string_view body,
                                mapreduce::Emitter& em) const {
  if (body.size() < kK) return;
  for (std::size_t i = 0; i + kK <= body.size(); ++i) {
    std::uint32_t edges = 0;
    if (i > 0) {
      const int prev = base_index(body[i - 1]);
      if (prev >= 0) edges |= 1u << prev;
    }
    if (i + kK < body.size()) {
      const int next = base_index(body[i + kK]);
      if (next >= 0) edges |= 1u << (4 + next);
    }
    if (em.emit(body.substr(i, kK), as_value(edges)) == core::Status::kPostpone)
      return;
  }
}

// --- Netflix: <userA&userB, similarity contribution>, combining ---

std::string NetflixApp::generate(std::size_t bytes, std::uint64_t seed) const {
  // 400 users keeps the distinct-pair table within the multi-iteration
  // regime the paper evaluates rather than blowing past it.
  return gen_netflix({.target_bytes = bytes, .seed = seed},
                     /*movies=*/12000, /*users=*/400,
                     /*max_users_per_movie=*/12);
}

void NetflixApp::map_record(std::string_view body,
                            mapreduce::Emitter& em) const {
  // m<movie>: u<id>,<rating> u<id>,<rating> ...
  const std::size_t colon = body.find(':');
  if (colon == std::string_view::npos) return;
  std::string_view rest = body.substr(colon + 1);

  struct Rater {
    std::string_view user;
    int rating;
  };
  std::array<Rater, 32> raters;
  std::size_t n = 0;
  while (n < raters.size()) {
    const std::size_t u = rest.find('u');
    if (u == std::string_view::npos) break;
    rest.remove_prefix(u);
    const std::size_t comma = rest.find(',');
    if (comma == std::string_view::npos) break;
    raters[n].user = rest.substr(0, comma);
    raters[n].rating = rest[comma + 1] - '0';
    ++n;
    rest.remove_prefix(comma + 1);
  }

  // Emit one similarity contribution per user pair who co-rated this movie
  // (Chen & Schlosser's all-pairs similarity [3]).
  char key[48];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Rater& a = raters[i].user < raters[j].user ? raters[i] : raters[j];
      const Rater& b = raters[i].user < raters[j].user ? raters[j] : raters[i];
      if (a.user == b.user) continue;  // same user listed twice
      const int len = std::snprintf(
          key, sizeof key, "%.*s&%.*s", static_cast<int>(a.user.size()),
          a.user.data(), static_cast<int>(b.user.size()), b.user.data());
      const double contribution =
          1.0 - static_cast<double>(a.rating > b.rating
                                        ? a.rating - b.rating
                                        : b.rating - a.rating) /
                    4.0;
      if (em.emit({key, static_cast<std::size_t>(len)},
                  as_value(contribution)) == core::Status::kPostpone)
        return;
    }
  }
}

}  // namespace sepo::apps
