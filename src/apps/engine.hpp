// Pluggable engine registry (DESIGN.md §2): the one dispatch seam between
// "which app, which implementation" and the run paths.
//
// An AppInfo names one registered application (standalone or MapReduce); an
// Engine is one implementation that can run it — the SEPO system itself or
// one of the paper's comparators. Every consumer (sepo_cli run/compare/list,
// the bench binaries, the examples, the cross-validation tests) resolves
// apps and engines here instead of keeping its own string if/else chain, so
// adding a backend is one registration, not a cross-cutting edit.
//
// All engines are constructed and listed in engines.cpp — deliberately one
// translation unit, because self-registration statics spread across a static
// library get dropped by the linker unless something in each TU is
// referenced. Registration order is display order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/harness.hpp"
#include "apps/mr_apps.hpp"
#include "apps/standalone_app.hpp"

namespace sepo::apps {

// One registered application. Exactly one of `standalone` / `mr` is set.
struct AppInfo {
  const char* key;    // CLI name, e.g. "pvc" (the Table I key)
  const char* title;  // paper name, e.g. "Page View Count"
  const StandaloneApp* standalone = nullptr;
  const MrApp* mr = nullptr;

  [[nodiscard]] bool is_mapreduce() const noexcept { return mr != nullptr; }
  // Table I row key for dataset sizing (apps/datagen.hpp table1_bytes).
  [[nodiscard]] const char* table1_key() const noexcept {
    return is_mapreduce() ? mr->table1_key : standalone->table1_key();
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const {
    return is_mapreduce() ? mr->generate(bytes, seed)
                          : standalone->generate(bytes, seed);
  }
};

// Registered apps in display order (standalone first, then MapReduce).
[[nodiscard]] const std::vector<const AppInfo*>& all_apps();
// Lookup by CLI key; nullptr when unknown.
[[nodiscard]] const AppInfo* find_app(std::string_view key);

// Configuration an engine may draw from. GPU-side engines read `gpu`
// (device size, chunking, trace/journal/faults); host-side engines read
// `cpu`. Unused halves are ignored.
struct EngineConfig {
  GpuConfig gpu;
  CpuConfig cpu;
};

class Engine {
 public:
  // Capability flags: what the engine can run and which GpuConfig telemetry
  // hooks it honors. Consumers gate per-run wiring (trace recorder, journal
  // dump, fault flags) on these instead of matching impl names.
  struct Caps {
    bool standalone = false;       // runs StandaloneApp workloads
    bool mapreduce = false;        // runs MrApp workloads
    bool simulated_device = false; // builds a virtual GPU (device + PCIe bus)
    bool trace = false;            // honors GpuConfig.trace
    bool journal = false;          // honors GpuConfig.journal
    bool faults = false;           // honors GpuConfig.faults
  };

  virtual ~Engine() = default;

  // Registry name; always equals the RunResult.impl string the engine emits
  // (and therefore the "impl" field in metrics files).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  // One-line description for `sepo_cli engines`.
  [[nodiscard]] virtual const char* describe() const noexcept = 0;
  [[nodiscard]] virtual Caps caps() const noexcept = 0;

  // Whether this engine can run `app`. Default: the Caps kind flags; engines
  // with narrower semantics (paging-sim) override.
  [[nodiscard]] virtual bool supports(const AppInfo& app) const {
    return app.is_mapreduce() ? caps().mapreduce : caps().standalone;
  }

  [[nodiscard]] virtual RunResult run(const AppInfo& app,
                                      std::string_view input,
                                      const EngineConfig& cfg) const = 0;
};

// Registered engines in display order.
[[nodiscard]] const std::vector<const Engine*>& all_engines();
// Exact-name lookup; nullptr when unknown.
[[nodiscard]] const Engine* find_engine(std::string_view name);
// Alias-aware, app-aware lookup: "gpu" resolves to the SEPO engine matching
// the app's kind (sepo-gpu / sepo-mr), "mr" to sepo-mr; otherwise exact.
// nullptr when unknown.
[[nodiscard]] const Engine* resolve_engine(std::string_view name,
                                           const AppInfo& app);
// The reference implementation an app's digests are compared against:
// cpu for standalone apps, phoenix for MapReduce apps.
[[nodiscard]] const Engine* baseline_engine(const AppInfo& app);

}  // namespace sepo::apps
