// All registered apps and engines (see engine.hpp for why this is one TU).
#include "apps/engine.hpp"

#include <algorithm>
#include <new>
#include <optional>
#include <unordered_map>

#include "baselines/paging_sim.hpp"
#include "baselines/stadium_hash_table.hpp"
#include "gpusim/pcie.hpp"

namespace sepo::apps {

namespace {

// ---------------------------------------------------------------- engines

class SepoGpuEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "sepo-gpu"; }
  const char* describe() const noexcept override {
    return "SEPO hash table on the virtual GPU: BigKernel staging + SEPO "
           "iterations (the paper's system)";
  }
  Caps caps() const noexcept override {
    return {.standalone = true,
            .simulated_device = true,
            .trace = true,
            .journal = true,
            .faults = true};
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return app.standalone->run_gpu(input, cfg.gpu);
  }
};

class SepoMrEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "sepo-mr"; }
  const char* describe() const noexcept override {
    return "SEPO-based MapReduce runtime on the virtual GPU (paper §V)";
  }
  Caps caps() const noexcept override {
    return {.mapreduce = true,
            .simulated_device = true,
            .trace = true,
            .journal = true,
            .faults = true};
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return run_mr_sepo(*app.mr, input, cfg.gpu);
  }
};

class CpuEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "cpu"; }
  const char* describe() const noexcept override {
    return "multi-threaded CPU baseline table (the Figure 6 reference)";
  }
  Caps caps() const noexcept override { return {.standalone = true}; }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return app.standalone->run_cpu(input, cfg.cpu);
  }
};

class PhoenixEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "phoenix"; }
  const char* describe() const noexcept override {
    return "Phoenix++-style CPU MapReduce runtime (the Figure 6 reference)";
  }
  Caps caps() const noexcept override { return {.mapreduce = true}; }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return run_mr_phoenix(*app.mr, input, cfg.cpu);
  }
};

class PinnedEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "pinned"; }
  const char* describe() const noexcept override {
    return "heap pinned in CPU memory, chains walked over PCIe (§VI-D)";
  }
  Caps caps() const noexcept override {
    return {.standalone = true,
            .simulated_device = true,
            .trace = true,
            .journal = true,
            .faults = true};
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return app.standalone->run_pinned(input, cfg.gpu);
  }
};

class MapCgEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "mapcg"; }
  const char* describe() const noexcept override {
    return "MapCG-style GPU runtime, whole input + table in a device arena "
           "(the Table II comparator; fails structurally when it outgrows "
           "the device)";
  }
  Caps caps() const noexcept override {
    return {.mapreduce = true,
            .simulated_device = true,
            .trace = true,
            .journal = true,
            .faults = true};
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    return run_mr_mapcg(*app.mr, input, cfg.gpu);
  }
};

// ------------------------------------------------------- stadium baseline

class StadiumEmitter final : public mapreduce::Emitter {
 public:
  explicit StadiumEmitter(baselines::StadiumHashTable& t) noexcept : t_(t) {}
  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    t_.insert(key, value);
    return core::Status::kSuccess;
  }

 private:
  baselines::StadiumHashTable& t_;
};

// Stadium stores every duplicate pair (the paper's §VII critique), so its
// digest needs the host-side post-pass the design itself lacks: merge the
// raw pairs under the app's organization semantics, then digest exactly
// like digest_kv / digest_groups. keys = distinct keys after the merge;
// stats.inserts_new keeps the raw stored-pair count.
void digest_stadium(const AppInfo& app,
                    const baselines::StadiumHashTable& table, RunResult& r) {
  switch (app.standalone->organization()) {
    case core::Organization::kBasic: {
      std::uint64_t sum = 0, pairs = 0;
      table.for_each([&](std::string_view k, std::span<const std::byte> v) {
        sum += checksum_kv_bytes(k, v.data(), v.size());
        ++pairs;
      });
      r.checksum = sum;
      r.keys = pairs;  // basic keeps duplicates everywhere
      return;
    }
    case core::Organization::kCombining: {
      const core::CombineFn combine = app.standalone->combiner();
      std::unordered_map<std::string, std::vector<std::byte>> merged;
      table.for_each([&](std::string_view k, std::span<const std::byte> v) {
        auto [it, fresh] = merged.try_emplace(std::string(k), v.begin(),
                                              v.end());
        if (!fresh)
          combine(it->second.data(), v.data(),
                  static_cast<std::uint32_t>(
                      std::min(it->second.size(), v.size())));
      });
      std::uint64_t sum = 0;
      for (const auto& [k, v] : merged)
        sum += checksum_kv_bytes(k, v.data(), v.size());
      r.checksum = sum;
      r.keys = merged.size();
      return;
    }
    case core::Organization::kMultiValued: {
      std::unordered_map<std::string, std::uint64_t> vsums;
      table.for_each([&](std::string_view k, std::span<const std::byte> v) {
        vsums[std::string(k)] +=
            hash_bytes(reinterpret_cast<const char*>(v.data()), v.size());
      });
      std::uint64_t sum = 0;
      for (const auto& [k, vsum] : vsums)
        sum += hash_combine(hash_key(k), mix64(vsum));
      r.checksum = sum;
      r.keys = vsums.size();
      return;
    }
  }
}

class StadiumEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "stadium"; }
  const char* describe() const noexcept override {
    return "Stadium-hashing baseline (§VII): entries in pinned CPU memory "
           "behind a device-resident fingerprint index; duplicates stored "
           "as separate pairs, merged host-side only for the digest";
  }
  Caps caps() const noexcept override {
    // Inserts meter the raw PCIe bus (one remote txn per pair), not the
    // fault-priced ExecContext engines, so the telemetry hooks don't apply.
    return {.standalone = true, .simulated_device = true};
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    SimRun sim(cfg.gpu);
    const RecordIndex idx = index_lines(input);
    RunResult r;
    r.impl = name();
    // Input still streams through staged chunks; meter it as one bulk pass.
    sim.dev.bus().h2d(input.size());
    // Constructed inside the try: the bucket array's static allocation can
    // itself exceed a small device, and that too must surface as a typed
    // RunError rather than a raw exception.
    std::optional<baselines::StadiumHashTable> table;
    try {
      table.emplace(sim.ctx,
                    baselines::StadiumConfig{.num_buckets = cfg.gpu.num_buckets});
      StadiumEmitter em(*table);
      for (std::size_t i = 0; i < idx.size(); ++i) {
        const std::string_view body = idx.record(input.data(), i);
        sim.stats.add_work_units(body.size());
        app.standalone->map_record(body, em);
        sim.stats.add_records_processed();
      }
    } catch (const std::bad_alloc& e) {
      // The fingerprint index outgrew the device: Stadium has no SEPO, so
      // the run fails structurally rather than returning a partial table.
      r.error = run_error_from(e);
    }
    const auto load = table ? table->bucket_load()
                            : baselines::StadiumHashTable::BucketLoad{};
    r.stats = sim.stats.snapshot();
    r.pcie = sim.dev.bus().snapshot();
    r.serial = {.total_lock_ops = load.total_accesses,
                .max_same_lock_ops = load.max_bucket_accesses,
                .serial_atomic_ops = 0};
    r.iterations = 1;
    if (!r.error) digest_stadium(app, *table, r);
    // No timeline commands are scheduled on this path; the analytic model
    // (which reads the bus meters) is the one that carries the cost.
    r.sim_seconds = gpu_sim_seconds(r.stats, sim.dev.bus(), r.pcie, r.serial,
                                    &r.gpu_breakdown);
    r.sim_seconds_analytic = r.sim_seconds;
    r.wall_seconds = sim.timer.seconds();
    return r;
  }
};

// ------------------------------------------------ demand-paging lower bound

class TraceEmitter final : public mapreduce::Emitter {
 public:
  explicit TraceEmitter(baselines::TracedCombiningTable& t) noexcept : t_(t) {}
  core::Status emit(std::string_view key,
                    std::span<const std::byte>) override {
    t_.insert_count(key);
    return core::Status::kSuccess;
  }

 private:
  baselines::TracedCombiningTable& t_;
};

class PagingSimEngine final : public Engine {
 public:
  const char* name() const noexcept override { return "paging-sim"; }
  const char* describe() const noexcept override {
    return "demand-paging lower bound (§VI-D): replays the table access "
           "trace through an LRU page cache; sim time is the bandwidth-only "
           "transfer bound (0 when the table fits in memory). "
           "Count-combining apps only (PVC)";
  }
  Caps caps() const noexcept override { return {.standalone = true}; }
  bool supports(const AppInfo& app) const override {
    // The traced table models <key, +1> combining inserts, so only apps
    // with exactly that shape replay faithfully.
    return !app.is_mapreduce() &&
           app.standalone->organization() == core::Organization::kCombining &&
           app.standalone->combiner() == core::combine_sum_u64;
  }
  RunResult run(const AppInfo& app, std::string_view input,
                const EngineConfig& cfg) const override {
    WallTimer timer;
    baselines::TracedCombiningTable traced(cfg.gpu.num_buckets);
    TraceEmitter em(traced);
    const RecordIndex idx = index_lines(input);
    for (std::size_t i = 0; i < idx.size(); ++i)
      app.standalone->map_record(idx.record(input.data(), i), em);

    const std::uint64_t mem_bytes =
        cfg.gpu.heap_bytes ? cfg.gpu.heap_bytes : cfg.gpu.device_bytes;
    const auto res =
        baselines::simulate_lru(traced.trace(), cfg.gpu.page_size, mem_bytes);
    const gpusim::PcieBus bus;  // same PCIe model used everywhere

    RunResult r;
    r.impl = name();
    r.iterations = 1;
    r.table_bytes = traced.table_bytes();
    r.heap_bytes = mem_bytes;
    r.keys = traced.entry_count();
    std::uint64_t sum = 0;
    traced.for_each_count([&](std::string_view k, std::uint64_t count) {
      sum += checksum_kv_bytes(
          k, reinterpret_cast<const std::byte*>(&count), sizeof(count));
    });
    r.checksum = sum;
    r.pcie.d2h_bytes = res.bytes_transferred;  // replacement traffic
    r.sim_seconds = static_cast<double>(res.bytes_transferred) /
                    bus.params().bandwidth_bytes_per_s;
    r.sim_seconds_analytic = r.sim_seconds;
    r.wall_seconds = timer.seconds();
    return r;
  }
};

}  // namespace

// ---------------------------------------------------------------- registry

const std::vector<const AppInfo*>& all_apps() {
  static const PageViewCountApp pvc;
  static const InvertedIndexApp ii;
  static const DnaAssemblyApp dna;
  static const NetflixApp netflix;
  static const AppInfo infos[] = {
      {.key = "pvc", .title = pvc.name(), .standalone = &pvc},
      {.key = "ii", .title = ii.name(), .standalone = &ii},
      {.key = "dna", .title = dna.name(), .standalone = &dna},
      {.key = "netflix", .title = netflix.name(), .standalone = &netflix},
      {.key = "wc", .title = word_count_app().name, .mr = &word_count_app()},
      {.key = "pc",
       .title = patent_citation_app().name,
       .mr = &patent_citation_app()},
      {.key = "geo",
       .title = geo_location_app().name,
       .mr = &geo_location_app()},
  };
  static const std::vector<const AppInfo*> list = [] {
    std::vector<const AppInfo*> v;
    for (const AppInfo& i : infos) v.push_back(&i);
    return v;
  }();
  return list;
}

const AppInfo* find_app(std::string_view key) {
  for (const AppInfo* a : all_apps())
    if (key == a->key) return a;
  return nullptr;
}

const std::vector<const Engine*>& all_engines() {
  static const SepoGpuEngine sepo_gpu;
  static const SepoMrEngine sepo_mr;
  static const CpuEngine cpu;
  static const PhoenixEngine phoenix;
  static const PinnedEngine pinned;
  static const MapCgEngine mapcg;
  static const StadiumEngine stadium;
  static const PagingSimEngine paging;
  static const std::vector<const Engine*> list = {
      &sepo_gpu, &sepo_mr, &cpu, &phoenix, &pinned, &mapcg, &stadium, &paging};
  return list;
}

const Engine* find_engine(std::string_view name) {
  for (const Engine* e : all_engines())
    if (name == e->name()) return e;
  return nullptr;
}

const Engine* resolve_engine(std::string_view name, const AppInfo& app) {
  // Historical aliases: "gpu" has always meant "the SEPO engine for this
  // app's kind", "mr" the MapReduce one.
  if (name == "gpu")
    return find_engine(app.is_mapreduce() ? "sepo-mr" : "sepo-gpu");
  if (name == "mr") return find_engine("sepo-mr");
  return find_engine(name);
}

const Engine* baseline_engine(const AppInfo& app) {
  return find_engine(app.is_mapreduce() ? "phoenix" : "cpu");
}

}  // namespace sepo::apps
