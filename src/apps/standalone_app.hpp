// Framework for the four standalone applications (paper §VI-A: Netflix,
// DNA Assembly, Page View Count, Inverted Index).
//
// An app is defined by its record parser (`map_record`, emitting KV pairs)
// plus its bucket organization and combiner; the framework provides the
// three evaluated execution paths:
//   * run_gpu     — SEPO hash table on the virtual device (the paper's
//                   system: BigKernel staging + SEPO iterations),
//   * run_cpu     — the multi-threaded CPU baseline (CpuHashTable),
//   * run_pinned  — the §VI-D heap-pinned-in-CPU-memory variant.
// All paths share the parser, so their result checksums must agree — that
// equivalence is property-tested.
#pragma once

#include <string>
#include <string_view>

#include "apps/harness.hpp"
#include "core/entry_layout.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::apps {

class StandaloneApp {
 public:
  virtual ~StandaloneApp() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  // Key into table1_bytes() for the paper's dataset sizes.
  [[nodiscard]] virtual const char* table1_key() const noexcept = 0;
  [[nodiscard]] virtual core::Organization organization() const noexcept = 0;
  // Required when organization() == kCombining.
  [[nodiscard]] virtual core::CombineFn combiner() const noexcept {
    return nullptr;
  }
  // Declares combiner() associative AND commutative, which licenses the
  // batched insert pipeline to pre-apply it inside per-worker
  // CombineBuffers (DESIGN.md §5d). Integer sum / OR / max qualify; f64
  // sum does not (rounding is order-sensitive and digests must stay
  // bit-identical to the scalar path).
  [[nodiscard]] virtual bool combiner_assoc_comm() const noexcept {
    return false;
  }
  // True when the record parser takes long data-dependent branch paths that
  // serialize GPU warps (the paper's Inverted Index: "a long switch-case
  // block in its core logic, which causes a high degree of thread
  // divergence", §VI-B). Counted per record into the divergence term.
  [[nodiscard]] virtual bool divergent_parse() const noexcept { return false; }

  // Generates a synthetic input of roughly `bytes` bytes.
  [[nodiscard]] virtual std::string generate(std::size_t bytes,
                                             std::uint64_t seed) const = 0;

  // Parses one record and emits its KV pairs. Must emit deterministically
  // (same record -> same emission sequence): SEPO re-executions rely on it.
  virtual void map_record(std::string_view body,
                          mapreduce::Emitter& em) const = 0;

  // --- execution paths ---
  [[nodiscard]] RunResult run_gpu(std::string_view input,
                                  const GpuConfig& cfg = {}) const;
  [[nodiscard]] RunResult run_cpu(std::string_view input,
                                  const CpuConfig& cfg = {}) const;
  [[nodiscard]] RunResult run_pinned(std::string_view input,
                                     const GpuConfig& cfg = {}) const;
};

// The concrete apps.
class PageViewCountApp final : public StandaloneApp {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "Page View Count";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "pvc";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kCombining;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    return core::combine_sum_u64;
  }
  [[nodiscard]] bool combiner_assoc_comm() const noexcept override {
    return true;  // u64 sum
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override;
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override;
};

class InvertedIndexApp final : public StandaloneApp {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "Inverted Index";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "ii";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kMultiValued;
  }
  [[nodiscard]] bool divergent_parse() const noexcept override { return true; }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override;
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override;
};

class DnaAssemblyApp final : public StandaloneApp {
 public:
  static constexpr std::size_t kK = 16;  // k-mer length

  [[nodiscard]] const char* name() const noexcept override {
    return "DNA Assembly";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "dna";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kCombining;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    // <k-mer, edges>: edge sets merge by OR (Meraculous-style extension
    // bitmask: bits 0-3 = predecessor base, bits 4-7 = successor base).
    return core::combine_or_u32;
  }
  [[nodiscard]] bool combiner_assoc_comm() const noexcept override {
    return true;  // bitwise OR
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override;
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override;
};

class NetflixApp final : public StandaloneApp {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "Netflix";
  }
  [[nodiscard]] const char* table1_key() const noexcept override {
    return "netflix";
  }
  [[nodiscard]] core::Organization organization() const noexcept override {
    return core::Organization::kCombining;
  }
  [[nodiscard]] core::CombineFn combiner() const noexcept override {
    return core::combine_sum_f64;  // sum per-movie similarity contributions
  }
  [[nodiscard]] std::string generate(std::size_t bytes,
                                     std::uint64_t seed) const override;
  void map_record(std::string_view body,
                  mapreduce::Emitter& em) const override;
};

}  // namespace sepo::apps
