#include "apps/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/mapcg.hpp"
#include "common/hashing.hpp"

namespace sepo::apps {

std::size_t pool_workers_from_args(int& argc, char** argv) {
  std::size_t workers = 0;
  if (const char* env = std::getenv("SEPO_WORKERS"))
    workers = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));

  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      value = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "--workers requires a count argument\n");
        continue;
      }
    } else {
      argv[w++] = argv[i];
      continue;
    }
    workers = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
  }
  argc = w;
  argv[argc] = nullptr;
  return workers;
}

namespace {

// `on` = default capacity, `off` = 0, otherwise a record count.
std::uint32_t parse_batch_insert(const char* value) {
  if (std::strcmp(value, "on") == 0) return core::kDefaultBatchInsertCapacity;
  if (std::strcmp(value, "off") == 0) return 0;
  return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
}

}  // namespace

std::uint32_t batch_insert_from_args(int& argc, char** argv) {
  std::uint32_t capacity = 0;
  if (const char* env = std::getenv("SEPO_BATCH_INSERT"))
    capacity = parse_batch_insert(env);

  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--batch-insert=", 15) == 0) {
      value = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--batch-insert") == 0) {
      if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "--batch-insert requires on|off|N\n");
        continue;
      }
    } else {
      argv[w++] = argv[i];
      continue;
    }
    capacity = parse_batch_insert(value);
  }
  argc = w;
  argv[argc] = nullptr;
  return capacity;
}

std::uint64_t checksum_kv(std::string_view key, std::uint64_t value) noexcept {
  // Commutative over the record set: summed into the digest by callers.
  return hash_combine(hash_key(key), hash_u64(value));
}

std::uint64_t checksum_kv_bytes(std::string_view key, const std::byte* value,
                                std::size_t value_len) noexcept {
  return hash_combine(hash_key(key),
                      hash_bytes(reinterpret_cast<const char*>(value),
                                 value_len));
}

double gpu_sim_seconds(const gpusim::StatsSnapshot& stats,
                       const gpusim::PcieBus& bus,
                       const gpusim::PcieSnapshot& pcie,
                       const gpusim::SerializationInputs& serial,
                       gpusim::GpuTimeBreakdown* breakdown) {
  const gpusim::GpuTimeBreakdown b =
      gpusim::gpu_time(gpusim::kGpuDesc, stats, bus, pcie);
  if (breakdown) *breakdown = b;
  return b.total + gpusim::serialization_time(gpusim::kGpuDesc, serial);
}

double cpu_sim_seconds(const gpusim::StatsSnapshot& stats,
                       const gpusim::SerializationInputs& serial) {
  return gpusim::cpu_time(gpusim::kCpuDesc, stats) +
         gpusim::serialization_time(gpusim::kCpuDesc, serial);
}

void fill_gpu_times(RunResult& r, const gpusim::ExecContext& ctx,
                    const gpusim::PcieBus& bus) {
  r.sim_seconds_analytic =
      gpu_sim_seconds(r.stats, bus, r.pcie, r.serial, &r.gpu_breakdown);
  r.timeline = ctx.timeline().summary();
  r.faults = ctx.timeline().fault_summary();
  r.sim_seconds =
      r.timeline.total +
      gpusim::serialization_time(ctx.timeline().machine(), r.serial);
}

RunError run_error_from(const std::exception& e) {
  RunError err;
  // Order matters: FaultError and the MapCG OOM both derive from
  // runtime_error, and DeviceOutOfMemory derives from bad_alloc, so the
  // specific types must be tested before their bases. A plain runtime_error
  // is the driver's stall report (iteration cap / zero progress).
  if (dynamic_cast<const gpusim::FaultError*>(&e) != nullptr)
    err.kind = RunError::Kind::kFaultRetriesExhausted;
  else if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr ||
           dynamic_cast<const baselines::MapCgOutOfMemory*>(&e) != nullptr)
    err.kind = RunError::Kind::kDeviceOutOfMemory;
  else if (dynamic_cast<const std::runtime_error*>(&e) != nullptr)
    err.kind = RunError::Kind::kNoProgress;
  else
    err.kind = RunError::Kind::kDeviceOutOfMemory;
  err.message = e.what();
  return err;
}

}  // namespace sepo::apps
