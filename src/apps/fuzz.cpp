#include "apps/fuzz.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <new>
#include <stdexcept>

#include "apps/datagen.hpp"
#include "common/hashing.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"

namespace sepo::apps {

const char* to_string(FuzzStatus s) noexcept {
  switch (s) {
    case FuzzStatus::kOk: return "ok";
    case FuzzStatus::kTypedError: return "typed_error";
    case FuzzStatus::kException: return "exception";
  }
  return "?";
}

const char* to_string(FuzzVerdict v) noexcept {
  switch (v) {
    case FuzzVerdict::kAgree: return "agree";
    case FuzzVerdict::kEngineDeclined: return "engine_declined";
    case FuzzVerdict::kDigestMismatch: return "digest_mismatch";
    case FuzzVerdict::kKeyCountMismatch: return "key_count_mismatch";
    case FuzzVerdict::kBaselineFailed: return "baseline_failed";
  }
  return "?";
}

bool is_failure(FuzzVerdict v) noexcept {
  return v == FuzzVerdict::kDigestMismatch ||
         v == FuzzVerdict::kKeyCountMismatch ||
         v == FuzzVerdict::kBaselineFailed;
}

namespace {

// The dataset for a plan. The skewed regimes go straight to apps::datagen
// for the two apps whose generators expose the knobs; everything else uses
// the app's default generator.
std::string generate_input(const AppInfo& app, const FuzzPlan& plan) {
  const DatagenParams p{.target_bytes = plan.input_bytes,
                        .seed = plan.data_seed};
  if (plan.zipf_s > 0 && plan.distinct_keys > 0) {
    if (plan.app == "pvc") return gen_weblog(p, plan.distinct_keys, plan.zipf_s);
    if (plan.app == "wc") return gen_text(p, plan.distinct_keys, plan.zipf_s);
  }
  return app.generate(plan.input_bytes, plan.data_seed);
}

EngineConfig config_for(const FuzzPlan& plan) {
  EngineConfig cfg;
  cfg.gpu.device_bytes = plan.device_bytes;
  cfg.gpu.num_buckets = plan.num_buckets;
  cfg.gpu.pool_workers = plan.workers;
  cfg.gpu.basic_halt_frac = plan.basic_halt_frac;
  cfg.gpu.batch_insert = plan.batch_insert;
  cfg.gpu.faults = plan.faults;
  cfg.cpu.pool_workers = plan.workers;
  return cfg;
}

// One side of the differential pair. Every structural failure mode an engine
// can surface — typed RunError on the result, DeviceOutOfMemory / FaultError
// / driver-stall exceptions — is folded into the outcome instead of
// escaping: under SEPO's contract a decline of service is a legal answer,
// only a wrong table is a bug.
FuzzEngineOutcome run_one(const Engine& eng, const AppInfo& app,
                          std::string_view input, const EngineConfig& cfg) {
  FuzzEngineOutcome out;
  try {
    const RunResult r = eng.run(app, input, cfg);
    if (r.error) {
      out.status = FuzzStatus::kTypedError;
      out.error_kind = r.error.kind_name();
      out.message = r.error.message;
    } else {
      out.digest = r.checksum;
      out.keys = r.keys;
    }
    out.iterations = r.iterations;
  } catch (const std::exception& e) {
    out.status = FuzzStatus::kException;
    out.error_kind =
        dynamic_cast<const gpusim::DeviceOutOfMemory*>(&e) != nullptr
            ? "device_out_of_memory"
        : dynamic_cast<const gpusim::FaultError*>(&e) != nullptr
            ? "fault_retries_exhausted"
            : "exception";
    out.message = e.what();
  }
  return out;
}

}  // namespace

FuzzPlan FuzzRunner::plan_for(std::uint64_t index) const {
  // Private per-plan stream: plan i never depends on how many draws plan
  // i-1 made, so plans are individually reproducible from (seed, index).
  Rng rng(hash_combine(opt_.seed, hash_u64(index + 1)));

  FuzzPlan p;
  p.id = index;
  p.master_seed = opt_.seed;
  p.corrupt_digest_xor = opt_.corrupt_digest_xor;

  const auto& apps = all_apps();
  const AppInfo& app = *apps[rng.below(apps.size())];
  p.app = app.key;

  // Engine under test: any registered engine that supports the app and is
  // not itself the reference baseline.
  const Engine* baseline = baseline_engine(app);
  std::vector<const Engine*> candidates;
  for (const Engine* e : all_engines())
    if (e != baseline && e->supports(app)) candidates.push_back(e);
  p.engine = candidates[rng.below(candidates.size())]->name();

  // Dataset: log-uniform size in [8 KiB, max_input_bytes], fresh seed.
  const std::size_t min_bytes = 8u << 10;
  const std::size_t max_bytes = std::max(min_bytes, opt_.max_input_bytes);
  std::uint64_t doublings = 0;
  for (std::size_t b = min_bytes; b * 2 <= max_bytes; b *= 2) ++doublings;
  p.input_bytes = min_bytes << rng.below(doublings + 1);
  p.data_seed = rng.next();

  // Key skew / duplication regime for the generators that expose it. The
  // draws happen unconditionally so the stream layout is identical for
  // every app (a plan's later fields don't shift when only the app differs).
  static constexpr double kSkews[] = {0.5, 0.99, 1.3};
  static constexpr std::size_t kCardinalities[] = {500, 5000, 50000};
  const bool skewed = rng.chance(0.5);
  const double zipf_s = kSkews[rng.below(3)];
  const std::size_t distinct = kCardinalities[rng.below(3)];
  if (skewed && (p.app == "pvc" || p.app == "wc")) {
    p.zipf_s = zipf_s;
    p.distinct_keys = distinct;
  }

  // Device regime: capacity proportional to the input, from "well below the
  // table size" (heavy postponement, typed OOM on the no-postponement
  // baselines) to comfortable. Bucket-array statics are charged on top so a
  // small-fraction draw stresses the heap, not only the static carve-out.
  static constexpr double kCapacityFrac[] = {0.25, 0.5, 0.75, 1.0, 1.5, 4.0};
  static constexpr std::uint32_t kBuckets[] = {1u << 10, 1u << 12, 1u << 14};
  p.num_buckets = kBuckets[rng.below(3)];
  const double frac = kCapacityFrac[rng.below(6)];
  const std::size_t statics =
      static_cast<std::size_t>(p.num_buckets) * 20 + (64u << 10);
  p.device_bytes = std::max<std::size_t>(
      128u << 10,
      statics + static_cast<std::size_t>(frac *
                                         static_cast<double>(p.input_bytes)));

  static constexpr std::size_t kWorkers[] = {1, 2, 4};
  p.workers = kWorkers[rng.below(3)];
  static constexpr double kHaltFracs[] = {0.25, 0.5, 0.9};
  p.basic_halt_frac = kHaltFracs[rng.below(3)];

  // Batched insert pipeline: half the plans keep the scalar path (0), the
  // rest sweep the capacity range including the degenerate single-record
  // buffer. Only the SEPO engines consume the knob.
  static constexpr std::uint32_t kBatchCaps[] = {0, 1, 64, 4096};
  p.batch_insert = kBatchCaps[rng.below(4)];

  // Fault schedule: half of all plans run clean; the rest draw independent
  // per-class rates (any class may be zero) plus a pressure regime.
  if (rng.chance(0.5)) {
    static constexpr double kRates[] = {0.0, 0.005, 0.02};
    gpusim::FaultConfig f;
    f.seed = rng.next();
    f.h2d_rate = kRates[rng.below(3)];
    f.d2h_rate = kRates[rng.below(3)];
    f.remote_rate = kRates[rng.below(3)];
    f.kernel_abort_rate = kRates[rng.below(3)];
    if (rng.chance(0.3)) {
      f.pressure_rate = 0.25;
      f.pressure_frac = 0.5;
      f.pressure_hold_iterations = 2;
    }
    p.faults = f;
  }
  return p;
}

FuzzResult FuzzRunner::execute(const FuzzPlan& plan) const {
  FuzzResult res;
  res.plan = plan;

  const AppInfo* app = find_app(plan.app);
  const Engine* eng = app != nullptr ? find_engine(plan.engine) : nullptr;
  if (app == nullptr || eng == nullptr || !eng->supports(*app)) {
    res.verdict = FuzzVerdict::kBaselineFailed;
    res.baseline.status = FuzzStatus::kException;
    res.baseline.message = "plan names an unknown app/engine pair: " +
                           plan.app + "/" + plan.engine;
    return res;
  }
  const Engine* base = baseline_engine(*app);
  const std::string input = generate_input(*app, plan);

  EngineConfig cfg = config_for(plan);
  // Flight recorder on the engine under test: drained into the result only
  // when the verdict is a failure (the repro artifact carries it).
  std::unique_ptr<gpusim::EventJournal> journal;
  if (eng->caps().journal) {
    journal = std::make_unique<gpusim::EventJournal>();
    cfg.gpu.journal = journal.get();
  }
  res.engine = run_one(*eng, *app, input, cfg);
  if (plan.corrupt_digest_xor != 0 && res.engine.status == FuzzStatus::kOk)
    res.engine.digest ^= plan.corrupt_digest_xor;

  // The baseline runs clean (no journal, no faults — its engines ignore the
  // GPU half anyway, this just keeps the intent explicit).
  EngineConfig base_cfg = config_for(plan);
  base_cfg.gpu.journal = nullptr;
  base_cfg.gpu.faults = {};
  res.baseline = run_one(*base, *app, input, base_cfg);

  if (res.baseline.status != FuzzStatus::kOk) {
    res.verdict = FuzzVerdict::kBaselineFailed;
  } else if (res.engine.status != FuzzStatus::kOk) {
    res.verdict = FuzzVerdict::kEngineDeclined;
  } else if (res.engine.digest != res.baseline.digest) {
    res.verdict = FuzzVerdict::kDigestMismatch;
  } else if (res.engine.keys != res.baseline.keys) {
    res.verdict = FuzzVerdict::kKeyCountMismatch;
  } else {
    res.verdict = FuzzVerdict::kAgree;
  }
  if (res.failed() && journal != nullptr) res.journal = journal->drain();
  return res;
}

FuzzResult FuzzRunner::shrink(const FuzzResult& failing) const {
  if (!failing.failed()) return failing;
  const FuzzVerdict want = failing.verdict;
  FuzzResult best = failing;
  std::size_t execs = 0;

  // Candidate reductions, cheapest-to-check first. Each returns false when
  // it no longer applies to the current plan.
  const auto try_reduced = [&](const std::function<bool(FuzzPlan&)>& reduce) {
    if (execs >= opt_.shrink_budget) return false;
    FuzzPlan cand = best.plan;
    if (!reduce(cand)) return false;
    ++execs;
    FuzzResult r = execute(cand);
    if (r.verdict != want) return false;
    best = std::move(r);
    return true;
  };

  bool progressed = true;
  while (progressed && execs < opt_.shrink_budget) {
    progressed = false;
    // Halve the dataset while the failure persists.
    while (try_reduced([](FuzzPlan& p) {
      if (p.input_bytes <= (8u << 10)) return false;
      p.input_bytes /= 2;
      return true;
    }))
      progressed = true;
    // Zero fault classes one at a time.
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.faults.h2d_rate == 0) return false;
      p.faults.h2d_rate = 0;
      return true;
    });
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.faults.d2h_rate == 0) return false;
      p.faults.d2h_rate = 0;
      return true;
    });
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.faults.remote_rate == 0) return false;
      p.faults.remote_rate = 0;
      return true;
    });
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.faults.kernel_abort_rate == 0) return false;
      p.faults.kernel_abort_rate = 0;
      return true;
    });
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.faults.pressure_rate == 0) return false;
      p.faults.pressure_rate = 0;
      return true;
    });
    // One worker, default skew.
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.workers <= 1) return false;
      p.workers = 1;
      return true;
    });
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.zipf_s == 0) return false;
      p.zipf_s = 0;
      p.distinct_keys = 0;
      return true;
    });
    // Scalar insert path: if the failure survives without batching, the
    // combining-buffer pipeline is exonerated.
    progressed |= try_reduced([](FuzzPlan& p) {
      if (p.batch_insert == 0) return false;
      p.batch_insert = 0;
      return true;
    });
  }
  return best;
}

FuzzRunner::Summary FuzzRunner::run() const {
  Summary s;
  WallTimer timer;
  for (std::uint64_t i = 0; i < opt_.runs; ++i) {
    if (opt_.time_budget_s > 0 && timer.seconds() >= opt_.time_budget_s) {
      s.hit_time_budget = true;
      break;
    }
    FuzzResult r = execute(plan_for(i));
    ++s.executed;
    if (opt_.observer) opt_.observer(r);
    switch (r.verdict) {
      case FuzzVerdict::kAgree: ++s.agreed; break;
      case FuzzVerdict::kEngineDeclined: ++s.declined; break;
      default:
        s.failures.push_back(opt_.shrink ? shrink(r) : std::move(r));
        break;
    }
  }
  return s;
}

}  // namespace sepo::apps
