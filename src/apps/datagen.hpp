// Synthetic dataset generators for the seven applications (paper §VI-A,
// Table I). The originals (web logs, Wikipedia, Netflix ratings, NBER
// patents, DNA read archives) are proprietary or unavailable; these
// generators reproduce the properties the hash table actually responds to —
// record format, key cardinality, key skew, and key/value lengths
// (DESIGN.md §1).
//
// All generators are deterministic in (target_bytes, seed) and aim at
// `target_bytes` of output within one record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sepo::apps {

struct DatagenParams {
  std::size_t target_bytes = 1u << 20;
  std::uint64_t seed = 42;
};

// Page View Count: Apache-style access log, one request per line. URL
// popularity is Zipf(1.0) over `distinct_urls` so that hot URLs combine
// heavily while the tail keeps allocating.
std::string gen_weblog(DatagenParams p, std::size_t distinct_urls = 60000,
                       double zipf_s = 1.0);

// Word Count: prose-like text from a Zipf(1.05)-weighted vocabulary —
// "text documents which contain a limited number of distinct words no
// matter how large the document is" (§VI-B).
std::string gen_text(DatagenParams p, std::size_t vocabulary = 6000,
                     double zipf_s = 1.05);

// Inverted Index: one HTML page per line: "<path>\t<html with hrefs>".
// Hyperlink URLs are 5..120 chars (footnote 4: "URLs that are between 5 and
// thousands of characters"), drawn Zipf(0.8) from `distinct_links`.
std::string gen_html_pages(DatagenParams p, std::size_t distinct_links = 40000,
                           std::size_t links_per_page_max = 12);

// DNA Assembly: fixed-length reads sampled from a random genome with
// overlaps, one read per line (Meraculous-style k-mer workload).
std::string gen_dna_reads(DatagenParams p, std::size_t genome_len = 1u << 20,
                          std::size_t read_len = 64);

// Netflix: per-movie rating lines: "m<movie>: u<user>,<rating> ...".
// Users per movie is capped so the per-record user-pair blowup is bounded.
std::string gen_netflix(DatagenParams p, std::size_t movies = 12000,
                        std::size_t users = 40000,
                        std::size_t max_users_per_movie = 14);

// Patent Citation: "C<citing> P<cited>" pairs; cited patents Zipf(0.7).
std::string gen_patents(DatagenParams p, std::size_t patents = 30000,
                        double zipf_s = 0.7);

// Geo Location: "<articleId>\t<geo cell string>"; cells Zipf(0.9) over a
// lat/lon grid.
std::string gen_geo_articles(DatagenParams p, std::size_t cells = 15000,
                             double zipf_s = 0.9);

// Paper Table I dataset sizes, scaled 1:1000 (GB -> MB). `app` in
// {"ii","pvc","dna","netflix","wc","pc","geo"}, `dataset` in 1..4.
std::size_t table1_bytes(const char* app, int dataset);

}  // namespace sepo::apps
