// The three MapReduce applications (paper §VI-A: Word Count, Geo Location,
// Patent Citation) and their execution paths on:
//   * our SEPO-based MapReduce runtime (§V),
//   * the Phoenix++-style CPU runtime (the Figure 6 baseline), and
//   * the MapCG-style GPU runtime (the Table II comparator).
#pragma once

#include <string>
#include <string_view>

#include "apps/harness.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::apps {

struct MrApp {
  const char* name;
  const char* table1_key;
  mapreduce::Mode mode;
  std::string (*generate)(std::size_t bytes, std::uint64_t seed);
  mapreduce::MapFn map;
  core::CombineFn combine;  // kMapReduce only
  // Combiner declared associative+commutative (licenses CombineBuffer
  // pre-combining, DESIGN.md §5d). kMapReduce only.
  bool combine_assoc_comm = false;

  [[nodiscard]] mapreduce::MrSpec spec() const {
    return {.mode = mode,
            .map = map,
            .combine = combine,
            .combine_assoc_comm = combine_assoc_comm};
  }
};

// <word, 1>, MAP_REDUCE (sum).
[[nodiscard]] const MrApp& word_count_app();
// <geo cell, article id>, MAP_GROUP.
[[nodiscard]] const MrApp& geo_location_app();
// <cited patent, citing patent>, MAP_GROUP.
[[nodiscard]] const MrApp& patent_citation_app();

// Runs on our SEPO MapReduce runtime.
[[nodiscard]] RunResult run_mr_sepo(const MrApp& app, std::string_view input,
                                    const GpuConfig& cfg = {});
// Runs on the Phoenix++-style CPU baseline.
[[nodiscard]] RunResult run_mr_phoenix(const MrApp& app,
                                       std::string_view input,
                                       const CpuConfig& cfg = {});
// Runs on the MapCG-style GPU baseline. Throws baselines::MapCgOutOfMemory
// when input + table exceed device memory (the §VI-C failure mode).
[[nodiscard]] RunResult run_mr_mapcg(const MrApp& app, std::string_view input,
                                     const GpuConfig& cfg = {});

}  // namespace sepo::apps
