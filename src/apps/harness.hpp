// Shared measurement harness for the applications: builds the virtual
// device, runs an app's GPU (SEPO), CPU-baseline, or pinned-baseline path,
// and converts the recorded event counts into simulated time (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bigkernel/pipeline.hpp"
#include "common/hashing.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "core/combine_buffer.hpp"
#include "core/iteration_profile.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"
#include "gpusim/pcie.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::apps {

// GPU-side run configuration. Defaults model a card ~1/1000 the paper's
// GTX 780ti usable capacity (DESIGN.md scaling note): with ~20% consumed by
// static structures, the heap lands around 3 MB against inputs of 0.2-8 MB.
struct GpuConfig {
  std::size_t device_bytes = 4u << 20;
  std::size_t page_size = 8u << 10;
  std::uint32_t num_buckets = 1u << 14;
  // 32 bucket groups: enough allocation spread for lock distribution while
  // keeping active pages (groups x classes x page) well under the heap
  // (the §IV-A fragmentation side of the trade-off).
  std::uint32_t buckets_per_group = 512;
  std::size_t target_chunk_bytes = 224u << 10;  // BigKernel chunk size
  std::size_t num_staging_buffers = 2;
  std::size_t pool_workers = 0;  // 0 = hardware concurrency
  // Heap override: 0 = all remaining device memory (the default §IV-A
  // policy). Table III's memory sweep pins the heap explicitly.
  std::size_t heap_bytes = 0;
  // Basic-organization halt threshold (§IV-C footnote 5); the ablation bench
  // sweeps it.
  double basic_halt_frac = 0.5;
  // Batched insert pipeline (DESIGN.md §5d): per-worker CombineBuffer
  // capacity in records. 0 (the default) = scalar inserts. The
  // `--batch-insert on|off|N` flag / SEPO_BATCH_INSERT env set it.
  std::uint32_t batch_insert = 0;
  // Telemetry hook (e.g. obs::TraceRecorder), installed on the run's
  // counters and bus. Null (the default) disables recording entirely;
  // recording never alters counters, so sim_seconds is identical either way.
  gpusim::TraceHook* trace = nullptr;
  // Fault injection (gpusim::FaultInjector). All rates zero (the default)
  // keeps the run bit-identical to a build without the injector.
  gpusim::FaultConfig faults;
  // Flight-recorder journal (gpusim::EventJournal), caller-owned so it can
  // be drained after a failed run. Null (the default) compiles every hook
  // site down to one false branch; results and metrics are bit-identical
  // either way (tests/journal_test.cpp).
  gpusim::EventJournal* journal = nullptr;
};

struct CpuConfig {
  std::uint32_t num_threads = 8;
  // CPU memory is unconstrained, so the baseline sizes its table for a load
  // factor around 1 (as a tuned CPU implementation would).
  std::uint32_t num_buckets = 1u << 17;
  std::size_t pool_workers = 0;
};

// One simulated-GPU run's execution state: virtual device, worker pool,
// counters, and the ExecContext wiring them together — with the GpuConfig's
// trace hook, flight-recorder journal, and fault injector installed. This is
// the ONE place per-run ExecContext setup happens; every simulated-device
// run path (sepo-gpu, pinned, mapcg, sepo-mr, stadium) builds one of these
// instead of hand-assembling the pieces. The wall timer starts at
// construction.
class SimRun {
 public:
  explicit SimRun(const GpuConfig& cfg)
      : dev(cfg.device_bytes), pool(cfg.pool_workers), ctx(dev, pool, stats) {
    if (cfg.trace) ctx.set_trace(cfg.trace);
    if (cfg.journal) ctx.set_journal(cfg.journal);
    if (cfg.faults.enabled()) {
      faults_.emplace(cfg.faults);
      ctx.set_faults(&*faults_);
    }
  }

  SimRun(const SimRun&) = delete;
  SimRun& operator=(const SimRun&) = delete;

  WallTimer timer;
  gpusim::Device dev;
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx;

 private:
  std::optional<gpusim::FaultInjector> faults_;
};

// How a run failed, when it failed in a way the implementation is expected
// to surface structurally (rather than abort or return a wrong table).
// SEPO degrades through postponement, so under memory pressure it simply
// takes more iterations; the pinned/MapCG/stadium baselines have no
// postponement story and report one of these instead.
struct RunError {
  enum class Kind {
    kNone = 0,
    kDeviceOutOfMemory,      // static/arena allocation exceeded the device
    kFaultRetriesExhausted,  // a faulted operation ran out of retries
    kNoProgress,             // driver stalled (iteration cap / zero progress)
  };
  Kind kind = Kind::kNone;
  std::string message;

  [[nodiscard]] explicit operator bool() const noexcept {
    return kind != Kind::kNone;
  }
  [[nodiscard]] const char* kind_name() const noexcept {
    switch (kind) {
      case Kind::kDeviceOutOfMemory: return "device_out_of_memory";
      case Kind::kFaultRetriesExhausted: return "fault_retries_exhausted";
      case Kind::kNoProgress: return "no_progress";
      case Kind::kNone: break;
    }
    return "none";
  }
};

// Maps the typed exceptions a run may surface onto a RunError.
[[nodiscard]] RunError run_error_from(const std::exception& e);

// Host-parallelism selection shared by sepo_cli and the bench binaries:
// strips a `--workers N` / `--workers=N` flag from argv (compacting argc like
// obs::OutputOptions::from_args) and returns its value; falls back to the
// SEPO_WORKERS environment variable, then to 0 (= hardware concurrency, the
// ThreadPool default). Plumb the result into GpuConfig/CpuConfig
// .pool_workers to sweep host parallelism in perf runs.
[[nodiscard]] std::size_t pool_workers_from_args(int& argc, char** argv);

// Batched-insert knob shared the same way: strips `--batch-insert X` /
// `--batch-insert=X` where X is `on` (default capacity), `off`, or a record
// capacity; falls back to the SEPO_BATCH_INSERT environment variable, then
// to 0 (off). Plumb into GpuConfig.batch_insert.
[[nodiscard]] std::uint32_t batch_insert_from_args(int& argc, char** argv);

// One measured run of one implementation of one app.
struct RunResult {
  std::string impl;                 // "sepo-gpu", "cpu", "pinned", ...
  gpusim::StatsSnapshot stats;
  gpusim::PcieSnapshot pcie;
  gpusim::SerializationInputs serial;
  std::uint32_t iterations = 0;     // SEPO iterations (1 when it fits)
  std::uint64_t table_bytes = 0;    // final hash-table footprint
  std::uint64_t heap_bytes = 0;     // device heap the table had to fit in
  std::uint64_t checksum = 0;       // order-independent result digest
  std::uint64_t keys = 0;           // distinct keys (entries) in the result
  // Modelled time. GPU paths: the discrete-event timeline's makespan plus
  // the lock-serialization term; CPU paths: the analytic compute model.
  double sim_seconds = 0;
  // Cross-check for GPU paths: the legacy analytic total
  // (max(compute, h2d) + d2h + remote, plus serialization). The timeline
  // should land close to it — per-resource pricing is identical, only the
  // admitted overlap differs. Equal to sim_seconds on CPU paths.
  double sim_seconds_analytic = 0;
  // Host wall clock. Informational only: it depends on the simulation
  // host's hardware and load, unlike sim_seconds. Serialized and printed as
  // "wall_seconds_host" to keep that distinction visible.
  double wall_seconds = 0;
  gpusim::GpuTimeBreakdown gpu_breakdown{};  // GPU paths only (analytic)
  gpusim::TimelineSummary timeline{};        // GPU paths only (scheduled)
  gpusim::FaultSummary faults{};             // per-engine fault/retry totals
  // Structural failure, if any. A set error means the numbers above cover
  // the run up to the failure point and the table results are not valid.
  RunError error;
  // Per-SEPO-iteration convergence profiles (SEPO paths; empty otherwise).
  core::IterationProfiles iteration_profiles;
  // Occupancy time-series, one sample per iteration boundary (SEPO paths;
  // empty otherwise). Serialized as the metrics schema v4 "timeseries".
  std::vector<gpusim::OccupancySample> timeseries;
  // Final-table bucket occupancy: [n] = buckets with n entries, last bin
  // aggregates longer chains (SEPO paths; empty otherwise).
  std::vector<std::uint64_t> bucket_histogram;
  // Batched insert pipeline totals (SEPO paths; enabled=false when the
  // knob is off or the path has no table). Serialized as the metrics
  // schema v5 "combine_buffer" object.
  core::CombineBufferTotals combine_buffer;
};

// Picks a BigKernel chunking for `idx` under `cfg` (implemented in
// standalone_app.cpp; shared with the MapReduce harness).
void choose_chunking(const RecordIndex& idx, const GpuConfig& cfg,
                     bigkernel::PipelineConfig& pcfg);

// Order-independent digests used to cross-validate implementations.
[[nodiscard]] std::uint64_t checksum_kv(std::string_view key,
                                        std::uint64_t value) noexcept;
[[nodiscard]] std::uint64_t checksum_kv_bytes(
    std::string_view key, const std::byte* value,
    std::size_t value_len) noexcept;

// Order-independent digest of a finished KV table (anything exposing
// for_each(fn(key, value_bytes))).
template <typename Table>
[[nodiscard]] std::uint64_t digest_kv(const Table& t) {
  std::uint64_t sum = 0;
  t.for_each([&](std::string_view k, std::span<const std::byte> v) {
    sum += checksum_kv_bytes(k, v.data(), v.size());
  });
  return sum;
}

// Order-independent digest of a grouped table (anything exposing
// for_each_group(fn(key, values))); insensitive to value order and to how
// duplicate key entries were merged.
template <typename Table>
[[nodiscard]] std::uint64_t digest_groups(const Table& t) {
  std::uint64_t sum = 0;
  t.for_each_group([&](std::string_view k,
                       const std::vector<std::span<const std::byte>>& vals) {
    std::uint64_t vsum = 0;
    for (const auto& v : vals)
      vsum += hash_bytes(reinterpret_cast<const char*>(v.data()), v.size());
    sum += hash_combine(hash_key(k), mix64(vsum));
  });
  return sum;
}

// Simulated time for a GPU-side run — legacy analytic model, kept as the
// timeline's cross-check (and used by extensions without a timeline).
[[nodiscard]] double gpu_sim_seconds(const gpusim::StatsSnapshot& stats,
                                     const gpusim::PcieBus& bus,
                                     const gpusim::PcieSnapshot& pcie,
                                     const gpusim::SerializationInputs& serial,
                                     gpusim::GpuTimeBreakdown* breakdown = nullptr);

// Fills a GPU RunResult's time fields from a finished ExecContext:
// sim_seconds from the timeline makespan + serialization, the analytic
// total into sim_seconds_analytic / gpu_breakdown, and the timeline summary.
// Requires r.stats, r.pcie and r.serial to be set already.
void fill_gpu_times(RunResult& r, const gpusim::ExecContext& ctx,
                    const gpusim::PcieBus& bus);

// Simulated time for a CPU-side run.
[[nodiscard]] double cpu_sim_seconds(const gpusim::StatsSnapshot& stats,
                                     const gpusim::SerializationInputs& serial);

}  // namespace sepo::apps
