// Differential fuzzing of the engine matrix (ISSUE 9, DESIGN.md §2).
//
// The paper's core correctness claim is that SEPO postpones work but never
// produces wrong answers: every engine must converge to exactly the table
// contents the in-memory baseline computes. The registry's fixed-fixture
// cross-validation (tests/engine_test.cpp) checks that on a handful of
// inputs; hash-table bugs, however, hide in boundary regimes — device
// capacity at or below the table size, word-boundary bitmap sizes, heavy key
// skew, fault storms — that fixed fixtures never reach.
//
// FuzzRunner hunts those regimes: a seeded generator samples random run
// configs (app, engine, dataset size/skew, device capacity near and below
// the table size, worker count, fault schedule), executes each config on the
// engine under test AND on the app's reference baseline, and compares the
// order-independent digests, entry counts, and typed-error outcomes. A
// mismatch is auto-shrunk (halve the dataset, zero fault classes one at a
// time, drop to one worker, remove skew) to a minimal FuzzPlan that
// `sepo_cli fuzz --repro <file>` replays bit-identically.
//
// Determinism contract: a plan is a pure function of (master seed, index) —
// the generator owns a private sepo::Rng per plan, draws in a fixed order,
// and never touches the wall clock — and every engine in the registry is
// deterministic in its config, so the same seed yields the same plans AND
// the same verdicts on every run and platform. The wall clock appears only
// in the optional --time-budget cutoff, which bounds how MANY plans run,
// never what any plan does.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/engine.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"

namespace sepo::apps {

// One fully-specified differential run. Every field that can influence the
// result is here, so a serialized plan (obs/fuzz_repro.hpp) replays
// bit-identically.
struct FuzzPlan {
  std::uint64_t id = 0;           // index in the generated sequence
  std::uint64_t master_seed = 0;  // seed the generator derived this plan from
  std::string app;                // AppInfo key ("pvc", "wc", ...)
  std::string engine;             // registry name of the engine under test
  std::size_t input_bytes = 64u << 10;
  std::uint64_t data_seed = 42;   // dataset generator seed
  // Custom key-skew regime for the apps whose generators expose it (pvc via
  // gen_weblog, wc via gen_text). zipf_s == 0 means the app's default
  // generator parameters; distinct_keys is ignored then.
  double zipf_s = 0.0;
  std::size_t distinct_keys = 0;
  // Device regime: sampled near and below the expected table footprint so
  // capacity-edge behaviour (postponement, typed OOM) gets exercised.
  std::size_t device_bytes = 4u << 20;
  std::uint32_t num_buckets = 1u << 14;
  std::size_t workers = 1;        // host thread-pool size
  double basic_halt_frac = 0.5;   // basic-organization halt threshold
  // Batched insert pipeline capacity for the SEPO engines (0 = scalar path;
  // baselines ignore it). Sampled so the fuzzer sweeps the batched drain /
  // requeue machinery through the same capacity-edge and fault regimes.
  std::uint32_t batch_insert = 0;
  gpusim::FaultConfig faults;     // all-zero = no injection
  // Test-only corruption hook: a nonzero value is XORed into the engine
  // under test's digest before comparison, forcing a deterministic mismatch
  // so the shrink/repro pipeline itself can be exercised end to end.
  std::uint64_t corrupt_digest_xor = 0;
};

// How one side of a differential run ended.
enum class FuzzStatus {
  kOk = 0,         // run completed, digest and counts valid
  kTypedError,     // run returned a typed RunError (declined service)
  kException,      // run threw; structural failure surfaced untyped
};
[[nodiscard]] const char* to_string(FuzzStatus s) noexcept;

struct FuzzEngineOutcome {
  FuzzStatus status = FuzzStatus::kOk;
  std::string error_kind;     // RunError kind_name / exception type label
  std::string message;        // error detail (empty on kOk)
  std::uint64_t digest = 0;   // order-independent checksum (kOk only)
  std::uint64_t keys = 0;     // distinct entries (kOk only)
  std::uint32_t iterations = 0;
};

// The comparison verdict. SEPO's contract is "postpone or answer correctly":
// a typed decline is acceptable, a wrong answer never is.
enum class FuzzVerdict {
  kAgree = 0,          // both ok, digests and entry counts match
  kEngineDeclined,     // engine under test reported a typed error / threw
  kDigestMismatch,     // both ok, digests differ  -> bug
  kKeyCountMismatch,   // digests match but entry counts differ -> bug
  kBaselineFailed,     // the reference baseline itself failed -> bug
};
[[nodiscard]] const char* to_string(FuzzVerdict v) noexcept;
[[nodiscard]] bool is_failure(FuzzVerdict v) noexcept;

struct FuzzResult {
  FuzzPlan plan;
  FuzzEngineOutcome engine;
  FuzzEngineOutcome baseline;
  FuzzVerdict verdict = FuzzVerdict::kAgree;
  // Flight-recorder events drained from the engine under test, captured only
  // when the verdict is a failure and the engine supports the journal.
  std::vector<gpusim::JournalEvent> journal;

  [[nodiscard]] bool failed() const noexcept { return is_failure(verdict); }
};

struct FuzzOptions {
  std::uint64_t seed = 0x5ef0f022ULL;  // master seed
  std::uint64_t runs = 32;             // plans to generate and execute
  double time_budget_s = 0;            // 0 = no wall-clock cutoff
  std::size_t max_input_bytes = 256u << 10;
  bool shrink = true;                  // auto-shrink failing plans
  std::size_t shrink_budget = 48;      // max extra executions per failure
  // Test-only: applied to every generated plan (see FuzzPlan).
  std::uint64_t corrupt_digest_xor = 0;
  // Per-result observer for progress output; may be null. Called after each
  // top-level plan (not for shrink re-executions).
  std::function<void(const FuzzResult&)> observer;
};

class FuzzRunner {
 public:
  explicit FuzzRunner(FuzzOptions opt) : opt_(std::move(opt)) {}

  [[nodiscard]] const FuzzOptions& options() const noexcept { return opt_; }

  // The deterministic generator: plan i under seed S is the same on every
  // run and platform.
  [[nodiscard]] FuzzPlan plan_for(std::uint64_t index) const;

  // Executes one plan differentially (engine under test vs the app's
  // baseline) and renders the verdict. Deterministic in the plan.
  [[nodiscard]] FuzzResult execute(const FuzzPlan& plan) const;

  // Greedy shrink: repeatedly applies reductions (halve dataset, zero fault
  // classes, one worker, default skew) keeping only those that preserve the
  // failure's verdict. Returns the execution of the minimal failing plan.
  [[nodiscard]] FuzzResult shrink(const FuzzResult& failing) const;

  struct Summary {
    std::uint64_t executed = 0;
    std::uint64_t agreed = 0;
    std::uint64_t declined = 0;   // typed declines (acceptable)
    std::vector<FuzzResult> failures;  // shrunk when options().shrink
    bool hit_time_budget = false;
  };

  // The main loop: plans [0, runs) under the seed, stopping early only at
  // the optional time budget. Failures are shrunk before being recorded.
  [[nodiscard]] Summary run() const;

 private:
  FuzzOptions opt_;
};

}  // namespace sepo::apps
