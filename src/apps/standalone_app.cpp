// Framework execution paths shared by the standalone apps.
#include "apps/standalone_app.hpp"

#include <algorithm>
#include <new>
#include <optional>
#include <stdexcept>

#include "baselines/cpu_hash_table.hpp"
#include "baselines/pinned_hash_table.hpp"
#include "bigkernel/pipeline.hpp"
#include "common/hashing.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "core/sepo_driver.hpp"
#include "gpusim/device.hpp"
#include "mapreduce/sepo_emitter.hpp"

namespace sepo::apps {

namespace {

// Largest raw byte span of any `records_per_chunk`-record chunk.
std::size_t max_chunk_span(const RecordIndex& idx, std::size_t per_chunk) {
  std::size_t max_span = 1;
  for (std::size_t lo = 0; lo < idx.size(); lo += per_chunk) {
    const std::size_t hi = std::min(lo + per_chunk, idx.size());
    const std::size_t span =
        idx.offsets[hi - 1] + idx.lengths[hi - 1] - idx.offsets[lo];
    max_span = std::max(max_span, span);
  }
  return max_span;
}

}  // namespace

// Picks a records-per-chunk so chunks approach cfg.target_chunk_bytes (few
// bulky PCIe transactions, few kernel launches) while the staging ring stays
// ≤ 1/4 of device capacity.
void choose_chunking(const RecordIndex& idx, const GpuConfig& cfg,
                     bigkernel::PipelineConfig& pcfg) {
  pcfg.num_staging_buffers = cfg.num_staging_buffers;
  const std::size_t target = std::min(
      cfg.target_chunk_bytes, cfg.device_bytes / (4 * cfg.num_staging_buffers));
  std::size_t total_bytes = 1;
  if (!idx.offsets.empty())
    total_bytes = idx.offsets.back() + idx.lengths.back() - idx.offsets[0];
  const std::size_t avg_record =
      std::max<std::size_t>(1, total_bytes / std::max<std::size_t>(1, idx.size()));
  pcfg.records_per_chunk =
      std::max<std::size_t>(16, target / avg_record);
  while (true) {
    pcfg.max_chunk_bytes = max_chunk_span(idx, pcfg.records_per_chunk);
    if (pcfg.max_chunk_bytes * pcfg.num_staging_buffers <=
            cfg.device_bytes / 2 ||
        pcfg.records_per_chunk <= 16)
      return;
    pcfg.records_per_chunk /= 2;
  }
}

namespace {

// Emitter into the CPU baseline table (never postpones).
class CpuEmitter final : public mapreduce::Emitter {
 public:
  CpuEmitter(baselines::CpuHashTable& t, std::uint32_t tid) noexcept
      : t_(t), tid_(tid) {}
  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    t_.insert(tid_, key, value);
    return core::Status::kSuccess;
  }

 private:
  baselines::CpuHashTable& t_;
  std::uint32_t tid_;
};

// Emitter into the pinned-memory table (never postpones).
class PinnedEmitter final : public mapreduce::Emitter {
 public:
  explicit PinnedEmitter(baselines::PinnedHashTable& t) noexcept : t_(t) {}
  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    t_.insert(key, value);
    return core::Status::kSuccess;
  }

 private:
  baselines::PinnedHashTable& t_;
};

}  // namespace

RunResult StandaloneApp::run_gpu(std::string_view input,
                                 const GpuConfig& cfg) const {
  SimRun sim(cfg);
  gpusim::Device& dev = sim.dev;
  gpusim::RunStats& stats = sim.stats;
  gpusim::ExecContext& ctx = sim.ctx;

  const RecordIndex index = index_lines(input);
  bigkernel::PipelineConfig pcfg;
  choose_chunking(index, cfg, pcfg);
  bigkernel::InputPipeline pipe(ctx, pcfg);

  core::HashTableConfig tcfg;
  tcfg.org = organization();
  tcfg.num_buckets = cfg.num_buckets;
  tcfg.buckets_per_group = cfg.buckets_per_group;
  tcfg.page_size = cfg.page_size;
  tcfg.combiner = combiner();
  tcfg.combiner_assoc_comm = combiner_assoc_comm();
  tcfg.batch_insert_capacity = cfg.batch_insert;
  tcfg.heap_bytes = cfg.heap_bytes;

  // The table is constructed inside the try: its static structures can
  // already exceed the device (typed DeviceOutOfMemory), so construction
  // failures must surface as a RunError like any other structural failure —
  // not escape as a raw exception.
  std::optional<core::SepoHashTable> ht;
  const auto fail = [&](const std::exception& e) {
    RunResult r;
    r.impl = "sepo-gpu";
    r.stats = stats.snapshot();
    r.pcie = dev.bus().snapshot();
    r.heap_bytes = ht ? ht->page_pool().heap_bytes() : 0;
    r.error = run_error_from(e);
    fill_gpu_times(r, ctx, dev.bus());
    r.wall_seconds = sim.timer.seconds();
    return r;
  };

  ProgressTracker progress(index.size(), /*multi_emit=*/true);
  core::SepoDriver driver({.basic_halt_frac = cfg.basic_halt_frac});
  const bool divergent = divergent_parse();
  core::DriverResult dres;
  try {
    ht.emplace(ctx, tcfg);
    dres = driver.run(
        *ht, pipe, input, index, progress,
        [&](std::size_t rec, std::string_view body) {
          if (divergent) stats.add_divergent_units(body.size());
          mapreduce::SepoEmitter em(*ht, progress, rec);
          map_record(body, em);
          return em.failed() ? core::Status::kPostpone : core::Status::kSuccess;
        });
  } catch (const gpusim::FaultError& e) {
    // Transient-fault retry exhaustion is the one adversity SEPO cannot
    // absorb by postponing; surface it structurally.
    return fail(e);
  } catch (const std::bad_alloc& e) {
    return fail(e);
  } catch (const std::runtime_error& e) {
    // Driver stall (iteration cap / zero progress) — typed kNoProgress.
    return fail(e);
  }

  const auto table_stats = ht->table_stats();
  const auto load = ht->bucket_load();
  const core::HostTable table = ht->finalize();

  RunResult r;
  r.impl = "sepo-gpu";
  r.stats = stats.snapshot();
  r.pcie = dev.bus().snapshot();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = 0};
  r.iterations = dres.iterations;
  r.table_bytes = table_stats.table_bytes;
  r.heap_bytes = ht->page_pool().heap_bytes();
  r.keys = table.entry_count();
  r.checksum = organization() == core::Organization::kMultiValued
                   ? digest_groups(table)
                   : digest_kv(table);
  r.iteration_profiles = dres.profiles;
  r.timeseries = dres.timeseries;
  r.bucket_histogram = table.occupancy_histogram();
  r.combine_buffer = ht->combine_buffer_totals();
  fill_gpu_times(r, ctx, dev.bus());
  r.wall_seconds = sim.timer.seconds();
  return r;
}

RunResult StandaloneApp::run_cpu(std::string_view input,
                                 const CpuConfig& cfg) const {
  WallTimer timer;
  gpusim::ThreadPool pool(cfg.pool_workers);
  gpusim::RunStats stats;

  baselines::CpuHashTableConfig tcfg;
  tcfg.org = organization();
  tcfg.num_buckets = cfg.num_buckets;
  tcfg.combiner = combiner();
  baselines::CpuHashTable table(stats, tcfg);

  const RecordIndex index = index_lines(input);
  const std::size_t n = index.size();
  pool.run_parties(cfg.num_threads, [&](std::size_t party) {
    const std::size_t lo = n * party / cfg.num_threads;
    const std::size_t hi = n * (party + 1) / cfg.num_threads;
    CpuEmitter em(table, static_cast<std::uint32_t>(party));
    for (std::size_t rec = lo; rec < hi; ++rec) {
      const std::string_view body = index.record(input.data(), rec);
      stats.add_work_units(body.size());
      map_record(body, em);
      stats.add_records_processed();
    }
  });

  const auto load = table.bucket_load();
  RunResult r;
  r.impl = "cpu";
  r.stats = stats.snapshot();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = 0};
  r.iterations = 1;
  r.table_bytes = table.allocated_bytes();
  r.keys = table.entry_count();
  r.checksum = organization() == core::Organization::kMultiValued
                   ? digest_groups(table)
                   : digest_kv(table);
  r.sim_seconds = cpu_sim_seconds(r.stats, r.serial);
  r.sim_seconds_analytic = r.sim_seconds;
  r.wall_seconds = timer.seconds();
  return r;
}

RunResult StandaloneApp::run_pinned(std::string_view input,
                                    const GpuConfig& cfg) const {
  SimRun sim(cfg);
  gpusim::Device& dev = sim.dev;
  gpusim::RunStats& stats = sim.stats;
  gpusim::ExecContext& ctx = sim.ctx;

  const RecordIndex index = index_lines(input);
  bigkernel::PipelineConfig pcfg;
  choose_chunking(index, cfg, pcfg);
  bigkernel::InputPipeline pipe(ctx, pcfg);

  baselines::PinnedHashTableConfig tcfg;
  tcfg.org = organization();
  tcfg.num_buckets = cfg.num_buckets;
  tcfg.combiner = combiner();
  baselines::PinnedHashTable table(ctx, tcfg);

  ProgressTracker progress(index.size());
  const bool divergent = divergent_parse();
  RunResult r;
  r.impl = "pinned";
  try {
    const bigkernel::PassResult pass = pipe.run_pass(
        input, index, progress, [&](std::size_t, std::string_view body) {
          if (divergent) stats.add_divergent_units(body.size());
          PinnedEmitter em(table);
          map_record(body, em);
          return core::Status::kSuccess;
        });
    (void)pass;
  } catch (const gpusim::FaultError& e) {
    // No postponement story: a faulted transfer that exhausts its retries
    // fails the whole run, structurally.
    r.error = run_error_from(e);
  } catch (const std::bad_alloc& e) {
    r.error = run_error_from(e);
  }

  const auto load = table.bucket_load();
  r.stats = stats.snapshot();
  r.pcie = dev.bus().snapshot();
  r.serial = {.total_lock_ops = load.total_accesses,
              .max_same_lock_ops = load.max_bucket_accesses,
              .serial_atomic_ops = 0};
  r.iterations = 1;
  if (!r.error) {
    r.keys = table.entry_count();
    r.checksum = organization() == core::Organization::kMultiValued
                     ? digest_groups(table)
                     : digest_kv(table);
  }
  fill_gpu_times(r, ctx, dev.bus());
  r.wall_seconds = sim.timer.seconds();
  return r;
}

}  // namespace sepo::apps
