#include "apps/datagen.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/random.hpp"

namespace sepo::apps {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

// Deterministic pseudo-word for a vocabulary id: letters derived from the
// id's hash, length 3..12.
void append_word(std::string& out, std::uint64_t id) {
  std::uint64_t h = id * 0x9e3779b97f4a7c15ULL + 0x1234567;
  h ^= h >> 31;
  const std::size_t len = 3 + (h % 10);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + (h % 26)));
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}

// URL path for a link id; hot ids (small) get short paths, the tail gets
// longer ones, spanning the variable-length range the hash table must cope
// with.
void append_url(std::string& out, std::uint64_t id) {
  out += "http://";
  append_word(out, id % 97);
  out += ".example.com/";
  std::uint64_t h = id;
  const std::size_t segments = 1 + (id % 4);
  for (std::size_t s = 0; s < segments; ++s) {
    append_word(out, h = h * 31 + 7);
    out.push_back(s + 1 < segments ? '/' : '\0');
    if (out.back() == '\0') out.pop_back();
  }
  if (id % 5 == 0) {
    out += "?id=";
    append_u64(out, id);
  }
}

}  // namespace

std::string gen_weblog(DatagenParams p, std::size_t distinct_urls,
                       double zipf_s) {
  Rng rng(p.seed);
  Zipf zipf(distinct_urls, zipf_s);
  std::string out;
  out.reserve(p.target_bytes + 256);
  while (out.size() < p.target_bytes) {
    // 203.0.113.7 - - [11/Mar/2017:10:05:03] "GET <url> HTTP/1.1" 200 5120
    append_u64(out, 1 + rng.below(254));
    out.push_back('.');
    append_u64(out, rng.below(256));
    out.push_back('.');
    append_u64(out, rng.below(256));
    out.push_back('.');
    append_u64(out, 1 + rng.below(254));
    out += " - - [11/Mar/2017:";
    append_u64(out, rng.below(24));
    out += ":00:00] \"GET ";
    append_url(out, zipf.sample(rng));
    out += " HTTP/1.1\" 200 ";
    append_u64(out, 100 + rng.below(90000));
    out.push_back('\n');
  }
  return out;
}

std::string gen_text(DatagenParams p, std::size_t vocabulary, double zipf_s) {
  Rng rng(p.seed);
  Zipf zipf(vocabulary, zipf_s);
  std::string out;
  out.reserve(p.target_bytes + 128);
  while (out.size() < p.target_bytes) {
    const std::size_t words = 6 + rng.below(10);
    for (std::size_t w = 0; w < words; ++w) {
      append_word(out, zipf.sample(rng));
      out.push_back(w + 1 < words ? ' ' : '\n');
    }
  }
  return out;
}

std::string gen_html_pages(DatagenParams p, std::size_t distinct_links,
                           std::size_t links_per_page_max) {
  Rng rng(p.seed);
  Zipf zipf(distinct_links, 0.8);
  std::string out;
  out.reserve(p.target_bytes + 1024);
  std::uint64_t page_id = 0;
  while (out.size() < p.target_bytes) {
    out += "/site/";
    append_word(out, page_id % 701);
    out.push_back('/');
    append_word(out, page_id);
    append_u64(out, page_id);
    out += ".html\t<html><body>";
    ++page_id;
    const std::size_t links = 1 + rng.below(links_per_page_max);
    for (std::size_t l = 0; l < links; ++l) {
      out += "<p>";
      append_word(out, rng.below(5000));
      out += " <a href=\"";
      append_url(out, zipf.sample(rng));
      out += "\">";
      append_word(out, rng.below(2000));
      out += "</a></p>";
    }
    out += "</body></html>\n";
  }
  return out;
}

std::string gen_dna_reads(DatagenParams p, std::size_t genome_len,
                          std::size_t read_len) {
  Rng rng(p.seed);
  static constexpr std::array<char, 4> kBases{'A', 'C', 'G', 'T'};
  std::string genome(genome_len, 'A');
  for (auto& c : genome) c = kBases[rng.below(4)];
  std::string out;
  out.reserve(p.target_bytes + read_len + 2);
  while (out.size() < p.target_bytes) {
    const std::size_t pos = rng.below(genome_len - read_len);
    out.append(genome, pos, read_len);
    // Occasional sequencing noise (substitution errors create spurious
    // k-mers, as in real read archives, but must not dominate the k-mer
    // spectrum).
    if (rng.chance(0.05)) {
      const std::size_t back = 1 + rng.below(read_len - 1);
      out[out.size() - back] = kBases[rng.below(4)];
    }
    out.push_back('\n');
  }
  return out;
}

std::string gen_netflix(DatagenParams p, std::size_t movies, std::size_t users,
                        std::size_t max_users_per_movie) {
  Rng rng(p.seed);
  Zipf user_pop(users, 0.6);  // some users rate much more than others
  std::string out;
  out.reserve(p.target_bytes + 512);
  std::uint64_t movie = 0;
  while (out.size() < p.target_bytes) {
    out.push_back('m');
    append_u64(out, movie % movies);
    out.push_back(':');
    ++movie;
    const std::size_t raters = 2 + rng.below(max_users_per_movie - 1);
    for (std::size_t r = 0; r < raters; ++r) {
      out += " u";
      append_u64(out, user_pop.sample(rng));
      out.push_back(',');
      append_u64(out, 1 + rng.below(5));
    }
    out.push_back('\n');
  }
  return out;
}

std::string gen_patents(DatagenParams p, std::size_t patents, double zipf_s) {
  Rng rng(p.seed);
  Zipf cited_pop(patents, zipf_s);
  std::string out;
  out.reserve(p.target_bytes + 64);
  std::uint64_t citing = patents;
  while (out.size() < p.target_bytes) {
    out.push_back('C');
    append_u64(out, citing);
    if (rng.chance(0.25)) ++citing;  // a patent cites several others
    out.push_back(' ');
    out.push_back('P');
    append_u64(out, cited_pop.sample(rng));
    out.push_back('\n');
  }
  return out;
}

std::string gen_geo_articles(DatagenParams p, std::size_t cells,
                             double zipf_s) {
  Rng rng(p.seed);
  Zipf cell_pop(cells, zipf_s);
  std::string out;
  out.reserve(p.target_bytes + 128);
  std::uint64_t article = 0;
  while (out.size() < p.target_bytes) {
    out += "article-";
    append_u64(out, article++);
    out.push_back('\t');
    const std::uint64_t cell = cell_pop.sample(rng);
    // "48.85N,2.35E/region-<k>" style cell string
    append_u64(out, cell % 180);
    out.push_back('.');
    append_u64(out, cell % 100);
    out += "N,";
    append_u64(out, (cell / 180) % 360);
    out.push_back('.');
    append_u64(out, (cell * 7) % 100);
    out += "E/region-";
    append_word(out, cell);
    out.push_back('\n');
  }
  return out;
}

std::size_t table1_bytes(const char* app, int dataset) {
  if (dataset < 1 || dataset > 4) throw std::invalid_argument("dataset 1..4");
  const auto mb = [](double v) {
    return static_cast<std::size_t>(v * 1024.0 * 1024.0);
  };
  struct Row {
    const char* name;
    double sizes[4];
  };
  // Paper Table I, GB -> MB (1:1000 scaling).
  static constexpr Row kRows[] = {
      {"ii", {2.0, 3.0, 4.0, 5.0}},
      {"pvc", {0.6, 2.2, 3.8, 5.8}},
      {"dna", {2.0, 4.0, 6.0, 8.0}},
      {"netflix", {1.6, 3.2, 4.8, 6.4}},
      {"wc", {0.2, 2.0, 3.0, 4.0}},
      {"pc", {0.2, 2.0, 3.4, 4.8}},
      {"geo", {0.2, 1.8, 3.2, 5.0}},
  };
  for (const Row& r : kRows)
    if (std::strcmp(r.name, app) == 0) return mb(r.sizes[dataset - 1]);
  throw std::invalid_argument("unknown app name");
}

}  // namespace sepo::apps
