// Post-mortem serialization of the flight recorder (DESIGN.md §5b).
//
// The hot-path ring buffers live in gpusim (gpusim/journal.hpp) because the
// allocator and the execution context sit below obs in the link graph; this
// header owns everything that happens *after* a drain: the JSONL dump the
// CLI writes on RunError, and the parse helpers `sepo_cli report` uses to
// read one back.
//
// Dump format: one JSON object per line ("JSON Lines"), already merge-sorted
// by (sim_ts, seq, worker):
//   {"ts": 0.00123, "seq": 7, "worker": 2, "kind": "page_acquire",
//    "arg0": 41, "arg1": 12}
// A JSONL journal streams into line-oriented tools (grep, jq -c, tail) even
// when the run died mid-write, which is the whole point of a black box.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpusim/journal.hpp"
#include "obs/json.hpp"

namespace sepo::obs {

[[nodiscard]] Json to_json(const gpusim::JournalEvent& e);

// Inverse of gpusim::journal_kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<gpusim::JournalEventKind> journal_kind_from_name(
    std::string_view name) noexcept;

// One parsed JSONL line; nullopt when the line is not a well-formed event.
[[nodiscard]] std::optional<gpusim::JournalEvent> journal_event_from_json(
    const Json& j);

// Drains `journal` and writes the newest `max_events` events as JSONL.
// Returns false (and sets *error) on I/O failure.
bool write_journal_jsonl(const gpusim::EventJournal& journal,
                         const std::string& path,
                         std::size_t max_events = 4096,
                         std::string* error = nullptr);

// Same, for events already drained (e.g. carried inside a fuzz repro).
bool write_journal_jsonl(const std::vector<gpusim::JournalEvent>& events,
                         const std::string& path,
                         std::size_t max_events = 4096,
                         std::string* error = nullptr);

// Reads a JSONL journal dump back; returns nullopt (and sets *error) when
// the file cannot be opened or any line fails to parse as an event.
[[nodiscard]] std::optional<std::vector<gpusim::JournalEvent>>
read_journal_jsonl(const std::string& path, std::string* error = nullptr);

}  // namespace sepo::obs
