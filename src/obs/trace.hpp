// Chrome trace_event recorder on the *simulated* clock (DESIGN.md
// "Telemetry & tracing").
//
// The simulator derives time from event counts, so traces are priced, not
// measured: each device event reported through gpusim::TraceHook (kernel
// counter delta, bus transfer) is converted to a duration with the same
// MachineDesc / PcieParams arithmetic the cost model uses, and laid onto
// per-resource timelines mirroring the §IV/§V serialization rules —
//
//   * kernel compute     one track; kernel k waits for the h2d of its chunk
//                        (BigKernel dependency) and for any flush in flight,
//   * pcie h2d           overlaps compute (the pipeline's double-buffering),
//   * pcie d2h           heap flushes halt computation (paper §IV-C), so a
//                        d2h span pushes the compute cursor forward,
//   * heap flush         one span per SepoHashTable flush, grouping its d2h
//                        page copies,
//   * remote access      pinned-baseline accesses, serial with compute,
//   * sepo iteration     one span per driver iteration (from the hook's
//                        iteration markers).
//
// The resulting file loads in Perfetto / about://tracing. Span totals track
// the analytic model closely but the headline number remains the cost
// model's sim_seconds: the trace exists to make overlap/serialization
// *structure* inspectable, not to re-derive the scalar.
//
// Recording never mutates counters, so simulated results are bit-identical
// with or without a recorder attached.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/pcie.hpp"
#include "gpusim/trace_hook.hpp"
#include "obs/json.hpp"

namespace sepo::gpusim {
class RunStats;
}  // namespace sepo::gpusim

namespace sepo::obs {

struct TraceConfig {
  gpusim::MachineDesc machine = gpusim::kGpuDesc;
  gpusim::PcieParams pcie = {};
};

class TraceRecorder final : public gpusim::TraceHook {
 public:
  // Track ids (Chrome "tid"); also the display order in Perfetto.
  enum Track : int {
    kTrackKernel = 1,
    kTrackH2d = 2,
    kTrackD2h = 3,
    kTrackFlush = 4,
    kTrackRemote = 5,
    kTrackIteration = 6,
  };

  struct Span {
    int track = 0;
    std::string name;
    double ts_us = 0;   // simulated start, microseconds
    double dur_us = 0;  // simulated duration, microseconds
    std::uint64_t arg0 = 0, arg1 = 0;  // meaning depends on the track
  };

  explicit TraceRecorder(TraceConfig cfg = {})
      : cfg_(cfg), pricing_(cfg.pcie) {}

  // Convenience: install this recorder on a run's counters and bus.
  void attach(gpusim::RunStats& stats, gpusim::PcieBus& bus) {
    stats.set_trace_hook(this);
    bus.set_trace_hook(this);
  }

  // Labels subsequent spans' iteration markers etc. with a section name
  // (benches tracing several runs into one timeline call this per run; the
  // label is emitted as an instant event).
  void begin_section(const std::string& name);

  // --- gpusim::TraceHook ---
  void on_kernel(const gpusim::StatsSnapshot& delta,
                 std::size_t n_items) override;
  void on_h2d(std::uint64_t bytes) override;
  void on_d2h(std::uint64_t bytes) override;
  void on_remote(std::uint64_t bytes) override;
  void on_flush(std::uint64_t pages, std::uint64_t bytes) override;
  void on_iteration_begin(std::uint32_t iteration) override;
  void on_iteration_end(std::uint32_t iteration) override;

  // --- output ---
  [[nodiscard]] Json trace_json() const;  // {"traceEvents": [...], ...}
  bool write_file(const std::string& path, std::string* error = nullptr) const;

  // Introspection for tests.
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  // Simulated end of the busiest timeline, seconds.
  [[nodiscard]] double timeline_end_seconds() const;

 private:
  void flush_pending_remote_locked();

  TraceConfig cfg_;
  gpusim::PcieBus pricing_;  // used only for its time arithmetic

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<std::pair<double, std::string>> instants_;  // section labels

  // Per-track "free from" cursors, simulated seconds.
  double t_kernel_ = 0, t_h2d_ = 0, t_d2h_ = 0, t_remote_ = 0;
  double last_h2d_end_ = 0;    // BigKernel dependency for the next kernel
  double flush_start_ = -1;    // first d2h of the current flush group
  double iter_start_ = 0;      // set by on_iteration_begin

  // Remote accesses arrive per-word from inside kernels; coalesce them into
  // one span per kernel interval instead of millions of events.
  std::uint64_t pending_remote_bytes_ = 0, pending_remote_txns_ = 0;
};

}  // namespace sepo::obs
