// Chrome trace_event recorder on the *simulated* clock (DESIGN.md
// "Telemetry & tracing").
//
// The simulator derives time from event counts, and since PR 3 the *when*
// comes from the discrete-event timeline (gpusim::Timeline): every command
// the scheduler places — kernel launch, h2d staging copy, d2h flush
// transfer, remote-access batch — arrives here through
// TraceHook::on_timeline_command with its exact simulated begin/end, and is
// emitted verbatim as a span. The recorder no longer re-derives a schedule
// of its own; it renders the one the execution actually followed:
//
//   * kernel compute     one span per kernel command (compute engine),
//   * pcie h2d           staging copies; overlap with compute is whatever
//                        the ring-buffer dependencies admitted,
//   * pcie d2h           heap-flush transfers (halt computation, §IV-C),
//   * heap flush         one span per SepoHashTable flush, grouping its
//                        d2h page transfers,
//   * remote access      pinned-baseline batches, serial with compute,
//   * sepo iteration     one span per driver iteration (stats-hook
//                        markers).
//
// A recorder can outlive many runs (the benches trace a whole sweep into
// one file): each ExecContext's timeline restarts at zero, so on
// on_timeline_attach the recorder folds the previous run's end into a base
// offset, keeping the concatenated trace monotone.
//
// The resulting file loads in Perfetto / about://tracing. Recording never
// mutates counters or the schedule, so simulated results are bit-identical
// with or without a recorder attached.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/pcie.hpp"
#include "gpusim/trace_hook.hpp"
#include "obs/json.hpp"

namespace sepo::gpusim {
class RunStats;
}  // namespace sepo::gpusim

namespace sepo::obs {

struct TraceConfig {
  gpusim::MachineDesc machine = gpusim::kGpuDesc;
  gpusim::PcieParams pcie = {};
};

class TraceRecorder final : public gpusim::TraceHook {
 public:
  // Track ids (Chrome "tid"); also the display order in Perfetto.
  enum Track : int {
    kTrackKernel = 1,
    kTrackH2d = 2,
    kTrackD2h = 3,
    kTrackFlush = 4,
    kTrackRemote = 5,
    kTrackIteration = 6,
  };

  struct Span {
    int track = 0;
    std::string name;
    double ts_us = 0;   // simulated start, microseconds
    double dur_us = 0;  // simulated duration, microseconds
    std::uint64_t arg0 = 0, arg1 = 0;  // meaning depends on the track
  };

  explicit TraceRecorder(TraceConfig cfg = {}) : cfg_(cfg) {}

  // Convenience: install this recorder on a run's counters and bus.
  // (ExecContext::set_trace is the usual entry point; the bus install is
  // kept for compatibility — bus callbacks are no-ops now that resource
  // spans come from timeline commands.)
  void attach(gpusim::RunStats& stats, gpusim::PcieBus& bus) {
    stats.set_trace_hook(this);
    bus.set_trace_hook(this);
  }

  // Labels subsequent spans' iteration markers etc. with a section name
  // (benches tracing several runs into one timeline call this per run; the
  // label is emitted as an instant event).
  void begin_section(const std::string& name);

  // --- gpusim::TraceHook ---
  // Resource spans: exact begin/end from the execution timeline.
  void on_timeline_attach() override;
  void on_timeline_command(const gpusim::TimelineCommand& cmd) override;
  // Legacy per-event callbacks: superseded by timeline commands. Kept as
  // no-ops so a recorder attached to a bare bus (no ExecContext) is inert
  // rather than wrong.
  void on_kernel(const gpusim::StatsSnapshot& delta,
                 std::size_t n_items) override;
  void on_h2d(std::uint64_t bytes) override;
  void on_d2h(std::uint64_t bytes) override;
  void on_remote(std::uint64_t bytes) override;
  // Structural markers, still delivered through the stats hook.
  void on_flush(std::uint64_t pages, std::uint64_t bytes) override;
  void on_iteration_begin(std::uint32_t iteration) override;
  void on_iteration_end(std::uint32_t iteration) override;
  // Occupancy snapshots (SepoDriver sampler): rendered as Chrome counter
  // tracks ("ph":"C") so pool occupancy and staging pressure show as area
  // charts alongside the spans.
  void on_occupancy_sample(const gpusim::OccupancySample& s) override;

  // --- output ---
  [[nodiscard]] Json trace_json() const;  // {"traceEvents": [...], ...}
  bool write_file(const std::string& path, std::string* error = nullptr) const;

  struct CounterSample {
    double ts_us = 0;  // simulated, microseconds, across attached runs
    std::uint32_t pages_used = 0, pages_free = 0, pages_seized = 0;
    std::uint32_t staging_busy = 0;
  };

  // Introspection for tests.
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<CounterSample>& counter_samples()
      const noexcept {
    return counters_;
  }
  // Simulated end of the trace so far, seconds (across attached runs).
  [[nodiscard]] double timeline_end_seconds() const;

 private:
  [[nodiscard]] double now_locked() const noexcept {
    return base_offset_ + run_end_;
  }

  TraceConfig cfg_;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;  // occupancy counter track
  std::vector<std::pair<double, std::string>> instants_;  // section labels

  // Concatenation state: each attached run's timeline starts at zero;
  // base_offset_ is the sum of previous runs' makespans.
  double base_offset_ = 0;
  double run_end_ = 0;  // max command end seen in the current run

  double iter_start_ = 0;       // set by on_iteration_begin
  double flush_group_start_ = -1;  // first d2h command of the current flush
  double flush_group_end_ = 0;
};

}  // namespace sepo::obs
