// Machine-readable metrics export (DESIGN.md "Telemetry & tracing",
// EXPERIMENTS.md "BENCH_*.json").
//
// Serializes the measurement types the harness produces — counter
// snapshots, PCIe meters, serialization inputs, the GPU time breakdown,
// per-iteration SEPO profiles, and whole RunResults — into a stable JSON
// schema, so benches and the CLI can emit reports that are diffable across
// PRs (sepo_cli metrics-diff) instead of only human-readable tables.
//
// Schema sketch (schema_version 5):
//   {
//     "schema_version": 5,
//     "tool": "fig6_speedup",
//     "runs": [
//       { "app": "...", "impl": "sepo-gpu", "sim_seconds": ...,
//         "sim_seconds_analytic": ...,     // legacy gpu_time() cross-check
//         "wall_seconds_host": ..., "iterations": N, "keys": N,
//         "table_bytes": N, "heap_bytes": N, "checksum_hex": "....",
//         "stats": { <one field per RunStats counter> },
//         "pcie": {...}, "serialization": {...}, "gpu_breakdown": {...},
//         "timeline": { "compute_busy": s, "h2d_busy": s, "d2h_busy": s,
//                       "remote_busy": s, "total": s, "commands": N },
//         "faults": { "compute": { "faults": N, "retries": N,
//                                  "backoff_s": s }, "h2d": {...},
//                     "d2h": {...}, "remote": {...},
//                     "total_faults": N, "total_backoff_s": s },
//         "error": { "kind": "...", "message": "..." },   // only on failure
//         "iteration_profiles": [ {...}, ... ],
//         "timeseries": [ { "sim_ts": s, "iteration": N,
//                           "pages_total": N, "pages_free": N,
//                           "pages_seized": N, "resident_entry_bytes": N,
//                           "staging_slots": N, "staging_busy": N,
//                           "engines": { "compute": { "end": s, "busy": s },
//                                        "h2d": {...}, "d2h": {...},
//                                        "remote": {...} } }, ... ],
//         "bucket_histogram": [N, ...],
//         "combine_buffer": { "enabled": bool, "scratch_hits": N,
//                             "precombined_records": N,
//                             "lock_acquires_saved": N, "drain_flushes": N,
//                             "drained_records": N, "requeued_records": N },
//         ...caller extras... }
//     ],
//     "tables": { "<name>": [ {<header>: <cell>, ...}, ... ] }
//   }
//
// Schema history:
//   v5  batched inserts: adds the "combine_buffer" object — lifetime totals
//       of the per-worker combining-buffer pipeline (DESIGN.md §5d). These
//       are *wall-clock-side* counters: the simulated "stats" counters stay
//       bit-identical between scalar and batched runs, so v4 files remain
//       diffable with a warning ("combine_buffer" is simply absent there;
//       enabled=false runs write it with all-zero totals).
//   v4  flight recorder: adds the "timeseries" array — one occupancy sample
//       per SEPO iteration boundary (gpusim::OccupancySample: page pool
//       used/free/seized, staging-ring slot states, per-engine clock/busy),
//       always collected on SEPO paths, empty on baselines without the
//       iteration protocol. v3 files stay diffable: metrics-diff compares
//       the shared fields across {v3, v4} with a warning.
//   v3  fault injection: adds per-engine fault/retry counters and backoff
//       seconds (the "faults" object), the optional "error" object for runs
//       that failed structurally (typed RunError), and the fault counters
//       appended to SEPO_STATS_FIELDS inside "stats".
//   v2  discrete-event timeline: adds "sim_seconds_analytic" and the
//       "timeline" object (per-resource busy seconds, makespan "total"
//       equal to the scheduled end of the last command, and the scheduled
//       command count). GPU runs' "sim_seconds" is now the timeline
//       makespan plus the serialization term; "gpu_breakdown" keeps the
//       analytic decomposition.
//   v1  initial schema.
//
// Counter fields are generated from SEPO_STATS_FIELDS, so the serializer
// cannot drift from the counter set.
#pragma once

#include <string>

#include "apps/harness.hpp"
#include "common/table_printer.hpp"
#include "core/iteration_profile.hpp"
#include "obs/json.hpp"

namespace sepo::obs {

inline constexpr int kMetricsSchemaVersion = 5;

// Schema of BENCH_host.json, the *wall-clock* benchmark file written by
// bench/host_perf (distinct from the simulated-time metrics schema above):
//   { schema_version, tool: "host_perf", workers, tiny,
//     benches: [ { name, items, reps, wall_seconds, ops_per_sec } ] }
// Validated by `sepo_cli bench-check`, compared by `sepo_cli bench-diff`.
inline constexpr int kBenchSchemaVersion = 1;

// Relative-epsilon float equality for cross-platform metrics comparison.
// Two v4 files produced from the same run on different platforms can differ
// in the last couple of double bits (libm, FMA contraction, summation
// order); treating those as drift makes `metrics-diff` cry wolf. Values
// within `rel_eps` of the larger magnitude compare equal; exact equality
// (including both zero) always does.
[[nodiscard]] bool nearly_equal(double a, double b,
                                double rel_eps = 1e-9) noexcept;

[[nodiscard]] Json to_json(const gpusim::StatsSnapshot& s);
[[nodiscard]] Json to_json(const gpusim::PcieSnapshot& p);
[[nodiscard]] Json to_json(const gpusim::SerializationInputs& s);
[[nodiscard]] Json to_json(const gpusim::GpuTimeBreakdown& b);
[[nodiscard]] Json to_json(const gpusim::TimelineSummary& t);
[[nodiscard]] Json to_json(const gpusim::FaultSummary& f);
[[nodiscard]] Json to_json(const core::IterationProfile& p);
[[nodiscard]] Json to_json(const gpusim::OccupancySample& s);
[[nodiscard]] Json to_json(const apps::RunResult& r);

// Rows of a TablePrinter as an array of {header: cell} objects — the CSV/
// JSON passthrough that keeps printed bench tables and metrics files from
// diverging.
[[nodiscard]] Json table_to_json(const TablePrinter& t);

// Accumulates runs (and optional rendered tables) and writes one metrics
// file. `extra` lets callers attach context (dataset, input_bytes, ...) to
// a run; extras merge into the run object after the standard fields.
class MetricsReport {
 public:
  explicit MetricsReport(std::string tool) : tool_(std::move(tool)) {}

  void add_run(std::string_view app, const apps::RunResult& r,
               Json extra = Json());
  void add_table(std::string name, const TablePrinter& t);
  void set_field(std::string key, Json value);  // top-level extras

  [[nodiscard]] std::size_t run_count() const noexcept {
    return runs_.size();
  }
  [[nodiscard]] Json to_json() const;
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  std::string tool_;
  Json::Array runs_;
  Json tables_ = Json::object();
  Json extras_ = Json::object();
};

// Output destinations from argv + environment. Recognized and *removed*
// from argv (so existing option parsers never see them):
//   --metrics-out=FILE | --metrics-out FILE   (else $SEPO_METRICS_OUT)
//   --trace-out=FILE   | --trace-out FILE     (else $SEPO_TRACE_OUT)
//   --journal-out=FILE | --journal-out FILE   (else $SEPO_JOURNAL_OUT)
// An empty path means disabled.
struct OutputOptions {
  std::string metrics_path;
  std::string trace_path;
  std::string journal_path;

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return !metrics_path.empty();
  }
  [[nodiscard]] bool trace_enabled() const noexcept {
    return !trace_path.empty();
  }
  [[nodiscard]] bool journal_enabled() const noexcept {
    return !journal_path.empty();
  }

  static OutputOptions from_args(int& argc, char** argv);
};

}  // namespace sepo::obs
