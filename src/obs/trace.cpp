#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "gpusim/counters.hpp"
#include "gpusim/journal.hpp"

namespace sepo::obs {

namespace {
constexpr double kUs = 1e6;
}  // namespace

void TraceRecorder::begin_section(const std::string& name) {
  std::lock_guard lock(mu_);
  instants_.emplace_back(now_locked() * kUs, name);
}

void TraceRecorder::on_timeline_attach() {
  std::lock_guard lock(mu_);
  // The new run's timeline starts at zero: fold the finished run's makespan
  // into the base offset so the concatenated trace stays monotone.
  base_offset_ += run_end_;
  run_end_ = 0;
  flush_group_start_ = -1;
}

void TraceRecorder::on_timeline_command(const gpusim::TimelineCommand& cmd) {
  std::lock_guard lock(mu_);
  const double start = base_offset_ + cmd.start;
  const double end = base_offset_ + cmd.end;
  run_end_ = std::max(run_end_, cmd.end);
  int track = 0;
  const char* name = "";
  switch (cmd.kind) {
    case gpusim::TimelineCommandKind::kKernel:
      track = kTrackKernel;
      name = "kernel";
      break;
    case gpusim::TimelineCommandKind::kH2dCopy:
      track = kTrackH2d;
      name = "h2d copy";
      break;
    case gpusim::TimelineCommandKind::kD2hFlush:
      track = kTrackD2h;
      name = "d2h copy";
      if (flush_group_start_ < 0) flush_group_start_ = start;
      flush_group_end_ = end;
      break;
    case gpusim::TimelineCommandKind::kRemoteAccess:
      track = kTrackRemote;
      name = "remote access";
      break;
    case gpusim::TimelineCommandKind::kRetryBackoff:
    case gpusim::TimelineCommandKind::kAbortedLaunch: {
      // Fault-injection overhead: render on the affected engine's own track
      // so the retry sits visibly between the failed attempt and the retry.
      switch (cmd.resource) {
        case gpusim::TimelineResource::kCompute: track = kTrackKernel; break;
        case gpusim::TimelineResource::kCopyH2d: track = kTrackH2d; break;
        case gpusim::TimelineResource::kCopyD2h: track = kTrackD2h; break;
        case gpusim::TimelineResource::kRemote: track = kTrackRemote; break;
      }
      name = cmd.kind == gpusim::TimelineCommandKind::kAbortedLaunch
                 ? "aborted launch"
                 : "retry backoff";
      break;
    }
  }
  spans_.push_back(
      {track, name, start * kUs, (end - start) * kUs, cmd.arg0, cmd.arg1});
}

// Resource spans come from timeline commands now; the per-event callbacks
// stay as no-ops for hooks installed on a bare bus / stats pair.
void TraceRecorder::on_kernel(const gpusim::StatsSnapshot&, std::size_t) {}
void TraceRecorder::on_h2d(std::uint64_t) {}
void TraceRecorder::on_d2h(std::uint64_t) {}
void TraceRecorder::on_remote(std::uint64_t) {}

void TraceRecorder::on_flush(std::uint64_t pages, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  // Group the flush's d2h page transfers (already emitted as kTrackD2h
  // spans) under one flush span.
  const double start =
      flush_group_start_ >= 0 ? flush_group_start_ : now_locked();
  const double end = flush_group_start_ >= 0 ? flush_group_end_ : start;
  spans_.push_back({kTrackFlush, "heap flush", start * kUs,
                    (end - start) * kUs, pages, bytes});
  flush_group_start_ = -1;
}

void TraceRecorder::on_iteration_begin(std::uint32_t) {
  std::lock_guard lock(mu_);
  iter_start_ = now_locked();
}

void TraceRecorder::on_iteration_end(std::uint32_t iteration) {
  std::lock_guard lock(mu_);
  const double end = now_locked();
  spans_.push_back({kTrackIteration,
                    "iteration " + std::to_string(iteration),
                    iter_start_ * kUs, (end - iter_start_) * kUs, iteration,
                    0});
  iter_start_ = end;
}

void TraceRecorder::on_occupancy_sample(const gpusim::OccupancySample& s) {
  std::lock_guard lock(mu_);
  counters_.push_back({(base_offset_ + s.sim_ts) * kUs,
                       s.pages_total - s.pages_free - s.pages_seized,
                       s.pages_free, s.pages_seized, s.staging_busy});
}

double TraceRecorder::timeline_end_seconds() const {
  std::lock_guard lock(mu_);
  return now_locked();
}

Json TraceRecorder::trace_json() const {
  std::lock_guard lock(mu_);
  Json events = Json::array();

  auto meta = [&events](const char* what, int tid, const std::string& name) {
    Json args = Json::object();
    args.set("name", name);
    Json e = Json::object();
    e.set("ph", "M").set("pid", 1).set("tid", tid).set("name", what);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };
  meta("process_name", 0, "sepo virtual device (simulated time)");
  meta("thread_name", kTrackKernel, "kernel compute");
  meta("thread_name", kTrackH2d, "pcie h2d (input staging)");
  meta("thread_name", kTrackD2h, "pcie d2h (page copies)");
  meta("thread_name", kTrackFlush, "heap flush");
  meta("thread_name", kTrackRemote, "remote access (pinned)");
  meta("thread_name", kTrackIteration, "sepo iteration");

  for (const auto& [ts, name] : instants_) {
    Json e = Json::object();
    e.set("ph", "i").set("pid", 1).set("tid", kTrackIteration);
    e.set("name", name).set("ts", ts).set("s", "g");
    events.push_back(std::move(e));
  }

  for (const Span& s : spans_) {
    Json args = Json::object();
    switch (s.track) {
      case kTrackKernel:
        args.set("items", s.arg0).set("work_units", s.arg1);
        break;
      case kTrackH2d:
      case kTrackD2h:
        args.set("bytes", s.arg0);
        break;
      case kTrackFlush:
        args.set("pages", s.arg0).set("bytes", s.arg1);
        break;
      case kTrackRemote:
        args.set("bytes", s.arg0).set("txns", s.arg1);
        break;
      case kTrackIteration:
        args.set("iteration", s.arg0);
        break;
      default: break;
    }
    Json e = Json::object();
    e.set("ph", "X").set("pid", 1).set("tid", s.track).set("name", s.name);
    e.set("ts", s.ts_us).set("dur", s.dur_us).set("args", std::move(args));
    events.push_back(std::move(e));
  }

  // Occupancy counter tracks ("ph":"C"): Perfetto stacks each args key into
  // an area chart, so used/free/seized render as the pool's composition.
  for (const CounterSample& c : counters_) {
    Json pages = Json::object();
    pages.set("used", c.pages_used).set("free", c.pages_free);
    pages.set("seized", c.pages_seized);
    Json e = Json::object();
    e.set("ph", "C").set("pid", 1).set("name", "heap pages").set("ts", c.ts_us);
    e.set("args", std::move(pages));
    events.push_back(std::move(e));

    Json staging = Json::object();
    staging.set("busy", c.staging_busy);
    Json e2 = Json::object();
    e2.set("ph", "C").set("pid", 1).set("name", "staging in flight");
    e2.set("ts", c.ts_us).set("args", std::move(staging));
    events.push_back(std::move(e2));
  }

  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  root.set("otherData",
           Json::object().set(
               "clock", "simulated (DESIGN.md §5 discrete-event timeline)"));
  return root;
}

bool TraceRecorder::write_file(const std::string& path,
                               std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  trace_json().write(out, 1);
  out << '\n';
  if (!out.good()) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace sepo::obs
