#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "gpusim/counters.hpp"

namespace sepo::obs {

namespace {
constexpr double kUs = 1e6;
}  // namespace

void TraceRecorder::begin_section(const std::string& name) {
  std::lock_guard lock(mu_);
  flush_pending_remote_locked();
  const double now = std::max({t_kernel_, t_h2d_, t_d2h_, t_remote_});
  instants_.emplace_back(now * kUs, name);
}

void TraceRecorder::on_kernel(const gpusim::StatsSnapshot& delta,
                              std::size_t n_items) {
  std::lock_guard lock(mu_);
  // A kernel cannot start before its input chunk finished staging, nor while
  // a heap flush halts computation (t_kernel_ was pushed by on_d2h).
  const double start = std::max(t_kernel_, last_h2d_end_);
  const double dur = gpusim::compute_time(cfg_.machine, delta);
  t_kernel_ = start + dur;
  spans_.push_back({kTrackKernel, "kernel", start * kUs, dur * kUs,
                    static_cast<std::uint64_t>(n_items), delta.work_units});
  flush_pending_remote_locked();
}

void TraceRecorder::on_h2d(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  // Staging overlaps compute but queues behind other bus work of the same
  // direction and behind an in-flight flush.
  const double start = std::max(t_h2d_, t_d2h_);
  const double dur = pricing_.bulk_time(bytes, 1);
  t_h2d_ = start + dur;
  last_h2d_end_ = t_h2d_;
  spans_.push_back({kTrackH2d, "h2d copy", start * kUs, dur * kUs, bytes, 0});
}

void TraceRecorder::on_d2h(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  // Heap flushes halt computation (paper §IV-C): the copy waits for the
  // compute track, and the compute track waits for the copy.
  const double start = std::max(t_d2h_, t_kernel_);
  const double dur = pricing_.bulk_time(bytes, 1);
  t_d2h_ = start + dur;
  t_kernel_ = std::max(t_kernel_, t_d2h_);
  if (flush_start_ < 0) flush_start_ = start;
  spans_.push_back({kTrackD2h, "d2h copy", start * kUs, dur * kUs, bytes, 0});
}

void TraceRecorder::on_remote(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  pending_remote_bytes_ += bytes;
  ++pending_remote_txns_;
}

void TraceRecorder::flush_pending_remote_locked() {
  if (pending_remote_txns_ == 0) return;
  // Remote accesses serialize with the issuing warps: the aggregate span
  // starts after the kernel interval that produced it and pushes compute.
  const double start = std::max(t_remote_, t_kernel_);
  const double dur =
      pricing_.remote_time(pending_remote_bytes_, pending_remote_txns_);
  t_remote_ = start + dur;
  t_kernel_ = std::max(t_kernel_, t_remote_);
  spans_.push_back({kTrackRemote, "remote access", start * kUs, dur * kUs,
                    pending_remote_bytes_, pending_remote_txns_});
  pending_remote_bytes_ = pending_remote_txns_ = 0;
}

void TraceRecorder::on_flush(std::uint64_t pages, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  const double start = flush_start_ >= 0 ? flush_start_ : t_d2h_;
  spans_.push_back({kTrackFlush, "heap flush", start * kUs,
                    (t_d2h_ - start) * kUs, pages, bytes});
  flush_start_ = -1;
}

void TraceRecorder::on_iteration_begin(std::uint32_t) {
  std::lock_guard lock(mu_);
  flush_pending_remote_locked();
  iter_start_ = std::max({t_kernel_, t_h2d_, t_d2h_, t_remote_});
}

void TraceRecorder::on_iteration_end(std::uint32_t iteration) {
  std::lock_guard lock(mu_);
  flush_pending_remote_locked();
  const double end = std::max({t_kernel_, t_h2d_, t_d2h_, t_remote_});
  spans_.push_back({kTrackIteration,
                    "iteration " + std::to_string(iteration),
                    iter_start_ * kUs, (end - iter_start_) * kUs, iteration,
                    0});
  iter_start_ = end;
}

double TraceRecorder::timeline_end_seconds() const {
  std::lock_guard lock(mu_);
  return std::max({t_kernel_, t_h2d_, t_d2h_, t_remote_});
}

Json TraceRecorder::trace_json() const {
  std::lock_guard lock(mu_);
  Json events = Json::array();

  auto meta = [&events](const char* what, int tid, const std::string& name) {
    Json args = Json::object();
    args.set("name", name);
    Json e = Json::object();
    e.set("ph", "M").set("pid", 1).set("tid", tid).set("name", what);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };
  meta("process_name", 0, "sepo virtual device (simulated time)");
  meta("thread_name", kTrackKernel, "kernel compute");
  meta("thread_name", kTrackH2d, "pcie h2d (input staging)");
  meta("thread_name", kTrackD2h, "pcie d2h (page copies)");
  meta("thread_name", kTrackFlush, "heap flush");
  meta("thread_name", kTrackRemote, "remote access (pinned)");
  meta("thread_name", kTrackIteration, "sepo iteration");

  for (const auto& [ts, name] : instants_) {
    Json e = Json::object();
    e.set("ph", "i").set("pid", 1).set("tid", kTrackIteration);
    e.set("name", name).set("ts", ts).set("s", "g");
    events.push_back(std::move(e));
  }

  for (const Span& s : spans_) {
    Json args = Json::object();
    switch (s.track) {
      case kTrackKernel:
        args.set("items", s.arg0).set("work_units", s.arg1);
        break;
      case kTrackH2d:
      case kTrackD2h:
        args.set("bytes", s.arg0);
        break;
      case kTrackFlush:
        args.set("pages", s.arg0).set("bytes", s.arg1);
        break;
      case kTrackRemote:
        args.set("bytes", s.arg0).set("txns", s.arg1);
        break;
      case kTrackIteration:
        args.set("iteration", s.arg0);
        break;
      default: break;
    }
    Json e = Json::object();
    e.set("ph", "X").set("pid", 1).set("tid", s.track).set("name", s.name);
    e.set("ts", s.ts_us).set("dur", s.dur_us).set("args", std::move(args));
    events.push_back(std::move(e));
  }

  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  root.set("otherData",
           Json::object().set("clock", "simulated (DESIGN.md §5 cost model)"));
  return root;
}

bool TraceRecorder::write_file(const std::string& path,
                               std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  trace_json().write(out, 1);
  out << '\n';
  if (!out.good()) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace sepo::obs
