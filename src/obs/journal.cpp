#include "obs/journal.hpp"

#include <fstream>

namespace sepo::obs {

Json to_json(const gpusim::JournalEvent& e) {
  Json j = Json::object();
  j.set("ts", e.sim_ts);
  j.set("seq", e.seq);
  j.set("worker", e.worker);
  j.set("kind", gpusim::journal_kind_name(e.kind));
  j.set("arg0", e.arg0);
  j.set("arg1", e.arg1);
  return j;
}

std::optional<gpusim::JournalEventKind> journal_kind_from_name(
    std::string_view name) noexcept {
  for (int k = 0; k < gpusim::kNumJournalEventKinds; ++k) {
    const auto kind = static_cast<gpusim::JournalEventKind>(k);
    if (name == gpusim::journal_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<gpusim::JournalEvent> journal_event_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  const Json* ts = j.find("ts");
  const Json* kind = j.find("kind");
  if (ts == nullptr || !ts->is_number() || kind == nullptr ||
      !kind->is_string())
    return std::nullopt;
  const auto k = journal_kind_from_name(kind->as_string());
  if (!k) return std::nullopt;
  gpusim::JournalEvent e;
  e.sim_ts = ts->as_double();
  e.seq = j["seq"].as_u64();
  e.worker = static_cast<std::uint32_t>(j["worker"].as_u64());
  e.kind = *k;
  e.arg0 = j["arg0"].as_u64();
  e.arg1 = j["arg1"].as_u64();
  return e;
}

bool write_journal_jsonl(const gpusim::EventJournal& journal,
                         const std::string& path, std::size_t max_events,
                         std::string* error) {
  return write_journal_jsonl(journal.drain(), path, max_events, error);
}

bool write_journal_jsonl(const std::vector<gpusim::JournalEvent>& events,
                         const std::string& path, std::size_t max_events,
                         std::string* error) {
  // Keep the newest window: a flight recorder answers "what happened right
  // before the failure", so the tail matters, not the head.
  const std::size_t n = events.size();
  const std::size_t first = n > max_events ? n - max_events : 0;

  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  for (std::size_t i = first; i < n; ++i) {
    to_json(events[i]).write(out, 0);
    out << '\n';
  }
  if (!out.good()) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<std::vector<gpusim::JournalEvent>> read_journal_jsonl(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<gpusim::JournalEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string perr;
    const std::optional<Json> j = Json::parse(line, &perr);
    if (!j) {
      if (error)
        *error = path + ":" + std::to_string(line_no) + ": " + perr;
      return std::nullopt;
    }
    const auto e = journal_event_from_json(*j);
    if (!e) {
      if (error)
        *error = path + ":" + std::to_string(line_no) +
                 ": not a journal event: " + line;
      return std::nullopt;
    }
    events.push_back(*e);
  }
  return events;
}

}  // namespace sepo::obs
