#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sepo::obs {

namespace {
const Json kNullJson{};
const std::string kEmptyString{};
const Json::Array kEmptyArray{};
const Json::Object kEmptyObject{};
}  // namespace

double Json::as_double() const noexcept {
  switch (type()) {
    case Type::kUint: return static_cast<double>(std::get<std::uint64_t>(v_));
    case Type::kInt: return static_cast<double>(std::get<std::int64_t>(v_));
    case Type::kDouble: return std::get<double>(v_);
    default: return 0.0;
  }
}

std::uint64_t Json::as_u64() const noexcept {
  switch (type()) {
    case Type::kUint: return std::get<std::uint64_t>(v_);
    case Type::kInt: {
      const std::int64_t i = std::get<std::int64_t>(v_);
      return i < 0 ? 0 : static_cast<std::uint64_t>(i);
    }
    case Type::kDouble: {
      const double d = std::get<double>(v_);
      return d < 0 ? 0 : static_cast<std::uint64_t>(d);
    }
    default: return 0;
  }
}

std::int64_t Json::as_i64() const noexcept {
  switch (type()) {
    case Type::kUint: return static_cast<std::int64_t>(std::get<std::uint64_t>(v_));
    case Type::kInt: return std::get<std::int64_t>(v_);
    case Type::kDouble: return static_cast<std::int64_t>(std::get<double>(v_));
    default: return 0;
  }
}

bool Json::as_bool() const noexcept {
  return is_bool() ? std::get<bool>(v_) : false;
}

const std::string& Json::as_string() const {
  return is_string() ? std::get<std::string>(v_) : kEmptyString;
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) v_ = Object{};
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj)
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_))
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::operator[](std::string_view key) const noexcept {
  const Json* v = find(key);
  return v ? *v : kNullJson;
}

const Json::Object& Json::items() const {
  return is_object() ? std::get<Object>(v_) : kEmptyObject;
}

Json& Json::push_back(Json value) {
  if (!is_array()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(value));
  return *this;
}

const Json& Json::at(std::size_t i) const noexcept {
  if (!is_array()) return kNullJson;
  const auto& arr = std::get<Array>(v_);
  return i < arr.size() ? arr[i] : kNullJson;
}

const Json::Array& Json::elements() const {
  return is_array() ? std::get<Array>(v_) : kEmptyArray;
}

std::size_t Json::size() const noexcept {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

// ---------------------------------------------------------------- writing

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;  // UTF-8 pass-through
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);  // shortest form
  os.write(buf, res.ptr - buf);
}

void newline_indent(std::ostream& os, int indent, int depth) {
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (std::get<bool>(v_) ? "true" : "false"); break;
    case Type::kUint: os << std::get<std::uint64_t>(v_); break;
    case Type::kInt: os << std::get<std::int64_t>(v_); break;
    case Type::kDouble: write_double(os, std::get<double>(v_)); break;
    case Type::kString: write_escaped(os, std::get<std::string>(v_)); break;
    case Type::kArray: {
      const auto& arr = std::get<Array>(v_);
      if (arr.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) os << ',';
        if (indent) newline_indent(os, indent, depth + 1);
        arr[i].write_impl(os, indent, depth + 1);
      }
      if (indent) newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = std::get<Object>(v_);
      if (obj.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) os << ',';
        first = false;
        if (indent) newline_indent(os, indent, depth + 1);
        write_escaped(os, k);
        os << (indent ? ": " : ":");
        v.write_impl(os, indent, depth + 1);
      }
      if (indent) newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream oss;
  write(oss, indent);
  return oss.str();
}

// ---------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> v = value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON value");
        v = std::nullopt;
      }
    }
    if (!v && error) {
      *error = err_.empty() ? "invalid JSON" : err_;
      *error += " (at byte " + std::to_string(pos_) + ")";
    }
    return v;
  }

 private:
  void fail(std::string msg) {
    if (err_.empty()) err_ = std::move(msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (literal("true")) return Json(true);
        return std::nullopt;
      case 'f':
        if (literal("false")) return Json(false);
        return std::nullopt;
      case 'n':
        if (literal("null")) return Json(nullptr);
        return std::nullopt;
      default: return parse_number();
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    fail("invalid literal");
    return false;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("invalid number");
      return std::nullopt;
    }
    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size())
          return Json(i);
      } else {
        std::uint64_t u = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size())
          return Json(u);
      }
      // Out-of-range integers fall through to double.
    }
    double d = 0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size()) {
      fail("invalid number");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned cp = 0;
          const auto r = std::from_chars(text_.data() + pos_,
                                         text_.data() + pos_ + 4, cp, 16);
          if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      auto v = value();
      if (!v) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace sepo::obs
