// Dependency-free JSON value tree: writer and parser (no third-party code).
//
// Built for the telemetry layer (obs::MetricsReport, obs::TraceRecorder) and
// for reading metrics files back (sepo_cli metrics-diff / metrics-check).
// Scope is deliberately small: UTF-8 pass-through strings, 64-bit integers
// kept exact (unsigned and signed stored as integers, not doubles — counter
// values and checksums must round-trip bit-exactly), objects preserving
// insertion order so emitted files diff cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sepo::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Type { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(std::uint64_t u) : v_(u) {}
  Json(std::int64_t i) : v_(i) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned long long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(v_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kUint || type() == Type::kInt ||
           type() == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::kObject;
  }

  // Numeric accessors convert between the three numeric representations;
  // they return 0 for non-numbers (callers validate types via is_*).
  [[nodiscard]] double as_double() const noexcept;
  [[nodiscard]] std::uint64_t as_u64() const noexcept;
  [[nodiscard]] std::int64_t as_i64() const noexcept;
  [[nodiscard]] bool as_bool() const noexcept;
  [[nodiscard]] const std::string& as_string() const;  // "" for non-strings

  // --- object access ---
  Json& set(std::string key, Json value);  // appends or overwrites; chains
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  // Missing keys (or non-objects) yield a shared null value.
  [[nodiscard]] const Json& operator[](std::string_view key) const noexcept;
  [[nodiscard]] const Object& items() const;

  // --- array access ---
  Json& push_back(Json value);
  [[nodiscard]] const Json& at(std::size_t i) const noexcept;  // null if OOB
  [[nodiscard]] const Array& elements() const;

  [[nodiscard]] std::size_t size() const noexcept;  // array/object arity

  // --- serialization ---
  // indent == 0: compact single line; indent > 0: pretty-printed.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  // --- parsing ---
  // Strict JSON (no comments / trailing commas). On failure returns nullopt
  // and, when `error` is non-null, stores a message with the byte offset.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

 private:
  explicit Json(Array a) : v_(std::move(a)) {}
  explicit Json(Object o) : v_(std::move(o)) {}

  void write_impl(std::ostream& os, int indent, int depth) const;

  // Variant order must match Type's enumerator order.
  std::variant<std::nullptr_t, bool, std::uint64_t, std::int64_t, double,
               std::string, Array, Object>
      v_ = nullptr;
};

}  // namespace sepo::obs
