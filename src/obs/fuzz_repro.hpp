// Fuzz repro artifacts: serialization of a failed differential fuzz run
// (apps/fuzz.hpp) to a standalone JSON file, and the parse path that lets
// `sepo_cli fuzz --repro <file>` replay it bit-identically.
//
// An artifact carries the complete FuzzPlan (every field that can influence
// the run), the recorded verdict, both engines' outcomes, and — when the
// engine under test supports the flight recorder — the drained journal as a
// sibling `<path>.journal.jsonl` so the events leading up to the mismatch
// survive for `sepo_cli report --journal`.
#pragma once

#include <optional>
#include <string>

#include "apps/fuzz.hpp"
#include "obs/json.hpp"

namespace sepo::obs {

inline constexpr int kFuzzReproVersion = 1;

[[nodiscard]] Json to_json(const apps::FuzzPlan& p);
[[nodiscard]] Json to_json(const apps::FuzzEngineOutcome& o);
[[nodiscard]] Json fuzz_repro_to_json(const apps::FuzzResult& r);

// Inverse of to_json(FuzzPlan). Returns nullopt (and sets *error) when a
// required field is missing or mistyped — a truncated artifact must fail
// loudly, not replay some other config.
[[nodiscard]] std::optional<apps::FuzzPlan> fuzz_plan_from_json(
    const Json& j, std::string* error = nullptr);

// A parsed artifact: the plan to replay plus the verdict it recorded.
struct FuzzRepro {
  apps::FuzzPlan plan;
  std::string verdict;
};

// Writes the artifact for `r` to `path` (and the journal, if captured, to
// `path + ".journal.jsonl"`). Returns false and sets *error on I/O failure.
bool write_fuzz_repro(const apps::FuzzResult& r, const std::string& path,
                      std::string* error = nullptr);

// Reads an artifact back. Returns nullopt (and sets *error) when the file
// is unreadable, is not a v1 artifact, or its plan fails to parse.
[[nodiscard]] std::optional<FuzzRepro> read_fuzz_repro(
    const std::string& path, std::string* error = nullptr);

}  // namespace sepo::obs
