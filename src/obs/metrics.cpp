#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace sepo::obs {

bool nearly_equal(double a, double b, double rel_eps) noexcept {
  if (a == b) return true;  // covers both-zero and exact matches
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return std::fabs(a - b) <=
         rel_eps * std::max(std::fabs(a), std::fabs(b));
}

Json to_json(const gpusim::StatsSnapshot& s) {
  Json j = Json::object();
  s.for_each_field([&j](const char* name, std::uint64_t v) { j.set(name, v); });
  return j;
}

Json to_json(const gpusim::PcieSnapshot& p) {
  Json j = Json::object();
  j.set("h2d_bytes", p.h2d_bytes).set("h2d_txns", p.h2d_txns);
  j.set("d2h_bytes", p.d2h_bytes).set("d2h_txns", p.d2h_txns);
  j.set("remote_bytes", p.remote_bytes).set("remote_txns", p.remote_txns);
  return j;
}

Json to_json(const gpusim::SerializationInputs& s) {
  Json j = Json::object();
  j.set("total_lock_ops", s.total_lock_ops);
  j.set("max_same_lock_ops", s.max_same_lock_ops);
  j.set("serial_atomic_ops", s.serial_atomic_ops);
  return j;
}

Json to_json(const gpusim::GpuTimeBreakdown& b) {
  Json j = Json::object();
  j.set("compute", b.compute).set("h2d", b.h2d).set("d2h", b.d2h);
  j.set("remote", b.remote).set("total", b.total);
  return j;
}

Json to_json(const gpusim::TimelineSummary& t) {
  Json j = Json::object();
  j.set("compute_busy", t.compute_busy).set("h2d_busy", t.h2d_busy);
  j.set("d2h_busy", t.d2h_busy).set("remote_busy", t.remote_busy);
  j.set("total", t.total).set("commands", t.commands);
  return j;
}

Json to_json(const gpusim::FaultSummary& f) {
  Json j = Json::object();
  static constexpr const char* kEngineNames[gpusim::kNumTimelineResources] = {
      "compute", "h2d", "d2h", "remote"};
  for (int r = 0; r < gpusim::kNumTimelineResources; ++r) {
    const gpusim::EngineFaults& e = f.engine[r];
    Json ej = Json::object();
    ej.set("faults", e.faults);
    ej.set("retries", e.retries);
    ej.set("backoff_s", e.backoff_s);
    j.set(kEngineNames[r], std::move(ej));
  }
  j.set("total_faults", f.total_faults());
  j.set("total_backoff_s", f.total_backoff_s());
  return j;
}

Json to_json(const core::IterationProfile& p) {
  Json j = Json::object();
  j.set("iteration", p.iteration);
  j.set("records_processed", p.records_processed);
  j.set("records_postponed", p.records_postponed);
  j.set("postpone_rate", p.postpone_rate);
  j.set("page_acquires", p.page_acquires);
  j.set("kernel_launches", p.kernel_launches);
  j.set("hash_ops", p.hash_ops);
  j.set("chunks_staged", p.chunks_staged);
  j.set("chunks_skipped", p.chunks_skipped);
  j.set("bytes_staged", p.bytes_staged);
  j.set("halted", p.halted);
  j.set("free_pages_after", p.free_pages_after);
  j.set("resident_entry_bytes", p.resident_entry_bytes);
  j.set("flushed_bytes_total", p.flushed_bytes_total);
  j.set("distinct_entries_total", p.distinct_entries_total);
  j.set("hottest_bucket_ops", p.hottest_bucket_ops);
  return j;
}

Json to_json(const gpusim::OccupancySample& s) {
  Json j = Json::object();
  j.set("sim_ts", s.sim_ts);
  j.set("iteration", s.iteration);
  j.set("pages_total", s.pages_total);
  j.set("pages_free", s.pages_free);
  j.set("pages_seized", s.pages_seized);
  j.set("resident_entry_bytes", s.resident_entry_bytes);
  j.set("staging_slots", s.staging_slots);
  j.set("staging_busy", s.staging_busy);
  static constexpr const char* kEngineNames[gpusim::kNumTimelineResources] = {
      "compute", "h2d", "d2h", "remote"};
  Json engines = Json::object();
  for (int r = 0; r < gpusim::kNumTimelineResources; ++r) {
    Json e = Json::object();
    e.set("end", s.engine_end[r]);
    e.set("busy", s.engine_busy[r]);
    engines.set(kEngineNames[r], std::move(e));
  }
  j.set("engines", std::move(engines));
  return j;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Json to_json(const apps::RunResult& r) {
  Json j = Json::object();
  j.set("impl", r.impl);
  j.set("sim_seconds", r.sim_seconds);
  j.set("sim_seconds_analytic", r.sim_seconds_analytic);
  // Host-dependent: wall clock of the *simulation host*, not a result.
  j.set("wall_seconds_host", r.wall_seconds);
  j.set("iterations", r.iterations);
  j.set("keys", r.keys);
  j.set("table_bytes", r.table_bytes);
  j.set("heap_bytes", r.heap_bytes);
  j.set("checksum_hex", hex64(r.checksum));
  j.set("stats", to_json(r.stats));
  j.set("pcie", to_json(r.pcie));
  j.set("serialization", to_json(r.serial));
  j.set("gpu_breakdown", to_json(r.gpu_breakdown));
  j.set("timeline", to_json(r.timeline));
  j.set("faults", to_json(r.faults));
  if (r.error) {
    Json err = Json::object();
    err.set("kind", r.error.kind_name());
    err.set("message", r.error.message);
    j.set("error", std::move(err));
  }
  Json profiles = Json::array();
  for (const auto& p : r.iteration_profiles) profiles.push_back(to_json(p));
  j.set("iteration_profiles", std::move(profiles));
  Json series = Json::array();
  for (const auto& s : r.timeseries) series.push_back(to_json(s));
  j.set("timeseries", std::move(series));
  Json hist = Json::array();
  for (const std::uint64_t n : r.bucket_histogram) hist.push_back(n);
  j.set("bucket_histogram", std::move(hist));
  // v5: batched-insert pipeline totals (all-zero when the knob is off).
  // Kept out of "stats" on purpose — the simulated counters must stay
  // bit-identical between scalar and batched runs.
  Json cb = Json::object();
  cb.set("enabled", r.combine_buffer.enabled);
  cb.set("scratch_hits", r.combine_buffer.scratch_hits);
  cb.set("precombined_records", r.combine_buffer.precombined_records);
  cb.set("lock_acquires_saved", r.combine_buffer.lock_acquires_saved);
  cb.set("drain_flushes", r.combine_buffer.drain_flushes);
  cb.set("drained_records", r.combine_buffer.drained_records);
  cb.set("requeued_records", r.combine_buffer.requeued_records);
  j.set("combine_buffer", std::move(cb));
  return j;
}

Json table_to_json(const TablePrinter& t) {
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json obj = Json::object();
    for (std::size_t c = 0; c < t.headers().size() && c < row.size(); ++c)
      obj.set(t.headers()[c], row[c]);
    rows.push_back(std::move(obj));
  }
  return rows;
}

void MetricsReport::add_run(std::string_view app, const apps::RunResult& r,
                            Json extra) {
  Json run = Json::object();
  run.set("app", std::string(app));
  // Merge the standard serialization, then caller extras (which by
  // convention use their own keys and so never shadow standard fields).
  const Json standard = obs::to_json(r);
  for (const auto& [k, v] : standard.items()) run.set(k, v);
  if (extra.is_object())
    for (const auto& [k, v] : extra.items()) run.set(k, v);
  runs_.push_back(std::move(run));
}

void MetricsReport::add_table(std::string name, const TablePrinter& t) {
  tables_.set(std::move(name), table_to_json(t));
}

void MetricsReport::set_field(std::string key, Json value) {
  extras_.set(std::move(key), std::move(value));
}

Json MetricsReport::to_json() const {
  Json root = Json::object();
  root.set("schema_version", kMetricsSchemaVersion);
  root.set("tool", tool_);
  for (const auto& [k, v] : extras_.items()) root.set(k, v);
  Json runs = Json::array();
  for (const Json& r : runs_) runs.push_back(r);
  root.set("runs", std::move(runs));
  if (tables_.size() > 0) root.set("tables", tables_);
  return root;
}

bool MetricsReport::write_file(const std::string& path,
                               std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  to_json().write(out, 2);
  out << '\n';
  if (!out.good()) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

OutputOptions OutputOptions::from_args(int& argc, char** argv) {
  OutputOptions o;
  if (const char* env = std::getenv("SEPO_METRICS_OUT")) o.metrics_path = env;
  if (const char* env = std::getenv("SEPO_TRACE_OUT")) o.trace_path = env;
  if (const char* env = std::getenv("SEPO_JOURNAL_OUT")) o.journal_path = env;

  auto match = [](const char* arg, const char* flag,
                  std::string* out) -> int {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0) return 0;
    if (arg[len] == '=') {
      *out = arg + len + 1;
      return 1;  // consumed this token
    }
    if (arg[len] == '\0') return 2;  // value is the next token
    return 0;
  };

  int w = 1;
  for (int i = 1; i < argc; ++i) {
    std::string* dest = nullptr;
    int kind = match(argv[i], "--metrics-out", &o.metrics_path);
    if (kind) {
      dest = &o.metrics_path;
    } else {
      kind = match(argv[i], "--trace-out", &o.trace_path);
      if (kind) {
        dest = &o.trace_path;
      } else {
        kind = match(argv[i], "--journal-out", &o.journal_path);
        if (kind) dest = &o.journal_path;
      }
    }
    if (kind == 2 && dest) {
      if (i + 1 < argc) {
        *dest = argv[++i];
      } else {
        std::fprintf(stderr, "%s requires a FILE argument\n", argv[i]);
      }
      continue;
    }
    if (kind == 1) continue;
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
  return o;
}

}  // namespace sepo::obs
