#include "obs/fuzz_repro.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/journal.hpp"

namespace sepo::obs {

namespace {

// 16-hex-digit rendering shared with the metrics schema's checksum_hex:
// digests are u64 bit patterns, and hex strings survive JSON tooling that
// silently coerces large integers to doubles.
std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> u64_from_hex(const std::string& s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    const int d = c >= '0' && c <= '9'   ? c - '0'
                  : c >= 'a' && c <= 'f' ? c - 'a' + 10
                  : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                         : -1;
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

Json to_json(const apps::FuzzPlan& p) {
  Json f = Json::object();
  f.set("seed", p.faults.seed);
  f.set("h2d_rate", p.faults.h2d_rate);
  f.set("d2h_rate", p.faults.d2h_rate);
  f.set("remote_rate", p.faults.remote_rate);
  f.set("kernel_abort_rate", p.faults.kernel_abort_rate);
  f.set("pressure_rate", p.faults.pressure_rate);
  f.set("pressure_frac", p.faults.pressure_frac);
  f.set("pressure_hold_iterations", p.faults.pressure_hold_iterations);
  f.set("max_retries", p.faults.max_retries);
  f.set("backoff_base_s", p.faults.backoff_base_s);
  f.set("backoff_cap_s", p.faults.backoff_cap_s);

  Json j = Json::object();
  j.set("id", p.id);
  j.set("master_seed", p.master_seed);
  j.set("app", p.app);
  j.set("engine", p.engine);
  j.set("input_bytes", static_cast<std::uint64_t>(p.input_bytes));
  j.set("data_seed", p.data_seed);
  j.set("zipf_s", p.zipf_s);
  j.set("distinct_keys", static_cast<std::uint64_t>(p.distinct_keys));
  j.set("device_bytes", static_cast<std::uint64_t>(p.device_bytes));
  j.set("num_buckets", p.num_buckets);
  j.set("workers", static_cast<std::uint64_t>(p.workers));
  j.set("basic_halt_frac", p.basic_halt_frac);
  j.set("batch_insert", p.batch_insert);
  j.set("faults", std::move(f));
  j.set("corrupt_digest_xor_hex", u64_hex(p.corrupt_digest_xor));
  return j;
}

Json to_json(const apps::FuzzEngineOutcome& o) {
  Json j = Json::object();
  j.set("status", apps::to_string(o.status));
  if (o.status != apps::FuzzStatus::kOk) {
    j.set("error_kind", o.error_kind);
    j.set("message", o.message);
  } else {
    j.set("digest_hex", u64_hex(o.digest));
    j.set("keys", o.keys);
  }
  j.set("iterations", o.iterations);
  return j;
}

Json fuzz_repro_to_json(const apps::FuzzResult& r) {
  Json j = Json::object();
  j.set("fuzz_repro_version", kFuzzReproVersion);
  j.set("verdict", apps::to_string(r.verdict));
  j.set("plan", to_json(r.plan));
  j.set("engine", to_json(r.engine));
  j.set("baseline", to_json(r.baseline));
  j.set("journal_events", static_cast<std::uint64_t>(r.journal.size()));
  return j;
}

std::optional<apps::FuzzPlan> fuzz_plan_from_json(const Json& j,
                                                  std::string* error) {
  const auto bad = [&](const char* field) -> std::optional<apps::FuzzPlan> {
    if (error != nullptr)
      *error = std::string("fuzz plan: missing or mistyped field '") + field +
               "'";
    return std::nullopt;
  };
  if (!j.is_object()) return bad("(plan)");
  apps::FuzzPlan p;
  if (!j["id"].is_number()) return bad("id");
  p.id = j["id"].as_u64();
  if (!j["master_seed"].is_number()) return bad("master_seed");
  p.master_seed = j["master_seed"].as_u64();
  if (!j["app"].is_string()) return bad("app");
  p.app = j["app"].as_string();
  if (!j["engine"].is_string()) return bad("engine");
  p.engine = j["engine"].as_string();
  if (!j["input_bytes"].is_number()) return bad("input_bytes");
  p.input_bytes = j["input_bytes"].as_u64();
  if (!j["data_seed"].is_number()) return bad("data_seed");
  p.data_seed = j["data_seed"].as_u64();
  if (!j["zipf_s"].is_number()) return bad("zipf_s");
  p.zipf_s = j["zipf_s"].as_double();
  if (!j["distinct_keys"].is_number()) return bad("distinct_keys");
  p.distinct_keys = j["distinct_keys"].as_u64();
  if (!j["device_bytes"].is_number()) return bad("device_bytes");
  p.device_bytes = j["device_bytes"].as_u64();
  if (!j["num_buckets"].is_number()) return bad("num_buckets");
  p.num_buckets = static_cast<std::uint32_t>(j["num_buckets"].as_u64());
  if (!j["workers"].is_number()) return bad("workers");
  p.workers = j["workers"].as_u64();
  if (!j["basic_halt_frac"].is_number()) return bad("basic_halt_frac");
  p.basic_halt_frac = j["basic_halt_frac"].as_double();
  // Optional (absent in pre-batching repro files): default to the scalar
  // path so old artifacts replay exactly as recorded.
  if (j["batch_insert"].is_number())
    p.batch_insert = static_cast<std::uint32_t>(j["batch_insert"].as_u64());

  const Json& f = j["faults"];
  if (!f.is_object()) return bad("faults");
  for (const char* k :
       {"seed", "h2d_rate", "d2h_rate", "remote_rate", "kernel_abort_rate",
        "pressure_rate", "pressure_frac", "pressure_hold_iterations",
        "max_retries", "backoff_base_s", "backoff_cap_s"})
    if (!f[k].is_number()) return bad(k);
  p.faults.seed = f["seed"].as_u64();
  p.faults.h2d_rate = f["h2d_rate"].as_double();
  p.faults.d2h_rate = f["d2h_rate"].as_double();
  p.faults.remote_rate = f["remote_rate"].as_double();
  p.faults.kernel_abort_rate = f["kernel_abort_rate"].as_double();
  p.faults.pressure_rate = f["pressure_rate"].as_double();
  p.faults.pressure_frac = f["pressure_frac"].as_double();
  p.faults.pressure_hold_iterations =
      static_cast<std::uint32_t>(f["pressure_hold_iterations"].as_u64());
  p.faults.max_retries = static_cast<std::uint32_t>(f["max_retries"].as_u64());
  p.faults.backoff_base_s = f["backoff_base_s"].as_double();
  p.faults.backoff_cap_s = f["backoff_cap_s"].as_double();

  if (!j["corrupt_digest_xor_hex"].is_string())
    return bad("corrupt_digest_xor_hex");
  const auto xr = u64_from_hex(j["corrupt_digest_xor_hex"].as_string());
  if (!xr) return bad("corrupt_digest_xor_hex");
  p.corrupt_digest_xor = *xr;
  return p;
}

bool write_fuzz_repro(const apps::FuzzResult& r, const std::string& path,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) return fail(error, "cannot open " + path + " for writing");
  fuzz_repro_to_json(r).write(out, 2);
  out << '\n';
  if (!out.good()) return fail(error, "write to " + path + " failed");
  if (!r.journal.empty() &&
      !write_journal_jsonl(r.journal, path + ".journal.jsonl",
                           /*max_events=*/4096, error))
    return false;
  return true;
}

std::optional<FuzzRepro> read_fuzz_repro(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot read " + path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string perr;
  const auto j = Json::parse(buf.str(), &perr);
  if (!j) {
    fail(error, path + ": " + perr);
    return std::nullopt;
  }
  if ((*j)["fuzz_repro_version"].as_i64() != kFuzzReproVersion) {
    fail(error, path + ": not a fuzz repro artifact (fuzz_repro_version != " +
                    std::to_string(kFuzzReproVersion) + ")");
    return std::nullopt;
  }
  std::string plan_err;
  auto plan = fuzz_plan_from_json((*j)["plan"], &plan_err);
  if (!plan) {
    fail(error, path + ": " + plan_err);
    return std::nullopt;
  }
  FuzzRepro repro;
  repro.plan = std::move(*plan);
  repro.verdict = (*j)["verdict"].as_string();
  return repro;
}

}  // namespace sepo::obs
