#include "baselines/phoenix.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace sepo::baselines {

namespace {

// Emitter into a private per-thread table: never postpones.
class LocalEmitter final : public mapreduce::Emitter {
 public:
  LocalEmitter(CpuHashTable& table, std::uint32_t tid) noexcept
      : table_(table), tid_(tid) {}

  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    table_.insert(tid_, key, value);
    return core::Status::kSuccess;
  }

 private:
  CpuHashTable& table_;
  std::uint32_t tid_;
};

}  // namespace

PhoenixRuntime::PhoenixRuntime(gpusim::ThreadPool& pool,
                               gpusim::RunStats& stats, PhoenixConfig cfg)
    : pool_(pool), stats_(stats), cfg_(cfg) {
  if (cfg_.num_threads == 0)
    throw std::invalid_argument("num_threads must be positive");
}

std::unique_ptr<CpuHashTable> PhoenixRuntime::run(
    std::string_view input, const mapreduce::MrSpec& spec) {
  if (!spec.map) throw std::invalid_argument("spec.map is required");
  if (spec.mode == mapreduce::Mode::kMapReduce && spec.combine == nullptr)
    throw std::invalid_argument("MAP_REDUCE mode requires spec.combine");

  const RecordIndex index = index_lines(input);
  const core::Organization org = spec.mode == mapreduce::Mode::kMapReduce
                                     ? core::Organization::kCombining
                                     : core::Organization::kMultiValued;

  // --- map phase: per-thread private containers ---
  std::vector<std::unique_ptr<CpuHashTable>> locals(cfg_.num_threads);
  for (auto& t : locals) {
    CpuHashTableConfig tcfg;
    tcfg.org = org;
    tcfg.num_buckets = cfg_.thread_table_buckets;
    tcfg.combiner = spec.combine;
    t = std::make_unique<CpuHashTable>(stats_, tcfg);
  }

  const std::size_t n = index.size();
  pool_.run_parties(cfg_.num_threads, [&](std::size_t party) {
    const std::size_t lo = n * party / cfg_.num_threads;
    const std::size_t hi = n * (party + 1) / cfg_.num_threads;
    CpuHashTable& local = *locals[party];
    LocalEmitter em(local, static_cast<std::uint32_t>(party));
    for (std::size_t r = lo; r < hi; ++r) {
      const std::string_view body = index.record(input.data(), r);
      stats_.add_work_units(body.size());
      spec.map(body, em);
      stats_.add_records_processed();
    }
  });

  // --- merge phase: fold per-thread containers into the final table ---
  CpuHashTableConfig mcfg;
  mcfg.org = org;
  mcfg.num_buckets = cfg_.merged_table_buckets;
  mcfg.combiner = spec.combine;
  auto merged = std::make_unique<CpuHashTable>(stats_, mcfg);

  if (org == core::Organization::kCombining) {
    for (std::uint32_t t = 0; t < cfg_.num_threads; ++t)
      locals[t]->for_each([&](std::string_view k,
                              std::span<const std::byte> v) {
        merged->insert(t, k, v);
      });
  } else {
    for (std::uint32_t t = 0; t < cfg_.num_threads; ++t)
      locals[t]->for_each_group(
          [&](std::string_view k,
              const std::vector<std::span<const std::byte>>& vals) {
            for (const auto& v : vals) merged->insert(t, k, v);
          });
  }
  return merged;
}

}  // namespace sepo::baselines
