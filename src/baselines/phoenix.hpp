// Phoenix++-style multicore CPU MapReduce baseline (paper §VI-B: "The three
// MapReduce applications ... are compared against the corresponding
// CPU-based applications developed using Phoenix++, a state-of-the-art
// MapReduce runtime for multi-core CPUs" [12] Talbot et al.).
//
// Faithful to Phoenix++'s key design: each worker thread maps its share of
// the input into a *private* hash container (no locking on the hot path,
// combining/grouping applied eagerly), followed by a merge phase that folds
// the per-thread containers into the final table.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "baselines/cpu_hash_table.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/thread_pool.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::baselines {

struct PhoenixConfig {
  std::uint32_t num_threads = 8;
  std::uint32_t thread_table_buckets = 1u << 12;  // per-worker container
  std::uint32_t merged_table_buckets = 1u << 15;
};

class PhoenixRuntime {
 public:
  PhoenixRuntime(gpusim::ThreadPool& pool, gpusim::RunStats& stats,
                 PhoenixConfig cfg = {});

  // Runs map over all newline-delimited records of `input` and merges the
  // per-thread results. The returned table uses the combining organization
  // for kMapReduce and the multi-valued organization for kMapGroup.
  std::unique_ptr<CpuHashTable> run(std::string_view input,
                                    const mapreduce::MrSpec& spec);

 private:
  gpusim::ThreadPool& pool_;
  gpusim::RunStats& stats_;
  PhoenixConfig cfg_;
};

}  // namespace sepo::baselines
