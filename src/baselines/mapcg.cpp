#include "baselines/mapcg.hpp"

#include <cstring>

#include "common/hashing.hpp"
#include "common/strings.hpp"
#include "core/entry_layout.hpp"

namespace sepo::baselines {

namespace {

class MapCgEmitter final : public mapreduce::Emitter {
 public:
  explicit MapCgEmitter(
      const std::function<core::Status(std::string_view,
                                       std::span<const std::byte>)>& sink)
      : sink_(sink) {}

  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    const core::Status s = sink_(key, value);
    if (s == core::Status::kPostpone)
      throw MapCgOutOfMemory("MapCG: device hash table out of memory");
    return s;
  }

 private:
  const std::function<core::Status(std::string_view,
                                   std::span<const std::byte>)>& sink_;
};

}  // namespace

MapCgRuntime::MapCgRuntime(gpusim::ExecContext& ctx, MapCgConfig cfg)
    : ctx_(ctx), dev_(ctx.device()), stats_(ctx.stats()), cfg_(cfg) {
  if (cfg_.num_buckets == 0 || (cfg_.num_buckets & (cfg_.num_buckets - 1)))
    throw std::invalid_argument("num_buckets must be a power of two");
  bucket_mask_ = cfg_.num_buckets - 1;
  // Bucket array + locks live in device memory.
  dev_.alloc_static(static_cast<std::size_t>(cfg_.num_buckets) * 12);
  heads_ = std::vector<std::atomic<gpusim::DevPtr>>(cfg_.num_buckets);
  for (auto& h : heads_) h.store(gpusim::kDevNull, std::memory_order_relaxed);
  locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);
}

gpusim::DevPtr MapCgRuntime::global_alloc(std::uint32_t bytes) {
  bytes = (bytes + 7u) & ~7u;
  serial_atomic_ops_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_alloc_ops();
  const std::uint64_t off =
      arena_used_.fetch_add(bytes, std::memory_order_relaxed);
  if (off + bytes > arena_size_) {
    stats_.add_alloc_fails();
    return gpusim::kDevNull;
  }
  return arena_base_ + off;
}

core::Status MapCgRuntime::insert(std::string_view key,
                                  std::span<const std::byte> value) {
  stats_.add_hash_ops();
  const auto b =
      static_cast<std::uint32_t>(hash_key(key)) & bucket_mask_;
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;

  KeyNode* kn = nullptr;
  for (gpusim::DevPtr p = heads_[b].load(std::memory_order_relaxed);
       p != gpusim::kDevNull;) {
    stats_.add_chain_links();
    auto* k = dev_.ptr<KeyNode>(p);
    stats_.add_key_compare_bytes(std::min<std::uint64_t>(k->key_len, key.size()));
    if (k->key() == key) {
      kn = k;
      break;
    }
    p = k->next;
  }
  if (kn == nullptr) {
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const gpusim::DevPtr kp = global_alloc(
        static_cast<std::uint32_t>(sizeof(KeyNode)) + core::pad8(key_len));
    if (kp == gpusim::kDevNull) return core::Status::kPostpone;
    kn = dev_.ptr<KeyNode>(kp);
    kn->next = heads_[b].load(std::memory_order_relaxed);
    kn->vhead = gpusim::kDevNull;
    kn->key_len = key_len;
    kn->reduced_len = 0;
    std::memcpy(kn->key_data(), key.data(), key_len);
    heads_[b].store(kp, std::memory_order_release);
    stats_.add_inserts_new();
    key_count_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const gpusim::DevPtr vp = global_alloc(
      static_cast<std::uint32_t>(sizeof(ValueNode)) + core::pad8(val_len));
  if (vp == gpusim::kDevNull) return core::Status::kPostpone;
  auto* vn = dev_.ptr<ValueNode>(vp);
  vn->next = kn->vhead;
  vn->val_len = val_len;
  vn->pad_ = 0;
  if (val_len) std::memcpy(vn->value_data(), value.data(), val_len);
  kn->vhead = vp;
  stats_.add_value_appends();
  value_count_.fetch_add(1, std::memory_order_relaxed);
  return core::Status::kSuccess;
}

void MapCgRuntime::run(std::string_view input, const mapreduce::MrSpec& spec) {
  if (!spec.map) throw std::invalid_argument("spec.map is required");
  if (spec.mode == mapreduce::Mode::kMapReduce && spec.combine == nullptr)
    throw std::invalid_argument("MAP_REDUCE mode requires spec.combine");

  // MapCG copies the entire input to device memory up front; input and
  // table share what the device has. Fail early if the input alone does
  // not fit.
  if (input.size() + (64u << 10) > dev_.mem_free())
    throw MapCgOutOfMemory("MapCG: input does not fit in device memory");
  const gpusim::DevPtr dev_input = dev_.alloc_static(input.size(), 64);
  // MapCG has no pipelining: the upfront copy must complete before the map
  // kernel starts (honestly serial on the timeline, unlike BigKernel).
  const gpusim::Event input_staged =
      ctx_.stage_h2d(dev_input, input.data(), input.size());

  arena_size_ = dev_.mem_free();
  arena_base_ = dev_.alloc_static(arena_size_, 64);

  const RecordIndex index = index_lines(input);
  const std::function<core::Status(std::string_view,
                                   std::span<const std::byte>)>
      sink = [this](std::string_view k, std::span<const std::byte> v) {
        return insert(k, v);
      };

  // Exceptions must not escape a pool worker; an out-of-memory emit sets a
  // flag and the failure is rethrown on the host thread after the kernel.
  std::atomic<bool> oom{false};
  ctx_.launch(
      index.size(),
      [&](std::size_t r) {
        if (oom.load(std::memory_order_relaxed)) return;
        const std::string_view body{
            reinterpret_cast<const char*>(
                dev_.ptr(dev_input + index.offsets[r])),
            index.lengths[r]};
        stats_.add_work_units(body.size());
        MapCgEmitter em(sink);
        try {
          spec.map(body, em);
        } catch (const MapCgOutOfMemory&) {
          oom.store(true, std::memory_order_relaxed);
          return;
        }
        stats_.add_records_processed();
      },
      {.grid_threads = cfg_.grid_threads}, input_staged);
  if (oom.load(std::memory_order_relaxed))
    throw MapCgOutOfMemory("MapCG: device hash table out of memory");

  if (spec.mode == mapreduce::Mode::kMapReduce) reduce_pass(spec.combine);

  // Results are copied back to host in one bulk transfer.
  dev_.bus().d2h(arena_used_.load(std::memory_order_relaxed));
  ctx_.flush_d2h(arena_used_.load(std::memory_order_relaxed));
}

void MapCgRuntime::reduce_pass(core::CombineFn combine) {
  // Separate reduce phase ("grouping is postponed to a later stage", the
  // overhead the paper's on-the-fly combining avoids): fold each key's
  // value list into its first value node.
  ctx_.launch(heads_.size(), [&](std::size_t b) {
    for (gpusim::DevPtr p = heads_[b].load(std::memory_order_relaxed);
         p != gpusim::kDevNull;) {
      auto* kn = dev_.ptr<KeyNode>(p);
      if (kn->vhead != gpusim::kDevNull) {
        auto* first = dev_.ptr<ValueNode>(kn->vhead);
        for (gpusim::DevPtr vp = first->next; vp != gpusim::kDevNull;) {
          auto* vn = dev_.ptr<ValueNode>(vp);
          stats_.add_chain_links();
          combine(first->value_data(), vn->value_data(),
                  std::min(first->val_len, vn->val_len));
          stats_.add_combines();
          vp = vn->next;
        }
        kn->reduced_len = first->val_len;
      }
      p = kn->next;
    }
  });
  reduced_ = true;
}

void MapCgRuntime::for_each_reduced(
    const std::function<void(std::string_view, std::span<const std::byte>)>&
        fn) const {
  for (const auto& head : heads_) {
    for (gpusim::DevPtr p = head.load(std::memory_order_relaxed);
         p != gpusim::kDevNull;) {
      const auto* kn = dev_.ptr<KeyNode>(p);
      if (kn->vhead != gpusim::kDevNull) {
        const auto* first = dev_.ptr<ValueNode>(kn->vhead);
        fn(kn->key(), std::span{first->value_data(), first->val_len});
      }
      p = kn->next;
    }
  }
}

void MapCgRuntime::for_each_group(
    const std::function<void(std::string_view,
                             const std::vector<std::span<const std::byte>>&)>&
        fn) const {
  std::vector<std::span<const std::byte>> vals;
  for (const auto& head : heads_) {
    for (gpusim::DevPtr p = head.load(std::memory_order_relaxed);
         p != gpusim::kDevNull;) {
      const auto* kn = dev_.ptr<KeyNode>(p);
      vals.clear();
      for (gpusim::DevPtr vp = kn->vhead; vp != gpusim::kDevNull;) {
        const auto* vn = dev_.ptr<ValueNode>(vp);
        vals.emplace_back(vn->value_data(), vn->val_len);
        vp = vn->next;
      }
      fn(kn->key(), vals);
      p = kn->next;
    }
  }
}

MapCgRuntime::BucketLoad MapCgRuntime::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses =
        std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

}  // namespace sepo::baselines
