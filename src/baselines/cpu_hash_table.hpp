// CPU multi-threaded baseline hash table (paper §VI-B): "The CPU-based
// versions use a hash table design similar to our GPU-based hash table
// design except that they do not use the SEPO model of computation given
// that the entire hash table fits in CPU memory."
//
// Same closed addressing + separate chaining + per-bucket locks + the three
// bucket organizations; entries are allocated from per-thread chunked
// arenas, standing in for TCMalloc's thread-cached fast path (§VI-B: "all
// CPU implementations that require dynamic memory allocation use TCMalloc").
// All operations record events into a RunStats so the cost model can price
// the run on the CPU machine description.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/entry_layout.hpp"
#include "core/sepo.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/launch.hpp"

namespace sepo::baselines {

using core::CombineFn;
using core::Organization;

struct CpuHashTableConfig {
  Organization org = Organization::kCombining;
  std::uint32_t num_buckets = 1u << 15;  // power of two
  CombineFn combiner = nullptr;
  std::size_t arena_chunk_bytes = 256u << 10;
  std::uint32_t max_threads = 64;  // arena slots
};

class CpuHashTable {
 public:
  CpuHashTable(gpusim::RunStats& stats, CpuHashTableConfig cfg);
  ~CpuHashTable();

  CpuHashTable(const CpuHashTable&) = delete;
  CpuHashTable& operator=(const CpuHashTable&) = delete;

  // Inserts from worker thread `tid` (selects the thread arena). Always
  // succeeds — the CPU table has no memory ceiling in this model.
  void insert(std::uint32_t tid, std::string_view key,
              std::span<const std::byte> value);

  void insert_u64(std::uint32_t tid, std::string_view key, std::uint64_t v) {
    insert(tid, key, std::as_bytes(std::span{&v, 1}));
  }

  // --- queries (single-threaded, after population) ---
  [[nodiscard]] std::optional<std::span<const std::byte>> lookup(
      std::string_view key) const;
  [[nodiscard]] std::vector<std::span<const std::byte>> lookup_all(
      std::string_view key) const;
  [[nodiscard]] std::optional<std::vector<std::span<const std::byte>>>
  lookup_group(std::string_view key) const;

  void for_each(
      const std::function<void(std::string_view, std::span<const std::byte>)>&
          fn) const;
  void for_each_group(
      const std::function<void(std::string_view,
                               const std::vector<std::span<const std::byte>>&)>&
          fn) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entry_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t value_count() const noexcept {
    return value_count_.load(std::memory_order_relaxed);
  }
  // Total bytes handed out by the arenas (table memory footprint).
  [[nodiscard]] std::size_t allocated_bytes() const noexcept;

  // Per-bucket access totals for the cost model's serialization term.
  struct BucketLoad {
    std::uint64_t total_accesses = 0;
    std::uint64_t max_bucket_accesses = 0;
  };
  [[nodiscard]] BucketLoad bucket_load() const noexcept;

 private:
  struct KvEntry {   // basic / combining
    KvEntry* next;
    std::uint32_t key_len, val_len;
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1) + core::pad8(key_len);
    }
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1) +
             core::pad8(key_len);
    }
  };

  struct ValueEntry {
    ValueEntry* next;
    std::uint32_t val_len, pad_;
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1);
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1);
    }
  };

  struct KeyEntry {  // multi-valued
    KeyEntry* next;
    ValueEntry* vhead;
    std::uint32_t key_len, pad_;
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
  };

  // Per-thread bump arena (TCMalloc thread-cache stand-in).
  struct Arena {
    std::vector<std::unique_ptr<std::byte[]>> chunks;
    std::size_t used_in_chunk = 0;
    std::size_t total_used = 0;
  };

  void* arena_alloc(std::uint32_t tid, std::size_t bytes);

  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<std::uint32_t>(hash) & bucket_mask_;
  }
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;

  void insert_basic(std::uint32_t tid, std::uint32_t b, std::string_view key,
                    std::span<const std::byte> value);
  void insert_combining(std::uint32_t tid, std::uint32_t b,
                        std::string_view key,
                        std::span<const std::byte> value);
  void insert_multivalued(std::uint32_t tid, std::uint32_t b,
                          std::string_view key,
                          std::span<const std::byte> value);

  gpusim::RunStats& stats_;
  CpuHashTableConfig cfg_;
  std::uint32_t bucket_mask_;
  std::vector<std::atomic<void*>> heads_;
  // Lock + access tally per bucket on private cache lines
  // (gpusim::PaddedBucketLock); accesses incremented under the bucket lock.
  std::vector<gpusim::PaddedBucketLock> locks_;
  std::vector<Arena> arenas_;
  std::atomic<std::size_t> entry_count_{0};
  std::atomic<std::size_t> value_count_{0};
};

}  // namespace sepo::baselines
