// MapCG-style GPU MapReduce baseline (paper §VI-C; [7] Hong et al. 2010).
//
// Modelled from MapCG's published design, with the properties the paper's
// comparison turns on:
//   * the whole input is copied to device memory up front (no pipelining);
//   * KV pairs go into a device hash table whose entries come from ONE
//     global bump allocator (a single atomically-incremented offset — the
//     serialization the distributed bucket-group allocator of §IV-A avoids);
//   * duplicate keys are NOT combined on the fly: every emission allocates a
//     value node, and kMapReduce needs a separate reduce pass afterwards;
//   * there is no SEPO: when device memory runs out, the run FAILS
//     ("the execution fails when there is no more free memory to store newly
//     inserted KV pairs", §VI-C).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::baselines {

// Thrown when the non-SEPO hash table exhausts device memory.
class MapCgOutOfMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct MapCgConfig {
  std::uint32_t num_buckets = 1u << 15;  // power of two
  std::size_t grid_threads = 0;
};

class MapCgRuntime {
 public:
  explicit MapCgRuntime(gpusim::ExecContext& ctx, MapCgConfig cfg = {});

  // Runs map over all records; throws MapCgOutOfMemory when the device
  // cannot hold input + table. For kMapReduce a separate reduce pass folds
  // each key's value list with spec.combine.
  void run(std::string_view input, const mapreduce::MrSpec& spec);

  // --- result access (valid after run) ---

  // kMapReduce results: fn(key, reduced_value).
  void for_each_reduced(
      const std::function<void(std::string_view, std::span<const std::byte>)>&
          fn) const;

  // kMapGroup results: fn(key, values).
  void for_each_group(
      const std::function<void(std::string_view,
                               const std::vector<std::span<const std::byte>>&)>&
          fn) const;

  [[nodiscard]] std::size_t key_count() const noexcept {
    return key_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t value_count() const noexcept {
    return value_count_.load(std::memory_order_relaxed);
  }

  // Number of operations on the single global allocation counter — feeds the
  // cost model's serial-atomic term.
  [[nodiscard]] std::uint64_t serial_atomic_ops() const noexcept {
    return serial_atomic_ops_;
  }

  struct BucketLoad {
    std::uint64_t total_accesses = 0;
    std::uint64_t max_bucket_accesses = 0;
  };
  [[nodiscard]] BucketLoad bucket_load() const noexcept;

 private:
  struct KeyNode {
    gpusim::DevPtr next;
    gpusim::DevPtr vhead;
    std::uint32_t key_len;
    std::uint32_t reduced_len;  // set by the reduce pass
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
  };
  struct ValueNode {
    gpusim::DevPtr next;
    std::uint32_t val_len;
    std::uint32_t pad_;
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1);
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1);
    }
  };

  gpusim::DevPtr global_alloc(std::uint32_t bytes);
  core::Status insert(std::string_view key, std::span<const std::byte> value);
  void reduce_pass(core::CombineFn combine);

  gpusim::ExecContext& ctx_;
  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  MapCgConfig cfg_;
  std::uint32_t bucket_mask_;

  std::vector<std::atomic<gpusim::DevPtr>> heads_;
  // Lock + access tally per bucket on private cache lines
  // (gpusim::PaddedBucketLock); accesses incremented under the bucket lock.
  std::vector<gpusim::PaddedBucketLock> locks_;

  gpusim::DevPtr arena_base_ = gpusim::kDevNull;
  std::size_t arena_size_ = 0;
  std::atomic<std::uint64_t> arena_used_{0};
  std::atomic<std::uint64_t> serial_atomic_ops_{0};

  std::atomic<std::size_t> key_count_{0};
  std::atomic<std::size_t> value_count_{0};
  bool reduced_ = false;
};

}  // namespace sepo::baselines
