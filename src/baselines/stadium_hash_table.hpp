// Stadium-hashing-style baseline (paper §VII; Khorasani et al., PACT'15).
//
// "Stadium hashing proposes a hash table design where the hash table itself
// is located in a pinned portion of CPU memory, where it is directly
// accessed by GPU threads. To reduce the number of accesses to CPU memory,
// a compact indexing data structure located in GPU memory is used to store
// a fingerprint hash token for each item...: on an insert, the GPU thread
// first uses the index data structure to find an empty bucket, and only
// then will it access CPU memory to store the data item."
//
// And the paper's critique, which this model preserves: "neither Stadium
// hashing nor Mega-KV handle key-value pairs with duplicate keys... They
// both store pairs with duplicate keys as if they are pairs with different
// keys" — so inserts here always append (basic semantics), regardless of
// application-level duplicates; grouping/combining would need a separate
// post-pass.
//
// Cost profile relative to the §VI-D pinned table: inserts touch CPU memory
// exactly once (the data store) because the device-resident fingerprint
// index absorbs the probe; lookups touch CPU memory only on fingerprint
// matches (true matches + rare 16-bit collisions).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/entry_layout.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/launch.hpp"

namespace sepo::baselines {

struct StadiumConfig {
  std::uint32_t num_buckets = 1u << 15;  // power of two
  std::size_t host_chunk_bytes = 1u << 20;
};

class StadiumHashTable {
 public:
  // The fingerprint index grows in device memory (2 bytes per stored pair,
  // chained in small device-resident blocks); entries live in host memory.
  explicit StadiumHashTable(gpusim::ExecContext& ctx, StadiumConfig cfg = {});

  // Device-side insert: consults/extends the device index, then performs
  // exactly one remote write for the entry. Throws std::bad_alloc when the
  // device can no longer hold the index.
  void insert(std::string_view key, std::span<const std::byte> value);

  void insert_u64(std::string_view key, std::uint64_t v) {
    insert(key, std::as_bytes(std::span{&v, 1}));
  }

  // Device-side lookup: scans device fingerprints; remote-reads only
  // fingerprint matches. Returns all values stored under `key` (duplicates
  // are separate pairs, per the §VII critique).
  [[nodiscard]] std::vector<std::span<const std::byte>> lookup_all(
      std::string_view key);

  // Host-side iteration over the final content (no bus cost).
  void for_each(
      const std::function<void(std::string_view, std::span<const std::byte>)>&
          fn) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entry_count_.load(std::memory_order_relaxed);
  }
  // Device memory consumed by the fingerprint index.
  [[nodiscard]] std::size_t index_bytes() const noexcept {
    return index_blocks_used_.load(std::memory_order_relaxed) * kBlockBytes;
  }

  struct BucketLoad {
    std::uint64_t total_accesses = 0;
    std::uint64_t max_bucket_accesses = 0;
  };
  [[nodiscard]] BucketLoad bucket_load() const noexcept;

 private:
  // Device-resident fingerprint block: 14 tokens + a chain link, 32 bytes.
  static constexpr std::uint32_t kTokensPerBlock = 14;
  static constexpr std::size_t kBlockBytes = 40;
  struct FpBlock {
    gpusim::DevPtr next;
    std::uint16_t fp[kTokensPerBlock];
    std::uint16_t count;
    std::uint16_t pad_[1];
  };
  static_assert(sizeof(FpBlock) <= kBlockBytes);

  struct HostEntry {
    HostEntry* next;
    std::uint32_t key_len, val_len;
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1) +
             core::pad8(key_len);
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1) + core::pad8(key_len);
    }
  };

  [[nodiscard]] static std::uint16_t fingerprint(std::uint64_t hash) noexcept {
    return static_cast<std::uint16_t>(hash >> 32) | 1u;  // never 0
  }

  void* host_alloc(std::size_t bytes);
  gpusim::DevPtr new_block();

  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  StadiumConfig cfg_;
  std::uint32_t bucket_mask_;

  // Device-resident per-bucket index heads + host-resident entry heads.
  std::vector<std::atomic<gpusim::DevPtr>> index_heads_;
  std::vector<std::atomic<HostEntry*>> entry_heads_;  // pinned CPU memory
  // Lock + access tally per bucket on private cache lines
  // (gpusim::PaddedBucketLock); accesses incremented under the bucket lock.
  std::vector<gpusim::PaddedBucketLock> locks_;

  gpusim::DeviceLock host_lock_;
  std::vector<std::unique_ptr<std::byte[]>> host_chunks_;
  std::size_t used_in_chunk_ = 0;
  std::atomic<std::size_t> entry_count_{0};
  std::atomic<std::size_t> index_blocks_used_{0};
};

}  // namespace sepo::baselines
