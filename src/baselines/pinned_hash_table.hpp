// Pinned-in-CPU-memory hash table baseline (paper §VI-D).
//
// "We modified our dynamic memory allocator to pre-allocate its heap as a
// pinned CPU memory region (thus storing the content of the hash table in
// CPU memory). Everything else is kept in GPU memory for higher memory
// performance (e.g. locks)."
//
// GPU threads therefore dereference hash-table entries across the PCIe bus,
// one small transaction per access — the "many small PCIe transactions"
// whose cost the experiment demonstrates. The bucket array and its locks
// stay device-resident; entry reads (chain probes) and entry writes
// (materialization, combining) are metered on the bus's remote counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/entry_layout.hpp"
#include "core/sepo.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/launch.hpp"

namespace sepo::baselines {

struct PinnedHashTableConfig {
  core::Organization org = core::Organization::kCombining;
  std::uint32_t num_buckets = 1u << 15;
  core::CombineFn combiner = nullptr;
  std::size_t heap_chunk_bytes = 1u << 20;  // pinned-region growth step
};

class PinnedHashTable {
 public:
  // The context's device supplies the bus to meter and hosts the bucket
  // array + locks; remote traffic lands on the context's timeline via the
  // kernels that issue it (ExecContext::launch).
  PinnedHashTable(gpusim::ExecContext& ctx, PinnedHashTableConfig cfg);

  // Device-side insert. Never postpones: CPU memory is effectively
  // unbounded, which is this design's selling point — and its performance
  // trap.
  void insert(std::string_view key, std::span<const std::byte> value);

  void insert_u64(std::string_view key, std::uint64_t v) {
    insert(key, std::as_bytes(std::span{&v, 1}));
  }

  // Host-side read API (no bus cost: the data already lives in CPU memory).
  [[nodiscard]] std::optional<std::span<const std::byte>> lookup(
      std::string_view key) const;
  void for_each(
      const std::function<void(std::string_view, std::span<const std::byte>)>&
          fn) const;
  void for_each_group(
      const std::function<void(std::string_view,
                               const std::vector<std::span<const std::byte>>&)>&
          fn) const;
  [[nodiscard]] std::optional<std::vector<std::span<const std::byte>>>
  lookup_group(std::string_view key) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entry_count_.load(std::memory_order_relaxed);
  }

  struct BucketLoad {
    std::uint64_t total_accesses = 0;
    std::uint64_t max_bucket_accesses = 0;
  };
  [[nodiscard]] BucketLoad bucket_load() const noexcept;

 private:
  // Entries reuse the CPU layouts: native pointers within the pinned region.
  struct KvEntry {
    KvEntry* next;
    std::uint32_t key_len, val_len;
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1) +
             core::pad8(key_len);
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1) + core::pad8(key_len);
    }
  };
  struct ValueEntry {
    ValueEntry* next;
    std::uint32_t val_len, pad_;
    [[nodiscard]] const std::byte* value_data() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1);
    }
    [[nodiscard]] std::byte* value_data() noexcept {
      return reinterpret_cast<std::byte*>(this + 1);
    }
  };
  struct KeyEntry {
    KeyEntry* next;
    ValueEntry* vhead;
    std::uint32_t key_len, pad_;
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
  };

  void* pinned_alloc(std::size_t bytes);
  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<std::uint32_t>(hash) & bucket_mask_;
  }
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;

  void insert_basic(std::uint32_t b, std::string_view key,
                    std::span<const std::byte> value);
  void insert_combining(std::uint32_t b, std::string_view key,
                        std::span<const std::byte> value);
  void insert_multivalued(std::uint32_t b, std::string_view key,
                          std::span<const std::byte> value);

  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  PinnedHashTableConfig cfg_;
  std::uint32_t bucket_mask_;

  std::vector<std::atomic<void*>> heads_;       // device-resident
  // Lock + access tally per bucket on private cache lines (device-resident;
  // padding is host-only, see gpusim::PaddedBucketLock).
  std::vector<gpusim::PaddedBucketLock> locks_;

  gpusim::DeviceLock heap_lock_;                // pinned-region bump alloc
  std::vector<std::unique_ptr<std::byte[]>> heap_chunks_;
  std::size_t used_in_chunk_ = 0;
  std::atomic<std::size_t> entry_count_{0};
};

}  // namespace sepo::baselines
