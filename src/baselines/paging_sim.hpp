// Demand-paging lower-bound experiment (paper §VI-D, Table III).
//
// "We instrumented the code of PVC to record the access pattern to the hash
// table. We use this access pattern to simulate and then count the number of
// page replacements that demand paging hardware would have imposed...
// Multiplying this number by the page size yields the total amount of data
// that has to be transferred over the PCIe bus."
//
// TracedCombiningTable replays a PVC-style combining workload over a
// hypothetical unified hash table, recording the byte address of every
// memory touch (bucket head, chain probes, entry writes/updates).
// simulate_lru then plays the trace against an LRU page cache of a given
// size. As in the paper, pages are "initially GPU resident": faults are
// counted only once the cache is at capacity (replacements), so a memory
// size ≥ table size reports zero transfers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sepo::baselines {

// Combining hash table over a flat virtual address space that records every
// address it touches. Host-side and single-threaded: the trace order is the
// program order of the instrumented run.
class TracedCombiningTable {
 public:
  explicit TracedCombiningTable(std::uint32_t num_buckets = 1u << 15);

  // PVC-style insert of <key, +1>.
  void insert_count(std::string_view key);

  [[nodiscard]] const std::vector<std::uint64_t>& trace() const noexcept {
    return trace_;
  }
  // High-water mark of the virtual table (bucket array + entries), in bytes.
  [[nodiscard]] std::uint64_t table_bytes() const noexcept { return bump_; }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }

  // Host-side iteration over the final content: fn(key, count). Used to
  // digest the replayed table against the other implementations.
  template <typename Fn>
  void for_each_count(const Fn& fn) const {
    for (const Entry& e : entries_) fn(std::string_view{e.key}, e.count);
  }

 private:
  struct Entry {
    std::uint64_t addr;   // virtual address of this entry
    std::uint64_t count;  // PVC value
    std::uint32_t next;   // chain link (index into entries_), ~0u = null
    std::uint32_t key_len;
    std::string key;
  };

  std::uint32_t bucket_mask_;
  std::uint64_t bucket_base_ = 0;  // bucket array occupies the space start
  std::uint64_t bump_;             // next free virtual address
  std::vector<std::uint32_t> heads_;  // index into entries_, ~0u = null
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> trace_;
};

struct PagingResult {
  std::uint64_t replacements = 0;  // faults once the cache is full
  std::uint64_t bytes_transferred = 0;
  std::uint64_t accesses = 0;
  std::uint64_t pages_touched = 0;
};

// Plays `trace` (byte addresses) against an LRU cache of
// `mem_bytes / page_size` pages.
[[nodiscard]] PagingResult simulate_lru(std::span<const std::uint64_t> trace,
                                        std::uint64_t page_size,
                                        std::uint64_t mem_bytes);

}  // namespace sepo::baselines
