#include "baselines/stadium_hash_table.hpp"

#include <cstring>
#include <stdexcept>

#include "common/hashing.hpp"

namespace sepo::baselines {

StadiumHashTable::StadiumHashTable(gpusim::ExecContext& ctx, StadiumConfig cfg)
    : dev_(ctx.device()), stats_(ctx.stats()), cfg_(cfg) {
  if (cfg_.num_buckets == 0 || (cfg_.num_buckets & (cfg_.num_buckets - 1)))
    throw std::invalid_argument("num_buckets must be a power of two");
  bucket_mask_ = cfg_.num_buckets - 1;
  // Device-resident heads + locks footprint.
  dev_.alloc_static(static_cast<std::size_t>(cfg_.num_buckets) * 12);
  index_heads_ = std::vector<std::atomic<gpusim::DevPtr>>(cfg_.num_buckets);
  for (auto& h : index_heads_) h.store(gpusim::kDevNull);
  entry_heads_ = std::vector<std::atomic<HostEntry*>>(cfg_.num_buckets);
  for (auto& h : entry_heads_) h.store(nullptr);
  locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);
}

void* StadiumHashTable::host_alloc(std::size_t bytes) {
  bytes = (bytes + 7u) & ~std::size_t{7};
  stats_.add_alloc_ops();
  gpusim::DeviceLockGuard guard(host_lock_, stats_);
  if (host_chunks_.empty() ||
      used_in_chunk_ + bytes > cfg_.host_chunk_bytes) {
    host_chunks_.push_back(
        std::make_unique<std::byte[]>(cfg_.host_chunk_bytes));
    used_in_chunk_ = 0;
  }
  void* p = host_chunks_.back().get() + used_in_chunk_;
  used_in_chunk_ += bytes;
  return p;
}

gpusim::DevPtr StadiumHashTable::new_block() {
  // Throws std::bad_alloc when device memory is exhausted — the index, like
  // any non-SEPO device structure, has a hard ceiling.
  const gpusim::DevPtr p = dev_.alloc_static(kBlockBytes, 8);
  auto* b = dev_.ptr<FpBlock>(p);
  b->next = gpusim::kDevNull;
  b->count = 0;
  index_blocks_used_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void StadiumHashTable::insert(std::string_view key,
                              std::span<const std::byte> value) {
  stats_.add_hash_ops();
  const std::uint64_t h = hash_key(key);
  const auto b = static_cast<std::uint32_t>(h) & bucket_mask_;
  const std::uint16_t fp = fingerprint(h);

  // Materialize the entry in pinned CPU memory: this is the single remote
  // access of a Stadium insert.
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::size_t sz =
      sizeof(HostEntry) + core::pad8(key_len) + core::pad8(val_len);
  auto* e = static_cast<HostEntry*>(host_alloc(sz));
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  dev_.bus().remote(sz);

  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  // Record the fingerprint in the device-resident index (device-memory
  // work only; no bus traffic).
  gpusim::DevPtr head = index_heads_[b].load(std::memory_order_relaxed);
  FpBlock* blk = head == gpusim::kDevNull ? nullptr : dev_.ptr<FpBlock>(head);
  if (blk == nullptr || blk->count == kTokensPerBlock) {
    const gpusim::DevPtr np = new_block();
    auto* nb = dev_.ptr<FpBlock>(np);
    nb->next = head;
    index_heads_[b].store(np, std::memory_order_release);
    blk = nb;
  }
  blk->fp[blk->count++] = fp;

  // Entry list order must mirror the fingerprint order (newest first).
  e->next = entry_heads_[b].load(std::memory_order_relaxed);
  entry_heads_[b].store(e, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_inserts_new();
}

std::vector<std::span<const std::byte>> StadiumHashTable::lookup_all(
    std::string_view key) {
  stats_.add_hash_ops();
  const std::uint64_t h = hash_key(key);
  const auto b = static_cast<std::uint32_t>(h) & bucket_mask_;
  const std::uint16_t fp = fingerprint(h);

  std::vector<std::span<const std::byte>> out;
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;

  // Walk the device index and the host chain in lockstep: fingerprints are
  // stored newest-first in blocks, matching the entry list order.
  const HostEntry* e = entry_heads_[b].load(std::memory_order_acquire);
  for (gpusim::DevPtr p = index_heads_[b].load(std::memory_order_acquire);
       p != gpusim::kDevNull;) {
    const auto* blk = dev_.ptr<FpBlock>(p);
    for (int i = blk->count - 1; i >= 0; --i) {
      stats_.add_chain_links();  // device-resident token scan
      if (blk->fp[i] == fp) {
        // Fingerprint hit: confirm against the remote entry.
        dev_.bus().remote(sizeof(HostEntry) + e->key_len);
        stats_.add_key_compare_bytes(
            std::min<std::size_t>(e->key_len, key.size()));
        if (e->key() == key) {
          dev_.bus().remote(e->val_len);
          out.emplace_back(e->value_data(), e->val_len);
        }
      }
      e = e->next;
    }
    p = blk->next;
  }
  return out;
}

void StadiumHashTable::for_each(
    const std::function<void(std::string_view, std::span<const std::byte>)>&
        fn) const {
  for (const auto& head : entry_heads_)
    for (const auto* e = head.load(std::memory_order_acquire); e != nullptr;
         e = e->next)
      fn(e->key(), std::span{e->value_data(), e->val_len});
}

StadiumHashTable::BucketLoad StadiumHashTable::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses =
        std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

}  // namespace sepo::baselines
