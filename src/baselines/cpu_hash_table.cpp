#include "baselines/cpu_hash_table.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/hashing.hpp"

namespace sepo::baselines {

CpuHashTable::CpuHashTable(gpusim::RunStats& stats, CpuHashTableConfig cfg)
    : stats_(stats), cfg_(cfg) {
  if (cfg_.num_buckets == 0 || (cfg_.num_buckets & (cfg_.num_buckets - 1)))
    throw std::invalid_argument("num_buckets must be a power of two");
  if (cfg_.org == Organization::kCombining && cfg_.combiner == nullptr)
    throw std::invalid_argument("combining organization requires a combiner");
  bucket_mask_ = cfg_.num_buckets - 1;
  heads_ = std::vector<std::atomic<void*>>(cfg_.num_buckets);
  for (auto& h : heads_) h.store(nullptr, std::memory_order_relaxed);
  locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);
  arenas_ = std::vector<Arena>(cfg_.max_threads);
}

CpuHashTable::~CpuHashTable() = default;

void* CpuHashTable::arena_alloc(std::uint32_t tid, std::size_t bytes) {
  bytes = (bytes + 7u) & ~std::size_t{7};
  assert(bytes <= cfg_.arena_chunk_bytes);
  Arena& a = arenas_[tid % arenas_.size()];
  stats_.add_alloc_ops();
  if (a.chunks.empty() || a.used_in_chunk + bytes > cfg_.arena_chunk_bytes) {
    a.chunks.push_back(std::make_unique<std::byte[]>(cfg_.arena_chunk_bytes));
    a.used_in_chunk = 0;
  }
  void* p = a.chunks.back().get() + a.used_in_chunk;
  a.used_in_chunk += bytes;
  a.total_used += bytes;
  return p;
}

std::size_t CpuHashTable::allocated_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& a : arenas_) n += a.total_used;
  return n;
}

std::uint32_t CpuHashTable::bucket_of(std::string_view key) const noexcept {
  return bucket_of(hash_key(key));
}

void CpuHashTable::insert(std::uint32_t tid, std::string_view key,
                          std::span<const std::byte> value) {
  stats_.add_hash_ops();
  const std::uint32_t b = bucket_of(key);
  switch (cfg_.org) {
    case Organization::kBasic:
      insert_basic(tid, b, key, value);
      return;
    case Organization::kCombining:
      insert_combining(tid, b, key, value);
      return;
    case Organization::kMultiValued:
      insert_multivalued(tid, b, key, value);
      return;
  }
}

void CpuHashTable::insert_basic(std::uint32_t tid, std::uint32_t b,
                                std::string_view key,
                                std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  auto* e = static_cast<KvEntry*>(arena_alloc(
      tid, sizeof(KvEntry) + core::pad8(key_len) + core::pad8(val_len)));
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);

  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  e->next = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
  heads_[b].store(e, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_inserts_new();
}

void CpuHashTable::insert_combining(std::uint32_t tid, std::uint32_t b,
                                    std::string_view key,
                                    std::span<const std::byte> value) {
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  for (auto* e = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
       e != nullptr; e = e->next) {
    stats_.add_chain_links();
    stats_.add_key_compare_bytes(std::min<std::size_t>(e->key_len, key.size()));
    if (e->key() == key) {
      cfg_.combiner(e->value_data(), value.data(),
                    std::min<std::uint32_t>(e->val_len,
                                            static_cast<std::uint32_t>(value.size())));
      stats_.add_combines();
      return;
    }
  }
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  auto* e = static_cast<KvEntry*>(arena_alloc(
      tid, sizeof(KvEntry) + core::pad8(key_len) + core::pad8(val_len)));
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  e->next = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
  heads_[b].store(e, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_inserts_new();
}

void CpuHashTable::insert_multivalued(std::uint32_t tid, std::uint32_t b,
                                      std::string_view key,
                                      std::span<const std::byte> value) {
  const auto val_len = static_cast<std::uint32_t>(value.size());
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  KeyEntry* ke = nullptr;
  for (auto* e = static_cast<KeyEntry*>(heads_[b].load(std::memory_order_relaxed));
       e != nullptr; e = e->next) {
    stats_.add_chain_links();
    stats_.add_key_compare_bytes(std::min<std::size_t>(e->key_len, key.size()));
    if (e->key() == key) {
      ke = e;
      break;
    }
  }
  if (ke == nullptr) {
    const auto key_len = static_cast<std::uint32_t>(key.size());
    ke = static_cast<KeyEntry*>(
        arena_alloc(tid, sizeof(KeyEntry) + core::pad8(key_len)));
    ke->vhead = nullptr;
    ke->key_len = key_len;
    ke->pad_ = 0;
    std::memcpy(ke->key_data(), key.data(), key_len);
    ke->next = static_cast<KeyEntry*>(heads_[b].load(std::memory_order_relaxed));
    heads_[b].store(ke, std::memory_order_release);
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    stats_.add_inserts_new();
  }
  auto* ve = static_cast<ValueEntry*>(
      arena_alloc(tid, sizeof(ValueEntry) + core::pad8(val_len)));
  ve->val_len = val_len;
  ve->pad_ = 0;
  if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
  ve->next = ke->vhead;
  ke->vhead = ve;
  value_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_value_appends();
}

CpuHashTable::BucketLoad CpuHashTable::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses =
        std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

std::optional<std::span<const std::byte>> CpuHashTable::lookup(
    std::string_view key) const {
  for (const auto* e = static_cast<const KvEntry*>(
           heads_[bucket_of(key)].load(std::memory_order_acquire));
       e != nullptr; e = e->next)
    if (e->key() == key) return std::span{e->value_data(), e->val_len};
  return std::nullopt;
}

std::vector<std::span<const std::byte>> CpuHashTable::lookup_all(
    std::string_view key) const {
  std::vector<std::span<const std::byte>> out;
  for (const auto* e = static_cast<const KvEntry*>(
           heads_[bucket_of(key)].load(std::memory_order_acquire));
       e != nullptr; e = e->next)
    if (e->key() == key) out.emplace_back(e->value_data(), e->val_len);
  return out;
}

std::optional<std::vector<std::span<const std::byte>>>
CpuHashTable::lookup_group(std::string_view key) const {
  for (const auto* e = static_cast<const KeyEntry*>(
           heads_[bucket_of(key)].load(std::memory_order_acquire));
       e != nullptr; e = e->next) {
    if (e->key() != key) continue;
    std::vector<std::span<const std::byte>> vals;
    for (const auto* v = e->vhead; v != nullptr; v = v->next)
      vals.emplace_back(v->value_data(), v->val_len);
    return vals;
  }
  return std::nullopt;
}

void CpuHashTable::for_each(
    const std::function<void(std::string_view, std::span<const std::byte>)>&
        fn) const {
  for (const auto& head : heads_)
    for (const auto* e =
             static_cast<const KvEntry*>(head.load(std::memory_order_acquire));
         e != nullptr; e = e->next)
      fn(e->key(), std::span{e->value_data(), e->val_len});
}

void CpuHashTable::for_each_group(
    const std::function<void(std::string_view,
                             const std::vector<std::span<const std::byte>>&)>&
        fn) const {
  std::vector<std::span<const std::byte>> vals;
  for (const auto& head : heads_) {
    for (const auto* e =
             static_cast<const KeyEntry*>(head.load(std::memory_order_acquire));
         e != nullptr; e = e->next) {
      vals.clear();
      for (const auto* v = e->vhead; v != nullptr; v = v->next)
        vals.emplace_back(v->value_data(), v->val_len);
      fn(e->key(), vals);
    }
  }
}

}  // namespace sepo::baselines
