#include "baselines/pinned_hash_table.hpp"

#include <cstring>
#include <stdexcept>

#include "common/hashing.hpp"

namespace sepo::baselines {

PinnedHashTable::PinnedHashTable(gpusim::ExecContext& ctx,
                                 PinnedHashTableConfig cfg)
    : dev_(ctx.device()), stats_(ctx.stats()), cfg_(cfg) {
  if (cfg_.num_buckets == 0 || (cfg_.num_buckets & (cfg_.num_buckets - 1)))
    throw std::invalid_argument("num_buckets must be a power of two");
  if (cfg_.org == core::Organization::kCombining && cfg_.combiner == nullptr)
    throw std::invalid_argument("combining organization requires a combiner");
  bucket_mask_ = cfg_.num_buckets - 1;
  // Bucket array + locks are device-resident.
  dev_.alloc_static(static_cast<std::size_t>(cfg_.num_buckets) * 12);
  heads_ = std::vector<std::atomic<void*>>(cfg_.num_buckets);
  for (auto& h : heads_) h.store(nullptr, std::memory_order_relaxed);
  locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);
}

void* PinnedHashTable::pinned_alloc(std::size_t bytes) {
  bytes = (bytes + 7u) & ~std::size_t{7};
  stats_.add_alloc_ops();
  gpusim::DeviceLockGuard guard(heap_lock_, stats_);
  if (heap_chunks_.empty() ||
      used_in_chunk_ + bytes > cfg_.heap_chunk_bytes) {
    heap_chunks_.push_back(
        std::make_unique<std::byte[]>(cfg_.heap_chunk_bytes));
    used_in_chunk_ = 0;
  }
  void* p = heap_chunks_.back().get() + used_in_chunk_;
  used_in_chunk_ += bytes;
  return p;
}

std::uint32_t PinnedHashTable::bucket_of(std::string_view key) const noexcept {
  return bucket_of(hash_key(key));
}

void PinnedHashTable::insert(std::string_view key,
                             std::span<const std::byte> value) {
  stats_.add_hash_ops();
  const std::uint32_t b = bucket_of(key);
  switch (cfg_.org) {
    case core::Organization::kBasic:
      insert_basic(b, key, value);
      return;
    case core::Organization::kCombining:
      insert_combining(b, key, value);
      return;
    case core::Organization::kMultiValued:
      insert_multivalued(b, key, value);
      return;
  }
}

void PinnedHashTable::insert_basic(std::uint32_t b, std::string_view key,
                                   std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::size_t sz =
      sizeof(KvEntry) + core::pad8(key_len) + core::pad8(val_len);
  auto* e = static_cast<KvEntry*>(pinned_alloc(sz));

  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  e->next = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  dev_.bus().remote(sz);  // entry materialized across the bus
  heads_[b].store(e, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_inserts_new();
}

void PinnedHashTable::insert_combining(std::uint32_t b, std::string_view key,
                                       std::span<const std::byte> value) {
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  for (auto* e = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
       e != nullptr; e = e->next) {
    stats_.add_chain_links();
    // Each probe reads the remote entry header + key.
    dev_.bus().remote(sizeof(KvEntry) + e->key_len);
    stats_.add_key_compare_bytes(std::min<std::size_t>(e->key_len, key.size()));
    if (e->key() == key) {
      cfg_.combiner(e->value_data(), value.data(),
                    std::min<std::uint32_t>(
                        e->val_len, static_cast<std::uint32_t>(value.size())));
      // Read-modify-write of the remote value.
      dev_.bus().remote(2 * e->val_len);
      stats_.add_combines();
      return;
    }
  }
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::size_t sz =
      sizeof(KvEntry) + core::pad8(key_len) + core::pad8(val_len);
  auto* e = static_cast<KvEntry*>(pinned_alloc(sz));
  e->next = static_cast<KvEntry*>(heads_[b].load(std::memory_order_relaxed));
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  dev_.bus().remote(sz);
  heads_[b].store(e, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  stats_.add_inserts_new();
}

void PinnedHashTable::insert_multivalued(std::uint32_t b, std::string_view key,
                                         std::span<const std::byte> value) {
  const auto val_len = static_cast<std::uint32_t>(value.size());
  gpusim::DeviceLockGuard guard(locks_[b].lock, stats_);
  ++locks_[b].accesses;
  KeyEntry* ke = nullptr;
  for (auto* e = static_cast<KeyEntry*>(heads_[b].load(std::memory_order_relaxed));
       e != nullptr; e = e->next) {
    stats_.add_chain_links();
    dev_.bus().remote(sizeof(KeyEntry) + e->key_len);
    stats_.add_key_compare_bytes(std::min<std::size_t>(e->key_len, key.size()));
    if (e->key() == key) {
      ke = e;
      break;
    }
  }
  if (ke == nullptr) {
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const std::size_t ksz = sizeof(KeyEntry) + core::pad8(key_len);
    ke = static_cast<KeyEntry*>(pinned_alloc(ksz));
    ke->vhead = nullptr;
    ke->key_len = key_len;
    ke->pad_ = 0;
    std::memcpy(ke->key_data(), key.data(), key_len);
    ke->next = static_cast<KeyEntry*>(heads_[b].load(std::memory_order_relaxed));
    dev_.bus().remote(ksz);
    heads_[b].store(ke, std::memory_order_release);
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    stats_.add_inserts_new();
  }
  const std::size_t vsz = sizeof(ValueEntry) + core::pad8(val_len);
  auto* ve = static_cast<ValueEntry*>(pinned_alloc(vsz));
  ve->val_len = val_len;
  ve->pad_ = 0;
  if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
  ve->next = ke->vhead;
  // Write the value entry and update the remote key's list head.
  dev_.bus().remote(vsz + sizeof(void*));
  ke->vhead = ve;
  stats_.add_value_appends();
}

std::optional<std::span<const std::byte>> PinnedHashTable::lookup(
    std::string_view key) const {
  for (const auto* e = static_cast<const KvEntry*>(
           heads_[bucket_of(key)].load(std::memory_order_acquire));
       e != nullptr; e = e->next)
    if (e->key() == key) return std::span{e->value_data(), e->val_len};
  return std::nullopt;
}

std::optional<std::vector<std::span<const std::byte>>>
PinnedHashTable::lookup_group(std::string_view key) const {
  for (const auto* e = static_cast<const KeyEntry*>(
           heads_[bucket_of(key)].load(std::memory_order_acquire));
       e != nullptr; e = e->next) {
    if (e->key() != key) continue;
    std::vector<std::span<const std::byte>> vals;
    for (const auto* v = e->vhead; v != nullptr; v = v->next)
      vals.emplace_back(v->value_data(), v->val_len);
    return vals;
  }
  return std::nullopt;
}

void PinnedHashTable::for_each(
    const std::function<void(std::string_view, std::span<const std::byte>)>&
        fn) const {
  for (const auto& head : heads_)
    for (const auto* e =
             static_cast<const KvEntry*>(head.load(std::memory_order_acquire));
         e != nullptr; e = e->next)
      fn(e->key(), std::span{e->value_data(), e->val_len});
}

void PinnedHashTable::for_each_group(
    const std::function<void(std::string_view,
                             const std::vector<std::span<const std::byte>>&)>&
        fn) const {
  std::vector<std::span<const std::byte>> vals;
  for (const auto& head : heads_) {
    for (const auto* e = static_cast<const KeyEntry*>(
             head.load(std::memory_order_acquire));
         e != nullptr; e = e->next) {
      vals.clear();
      for (const auto* v = e->vhead; v != nullptr; v = v->next)
        vals.emplace_back(v->value_data(), v->val_len);
      fn(e->key(), vals);
    }
  }
}

PinnedHashTable::BucketLoad PinnedHashTable::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses =
        std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

}  // namespace sepo::baselines
