#include "baselines/paging_sim.hpp"

#include <list>
#include <unordered_map>

#include "common/hashing.hpp"
#include "core/entry_layout.hpp"

namespace sepo::baselines {

namespace {
constexpr std::uint32_t kNull = ~0u;
}

TracedCombiningTable::TracedCombiningTable(std::uint32_t num_buckets)
    : bucket_mask_(num_buckets - 1),
      bump_(static_cast<std::uint64_t>(num_buckets) * 16),  // bucket array
      heads_(num_buckets, kNull) {}

void TracedCombiningTable::insert_count(std::string_view key) {
  const std::uint32_t b =
      static_cast<std::uint32_t>(hash_key(key)) & bucket_mask_;
  // Touch the bucket head.
  trace_.push_back(bucket_base_ + static_cast<std::uint64_t>(b) * 16);
  for (std::uint32_t i = heads_[b]; i != kNull; i = entries_[i].next) {
    Entry& e = entries_[i];
    trace_.push_back(e.addr);  // probe reads the entry
    if (e.key == key) {
      ++e.count;
      trace_.push_back(e.addr + sizeof(core::KvEntry) +
                       core::pad8(e.key_len));  // value update
      return;
    }
  }
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const std::uint64_t sz = core::KvEntry::byte_size(key_len, 8);
  Entry e;
  e.addr = bump_;
  bump_ += sz;
  e.count = 1;
  e.next = heads_[b];
  e.key_len = key_len;
  e.key = std::string(key);
  heads_[b] = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(std::move(e));
  trace_.push_back(entries_.back().addr);  // entry write
}

PagingResult simulate_lru(std::span<const std::uint64_t> trace,
                          std::uint64_t page_size, std::uint64_t mem_bytes) {
  PagingResult result;
  const std::uint64_t capacity = mem_bytes / page_size;
  std::list<std::uint64_t> lru;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos;
  std::unordered_map<std::uint64_t, bool> ever_seen;

  for (const std::uint64_t addr : trace) {
    ++result.accesses;
    const std::uint64_t page = addr / page_size;
    if (!ever_seen[page]) {
      ever_seen[page] = true;
      ++result.pages_touched;
    }
    const auto it = pos.find(page);
    if (it != pos.end()) {
      lru.splice(lru.begin(), lru, it->second);  // hit: refresh
      continue;
    }
    // Miss. Cold fills (cache below capacity) are free: the paper counts
    // replacements only.
    if (pos.size() >= capacity && capacity > 0) {
      const std::uint64_t victim = lru.back();
      lru.pop_back();
      pos.erase(victim);
      ++result.replacements;
      result.bytes_transferred += page_size;
    }
    if (capacity > 0) {
      lru.push_front(page);
      pos[page] = lru.begin();
    } else {
      ++result.replacements;
      result.bytes_transferred += page_size;
    }
  }
  return result;
}

}  // namespace sepo::baselines
