// The GPU MapReduce runtime of §V: BigKernel input staging + the SEPO hash
// table as KV store + a thin scheduling layer. "We believe the SEPO model of
// computation makes our MapReduce runtime the first GPU-based MapReduce
// runtime that is capable of processing data larger than what GPU memory
// can hold."
#pragma once

#include <memory>
#include <string_view>

#include "bigkernel/pipeline.hpp"
#include "common/progress.hpp"
#include "core/hash_table.hpp"
#include "core/sepo_driver.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::mapreduce {

// §V: "the application programmer is asked to provide an input data
// partitioner function which partitions the input data into smaller chunks".
// The partitioner produces the record index; records are then grouped into
// chunks by the BigKernel pipeline. Defaults to newline splitting.
using Partitioner = std::function<RecordIndex(std::string_view)>;

struct RuntimeConfig {
  core::HashTableConfig table;          // org is overridden by the spec mode
  bigkernel::PipelineConfig pipeline;
  core::DriverConfig driver;
};

struct RunOutcome {
  core::DriverResult driver;
  std::unique_ptr<core::HostTable> table;  // references runtime-owned memory
};

class MapReduceRuntime {
 public:
  // Construction allocates the staging ring; the hash table (and its heap,
  // which claims all remaining device memory) is created per run().
  MapReduceRuntime(gpusim::ExecContext& ctx, RuntimeConfig cfg);

  // Executes the full MapReduce job over `input`. The returned HostTable
  // points into memory owned by this runtime; it remains valid until the
  // next run() or destruction.
  RunOutcome run(std::string_view input, const MrSpec& spec,
                 const Partitioner& partition = {});

  [[nodiscard]] core::SepoHashTable* table() noexcept { return table_.get(); }

 private:
  gpusim::ExecContext& ctx_;
  RuntimeConfig cfg_;
  bigkernel::InputPipeline pipeline_;
  std::unique_ptr<core::SepoHashTable> table_;
};

}  // namespace sepo::mapreduce
