#include "mapreduce/runtime.hpp"

#include <stdexcept>

#include "mapreduce/sepo_emitter.hpp"

namespace sepo::mapreduce {

MapReduceRuntime::MapReduceRuntime(gpusim::ExecContext& ctx, RuntimeConfig cfg)
    : ctx_(ctx), cfg_(cfg), pipeline_(ctx, cfg.pipeline) {}

RunOutcome MapReduceRuntime::run(std::string_view input, const MrSpec& spec,
                                 const Partitioner& partition) {
  if (table_)
    throw std::logic_error(
        "MapReduceRuntime::run may be called once per runtime: the heap "
        "claims all remaining device memory and cannot be re-carved");
  if (!spec.map) throw std::invalid_argument("spec.map is required");
  if (spec.mode == Mode::kMapReduce && spec.combine == nullptr)
    throw std::invalid_argument("MAP_REDUCE mode requires spec.combine");

  // Mode selects the bucket organization (§V): MAP_REDUCE embeds the reduce
  // into the map via the combining method; MAP_GROUP groups values via the
  // multi-valued method.
  core::HashTableConfig tcfg = cfg_.table;
  if (spec.mode == Mode::kMapReduce) {
    tcfg.org = core::Organization::kCombining;
    tcfg.combiner = spec.combine;
    tcfg.combiner_assoc_comm = spec.combine_assoc_comm;
  } else {
    tcfg.org = core::Organization::kMultiValued;
    tcfg.combiner = nullptr;
    tcfg.combiner_assoc_comm = false;
  }
  table_ = std::make_unique<core::SepoHashTable>(ctx_, tcfg);

  const RecordIndex index =
      partition ? partition(input) : index_lines(input);
  ProgressTracker progress(index.size(), /*multi_emit=*/true);

  core::SepoDriver driver(cfg_.driver);
  RunOutcome outcome;
  outcome.driver = driver.run(
      *table_, pipeline_, input, index, progress,
      [&](std::size_t rec, std::string_view body) {
        SepoEmitter em(*table_, progress, rec);
        spec.map(body, em);
        return em.failed() ? core::Status::kPostpone : core::Status::kSuccess;
      });
  outcome.table = std::make_unique<core::HostTable>(table_->finalize());
  return outcome;
}

}  // namespace sepo::mapreduce
