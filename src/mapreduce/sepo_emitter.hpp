// Emitter that inserts into a SEPO hash table with per-record resume
// tracking. Used by the MapReduce runtime (§V) and by the standalone
// applications whose records emit several KV pairs (Inverted Index, DNA
// Assembly, Netflix).
//
// Re-execution semantics: when a record's k-th emission is postponed, the
// record stays unprocessed and is re-executed in a later iteration; the
// resume counter makes the first k-1 (already accepted) emissions no-ops so
// nothing is double-inserted. Within one execution only the single virtual
// thread running the record touches its counter.
//
// Batched inserts (--batch-insert): ht_.insert accepts the record at
// buffer time and returns kSuccess immediately; a drain that later hits
// kPostpone re-queues the original record inside the table
// (SepoHashTable::retry_requeued), not through this resume path. The
// emitter still sees kPostpone for allocation failures surfaced
// synchronously on the scalar path or when a buffer add itself cannot
// proceed.
#pragma once

#include "common/progress.hpp"
#include "core/hash_table.hpp"
#include "mapreduce/spec.hpp"

namespace sepo::mapreduce {

class SepoEmitter final : public Emitter {
 public:
  SepoEmitter(core::SepoHashTable& ht, ProgressTracker& progress,
              std::size_t rec) noexcept
      : ht_(ht), progress_(progress), rec_(rec),
        resume_(progress.resume_point(rec)) {}

  core::Status emit(std::string_view key,
                    std::span<const std::byte> value) override {
    if (failed_) return core::Status::kPostpone;
    if (idx_ < resume_) {  // accepted in an earlier execution of this record
      ++idx_;
      return core::Status::kSuccess;
    }
    if (ht_.insert(key, value) == core::Status::kSuccess) {
      progress_.advance(rec_, idx_);
      ++idx_;
      return core::Status::kSuccess;
    }
    failed_ = true;
    return core::Status::kPostpone;
  }

  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  core::SepoHashTable& ht_;
  ProgressTracker& progress_;
  std::size_t rec_;
  std::uint32_t resume_;
  std::uint32_t idx_ = 0;
  bool failed_ = false;
};

}  // namespace sepo::mapreduce
