// MapReduce application spec shared by our runtime (§V) and the baseline
// runtimes (Phoenix++-style CPU, MapCG-style GPU).
//
// "The runtime leaves the core logic of the application to be implemented by
// the application programmer inside the map and reduce/combine functions."
// Map functions receive one input record and emit zero or more KV pairs
// through an Emitter; under SEPO an emit may be declined (kPostpone), in
// which case the map instance must stop and the whole record is re-executed
// in a later iteration (already-accepted leading emissions are skipped via
// the per-record resume counter, common/progress.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "core/entry_layout.hpp"
#include "core/sepo.hpp"

namespace sepo::mapreduce {

// §V: "Our MapReduce runtime can be configured by the programmer to work in
// the MAP_REDUCE or MAP_GROUP modes".
enum class Mode : std::uint8_t {
  kMapReduce = 0,  // combining organization + reduce/combine callback
  kMapGroup = 1,   // multi-valued organization, <key, values> output
};

[[nodiscard]] constexpr const char* to_string(Mode m) noexcept {
  return m == Mode::kMapReduce ? "MAP_REDUCE" : "MAP_GROUP";
}

// Sink for KV pairs produced by a map instance.
class Emitter {
 public:
  virtual ~Emitter() = default;

  // Returns kPostpone when the pair could not be stored now; the map
  // function must then return immediately without further emits.
  virtual core::Status emit(std::string_view key,
                            std::span<const std::byte> value) = 0;

  core::Status emit_u64(std::string_view key, std::uint64_t v) {
    return emit(key, std::as_bytes(std::span{&v, 1}));
  }
};

// One map instance per input record.
using MapFn = std::function<void(std::string_view record, Emitter&)>;

struct MrSpec {
  Mode mode = Mode::kMapReduce;
  MapFn map;
  // Reduce/combine callback for kMapReduce ("the reduce phase is embedded
  // into the map phase", §V). Ignored for kMapGroup.
  core::CombineFn combine = nullptr;
  // Declares `combine` associative AND commutative, licensing the batched
  // insert pipeline to pre-apply it inside per-worker CombineBuffers
  // (DESIGN.md §5d). Integer sum / OR / max qualify; f64 sum does not.
  bool combine_assoc_comm = false;
};

}  // namespace sepo::mapreduce
