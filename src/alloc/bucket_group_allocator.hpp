// Bucket-group dynamic memory allocator (paper §IV-A).
//
// "To make the allocator's service scalable, we distribute the allocation
// load onto multiple pages... we partition the hash table buckets into
// bucket groups, each containing n contiguous buckets, and we allocate
// memory for each bucket group from a different page."
//
// Each (group, page-class) pair has an active page; allocations bump within
// it and acquire a fresh page from the pool when it fills. When the pool is
// dry the allocation *fails*, which is the event the hash table converts
// into a POSTPONE response. The allocator tracks which groups are currently
// failing so the SEPO driver can implement the Basic-organization halt
// condition ("until the requests from 50% of the bucket groups are being
// postponed", §IV-C).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "alloc/host_heap.hpp"
#include "alloc/page_pool.hpp"
#include "gpusim/launch.hpp"

namespace sepo::alloc {

struct Allocation {
  DevPtr dev = gpusim::kDevNull;
  HostPtr host = kHostNull;
  std::uint32_t page = kInvalidPage;

  [[nodiscard]] bool ok() const noexcept { return dev != gpusim::kDevNull; }
};

class BucketGroupAllocator {
 public:
  // `num_classes` is 1 for the basic/combining organizations and 2 for the
  // multi-valued organization (separate key and value pages, §IV-B).
  BucketGroupAllocator(PagePool& pool, HostHeap& host_heap,
                       std::uint32_t num_groups, std::uint32_t num_classes = 1);

  [[nodiscard]] std::uint32_t num_groups() const noexcept { return num_groups_; }

  // Allocates `bytes` (8-byte aligned, must fit in a page) for `group` from
  // a page of class `cls`. On failure returns a null Allocation and marks
  // the group as postponing.
  Allocation alloc(std::uint32_t group, PageClass cls, std::uint32_t bytes,
                   gpusim::RunStats& stats) noexcept;

  // Number of groups whose most recent allocation attempt failed in the
  // current interval (since the last reset_postponed()).
  [[nodiscard]] std::uint32_t postponed_groups() const noexcept {
    return postponed_groups_.load(std::memory_order_relaxed);
  }

  void reset_postponed() noexcept;

  // Detaches and returns all active page ids (e.g. before a heap flush);
  // groups will acquire fresh pages on the next allocation. Appends to `out`.
  void detach_active_pages(std::vector<std::uint32_t>& out);

  // Detaches only active pages of class `cls` (multi-valued flushes value
  // pages while key pages may stay resident).
  void detach_active_pages(PageClass cls, std::vector<std::uint32_t>& out);

  // Moves pages that filled up and were replaced by fresh ones ("retired")
  // out of the allocator's bookkeeping and appends their ids to `out`.
  // Together with detach_active_pages this yields every page currently
  // owned by the allocator, which is what a heap flush operates on.
  void take_retired_pages(std::vector<std::uint32_t>& out);
  void take_retired_pages(PageClass cls, std::vector<std::uint32_t>& out);

  [[nodiscard]] PagePool& pool() noexcept { return pool_; }
  [[nodiscard]] HostHeap& host_heap() noexcept { return host_heap_; }

 private:
  struct Slot {
    gpusim::DeviceLock lock;
    std::uint32_t page = kInvalidPage;
  };

  [[nodiscard]] Slot& slot(std::uint32_t group, PageClass cls) noexcept {
    return slots_[static_cast<std::size_t>(group) * num_classes_ +
                  static_cast<std::uint32_t>(cls)];
  }

  void mark_postponed(std::uint32_t group) noexcept;

  void retire(std::uint32_t page, PageClass cls) noexcept;

  PagePool& pool_;
  HostHeap& host_heap_;
  std::uint32_t num_groups_;
  std::uint32_t num_classes_;
  std::vector<Slot> slots_;
  std::vector<std::atomic<std::uint8_t>> group_postponed_;
  std::atomic<std::uint32_t> postponed_groups_{0};
  gpusim::DeviceLock retired_lock_;
  std::vector<std::uint32_t> retired_[3];  // indexed by PageClass
};

}  // namespace sepo::alloc
