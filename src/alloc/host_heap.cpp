#include "alloc/host_heap.hpp"

#include <cstring>

namespace sepo::alloc {

void HostHeap::store_page(std::uint64_t slot, const std::byte* src,
                          std::size_t bytes) {
  assert(slot >= 1 && bytes <= page_size_);
  std::lock_guard<std::mutex> lk(mu_);
  if (blocks_.size() < slot) blocks_.resize(slot);
  auto& block = blocks_[slot - 1];
  if (!block) block = std::make_unique<std::byte[]>(page_size_);
  std::memcpy(block.get(), src, bytes);
}

}  // namespace sepo::alloc
