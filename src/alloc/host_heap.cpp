#include "alloc/host_heap.hpp"

#include <cstring>
#include <stdexcept>

namespace sepo::alloc {

HostHeap::~HostHeap() {
  for (auto& slot : dir_) {
    Chunk* chunk = slot.load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::size_t i = 0; i < kChunkSlots; ++i)
      delete[] chunk[i].load(std::memory_order_relaxed);
    delete[] chunk;
  }
}

HostHeap::Chunk* HostHeap::ensure_chunk(std::uint64_t c) {
  Chunk* chunk = dir_[c].load(std::memory_order_acquire);
  if (chunk != nullptr) return chunk;
  // Value-initialized: every slot pointer starts null, so a reader that
  // races a concurrent store_page sees "not stored yet", never garbage.
  Chunk* fresh = new Chunk[kChunkSlots]();
  if (dir_[c].compare_exchange_strong(chunk, fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
    return fresh;
  delete[] fresh;  // another writer published first; use theirs
  return chunk;
}

void HostHeap::store_page(std::uint64_t slot, const std::byte* src,
                          std::size_t bytes) {
  assert(slot >= 1 && bytes <= page_size_);
  if (slot > kChunkSlots * kMaxChunks)
    throw std::length_error(
        "HostHeap: mirror slot id exceeds directory capacity");
  const std::uint64_t id = slot - 1;
  Chunk* chunk = ensure_chunk(id / kChunkSlots);
  Chunk& cell = chunk[id % kChunkSlots];
  std::byte* block = cell.load(std::memory_order_acquire);
  if (block != nullptr) {
    // Re-store of a recycled page: refresh contents in place. The published
    // pointer never changes, so host addresses handed out earlier stay good.
    std::memcpy(block, src, bytes);
    return;
  }
  block = new std::byte[page_size_]{};
  std::memcpy(block, src, bytes);
  stored_bytes_.fetch_add(page_size_, std::memory_order_relaxed);
  // Release-publish: a reader that acquire-loads this pointer observes the
  // fully written page contents.
  cell.store(block, std::memory_order_release);
}

}  // namespace sepo::alloc
