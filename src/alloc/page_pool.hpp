// Page pool over the device heap (paper §IV-A).
//
// The heap is pre-allocated in device memory — sized to whatever is left
// after all static structures — and partitioned into fixed-size pages from
// which allocation requests are serviced. Pages are acquired and released
// through a lock-free Treiber stack of page indices.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/journal.hpp"

namespace sepo::alloc {

using gpusim::DevPtr;

inline constexpr std::uint32_t kInvalidPage = 0xffffffffu;

// Host-visible address of a byte inside the mirror heap. 0 is null.
using HostPtr = std::uint64_t;
inline constexpr HostPtr kHostNull = 0;

enum class PageClass : std::uint8_t {
  kGeneric = 0,  // basic / combining organizations
  kKey = 1,      // multi-valued: key entries
  kValue = 2,    // multi-valued: value entries
};

class PagePool {
 public:
  // Claims `heap_bytes` of device memory (use dev.mem_free() for "all that
  // remains") and partitions it into pages of `page_size` bytes. Throws
  // std::invalid_argument unless page_size is a power of two >= 64 — a
  // mis-sized heap partition must not slip through release builds.
  PagePool(gpusim::Device& dev, std::size_t heap_bytes, std::size_t page_size);

  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::uint32_t page_count() const noexcept {
    return static_cast<std::uint32_t>(pages_.size());
  }
  [[nodiscard]] std::size_t heap_bytes() const noexcept {
    return page_size_ * pages_.size();
  }

  // Pops a free page; returns kInvalidPage when the pool is dry (the event
  // that makes the hash table POSTPONE inserts).
  std::uint32_t acquire(gpusim::RunStats& stats) noexcept;

  // Returns a page to the pool. A double release (no intervening acquire)
  // would corrupt the free stack and double-count free_count_, so the guard
  // is unconditional: the losing caller's release is rejected (returns
  // false), counted in `stats` when provided.
  bool release(std::uint32_t page, gpusim::RunStats* stats = nullptr) noexcept;

  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return free_count_.load(std::memory_order_relaxed);
  }

  // Installs a flight-recorder journal (non-owning; null disables). Must be
  // wired before the first kernel launches: acquire/release run inside
  // kernels and read the pointer unsynchronized, relying on job publication
  // for the happens-before (same as the counter shards).
  void set_journal(gpusim::EventJournal* journal) noexcept {
    journal_ = journal;
  }

  // Device base address of `page`.
  [[nodiscard]] DevPtr page_base(std::uint32_t page) const noexcept {
    return heap_base_ + static_cast<DevPtr>(page) * page_size_;
  }

  // --- Per-page metadata (host side; a real implementation would keep this
  // in device memory beside the heap, the layout is an implementation
  // detail the paper leaves open). ---

  struct PageMeta {
    std::atomic<std::uint32_t> used{0};        // bump offset within the page
    std::atomic<std::uint32_t> pending_keys{0};// multi-valued §IV-C bookkeeping
    std::atomic<std::uint64_t> host_slot{0};   // 1-based mirror-heap slot; 0 = none
    PageClass cls = PageClass::kGeneric;
    std::uint32_t owner_group = 0;
    std::atomic<bool> in_pool{true};
  };

  [[nodiscard]] PageMeta& meta(std::uint32_t page) noexcept {
    return pages_[page];
  }
  [[nodiscard]] const PageMeta& meta(std::uint32_t page) const noexcept {
    return pages_[page];
  }

 private:
  std::size_t page_size_;
  DevPtr heap_base_;
  std::vector<PageMeta> pages_;
  std::vector<std::atomic<std::uint32_t>> next_;  // Treiber stack links
  // Head packs {aba_tag:32, page:32} to dodge ABA.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint32_t> free_count_{0};
  gpusim::EventJournal* journal_ = nullptr;
};

}  // namespace sepo::alloc
