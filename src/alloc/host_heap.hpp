// Host mirror heap: the CPU-memory destination of flushed device pages.
//
// The paper (§III-B) stores *two* pointers per link "where ordinarily one
// would be used: one is based on the location of contents in GPU memory and
// another is based on the eventual location of contents in CPU memory". The
// "eventual location" is made possible by reserving a mirror-heap slot for a
// device page the moment the page is acquired — every byte allocated from
// the page therefore has a known host address long before the page is
// actually copied back.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/page_pool.hpp"

namespace sepo::alloc {

class HostHeap {
 public:
  explicit HostHeap(std::size_t page_size) : page_size_(page_size) {}

  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }

  // Reserves the next mirror slot; returns its 1-based slot id. Thread-safe.
  std::uint64_t reserve_slot() noexcept {
    return next_slot_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Host address for offset `off` within slot `slot`.
  [[nodiscard]] HostPtr addr(std::uint64_t slot, std::uint32_t off) const noexcept {
    assert(slot >= 1 && off < page_size_);
    return slot * page_size_ + off;
  }

  // Copies `bytes` bytes of page content into the storage of `slot`.
  // Called once per (slot) at flush time; allocates the backing block.
  void store_page(std::uint64_t slot, const std::byte* src, std::size_t bytes);

  // Raw access to the byte at host address `p`. Valid only after the
  // containing slot was stored.
  template <typename T = std::byte>
  [[nodiscard]] const T* ptr(HostPtr p) const noexcept {
    assert(p != kHostNull);
    const std::uint64_t slot = p / page_size_;
    const std::uint64_t off = p % page_size_;
    assert(slot - 1 < blocks_.size() && blocks_[slot - 1]);
    return reinterpret_cast<const T*>(blocks_[slot - 1].get() + off);
  }

  template <typename T = std::byte>
  [[nodiscard]] T* mutable_ptr(HostPtr p) noexcept {
    return const_cast<T*>(ptr<T>(p));
  }

  [[nodiscard]] bool slot_stored(std::uint64_t slot) const noexcept {
    return slot >= 1 && slot - 1 < blocks_.size() &&
           blocks_[slot - 1] != nullptr;
  }

  // Total bytes of host memory holding flushed pages.
  [[nodiscard]] std::size_t stored_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& b : blocks_)
      if (b) n += page_size_;
    return n;
  }

  [[nodiscard]] std::uint64_t reserved_slots() const noexcept {
    return next_slot_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t page_size_;
  std::atomic<std::uint64_t> next_slot_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;  // index = slot-1
};

}  // namespace sepo::alloc
