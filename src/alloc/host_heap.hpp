// Host mirror heap: the CPU-memory destination of flushed device pages.
//
// The paper (§III-B) stores *two* pointers per link "where ordinarily one
// would be used: one is based on the location of contents in GPU memory and
// another is based on the eventual location of contents in CPU memory". The
// "eventual location" is made possible by reserving a mirror-heap slot for a
// device page the moment the page is acquired — every byte allocated from
// the page therefore has a known host address long before the page is
// actually copied back.
//
// Concurrency: lock-free per-slot publication. The previous design kept the
// slot table in a std::vector guarded by a global mutex — but only the
// writer took it, so a concurrent reader could observe the vector
// mid-resize; and under the batched insert pipeline several drains can
// flush-and-read in flight at once. Now the slot table is a fixed two-level
// directory of atomics: chunks are CAS-published, block pointers are
// release-stored exactly once per slot, and readers acquire-load both
// levels. Nothing is ever moved or freed before the heap dies, so a
// published pointer stays valid for the heap's lifetime.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "alloc/page_pool.hpp"

namespace sepo::alloc {

class HostHeap {
 public:
  explicit HostHeap(std::size_t page_size) : page_size_(page_size) {
    for (auto& c : dir_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~HostHeap();
  HostHeap(const HostHeap&) = delete;
  HostHeap& operator=(const HostHeap&) = delete;

  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }

  // Reserves the next mirror slot; returns its 1-based slot id. Thread-safe.
  std::uint64_t reserve_slot() noexcept {
    return next_slot_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Host address for offset `off` within slot `slot`.
  [[nodiscard]] HostPtr addr(std::uint64_t slot, std::uint32_t off) const noexcept {
    assert(slot >= 1 && off < page_size_);
    return slot * page_size_ + off;
  }

  // Copies `bytes` bytes of page content into the storage of `slot`,
  // allocating and release-publishing the backing block on first store.
  // A re-store (the device page was recycled and flushed again) reuses the
  // block in place: the published pointer never changes. Thread-safe
  // against readers of *other* slots and concurrent stores of other slots;
  // stores to the same slot are serialized by the flush protocol.
  void store_page(std::uint64_t slot, const std::byte* src, std::size_t bytes);

  // Raw access to the byte at host address `p`. Valid only after the
  // containing slot was stored.
  template <typename T = std::byte>
  [[nodiscard]] const T* ptr(HostPtr p) const noexcept {
    assert(p != kHostNull);
    const std::uint64_t slot = p / page_size_;
    const std::uint64_t off = p % page_size_;
    const std::byte* block = slot_block(slot);
    assert(block != nullptr && "slot read before store_page published it");
    return reinterpret_cast<const T*>(block + off);
  }

  template <typename T = std::byte>
  [[nodiscard]] T* mutable_ptr(HostPtr p) noexcept {
    return const_cast<T*>(ptr<T>(p));
  }

  [[nodiscard]] bool slot_stored(std::uint64_t slot) const noexcept {
    return slot >= 1 && slot_block(slot) != nullptr;
  }

  // Total bytes of host memory holding flushed pages.
  [[nodiscard]] std::size_t stored_bytes() const noexcept {
    return stored_bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t reserved_slots() const noexcept {
    return next_slot_.load(std::memory_order_relaxed);
  }

 private:
  // Two-level slot directory: dir_[slot_chunk] -> array of kChunkSlots
  // atomic block pointers. 8Ki chunks x 1Ki slots = 8.4M mirror slots; every
  // stored slot costs a real page of host RAM, so any run near this ceiling
  // would have exhausted memory long before. The directory itself is a 64 KiB
  // inline member — cheap enough for stack- and member-embedded heaps.
  static constexpr std::size_t kChunkSlots = 1024;
  static constexpr std::size_t kMaxChunks = 8 * 1024;
  using Chunk = std::atomic<std::byte*>;

  // Acquire-loads the block pointer for `slot` (null = not stored yet).
  [[nodiscard]] const std::byte* slot_block(std::uint64_t slot) const noexcept {
    const std::uint64_t id = slot - 1;
    const std::uint64_t c = id / kChunkSlots;
    assert(c < kMaxChunks);
    const Chunk* chunk = dir_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) return nullptr;
    return chunk[id % kChunkSlots].load(std::memory_order_acquire);
  }

  [[nodiscard]] Chunk* ensure_chunk(std::uint64_t c);

  std::size_t page_size_;
  std::atomic<std::uint64_t> next_slot_{0};
  std::atomic<std::size_t> stored_bytes_{0};
  mutable std::atomic<Chunk*> dir_[kMaxChunks];
};

}  // namespace sepo::alloc
