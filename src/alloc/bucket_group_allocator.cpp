#include "alloc/bucket_group_allocator.hpp"

#include <cassert>

namespace sepo::alloc {

BucketGroupAllocator::BucketGroupAllocator(PagePool& pool, HostHeap& host_heap,
                                           std::uint32_t num_groups,
                                           std::uint32_t num_classes)
    : pool_(pool),
      host_heap_(host_heap),
      num_groups_(num_groups),
      num_classes_(num_classes),
      slots_(static_cast<std::size_t>(num_groups) * num_classes),
      group_postponed_(num_groups) {
  assert(num_groups > 0 && num_classes >= 1 && num_classes <= 3);
  for (auto& f : group_postponed_) f.store(0, std::memory_order_relaxed);
}

Allocation BucketGroupAllocator::alloc(std::uint32_t group, PageClass cls,
                                       std::uint32_t bytes,
                                       gpusim::RunStats& stats) noexcept {
  stats.add_alloc_ops();
  bytes = (bytes + 7u) & ~7u;
  // A request that can never fit in a page can never be serviced, in this
  // or any later iteration; fail it without burning a page.
  if (bytes == 0 || bytes > pool_.page_size()) {
    mark_postponed(group);
    stats.add_alloc_fails();
    return {};
  }

  Slot& s = slot(group, cls);
  gpusim::DeviceLockGuard guard(s.lock, stats);

  std::uint32_t page = s.page;
  const auto page_size = static_cast<std::uint32_t>(pool_.page_size());

  if (page != kInvalidPage) {
    auto& m = pool_.meta(page);
    const std::uint32_t off = m.used.load(std::memory_order_relaxed);
    if (off + bytes <= page_size) {
      m.used.store(off + bytes, std::memory_order_relaxed);
      const std::uint64_t slot_id = m.host_slot.load(std::memory_order_relaxed);
      return {pool_.page_base(page) + off, host_heap_.addr(slot_id, off), page};
    }
  }

  // Active page missing or full: acquire a fresh page from the pool.
  const std::uint32_t fresh = pool_.acquire(stats);
  if (fresh == kInvalidPage) {
    mark_postponed(group);
    stats.add_alloc_fails();
    return {};
  }
  if (page != kInvalidPage) retire(page, cls);
  auto& m = pool_.meta(fresh);
  m.cls = cls;
  m.owner_group = group;
  m.host_slot.store(host_heap_.reserve_slot(), std::memory_order_relaxed);
  m.used.store(bytes, std::memory_order_relaxed);
  s.page = fresh;
  const std::uint64_t slot_id = m.host_slot.load(std::memory_order_relaxed);
  return {pool_.page_base(fresh), host_heap_.addr(slot_id, 0), fresh};
}

void BucketGroupAllocator::mark_postponed(std::uint32_t group) noexcept {
  if (group_postponed_[group].exchange(1, std::memory_order_relaxed) == 0)
    postponed_groups_.fetch_add(1, std::memory_order_relaxed);
}

void BucketGroupAllocator::reset_postponed() noexcept {
  for (auto& f : group_postponed_) f.store(0, std::memory_order_relaxed);
  postponed_groups_.store(0, std::memory_order_relaxed);
}

void BucketGroupAllocator::detach_active_pages(std::vector<std::uint32_t>& out) {
  for (auto& s : slots_) {
    if (s.page != kInvalidPage) {
      out.push_back(s.page);
      s.page = kInvalidPage;
    }
  }
}

void BucketGroupAllocator::detach_active_pages(PageClass cls,
                                               std::vector<std::uint32_t>& out) {
  for (std::uint32_t g = 0; g < num_groups_; ++g) {
    Slot& s = slot(g, cls);
    if (s.page != kInvalidPage) {
      out.push_back(s.page);
      s.page = kInvalidPage;
    }
  }
}

void BucketGroupAllocator::retire(std::uint32_t page, PageClass cls) noexcept {
  // Rare event (once per page fill); a short critical section is fine.
  while (!retired_lock_.try_lock()) {
  }
  retired_[static_cast<std::uint32_t>(cls)].push_back(page);
  retired_lock_.unlock();
}

void BucketGroupAllocator::take_retired_pages(std::vector<std::uint32_t>& out) {
  while (!retired_lock_.try_lock()) {
  }
  for (auto& list : retired_) {
    out.insert(out.end(), list.begin(), list.end());
    list.clear();
  }
  retired_lock_.unlock();
}

void BucketGroupAllocator::take_retired_pages(PageClass cls,
                                              std::vector<std::uint32_t>& out) {
  while (!retired_lock_.try_lock()) {
  }
  auto& list = retired_[static_cast<std::uint32_t>(cls)];
  out.insert(out.end(), list.begin(), list.end());
  list.clear();
  retired_lock_.unlock();
}

}  // namespace sepo::alloc
