#include "alloc/page_pool.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace sepo::alloc {

namespace {
constexpr std::uint64_t pack(std::uint32_t tag, std::uint32_t page) {
  return (static_cast<std::uint64_t>(tag) << 32) | page;
}
constexpr std::uint32_t head_page(std::uint64_t h) {
  return static_cast<std::uint32_t>(h & 0xffffffffu);
}
constexpr std::uint32_t head_tag(std::uint64_t h) {
  return static_cast<std::uint32_t>(h >> 32);
}
}  // namespace

PagePool::PagePool(gpusim::Device& dev, std::size_t heap_bytes,
                   std::size_t page_size)
    : page_size_(page_size) {
  if (page_size < 64 || (page_size & (page_size - 1)) != 0)
    throw std::invalid_argument(
        "PagePool: page_size must be a power of two >= 64, got " +
        std::to_string(page_size));
  const std::size_t n = heap_bytes / page_size;
  heap_base_ = dev.alloc_static(n * page_size, /*align=*/64);
  pages_ = std::vector<PageMeta>(n);
  next_ = std::vector<std::atomic<std::uint32_t>>(n);
  // Thread all pages onto the free stack: 0 -> 1 -> ... -> n-1 -> invalid.
  for (std::size_t i = 0; i < n; ++i)
    next_[i].store(i + 1 < n ? static_cast<std::uint32_t>(i + 1) : kInvalidPage,
                   std::memory_order_relaxed);
  head_.store(pack(0, n > 0 ? 0 : kInvalidPage), std::memory_order_relaxed);
  free_count_.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
}

std::uint32_t PagePool::acquire(gpusim::RunStats& stats) noexcept {
  std::uint64_t h = head_.load(std::memory_order_acquire);
  while (true) {
    const std::uint32_t page = head_page(h);
    if (page == kInvalidPage) return kInvalidPage;
    const std::uint32_t nxt = next_[page].load(std::memory_order_relaxed);
    const std::uint64_t want = pack(head_tag(h) + 1, nxt);
    if (head_.compare_exchange_weak(h, want, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      const std::uint32_t left =
          free_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
      stats.add_page_acquires();
      if (journal_ != nullptr)
        journal_->record(gpusim::JournalEventKind::kPageAcquire, page, left);
      PageMeta& m = pages_[page];
      const bool was_in_pool = m.in_pool.exchange(false, std::memory_order_relaxed);
      assert(was_in_pool);
      (void)was_in_pool;
      m.used.store(0, std::memory_order_relaxed);
      m.pending_keys.store(0, std::memory_order_relaxed);
      return page;
    }
    stats.add_atomic_retries();
  }
}

bool PagePool::release(std::uint32_t page, gpusim::RunStats* stats) noexcept {
  PageMeta& m = pages_[page];
  // Claim the release with one atomic swap: of two racing (or sequential)
  // releases of the same page, exactly one sees in_pool == false and pushes;
  // the other is rejected instead of corrupting the free stack.
  if (m.in_pool.exchange(true, std::memory_order_acq_rel)) {
    if (stats != nullptr) stats->add_page_double_releases();
    if (journal_ != nullptr)
      journal_->record(gpusim::JournalEventKind::kPageDoubleRelease, page);
    return false;
  }
  m.host_slot.store(0, std::memory_order_relaxed);
  std::uint64_t h = head_.load(std::memory_order_acquire);
  while (true) {
    next_[page].store(head_page(h), std::memory_order_relaxed);
    const std::uint64_t want = pack(head_tag(h) + 1, page);
    if (head_.compare_exchange_weak(h, want, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      const std::uint32_t now_free =
          free_count_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (journal_ != nullptr)
        journal_->record(gpusim::JournalEventKind::kPageRelease, page,
                         now_free);
      return true;
    }
  }
}

}  // namespace sepo::alloc
