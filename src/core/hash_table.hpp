// The SEPO hash table (paper §IV): closed addressing with separate chaining,
// entries dynamically allocated from the bucket-group allocator, growable
// beyond device memory via the SEPO iteration protocol.
//
// Device-side operations (insert) are called from kernel code; the iteration
// protocol (begin_iteration / end_iteration / finalize) is called from the
// host between kernel launches, exactly as in Figure 5.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "alloc/bucket_group_allocator.hpp"
#include "alloc/host_heap.hpp"
#include "alloc/page_pool.hpp"
#include "core/entry_layout.hpp"
#include "core/host_table.hpp"
#include "core/sepo.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::core {

struct HashTableConfig {
  Organization org = Organization::kCombining;
  std::uint32_t num_buckets = 1u << 14;     // power of two
  // §IV-A trade-off knob. Keep groups x page-classes x page_size well below
  // the heap: every group holds partially-filled active pages, and too many
  // groups strand the heap in fragmentation (more SEPO iterations).
  std::uint32_t buckets_per_group = 512;
  std::size_t page_size = 8u << 10;
  CombineFn combiner = nullptr;             // required for kCombining
  // Heap size: 0 = take all remaining device memory (paper §IV-A).
  std::size_t heap_bytes = 0;
  // Multi-valued livelock valve (see DESIGN.md "resident-key cap"): when
  // key pages kept resident for pending values exceed this fraction of the
  // pool, they are flushed anyway. Retried records then materialize a
  // duplicate key entry in the same bucket; HostTable merges duplicates at
  // read time.
  double max_resident_key_frac = 0.5;
};

struct HashTableStats {
  std::uint64_t resident_entry_bytes = 0;  // bytes currently in device pages
  std::uint64_t flushed_bytes = 0;         // total bytes ever flushed to host
  std::uint64_t flush_pages = 0;           // pages flushed
  std::uint64_t table_bytes = 0;           // flushed + resident (table size)
};

class SepoHashTable {
 public:
  SepoHashTable(gpusim::ExecContext& ctx, HashTableConfig cfg);

  SepoHashTable(const SepoHashTable&) = delete;
  SepoHashTable& operator=(const SepoHashTable&) = delete;

  [[nodiscard]] const HashTableConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return allocator_->num_groups();
  }

  // ------- device-side API (called from kernels) -------

  // Inserts <key, value> according to the configured organization.
  // Returns kPostpone when the required memory could not be allocated;
  // the caller must leave the task unmarked and re-issue it next iteration.
  Status insert(std::string_view key, std::span<const std::byte> value);

  // Convenience for 8-byte values.
  Status insert_u64(std::string_view key, std::uint64_t value) {
    return insert(key, std::as_bytes(std::span{&value, 1}));
  }

  // Device-side lookup over the *resident* chain (current-iteration data).
  // Returns nullptr when the key is not resident. Used by tests and by the
  // SEPO-lookup extension; population-phase apps only insert.
  [[nodiscard]] const KvEntry* find_resident(std::string_view key) const;

  // ------- SEPO iteration protocol (host side, Figure 5) -------

  // Prepares a new iteration: clears postpone flags and pending-key marks,
  // and (multi-valued) rebuilds the device chains from resident key pages.
  void begin_iteration();

  // Basic organization halt condition: true when at least
  // `halt_frac * num_groups` bucket groups are currently postponing.
  [[nodiscard]] bool should_halt(double halt_frac) const noexcept;

  // Ends an iteration: flushes heap pages to the host mirror heap according
  // to the organization's policy (Figure 5) and returns them to the pool.
  void end_iteration();

  // Flushes everything still resident and returns the host-side table view.
  // The hash table must not be used for inserts afterwards.
  HostTable finalize();

  // ------- introspection -------

  // Per-bucket access totals, used by the cost model's lock-serialization
  // term (DESIGN.md §5): on a GPU, thousands of concurrent threads hitting
  // one hot bucket serialize on its lock (the paper's Word Count §VI-B).
  struct BucketLoad {
    std::uint64_t total_accesses = 0;
    std::uint64_t max_bucket_accesses = 0;
  };
  [[nodiscard]] BucketLoad bucket_load() const noexcept;

  [[nodiscard]] HashTableStats table_stats() const noexcept;

  // Histogram of *resident* (device-side) chain lengths: result[n] = number
  // of buckets whose device chain currently holds n entries; the last bin
  // aggregates everything >= its index. Walks every bucket — call between
  // kernels, for telemetry.
  [[nodiscard]] std::vector<std::uint64_t> resident_chain_histogram(
      std::size_t max_len = 16) const;

  [[nodiscard]] std::uint32_t free_pages() const noexcept {
    return pool_pages_->free_count();
  }
  // Pages currently seized by an injected memory-pressure spike; 0 without
  // fault injection. Read by the occupancy sampler (SepoDriver).
  [[nodiscard]] std::uint32_t pressure_page_count() const noexcept {
    return static_cast<std::uint32_t>(pressure_pages_.size());
  }
  [[nodiscard]] gpusim::RunStats& run_stats() noexcept { return stats_; }
  [[nodiscard]] alloc::HostHeap& host_heap() noexcept { return *host_heap_; }
  [[nodiscard]] alloc::BucketGroupAllocator& allocator() noexcept {
    return *allocator_;
  }
  [[nodiscard]] alloc::PagePool& page_pool() noexcept { return *pool_pages_; }

 private:
  struct Bucket {
    std::atomic<DevPtr> head_dev{gpusim::kDevNull};
    HostPtr head_host = alloc::kHostNull;  // guarded by the bucket lock
  };

  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;
  [[nodiscard]] std::uint32_t group_of(std::uint32_t bucket) const noexcept {
    return bucket / cfg_.buckets_per_group;
  }

  Status insert_basic(std::uint32_t b, std::string_view key,
                      std::span<const std::byte> value);
  Status insert_combining(std::uint32_t b, std::string_view key,
                          std::span<const std::byte> value);
  Status insert_multivalued(std::uint32_t b, std::string_view key,
                            std::span<const std::byte> value);

  // Walks the device chain of bucket `b` for `key`; returns entry dev ptr or
  // null. Counts probe work. Caller holds the bucket lock.
  [[nodiscard]] DevPtr find_in_chain(std::uint32_t b, std::string_view key) const;
  [[nodiscard]] DevPtr find_key_entry(std::uint32_t b, std::string_view key) const;

  // Flush helpers.
  void flush_pages(const std::vector<std::uint32_t>& pages);
  void rebuild_device_chains();

  // Fault injection: seizes / returns heap pages to model a device-memory
  // pressure spike (gpusim::FaultInjector). A shrunken pool makes the
  // allocator POSTPONE sooner — degradation through extra SEPO iterations,
  // never wrong answers.
  void apply_pressure();

  gpusim::ExecContext& ctx_;
  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  HashTableConfig cfg_;
  std::uint32_t bucket_mask_;

  std::unique_ptr<alloc::PagePool> pool_pages_;
  std::unique_ptr<alloc::HostHeap> host_heap_;
  std::unique_ptr<alloc::BucketGroupAllocator> allocator_;

  std::vector<Bucket> buckets_;
  // Lock + access tally per bucket, each on its own cache line
  // (gpusim::PaddedBucketLock) so concurrent inserts to *different* buckets
  // never false-share. Device-memory accounting still charges the compact
  // lock+counter footprint (see the ctor) — the padding is host-only.
  std::vector<gpusim::PaddedBucketLock> bucket_locks_;

  // Multi-valued: key pages kept resident across iterations because some of
  // their keys still await values (paper §IV-C).
  std::vector<std::uint32_t> resident_key_pages_;

  // Pages seized by an injected memory-pressure spike (not usable by the
  // allocator until the spike passes).
  std::vector<std::uint32_t> pressure_pages_;

  std::uint64_t flushed_bytes_ = 0;
  std::uint64_t flush_pages_ = 0;
  bool finalized_ = false;
};

}  // namespace sepo::core
