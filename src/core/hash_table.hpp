// The SEPO hash table (paper §IV): closed addressing with separate chaining,
// entries dynamically allocated from the bucket-group allocator, growable
// beyond device memory via the SEPO iteration protocol.
//
// Layered (DESIGN.md §2): SepoHashTable is a thin iteration-protocol facade
// composing a BucketChainStore (bucket_store.hpp — layout, locks, allocator,
// flush mechanism) with an OrganizationPolicy (organization_policy.hpp — the
// Figure-5 per-organization insert/flush/residency rules). The public API is
// unchanged from the pre-layered table.
//
// Device-side operations (insert) are called from kernel code; the iteration
// protocol (begin_iteration / end_iteration / finalize) is called from the
// host between kernel launches, exactly as in Figure 5.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/bucket_store.hpp"
#include "core/entry_layout.hpp"
#include "core/host_table.hpp"
#include "core/organization_policy.hpp"
#include "core/sepo.hpp"
#include "gpusim/exec_context.hpp"

namespace sepo::core {

class SepoHashTable {
 public:
  using BucketLoad = core::BucketLoad;

  SepoHashTable(gpusim::ExecContext& ctx, HashTableConfig cfg);
  ~SepoHashTable();

  SepoHashTable(const SepoHashTable&) = delete;
  SepoHashTable& operator=(const SepoHashTable&) = delete;

  [[nodiscard]] const HashTableConfig& config() const noexcept {
    return store_.config();
  }
  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return store_.allocator().num_groups();
  }

  // ------- device-side API (called from kernels) -------

  // Inserts <key, value> according to the configured organization.
  // Returns kPostpone when the required memory could not be allocated;
  // the caller must leave the task unmarked and re-issue it next iteration.
  //
  // With the batched insert pipeline on (cfg.batch_insert_capacity > 0) the
  // record lands in the calling worker's CombineBuffer and the call returns
  // kSuccess; the table itself owns postponement from then on — a drain
  // that hits kPostpone re-queues the original record and retries it at the
  // next iteration boundary (DESIGN.md §5d).
  Status insert(std::string_view key, std::span<const std::byte> value);

  // Convenience for 8-byte values.
  Status insert_u64(std::string_view key, std::uint64_t value) {
    return insert(key, std::as_bytes(std::span{&value, 1}));
  }

  // Device-side lookup over the *resident* chain (current-iteration data).
  // Returns nullptr when the key is not resident. Used by tests and by the
  // SEPO-lookup extension; population-phase apps only insert.
  [[nodiscard]] const KvEntry* find_resident(std::string_view key) const;

  // ------- SEPO iteration protocol (host side, Figure 5) -------

  // Prepares a new iteration: clears postpone flags and pending-key marks,
  // and (multi-valued) rebuilds the device chains from resident key pages.
  void begin_iteration();

  // Basic organization halt condition: true when at least
  // `halt_frac * num_groups` bucket groups are currently postponing.
  [[nodiscard]] bool should_halt(double halt_frac) const noexcept;

  // Ends an iteration: flushes heap pages to the host mirror heap according
  // to the organization's policy (Figure 5) and returns them to the pool.
  void end_iteration();

  // Flushes everything still resident and returns the host-side table view.
  // The hash table must not be used for inserts afterwards.
  HostTable finalize();

  // ------- batched insert pipeline (DESIGN.md §5d) -------

  [[nodiscard]] bool batching() const noexcept { return !buffers_.empty(); }

  // Records accepted by insert() but not yet durable in the store: buffered
  // in a CombineBuffer or re-queued after a drain-time kPostpone. The
  // driver keeps iterating until this reaches zero. Call between kernels.
  [[nodiscard]] std::size_t pending_batched_inserts() const noexcept;

  // Drains every worker's CombineBuffer into the store. Called from the
  // kernel-exit epilogue and the iteration boundaries; exposed for tests
  // and for hosts that insert outside kernel launches.
  void drain_batches();

  [[nodiscard]] CombineBufferTotals combine_buffer_totals() const noexcept;

  // ------- introspection -------

  [[nodiscard]] BucketLoad bucket_load() const noexcept {
    return store_.bucket_load();
  }

  [[nodiscard]] HashTableStats table_stats() const noexcept {
    return store_.table_stats();
  }

  // Histogram of *resident* (device-side) chain lengths: result[n] = number
  // of buckets whose device chain currently holds n entries; the last bin
  // aggregates everything >= its index. Walks every bucket — call between
  // kernels, for telemetry.
  [[nodiscard]] std::vector<std::uint64_t> resident_chain_histogram(
      std::size_t max_len = 16) const;

  [[nodiscard]] std::uint32_t free_pages() const noexcept {
    return store_.pool().free_count();
  }
  // Pages currently seized by an injected memory-pressure spike; 0 without
  // fault injection. Read by the occupancy sampler (SepoDriver).
  [[nodiscard]] std::uint32_t pressure_page_count() const noexcept {
    return static_cast<std::uint32_t>(pressure_pages_.size());
  }
  [[nodiscard]] gpusim::RunStats& run_stats() noexcept { return stats_; }
  [[nodiscard]] alloc::HostHeap& host_heap() noexcept {
    return store_.host_heap();
  }
  [[nodiscard]] alloc::BucketGroupAllocator& allocator() noexcept {
    return store_.allocator();
  }
  [[nodiscard]] alloc::PagePool& page_pool() noexcept { return store_.pool(); }

  // The storage layer, exposed for store-level tests and extensions that
  // pair a custom policy with the stock store.
  [[nodiscard]] BucketChainStore& store() noexcept { return store_; }

 private:
  // Fault injection: seizes / returns heap pages to model a device-memory
  // pressure spike (gpusim::FaultInjector). A shrunken pool makes the
  // allocator POSTPONE sooner — degradation through extra SEPO iterations,
  // never wrong answers.
  void apply_pressure();

  // The calling worker's CombineBuffer (worker 0 = host/submitting thread).
  [[nodiscard]] CombineBuffer& worker_buffer() noexcept;
  void drain_buffer(CombineBuffer& buf);
  // Re-inserts drain-postponed records through the scalar policy path (with
  // their memoized hashes). Failures go back on the queue for the next
  // iteration. Called at begin_iteration, after the policy rebuilt chains.
  void retry_requeued();

  gpusim::ExecContext& ctx_;
  gpusim::RunStats& stats_;
  BucketChainStore store_;
  std::unique_ptr<OrganizationPolicy> policy_;

  // Pages seized by an injected memory-pressure spike (not usable by the
  // allocator until the spike passes).
  std::vector<std::uint32_t> pressure_pages_;

  // ------- batched insert pipeline state (empty when the knob is off) ----
  // One CombineBuffer per pool worker; workers only ever touch their own
  // (index = gpusim::current_worker_index()), host-side drains run with the
  // pool quiescent.
  std::vector<std::unique_ptr<CombineBuffer>> buffers_;
  // Drain-postponed records awaiting the next iteration. Guarded: inline
  // (buffer-full) drains can run concurrently on several workers.
  mutable std::mutex requeue_mu_;
  std::vector<RequeuedRecord> requeue_;
  // Real-work totals (see CombineBufferTotals). Atomics, not RunStats
  // fields: they must not perturb the simulated counter set.
  std::atomic<std::uint64_t> cb_scratch_hits_{0};
  std::atomic<std::uint64_t> cb_precombined_{0};
  std::atomic<std::uint64_t> cb_lock_saved_{0};
  std::atomic<std::uint64_t> cb_drains_{0};
  std::atomic<std::uint64_t> cb_records_{0};
  std::atomic<std::uint64_t> cb_requeued_{0};

  bool finalized_ = false;
};

}  // namespace sepo::core
