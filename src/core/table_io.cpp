#include "core/table_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/hashing.hpp"
#include "core/entry_layout.hpp"

namespace sepo::core {

HostTableBuilder::HostTableBuilder(Organization org, std::uint32_t num_buckets,
                                   std::size_t page_size, CombineFn combiner)
    : org_(org), combiner_(combiner), page_size_(page_size),
      heads_(num_buckets, alloc::kHostNull), heap_(page_size) {
  if (num_buckets == 0 || (num_buckets & (num_buckets - 1)))
    throw std::invalid_argument("num_buckets must be a power of two");
  if (org == Organization::kCombining && combiner == nullptr)
    throw std::invalid_argument("combining builder requires a combiner");
  page_buf_.resize(page_size_);
}

std::uint32_t HostTableBuilder::bucket_of(std::string_view key) const noexcept {
  return static_cast<std::uint32_t>(hash_key(key)) &
         static_cast<std::uint32_t>(heads_.size() - 1);
}

void HostTableBuilder::flush_page() {
  if (cur_slot_ != 0 && cur_used_ > 0)
    heap_.store_page(cur_slot_, page_buf_.data(), cur_used_);
}

HostPtr HostTableBuilder::alloc(std::uint32_t bytes) {
  bytes = (bytes + 7u) & ~7u;
  if (bytes > page_size_)
    throw std::invalid_argument("entry exceeds builder page size");
  if (cur_slot_ == 0 || cur_used_ + bytes > page_size_) {
    flush_page();
    cur_slot_ = heap_.reserve_slot();
    cur_used_ = 0;
  }
  const HostPtr p = heap_.addr(cur_slot_, cur_used_);
  cur_used_ += bytes;
  return p;
}

std::byte* HostTableBuilder::at(HostPtr p) {
  const std::uint64_t slot = p / page_size_;
  const std::uint64_t off = p % page_size_;
  if (slot == cur_slot_) return page_buf_.data() + off;
  return heap_.mutable_ptr(p);
}

HostPtr HostTableBuilder::find(std::uint32_t b, std::string_view key) {
  for (HostPtr p = heads_[b]; p != alloc::kHostNull;) {
    if (org_ == Organization::kMultiValued) {
      auto* ke = reinterpret_cast<KeyEntry*>(at(p));
      if (ke->key() == key) return p;
      p = ke->next_host;
    } else {
      auto* e = reinterpret_cast<KvEntry*>(at(p));
      if (e->key() == key) return p;
      p = e->next_host;
    }
  }
  return alloc::kHostNull;
}

void HostTableBuilder::add(std::string_view key,
                           std::span<const std::byte> value) {
  if (built_) throw std::logic_error("builder already built");
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::uint32_t b = bucket_of(key);

  if (org_ == Organization::kMultiValued) {
    HostPtr kp = find(b, key);
    if (kp == alloc::kHostNull) {
      kp = alloc(KeyEntry::byte_size(key_len));
      auto* ke = reinterpret_cast<KeyEntry*>(at(kp));
      ke->next_dev = gpusim::kDevNull;
      ke->next_host = heads_[b];
      ke->vhead_dev = gpusim::kDevNull;
      ke->vhead_host = alloc::kHostNull;
      ke->key_len = key_len;
      ke->page = 0;
      std::memcpy(ke->key_data(), key.data(), key_len);
      heads_[b] = kp;
      ++entries_;
    }
    const HostPtr vp = alloc(ValueEntry::byte_size(val_len));
    auto* ke = reinterpret_cast<KeyEntry*>(at(kp));  // re-resolve after alloc
    auto* ve = reinterpret_cast<ValueEntry*>(at(vp));
    ve->next_dev = gpusim::kDevNull;
    ve->next_host = ke->vhead_host;
    ve->val_len = val_len;
    ve->pad_ = 0;
    if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
    ke->vhead_host = vp;
    return;
  }

  if (org_ == Organization::kCombining) {
    const HostPtr existing = find(b, key);
    if (existing != alloc::kHostNull) {
      auto* e = reinterpret_cast<KvEntry*>(at(existing));
      combiner_(e->value_data(), value.data(), std::min(e->val_len, val_len));
      return;
    }
  }
  const HostPtr p = alloc(KvEntry::byte_size(key_len, val_len));
  auto* e = reinterpret_cast<KvEntry*>(at(p));
  e->next_dev = gpusim::kDevNull;
  e->next_host = heads_[b];
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  heads_[b] = p;
  ++entries_;
}

HostTable HostTableBuilder::build() {
  if (built_) throw std::logic_error("builder already built");
  built_ = true;
  flush_page();
  cur_slot_ = 0;
  return HostTable(org_, heads_, heap_, combiner_);
}

// ---- snapshots ----

namespace {

constexpr char kMagic[8] = {'S', 'E', 'P', 'O', 'T', 'B', 'L', '1'};
constexpr std::uint8_t kTagKv = 1;
constexpr std::uint8_t kTagGroup = 2;
constexpr std::uint8_t kTagEnd = 0;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  if (!is.read(reinterpret_cast<char*>(&v), sizeof v))
    throw std::runtime_error("truncated snapshot");
  return v;
}

void put_bytes(std::ostream& os, const void* data, std::uint32_t len) {
  put(os, len);
  os.write(reinterpret_cast<const char*>(data), len);
}

std::vector<std::byte> get_bytes(std::istream& is) {
  const auto len = get<std::uint32_t>(is);
  if (len > (64u << 20)) throw std::runtime_error("implausible record size");
  std::vector<std::byte> buf(len);
  if (len && !is.read(reinterpret_cast<char*>(buf.data()), len))
    throw std::runtime_error("truncated snapshot");
  return buf;
}

}  // namespace

void save_snapshot(const HostTable& table, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put(os, static_cast<std::uint8_t>(table.organization()));
  put(os, static_cast<std::uint32_t>(table.bucket_count()));

  if (table.organization() == Organization::kMultiValued) {
    table.for_each_group(
        [&](std::string_view k,
            const std::vector<std::span<const std::byte>>& vals) {
          put(os, kTagGroup);
          put_bytes(os, k.data(), static_cast<std::uint32_t>(k.size()));
          put(os, static_cast<std::uint32_t>(vals.size()));
          for (const auto& v : vals)
            put_bytes(os, v.data(), static_cast<std::uint32_t>(v.size()));
        });
  } else {
    table.for_each([&](std::string_view k, std::span<const std::byte> v) {
      put(os, kTagKv);
      put_bytes(os, k.data(), static_cast<std::uint32_t>(k.size()));
      put_bytes(os, v.data(), static_cast<std::uint32_t>(v.size()));
    });
  }
  put(os, kTagEnd);
}

LoadedTable load_snapshot(std::istream& is) {
  char magic[8];
  if (!is.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0)
    throw std::runtime_error("not a SEPO table snapshot");
  const auto org = static_cast<Organization>(get<std::uint8_t>(is));
  if (org != Organization::kBasic && org != Organization::kMultiValued &&
      org != Organization::kCombining)
    throw std::runtime_error("unknown organization in snapshot");
  const auto num_buckets = get<std::uint32_t>(is);
  if (num_buckets == 0 || (num_buckets & (num_buckets - 1)))
    throw std::runtime_error("corrupt bucket count in snapshot");

  // A snapshot's keys are already unique (canonicalized on save), so the
  // combining builder never needs to merge; a no-op combiner satisfies the
  // builder's contract.
  const CombineFn noop = [](std::byte*, const std::byte*, std::uint32_t) {};
  LoadedTable loaded;
  loaded.storage = std::make_unique<HostTableBuilder>(
      org, num_buckets, 8u << 10,
      org == Organization::kCombining ? noop : nullptr);

  while (true) {
    const auto tag = get<std::uint8_t>(is);
    if (tag == kTagEnd) break;
    if (tag == kTagKv) {
      const auto key = get_bytes(is);
      const auto val = get_bytes(is);
      loaded.storage->add(
          {reinterpret_cast<const char*>(key.data()), key.size()},
          std::span{val.data(), val.size()});
    } else if (tag == kTagGroup) {
      const auto key = get_bytes(is);
      const auto count = get<std::uint32_t>(is);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto val = get_bytes(is);
        loaded.storage->add(
            {reinterpret_cast<const char*>(key.data()), key.size()},
            std::span{val.data(), val.size()});
      }
    } else {
      throw std::runtime_error("unknown record tag in snapshot");
    }
  }
  loaded.table = std::make_unique<HostTable>(loaded.storage->build());
  return loaded;
}

}  // namespace sepo::core
