// Per-SEPO-iteration convergence snapshot (DESIGN.md "Telemetry & tracing").
//
// The SEPO driver records one of these after every iteration (pass + flush),
// from counter deltas and hash-table introspection. The vector of profiles
// is the machine-readable form of the paper's convergence story: postpone
// rates fall iteration over iteration as the table's working set drains into
// the host heap (§III-B, §VI).
#pragma once

#include <cstdint>
#include <vector>

namespace sepo::core {

struct IterationProfile {
  std::uint32_t iteration = 0;  // 1-based

  // This iteration's pass (counter deltas).
  std::uint64_t records_processed = 0;
  std::uint64_t records_postponed = 0;  // postponed task executions
  double postpone_rate = 0;  // postponed / (processed + postponed)
  std::uint64_t page_acquires = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t hash_ops = 0;
  std::uint64_t chunks_staged = 0;
  std::uint64_t chunks_skipped = 0;
  std::uint64_t bytes_staged = 0;
  bool halted = false;  // pass cut short by the Basic 50% rule

  // Table state after the iteration's flush.
  std::uint32_t free_pages_after = 0;
  std::uint64_t resident_entry_bytes = 0;
  std::uint64_t flushed_bytes_total = 0;  // cumulative across iterations
  std::uint64_t distinct_entries_total = 0;  // cumulative inserts_new
  std::uint64_t hottest_bucket_ops = 0;  // cumulative max same-bucket ops
};

using IterationProfiles = std::vector<IterationProfile>;

}  // namespace sepo::core
