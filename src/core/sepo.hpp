// The SEPO (Selective Postponement) model of computation (paper §III).
//
// A service requestee may decline a request, asking the requestor to
// re-issue it later, when servicing now would be inefficient. This header
// defines the request status vocabulary and the profitability condition of
// Figure 1 / §III-A, which the ablation benches evaluate empirically.
#pragma once

#include <cstdint>

namespace sepo::core {

// Result of a SEPO service request. Mirrors the paper's analogy to EAGAIN:
// kPostpone means "re-issue this request in a later iteration".
enum class Status : std::uint8_t {
  kSuccess = 0,
  kPostpone = 1,
};

// Expected per-task costs of the two scenarios in Figure 1.
struct SepoCosts {
  double pre_computation = 0;    // t_pre-computation
  double postpone = 0;           // t_postpone (tracking + disposal)
  double postponed_service = 0;  // t_postponed-service (efficient, later)
  double inefficient_service = 0;// t_inefficient-service (now)
  double post_computation = 0;   // t_post-computation
};

// The §III-A condition: postponing is profitable iff
//   (t_pre + t_postpone) + (t_pre + t_postponed-service + t_post)
//       < (t_pre + t_inefficient-service + t_post)
[[nodiscard]] constexpr bool postponement_profitable(const SepoCosts& c) noexcept {
  const double with_sepo = (c.pre_computation + c.postpone) +
                           (c.pre_computation + c.postponed_service +
                            c.post_computation);
  const double without_sepo =
      c.pre_computation + c.inefficient_service + c.post_computation;
  return with_sepo < without_sepo;
}

}  // namespace sepo::core
