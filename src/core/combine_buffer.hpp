// Per-worker combining buffer for the batched insert pipeline (DESIGN.md
// §5d "Batched inserts and software combining").
//
// A CombineBuffer is a fixed-capacity, open-addressed scratch table private
// to one pool worker. Inserts land here first — no bucket lock, no shared
// cache line — and reach the shared BucketChainStore only when the buffer
// drains (buffer full, or the iteration/finalize boundary). The buffer:
//
//   * memoizes the 64-bit FNV-1a/avalanche hash per record, so neither the
//     scratch probe, the bucket selection, nor the drain rehashes the key;
//   * pre-combines values for the combining organization when the combiner
//     is declared associative+commutative (HashTableConfig
//     ::combiner_assoc_comm) — N records of one hot key become one store
//     operation;
//   * pre-groups records by key for the other organizations (and for
//     non-assoc combiners, whose applications must stay in arrival order),
//     so the drain probes each distinct key's chain once and mirrors the
//     remaining probes arithmetically.
//
// Layout is SoA-ish and cache-line friendly: a flat pow2 index of slot ids
// keyed by hash, a dense slot array, a dense arrival log, and one byte arena
// holding key bytes, per-slot combined values, and per-record original
// values. The original value of every record is retained even when it was
// pre-combined: a drain that hits kPostpone re-queues the *original*
// records (RequeuedRecord) for the next SEPO iteration, preserving the
// paper's postponement semantics exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/entry_layout.hpp"

namespace sepo::core {

// Default per-worker capacity (records) used when the batch-insert knob is
// switched on without an explicit size (`--batch-insert on`).
inline constexpr std::uint32_t kDefaultBatchInsertCapacity = 4096;

// A record a drain could not place (allocator returned kPostpone). Owned
// copies: the caller's key/value views die with the kernel that emitted
// them, but the record must survive into the next SEPO iteration.
struct RequeuedRecord {
  std::string key;
  std::vector<std::byte> value;
  std::uint64_t hash = 0;  // memoized — the retry does not rehash
};

// Add-time counters, harvested into the table-level totals at drain.
struct CombineBufferStats {
  std::uint64_t scratch_hits = 0;         // adds that hit an existing slot
  std::uint64_t precombined_records = 0;  // values merged in scratch (assoc)
};

// Lifetime totals of the batched insert pipeline, kept by SepoHashTable.
// These describe *real* work the batching saved or moved, and are
// deliberately kept out of RunStats: the simulated counters must stay
// bit-identical between scalar and batched runs (they feed the cost model),
// while this object is reported separately in the metrics JSON
// (`combine_buffer`, schema v5).
struct CombineBufferTotals {
  bool enabled = false;                    // batch_insert_capacity > 0
  std::uint64_t scratch_hits = 0;          // adds that hit an existing slot
  std::uint64_t precombined_records = 0;   // values merged at add time
  std::uint64_t lock_acquires_saved = 0;   // scalar acquires minus real ones
  std::uint64_t drain_flushes = 0;         // drains that moved >= 1 record
  std::uint64_t drained_records = 0;       // records replayed into the store
  std::uint64_t requeued_records = 0;      // drain-time kPostpone re-queues
};

class CombineBuffer {
 public:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t bucket = 0;
    std::uint32_t key_off = 0;
    std::uint32_t key_len = 0;
    // Pre-combined value (assoc+comm combining only; else unused).
    std::uint32_t val_off = 0;
    std::uint32_t val_len = 0;
    std::uint32_t hits = 0;  // records folded into this slot

    // --- drain-time resolution state (scratch pad for the drain) ---
    // 0 = unresolved, 1 = resolved to a chain entry. Allocation failure
    // leaves the slot at 0 on purpose: every further record of this key
    // then replays the scalar retry (real probe + real alloc attempt,
    // which fails the same way) so the mirrored counters stay exact.
    std::uint8_t state = 0;
    DevPtr entry = 0;            // resolved chain entry (KvEntry / KeyEntry)
    std::uint32_t depth_links = 0;   // probe links to reach `entry` ...
    std::uint64_t depth_bytes = 0;   // ... and compare bytes, at resolution
    std::uint32_t dense = 0;         // bucket's index in the drain's sorted
                                     // distinct-bucket set (DrainScratch)
    std::uint32_t prepend_mark = 0;  // bucket prepend count at resolution
    // Monotone mirror cache: prepends [prepend_mark, mirror_count) have
    // been folded into mirror_bytes already, so a repeat record only walks
    // the prepends that arrived since the previous repeat — O(1) amortized
    // instead of O(prepends-since-resolution) per record.
    std::uint32_t mirror_count = 0;
    std::uint64_t mirror_bytes = 0;
  };

  // Reusable drain-side working set, owned by the buffer so that
  // buffer-full drains (which run concurrently on their worker threads)
  // never share scratch memory and steady-state drains never allocate.
  // `locked` holds the batch's distinct bucket ids, sorted ascending — a
  // bucket's index in it is its *dense id* for the per-bucket arrays.
  // The counter accumulators exist because a kernel-exit drain runs on the
  // submitting thread, outside any worker shard — per-record adds would hit
  // the shared RunStats atomics; summing locally and flushing once per
  // drain lands the identical totals inside the same priced launch window.
  struct DrainScratch {
    std::vector<std::uint32_t> locked;
    std::vector<std::uint32_t> accesses;  // per dense id, record counts
    // Per dense id: key lengths of the entries this drain prepended to the
    // bucket, in prepend order (forward — the mirror cache consumes it
    // incrementally).
    std::vector<std::vector<std::uint32_t>> prepends;
    std::uint64_t chain_links = 0;
    std::uint64_t key_compare_bytes = 0;

    [[nodiscard]] std::uint32_t dense_of(std::uint32_t b) const noexcept {
      return static_cast<std::uint32_t>(
          std::lower_bound(locked.begin(), locked.end(), b) - locked.begin());
    }

    // Accumulates the probe cost the scalar path would have paid to reach
    // slot `s`'s resolved entry now: its depth at resolution plus one link
    // (and one partial compare) per same-bucket prepend since — without
    // re-walking the device chain (the "hoisted" probe).
    void mirror_repeat(Slot& s) noexcept {
      const std::vector<std::uint32_t>& lens = prepends[s.dense];
      const auto cur = static_cast<std::uint32_t>(lens.size());
      while (s.mirror_count < cur)
        s.mirror_bytes += std::min(lens[s.mirror_count++], s.key_len);
      chain_links += s.depth_links + (cur - s.prepend_mark);
      key_compare_bytes += s.depth_bytes + s.mirror_bytes;
    }

    // Marks slot `s` resolved as of now: only later prepends to its bucket
    // count as "newer" for the mirror (call after pushing the slot's own
    // fresh prepend, so it excludes itself).
    void mark_resolved(Slot& s) noexcept {
      s.prepend_mark = static_cast<std::uint32_t>(prepends[s.dense].size());
      s.mirror_count = s.prepend_mark;
      s.mirror_bytes = 0;
    }
  };

  // One arrival-ordered record. Drains replay the log, not the slots: the
  // log is what makes the mirrored counters (and non-assoc combiner
  // application order) match the scalar path record for record.
  struct LogEntry {
    std::uint32_t slot = 0;
    std::uint32_t val_off = 0;  // original (un-combined) value bytes
    std::uint32_t val_len = 0;
  };

  // `dedup` selects scratch behaviour: kBasic keeps one slot per record
  // (grouping only); combining/multi-valued dedup by key. `precombine`
  // additionally merges values at add time (assoc+comm combining only).
  CombineBuffer(Organization org, std::uint32_t capacity, bool precombine,
                CombineFn combiner);

  // Buffers one record. Returns false when the buffer is full — the caller
  // must drain and retry (the retry is guaranteed to succeed on an empty
  // buffer). Never touches shared state.
  [[nodiscard]] bool add(std::uint32_t bucket, std::uint64_t hash,
                         std::string_view key, std::span<const std::byte> value);

  [[nodiscard]] bool empty() const noexcept { return log_.size() == 0; }
  [[nodiscard]] std::size_t record_count() const noexcept {
    return log_.size();
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool precombine() const noexcept { return precombine_; }

  // Drain-side accessors. Slots are mutable: the drain stores its
  // resolution bookkeeping in them.
  [[nodiscard]] std::span<Slot> slots() noexcept { return slots_; }
  [[nodiscard]] DrainScratch& drain_scratch() noexcept {
    return drain_scratch_;
  }
  [[nodiscard]] std::span<const LogEntry> log() const noexcept { return log_; }
  [[nodiscard]] std::string_view slot_key(const Slot& s) const noexcept {
    return {reinterpret_cast<const char*>(arena_.data()) + s.key_off,
            s.key_len};
  }
  [[nodiscard]] std::span<const std::byte> slot_value(
      const Slot& s) const noexcept {
    return {arena_.data() + s.val_off, s.val_len};
  }
  [[nodiscard]] std::span<const std::byte> log_value(
      const LogEntry& e) const noexcept {
    return {arena_.data() + e.val_off, e.val_len};
  }

  // Harvests and resets the add-time counters (called once per drain).
  [[nodiscard]] CombineBufferStats take_stats() noexcept {
    const CombineBufferStats s = stats_;
    stats_ = {};
    return s;
  }

  // Resets the buffer to empty (after a drain). Keeps the arena capacity.
  void clear() noexcept;

 private:
  [[nodiscard]] std::uint32_t push_arena(const void* data, std::size_t n);

  Organization org_;
  std::uint32_t capacity_;
  bool precombine_;
  CombineFn combiner_;

  // Open-addressed index: pow2-sized table of slot-id+1 (0 = empty),
  // linear probing keyed by the memoized hash. Unused for kBasic.
  std::vector<std::uint32_t> index_;
  std::uint32_t index_mask_ = 0;

  std::vector<Slot> slots_;
  std::vector<LogEntry> log_;
  // Bump-allocated byte arena: arena_used_ tracks the live prefix; the
  // vector's size is its capacity (push_arena grows it geometrically).
  std::vector<std::byte> arena_;
  std::size_t arena_used_ = 0;
  CombineBufferStats stats_;
  DrainScratch drain_scratch_;
};

}  // namespace sepo::core
