#include "core/host_table.hpp"

#include <algorithm>
#include <cstring>

#include "common/hashing.hpp"

namespace sepo::core {

std::uint32_t HostTable::bucket_of(std::string_view key) const noexcept {
  return bucket_of(hash_key(key));
}

void HostTable::canonicalize() {
  if (org_ == Organization::kBasic) return;  // duplicates are the semantics

  std::vector<std::pair<std::string_view, HostPtr>> seen;
  for (HostPtr& head : heads_) {
    seen.clear();
    HostPtr* link = &head;  // pointer to the link we may rewrite
    HostPtr p = head;
    while (p != alloc::kHostNull) {
      if (org_ == Organization::kCombining) {
        auto* e = heap_.mutable_ptr<KvEntry>(p);
        const std::string_view key = e->key();
        HostPtr first = alloc::kHostNull;
        for (const auto& [k, fp] : seen)
          if (k == key) {
            first = fp;
            break;
          }
        if (first != alloc::kHostNull) {
          auto* fe = heap_.mutable_ptr<KvEntry>(first);
          if (combiner_ != nullptr)
            combiner_(fe->value_data(), e->value_data(),
                      std::min(fe->val_len, e->val_len));
          *link = e->next_host;  // unlink the duplicate
          ++merged_duplicates_;
          p = e->next_host;
          continue;
        }
        seen.emplace_back(key, p);
        link = &e->next_host;
        p = e->next_host;
      } else {  // kMultiValued
        auto* ke = heap_.mutable_ptr<KeyEntry>(p);
        const std::string_view key = ke->key();
        HostPtr first = alloc::kHostNull;
        for (const auto& [k, fp] : seen)
          if (k == key) {
            first = fp;
            break;
          }
        if (first != alloc::kHostNull) {
          // Concatenate the duplicate's value list onto the first entry's.
          auto* fke = heap_.mutable_ptr<KeyEntry>(first);
          if (ke->vhead_host != alloc::kHostNull) {
            if (fke->vhead_host == alloc::kHostNull) {
              fke->vhead_host = ke->vhead_host;
            } else {
              HostPtr tail = fke->vhead_host;
              while (true) {
                auto* ve = heap_.mutable_ptr<ValueEntry>(tail);
                if (ve->next_host == alloc::kHostNull) {
                  ve->next_host = ke->vhead_host;
                  break;
                }
                tail = ve->next_host;
              }
            }
          }
          *link = ke->next_host;
          ++merged_duplicates_;
          p = ke->next_host;
          continue;
        }
        seen.emplace_back(key, p);
        link = &ke->next_host;
        p = ke->next_host;
      }
    }
  }
}

std::optional<std::span<const std::byte>> HostTable::lookup(
    std::string_view key) const {
  for (HostPtr p = heads_[bucket_of(key)]; p != alloc::kHostNull;) {
    const auto* e = heap_.ptr<KvEntry>(p);
    if (e->key() == key) return std::span{e->value_data(), e->val_len};
    p = e->next_host;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> HostTable::lookup_u64(std::string_view key) const {
  const auto v = lookup(key);
  if (!v || v->size() < 8) return std::nullopt;
  std::uint64_t out;
  std::memcpy(&out, v->data(), 8);
  return out;
}

std::vector<std::span<const std::byte>> HostTable::lookup_all(
    std::string_view key) const {
  std::vector<std::span<const std::byte>> out;
  for (HostPtr p = heads_[bucket_of(key)]; p != alloc::kHostNull;) {
    const auto* e = heap_.ptr<KvEntry>(p);
    if (e->key() == key) out.emplace_back(e->value_data(), e->val_len);
    p = e->next_host;
  }
  return out;
}

void HostTable::for_each(
    const std::function<void(std::string_view, std::span<const std::byte>)>&
        fn) const {
  for (const HostPtr head : heads_) {
    for (HostPtr p = head; p != alloc::kHostNull;) {
      const auto* e = heap_.ptr<KvEntry>(p);
      fn(e->key(), std::span{e->value_data(), e->val_len});
      p = e->next_host;
    }
  }
}

std::vector<std::span<const std::byte>> HostTable::values_of(
    const KeyEntry& ke) const {
  std::vector<std::span<const std::byte>> vals;
  for (HostPtr vp = ke.vhead_host; vp != alloc::kHostNull;) {
    const auto* ve = heap_.ptr<ValueEntry>(vp);
    vals.emplace_back(ve->value_data(), ve->val_len);
    vp = ve->next_host;
  }
  return vals;
}

void HostTable::for_each_group(
    const std::function<void(std::string_view,
                             const std::vector<std::span<const std::byte>>&)>&
        fn) const {
  for (const HostPtr head : heads_) {
    for (HostPtr p = head; p != alloc::kHostNull;) {
      const auto* ke = heap_.ptr<KeyEntry>(p);
      fn(ke->key(), values_of(*ke));
      p = ke->next_host;
    }
  }
}

std::optional<std::vector<std::span<const std::byte>>> HostTable::lookup_group(
    std::string_view key) const {
  for (HostPtr p = heads_[bucket_of(key)]; p != alloc::kHostNull;) {
    const auto* ke = heap_.ptr<KeyEntry>(p);
    if (ke->key() == key) return values_of(*ke);
    p = ke->next_host;
  }
  return std::nullopt;
}

std::size_t HostTable::entry_count() const {
  std::size_t n = 0;
  if (org_ == Organization::kMultiValued) {
    for (const HostPtr head : heads_)
      for (HostPtr p = head; p != alloc::kHostNull;
           p = heap_.ptr<KeyEntry>(p)->next_host)
        ++n;
  } else {
    for (const HostPtr head : heads_)
      for (HostPtr p = head; p != alloc::kHostNull;
           p = heap_.ptr<KvEntry>(p)->next_host)
        ++n;
  }
  return n;
}

std::vector<std::uint64_t> HostTable::occupancy_histogram(
    std::size_t max_len) const {
  std::vector<std::uint64_t> hist(max_len + 1, 0);
  for (const HostPtr head : heads_) {
    std::size_t len = 0;
    for (HostPtr p = head; p != alloc::kHostNull; ++len)
      p = org_ == Organization::kMultiValued
              ? heap_.ptr<KeyEntry>(p)->next_host
              : heap_.ptr<KvEntry>(p)->next_host;
    ++hist[std::min(len, max_len)];
  }
  return hist;
}

std::size_t HostTable::value_count() const {
  if (org_ != Organization::kMultiValued) return entry_count();
  std::size_t n = 0;
  for (const HostPtr head : heads_) {
    for (HostPtr p = head; p != alloc::kHostNull;) {
      const auto* ke = heap_.ptr<KeyEntry>(p);
      for (HostPtr vp = ke->vhead_host; vp != alloc::kHostNull;
           vp = heap_.ptr<ValueEntry>(vp)->next_host)
        ++n;
      p = ke->next_host;
    }
  }
  return n;
}

}  // namespace sepo::core
