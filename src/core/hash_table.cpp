#include "core/hash_table.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/hashing.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::core {

namespace {
constexpr bool is_pow2(std::uint64_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

SepoHashTable::SepoHashTable(gpusim::ExecContext& ctx, HashTableConfig cfg)
    : ctx_(ctx), dev_(ctx.device()), stats_(ctx.stats()), cfg_(cfg) {
  if (!is_pow2(cfg_.num_buckets))
    throw std::invalid_argument("num_buckets must be a power of two");
  if (cfg_.buckets_per_group == 0 || cfg_.buckets_per_group > cfg_.num_buckets)
    throw std::invalid_argument("invalid buckets_per_group");
  if (cfg_.org == Organization::kCombining && cfg_.combiner == nullptr)
    throw std::invalid_argument("combining organization requires a combiner");
  bucket_mask_ = cfg_.num_buckets - 1;

  // The bucket array and its locks live in device memory: reserve their
  // footprint there so the heap gets only what genuinely remains (§IV-A).
  // Charged at the compact device layout (bucket + 4-byte lock word), NOT at
  // sizeof(PaddedBucketLock): the cache-line padding is a host-side
  // anti-false-sharing measure and must not shrink the simulated heap.
  const std::size_t bucket_bytes =
      static_cast<std::size_t>(cfg_.num_buckets) * (sizeof(Bucket) + 4);
  dev_.alloc_static(bucket_bytes);
  buckets_ = std::vector<Bucket>(cfg_.num_buckets);
  bucket_locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);

  const std::size_t heap_bytes =
      cfg_.heap_bytes == 0 ? dev_.mem_free() : cfg_.heap_bytes;
  if (heap_bytes < cfg_.page_size)
    throw std::invalid_argument("device memory too small for one heap page");
  pool_pages_ =
      std::make_unique<alloc::PagePool>(dev_, heap_bytes, cfg_.page_size);
  pool_pages_->set_journal(ctx_.journal());
  host_heap_ = std::make_unique<alloc::HostHeap>(cfg_.page_size);

  const std::uint32_t groups =
      (cfg_.num_buckets + cfg_.buckets_per_group - 1) / cfg_.buckets_per_group;
  const std::uint32_t classes =
      cfg_.org == Organization::kMultiValued ? 3u : 1u;
  allocator_ = std::make_unique<alloc::BucketGroupAllocator>(
      *pool_pages_, *host_heap_, groups, classes);
}

std::uint32_t SepoHashTable::bucket_of(std::string_view key) const noexcept {
  return static_cast<std::uint32_t>(hash_key(key)) & bucket_mask_;
}

DevPtr SepoHashTable::find_in_chain(std::uint32_t b,
                                    std::string_view key) const {
  for (DevPtr p = buckets_[b].head_dev.load(std::memory_order_relaxed);
       p != gpusim::kDevNull;) {
    stats_.add_chain_links();
    const auto* e = dev_.ptr<KvEntry>(p);
    stats_.add_key_compare_bytes(std::min<std::uint64_t>(e->key_len, key.size()));
    if (e->key() == key) return p;
    p = e->next_dev;
  }
  return gpusim::kDevNull;
}

DevPtr SepoHashTable::find_key_entry(std::uint32_t b,
                                     std::string_view key) const {
  for (DevPtr p = buckets_[b].head_dev.load(std::memory_order_relaxed);
       p != gpusim::kDevNull;) {
    stats_.add_chain_links();
    const auto* e = dev_.ptr<KeyEntry>(p);
    stats_.add_key_compare_bytes(std::min<std::uint64_t>(e->key_len, key.size()));
    if (e->key() == key) return p;
    p = e->next_dev;
  }
  return gpusim::kDevNull;
}

Status SepoHashTable::insert(std::string_view key,
                             std::span<const std::byte> value) {
  assert(!finalized_);
  stats_.add_hash_ops();
  const std::uint32_t b = bucket_of(key);
  switch (cfg_.org) {
    case Organization::kBasic:
      return insert_basic(b, key, value);
    case Organization::kCombining:
      return insert_combining(b, key, value);
    case Organization::kMultiValued:
      return insert_multivalued(b, key, value);
  }
  return Status::kPostpone;
}

Status SepoHashTable::insert_basic(std::uint32_t b, std::string_view key,
                                   std::span<const std::byte> value) {
  // Duplicate keys are kept as separate entries, so no chain probe is needed
  // — allocate and prepend ("new KV pairs are always inserted at the head of
  // the bucket linked list", §III-B).
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::uint32_t sz = KvEntry::byte_size(key_len, val_len);

  gpusim::DeviceLockGuard guard(bucket_locks_[b].lock, stats_);
  ++bucket_locks_[b].accesses;
  const alloc::Allocation a =
      allocator_->alloc(group_of(b), alloc::PageClass::kGeneric, sz, stats_);
  if (!a.ok()) return Status::kPostpone;

  auto* e = dev_.ptr<KvEntry>(a.dev);
  Bucket& bucket = buckets_[b];
  e->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
  e->next_host = bucket.head_host;
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  bucket.head_host = a.host;
  bucket.head_dev.store(a.dev, std::memory_order_release);
  stats_.add_inserts_new();
  return Status::kSuccess;
}

Status SepoHashTable::insert_combining(std::uint32_t b, std::string_view key,
                                       std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());

  gpusim::DeviceLockGuard guard(bucket_locks_[b].lock, stats_);
  ++bucket_locks_[b].accesses;
  const DevPtr existing = find_in_chain(b, key);
  if (existing != gpusim::kDevNull) {
    auto* e = dev_.ptr<KvEntry>(existing);
    cfg_.combiner(e->value_data(), value.data(),
                  std::min(e->val_len, val_len));
    stats_.add_combines();
    return Status::kSuccess;
  }
  const std::uint32_t sz = KvEntry::byte_size(key_len, val_len);
  const alloc::Allocation a =
      allocator_->alloc(group_of(b), alloc::PageClass::kGeneric, sz, stats_);
  if (!a.ok()) return Status::kPostpone;

  auto* e = dev_.ptr<KvEntry>(a.dev);
  Bucket& bucket = buckets_[b];
  e->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
  e->next_host = bucket.head_host;
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  bucket.head_host = a.host;
  bucket.head_dev.store(a.dev, std::memory_order_release);
  stats_.add_inserts_new();
  return Status::kSuccess;
}

Status SepoHashTable::insert_multivalued(std::uint32_t b, std::string_view key,
                                         std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::uint32_t g = group_of(b);

  gpusim::DeviceLockGuard guard(bucket_locks_[b].lock, stats_);
  ++bucket_locks_[b].accesses;
  DevPtr kp = find_key_entry(b, key);
  bool fresh_key = false;

  if (kp == gpusim::kDevNull) {
    const alloc::Allocation ka = allocator_->alloc(
        g, alloc::PageClass::kKey, KeyEntry::byte_size(key_len), stats_);
    if (!ka.ok()) return Status::kPostpone;
    auto* ke = dev_.ptr<KeyEntry>(ka.dev);
    Bucket& bucket = buckets_[b];
    ke->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
    ke->next_host = bucket.head_host;
    ke->vhead_dev = gpusim::kDevNull;
    ke->vhead_host = alloc::kHostNull;
    ke->key_len = key_len;
    ke->page = ka.page;
    std::memcpy(ke->key_data(), key.data(), key_len);
    bucket.head_host = ka.host;
    bucket.head_dev.store(ka.dev, std::memory_order_release);
    stats_.add_inserts_new();
    kp = ka.dev;
    fresh_key = true;
  }

  auto* ke = dev_.ptr<KeyEntry>(kp);
  const alloc::Allocation va = allocator_->alloc(
      g, alloc::PageClass::kValue, ValueEntry::byte_size(val_len), stats_);
  if (!va.ok()) {
    // The key now exists but this record's value does not: keep the key's
    // page resident so the retried record can link its value to the key
    // (paper §IV-C, multi-valued flush rule).
    pool_pages_->meta(ke->page).pending_keys.fetch_add(
        1, std::memory_order_relaxed);
    (void)fresh_key;
    return Status::kPostpone;
  }
  auto* ve = dev_.ptr<ValueEntry>(va.dev);
  ve->next_dev = ke->vhead_dev;
  ve->next_host = ke->vhead_host;
  ve->val_len = val_len;
  ve->pad_ = 0;
  if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
  ke->vhead_dev = va.dev;
  ke->vhead_host = va.host;
  stats_.add_value_appends();
  return Status::kSuccess;
}

const KvEntry* SepoHashTable::find_resident(std::string_view key) const {
  stats_.add_hash_ops();
  const DevPtr p = find_in_chain(bucket_of(key), key);
  return p == gpusim::kDevNull ? nullptr : dev_.ptr<KvEntry>(p);
}

void SepoHashTable::apply_pressure() {
  gpusim::FaultInjector* const f = ctx_.faults();
  if (f == nullptr || f->config().pressure_rate <= 0) return;
  bool new_spike = false;
  const std::uint32_t target =
      f->pressure_target(pool_pages_->page_count(), new_spike);
  if (new_spike) stats_.add_pressure_spikes();
  gpusim::EventJournal* const journal = ctx_.journal();
  if (new_spike && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureBegin, target);
  const std::size_t held_before = pressure_pages_.size();
  // Seize pages straight from the pool (they count as page_acquires — the
  // spike is indistinguishable from another tenant grabbing memory). If the
  // pool runs dry mid-seize the spike simply holds less than it wanted.
  while (pressure_pages_.size() < target) {
    const std::uint32_t p = pool_pages_->acquire(stats_);
    if (p == alloc::kInvalidPage) break;
    pressure_pages_.push_back(p);
  }
  while (pressure_pages_.size() > target) {
    pool_pages_->release(pressure_pages_.back(), &stats_);
    pressure_pages_.pop_back();
  }
  if (held_before > 0 && pressure_pages_.empty() && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureEnd, held_before);
}

bool SepoHashTable::should_halt(double halt_frac) const noexcept {
  return allocator_->postponed_groups() >=
         static_cast<std::uint32_t>(halt_frac * allocator_->num_groups());
}

void SepoHashTable::begin_iteration() {
  stats_.add_iterations();
  allocator_->reset_postponed();
  apply_pressure();
  if (cfg_.org == Organization::kMultiValued) {
    for (const std::uint32_t p : resident_key_pages_)
      pool_pages_->meta(p).pending_keys.store(0, std::memory_order_relaxed);
    rebuild_device_chains();
  }
}

void SepoHashTable::rebuild_device_chains() {
  // The device chains contain pointers into pages that were flushed at the
  // end of the previous iteration; reset them and re-link only the entries
  // on resident key pages. Host chains are untouched — they are complete.
  for (Bucket& b : buckets_)
    b.head_dev.store(gpusim::kDevNull, std::memory_order_relaxed);

  // One kernel over resident pages: each page is walked linearly (entries
  // are contiguous and self-sizing). Scheduled through the context so the
  // rebuild shows up on the compute timeline like any other kernel.
  ctx_.launch(resident_key_pages_.size(), [&](std::size_t i) {
    const std::uint32_t page = resident_key_pages_[i];
    const auto& meta = pool_pages_->meta(page);
    const std::uint32_t used = meta.used.load(std::memory_order_relaxed);
    const DevPtr base = pool_pages_->page_base(page);
    std::uint32_t off = 0;
    while (off < used) {
      const DevPtr ep = base + off;
      auto* ke = dev_.ptr<KeyEntry>(ep);
      const std::uint32_t b = bucket_of(ke->key());
      ke->vhead_dev = gpusim::kDevNull;  // all value pages were flushed
      gpusim::DeviceLockGuard guard(bucket_locks_[b].lock, stats_);
      ke->next_dev = buckets_[b].head_dev.load(std::memory_order_relaxed);
      buckets_[b].head_dev.store(ep, std::memory_order_release);
      stats_.add_chain_links();
      off += ke->byte_size();
    }
  });
}

void SepoHashTable::flush_pages(const std::vector<std::uint32_t>& pages) {
  std::uint64_t flushed_pages = 0, flushed_bytes = 0;
  for (const std::uint32_t p : pages) {
    auto& meta = pool_pages_->meta(p);
    const std::uint32_t used = meta.used.load(std::memory_order_relaxed);
    const std::uint64_t slot = meta.host_slot.load(std::memory_order_relaxed);
    if (used > 0) {
      host_heap_->store_page(slot, dev_.ptr(pool_pages_->page_base(p)), used);
      dev_.bus().d2h(used);
      // Flushes halt computation (§IV-C): each page copy is a barrier
      // command on the d2h path.
      ctx_.flush_d2h(used);
      flushed_bytes_ += used;
      ++flush_pages_;
      ++flushed_pages;
      flushed_bytes += used;
    }
    pool_pages_->release(p, &stats_);
  }
  if (auto* hook = stats_.trace_hook(); hook && flushed_pages > 0)
    hook->on_flush(flushed_pages, flushed_bytes);
}

void SepoHashTable::end_iteration() {
  std::vector<std::uint32_t> to_flush;
  if (cfg_.org == Organization::kMultiValued) {
    // Flush all value pages plus key pages with no pending keys; key pages
    // with pending keys stay resident (Figure 5 (b)).
    allocator_->detach_active_pages(alloc::PageClass::kValue, to_flush);
    allocator_->take_retired_pages(alloc::PageClass::kValue, to_flush);

    std::vector<std::uint32_t> key_pages;
    allocator_->detach_active_pages(alloc::PageClass::kKey, key_pages);
    allocator_->take_retired_pages(alloc::PageClass::kKey, key_pages);
    key_pages.insert(key_pages.end(), resident_key_pages_.begin(),
                     resident_key_pages_.end());
    resident_key_pages_.clear();
    for (const std::uint32_t p : key_pages) {
      if (pool_pages_->meta(p).pending_keys.load(std::memory_order_relaxed) > 0)
        resident_key_pages_.push_back(p);
      else
        to_flush.push_back(p);
    }
    // Livelock valve: if pending key pages would starve the pool (every page
    // resident, nothing left for values — a failure mode the paper's flush
    // rule does not address), flush them too. Their pending keys will be
    // re-materialized as duplicate entries that HostTable merges on read.
    const auto cap = static_cast<std::size_t>(cfg_.max_resident_key_frac *
                                              pool_pages_->page_count());
    if (resident_key_pages_.size() > cap) {
      to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                      resident_key_pages_.end());
      resident_key_pages_.clear();
    }
  } else {
    // Basic and Combining flush the entire heap (Figure 5 (a), (c)). The
    // device chains now point into freed pages: reset them. Host chains are
    // complete and untouched.
    allocator_->detach_active_pages(to_flush);
    allocator_->take_retired_pages(to_flush);
    for (Bucket& b : buckets_)
      b.head_dev.store(gpusim::kDevNull, std::memory_order_relaxed);
  }
  flush_pages(to_flush);
}

HostTable SepoHashTable::finalize() {
  assert(!finalized_);
  // Return any pages an injected pressure spike still holds.
  for (const std::uint32_t p : pressure_pages_)
    pool_pages_->release(p, &stats_);
  pressure_pages_.clear();
  // Flush whatever is still resident (multi-valued key pages; at completion
  // none of them has pending values, but flushing is unconditional).
  std::vector<std::uint32_t> to_flush;
  allocator_->detach_active_pages(to_flush);
  allocator_->take_retired_pages(to_flush);
  to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                  resident_key_pages_.end());
  resident_key_pages_.clear();
  flush_pages(to_flush);
  finalized_ = true;

  // Copy the bucket heads' host pointers back (one bulk transfer).
  std::vector<HostPtr> heads(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    heads[i] = buckets_[i].head_host;
  dev_.bus().d2h(buckets_.size() * sizeof(HostPtr));
  ctx_.flush_d2h(buckets_.size() * sizeof(HostPtr));

  return HostTable(cfg_.org, std::move(heads), *host_heap_, cfg_.combiner);
}

SepoHashTable::BucketLoad SepoHashTable::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : bucket_locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses = std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

std::vector<std::uint64_t> SepoHashTable::resident_chain_histogram(
    std::size_t max_len) const {
  std::vector<std::uint64_t> hist(max_len + 1, 0);
  for (const Bucket& bucket : buckets_) {
    std::size_t len = 0;
    for (DevPtr p = bucket.head_dev.load(std::memory_order_relaxed);
         p != gpusim::kDevNull; ++len) {
      p = cfg_.org == Organization::kMultiValued
              ? dev_.ptr<KeyEntry>(p)->next_dev
              : dev_.ptr<KvEntry>(p)->next_dev;
    }
    ++hist[std::min(len, max_len)];
  }
  return hist;
}

HashTableStats SepoHashTable::table_stats() const noexcept {
  HashTableStats s;
  s.flushed_bytes = flushed_bytes_;
  s.flush_pages = flush_pages_;
  // Resident bytes: pages currently out of the pool.
  for (std::uint32_t p = 0; p < pool_pages_->page_count(); ++p) {
    const auto& m = pool_pages_->meta(p);
    if (!m.in_pool.load(std::memory_order_relaxed))
      s.resident_entry_bytes += m.used.load(std::memory_order_relaxed);
  }
  s.table_bytes = s.flushed_bytes + s.resident_entry_bytes;
  return s;
}

}  // namespace sepo::core
