#include "core/hash_table.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/hashing.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/journal.hpp"
#include "gpusim/worker_id.hpp"

namespace sepo::core {

SepoHashTable::SepoHashTable(gpusim::ExecContext& ctx, HashTableConfig cfg)
    : ctx_(ctx),
      stats_(ctx.stats()),
      store_(ctx, cfg),
      policy_(make_policy(store_.config())) {
  const HashTableConfig& c = store_.config();
  if (c.batch_insert_capacity > 0) {
    const std::size_t workers = ctx_.pool().worker_count();
    buffers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      buffers_.push_back(std::make_unique<CombineBuffer>(
          c.org, c.batch_insert_capacity, c.combiner_assoc_comm, c.combiner));
    // Drain at every kernel exit, inside the priced launch window, so the
    // deferred store work lands in the same timeline command where the
    // scalar path would have performed it (ExecContext::set_launch_epilogue).
    ctx_.set_launch_epilogue([this] { drain_batches(); });
  }
}

SepoHashTable::~SepoHashTable() {
  if (!buffers_.empty()) ctx_.set_launch_epilogue({});
}

Status SepoHashTable::insert(std::string_view key,
                             std::span<const std::byte> value) {
  assert(!finalized_);
  stats_.add_hash_ops();
  // Hash memoization: one FNV-1a/avalanche per record, threaded through
  // bucket selection, the scratch probe, and the eventual drain.
  const std::uint64_t h = hash_key(key);
  const std::uint32_t b = store_.bucket_of(h);
  if (buffers_.empty()) return policy_->insert(store_, b, key, value);
  CombineBuffer& buf = worker_buffer();
  if (!buf.add(b, h, key, value)) {
    drain_buffer(buf);
    const bool readded = buf.add(b, h, key, value);
    assert(readded);
    (void)readded;
  }
  return Status::kSuccess;
}

CombineBuffer& SepoHashTable::worker_buffer() noexcept {
  const std::size_t w = gpusim::current_worker_index();
  return *buffers_[w < buffers_.size() ? w : buffers_.size() - 1];
}

void SepoHashTable::drain_buffer(CombineBuffer& buf) {
  if (buf.empty()) return;
  const CombineBufferStats add = buf.take_stats();
  std::vector<RequeuedRecord> requeued;
  const DrainOutcome out = policy_->drain_batch(store_, buf, requeued);
  cb_scratch_hits_.fetch_add(add.scratch_hits, std::memory_order_relaxed);
  cb_precombined_.fetch_add(add.precombined_records, std::memory_order_relaxed);
  cb_lock_saved_.fetch_add(out.lock_acquires_saved, std::memory_order_relaxed);
  cb_drains_.fetch_add(1, std::memory_order_relaxed);
  cb_records_.fetch_add(out.records, std::memory_order_relaxed);
  cb_requeued_.fetch_add(out.requeued, std::memory_order_relaxed);
  if (gpusim::EventJournal* j = ctx_.journal(); j != nullptr)
    j->record(gpusim::JournalEventKind::kBatchDrain, out.records, out.requeued);
  if (!requeued.empty()) {
    const std::lock_guard<std::mutex> lk(requeue_mu_);
    for (RequeuedRecord& r : requeued) requeue_.push_back(std::move(r));
  }
}

void SepoHashTable::drain_batches() {
  for (const std::unique_ptr<CombineBuffer>& b : buffers_) drain_buffer(*b);
}

void SepoHashTable::retry_requeued() {
  std::vector<RequeuedRecord> pending;
  {
    const std::lock_guard<std::mutex> lk(requeue_mu_);
    pending.swap(requeue_);
  }
  if (pending.empty()) return;
  std::vector<RequeuedRecord> still;
  for (RequeuedRecord& r : pending) {
    // A retry is a fresh insert attempt, exactly as if the record had been
    // re-issued by its kernel (one hash op — the hash itself is memoized).
    stats_.add_hash_ops();
    const std::uint32_t b = store_.bucket_of(r.hash);
    if (policy_->insert(store_, b, r.key, r.value) != Status::kSuccess)
      still.push_back(std::move(r));
  }
  if (!still.empty()) {
    const std::lock_guard<std::mutex> lk(requeue_mu_);
    for (RequeuedRecord& r : still) requeue_.push_back(std::move(r));
  }
}

std::size_t SepoHashTable::pending_batched_inserts() const noexcept {
  std::size_t n = 0;
  for (const std::unique_ptr<CombineBuffer>& b : buffers_)
    n += b->record_count();
  const std::lock_guard<std::mutex> lk(requeue_mu_);
  return n + requeue_.size();
}

CombineBufferTotals SepoHashTable::combine_buffer_totals() const noexcept {
  CombineBufferTotals t;
  t.enabled = !buffers_.empty();
  t.scratch_hits = cb_scratch_hits_.load(std::memory_order_relaxed);
  t.precombined_records = cb_precombined_.load(std::memory_order_relaxed);
  t.lock_acquires_saved = cb_lock_saved_.load(std::memory_order_relaxed);
  t.drain_flushes = cb_drains_.load(std::memory_order_relaxed);
  t.drained_records = cb_records_.load(std::memory_order_relaxed);
  t.requeued_records = cb_requeued_.load(std::memory_order_relaxed);
  return t;
}

const KvEntry* SepoHashTable::find_resident(std::string_view key) const {
  stats_.add_hash_ops();
  const DevPtr p = store_.find_in_chain(store_.bucket_of(key), key);
  return p == gpusim::kDevNull ? nullptr : store_.device().ptr<KvEntry>(p);
}

void SepoHashTable::apply_pressure() {
  gpusim::FaultInjector* const f = ctx_.faults();
  if (f == nullptr || f->config().pressure_rate <= 0) return;
  alloc::PagePool& pool = store_.pool();
  bool new_spike = false;
  const std::uint32_t target = f->pressure_target(pool.page_count(), new_spike);
  if (new_spike) stats_.add_pressure_spikes();
  gpusim::EventJournal* const journal = ctx_.journal();
  if (new_spike && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureBegin, target);
  const std::size_t held_before = pressure_pages_.size();
  // Seize pages straight from the pool (they count as page_acquires — the
  // spike is indistinguishable from another tenant grabbing memory). If the
  // pool runs dry mid-seize the spike simply holds less than it wanted.
  while (pressure_pages_.size() < target) {
    const std::uint32_t p = pool.acquire(stats_);
    if (p == alloc::kInvalidPage) break;
    pressure_pages_.push_back(p);
  }
  while (pressure_pages_.size() > target) {
    pool.release(pressure_pages_.back(), &stats_);
    pressure_pages_.pop_back();
  }
  if (held_before > 0 && pressure_pages_.empty() && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureEnd, held_before);
}

bool SepoHashTable::should_halt(double halt_frac) const noexcept {
  return store_.allocator().postponed_groups() >=
         static_cast<std::uint32_t>(halt_frac * store_.allocator().num_groups());
}

void SepoHashTable::begin_iteration() {
  stats_.add_iterations();
  store_.allocator().reset_postponed();
  apply_pressure();
  policy_->begin_iteration(store_);
  // Retry drain-postponed records now that flushed pages are back in the
  // pool (and, multi-valued, the device chains are rebuilt) — the batched
  // equivalent of the scalar path's re-issued records.
  if (!buffers_.empty()) retry_requeued();
}

void SepoHashTable::end_iteration() {
  // Safety net for inserts issued outside kernel launches (direct API use):
  // kernels already drained at their exit epilogue.
  if (!buffers_.empty()) drain_batches();
  std::vector<std::uint32_t> to_flush;
  policy_->collect_end_of_iteration(store_, to_flush);
  store_.flush_pages(to_flush);
}

HostTable SepoHashTable::finalize() {
  assert(!finalized_);
  if (!buffers_.empty()) {
    // Flush the pipeline completely: every buffered record must be durable
    // before the host view is built. Each round frees device pages exactly
    // like an iteration boundary, then replays the queue; a round that
    // fails to shrink it cannot ever make progress (the pool only grows at
    // boundaries), so give up loudly instead of spinning.
    drain_batches();
    std::size_t last = std::numeric_limits<std::size_t>::max();
    while (true) {
      std::size_t pending;
      {
        const std::lock_guard<std::mutex> lk(requeue_mu_);
        pending = requeue_.size();
      }
      if (pending == 0) break;
      if (pending >= last)
        throw std::runtime_error(
            "batched insert pipeline cannot place re-queued records at "
            "finalize: a record may exceed the heap size");
      last = pending;
      std::vector<std::uint32_t> to_flush;
      policy_->collect_end_of_iteration(store_, to_flush);
      store_.flush_pages(to_flush);
      policy_->begin_iteration(store_);
      retry_requeued();
    }
  }
  // Return any pages an injected pressure spike still holds.
  for (const std::uint32_t p : pressure_pages_)
    store_.pool().release(p, &stats_);
  pressure_pages_.clear();
  // Flush whatever is still resident (multi-valued key pages included).
  std::vector<std::uint32_t> to_flush;
  policy_->collect_final(store_, to_flush);
  store_.flush_pages(to_flush);
  finalized_ = true;

  return HostTable(store_.config().org, store_.take_host_heads(),
                   store_.host_heap(), store_.config().combiner);
}

std::vector<std::uint64_t> SepoHashTable::resident_chain_histogram(
    std::size_t max_len) const {
  std::vector<std::uint64_t> hist(max_len + 1, 0);
  for (std::uint32_t i = 0; i < store_.num_buckets(); ++i) {
    std::size_t len = 0;
    for (DevPtr p = store_.bucket(i).head_dev.load(std::memory_order_relaxed);
         p != gpusim::kDevNull; ++len)
      p = policy_->chain_next(store_.device(), p);
    ++hist[std::min(len, max_len)];
  }
  return hist;
}

}  // namespace sepo::core
