#include "core/hash_table.hpp"

#include <cassert>

#include "gpusim/fault.hpp"

namespace sepo::core {

SepoHashTable::SepoHashTable(gpusim::ExecContext& ctx, HashTableConfig cfg)
    : ctx_(ctx),
      stats_(ctx.stats()),
      store_(ctx, cfg),
      policy_(make_policy(store_.config())) {}

Status SepoHashTable::insert(std::string_view key,
                             std::span<const std::byte> value) {
  assert(!finalized_);
  stats_.add_hash_ops();
  const std::uint32_t b = store_.bucket_of(key);
  return policy_->insert(store_, b, key, value);
}

const KvEntry* SepoHashTable::find_resident(std::string_view key) const {
  stats_.add_hash_ops();
  const DevPtr p = store_.find_in_chain(store_.bucket_of(key), key);
  return p == gpusim::kDevNull ? nullptr : store_.device().ptr<KvEntry>(p);
}

void SepoHashTable::apply_pressure() {
  gpusim::FaultInjector* const f = ctx_.faults();
  if (f == nullptr || f->config().pressure_rate <= 0) return;
  alloc::PagePool& pool = store_.pool();
  bool new_spike = false;
  const std::uint32_t target = f->pressure_target(pool.page_count(), new_spike);
  if (new_spike) stats_.add_pressure_spikes();
  gpusim::EventJournal* const journal = ctx_.journal();
  if (new_spike && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureBegin, target);
  const std::size_t held_before = pressure_pages_.size();
  // Seize pages straight from the pool (they count as page_acquires — the
  // spike is indistinguishable from another tenant grabbing memory). If the
  // pool runs dry mid-seize the spike simply holds less than it wanted.
  while (pressure_pages_.size() < target) {
    const std::uint32_t p = pool.acquire(stats_);
    if (p == alloc::kInvalidPage) break;
    pressure_pages_.push_back(p);
  }
  while (pressure_pages_.size() > target) {
    pool.release(pressure_pages_.back(), &stats_);
    pressure_pages_.pop_back();
  }
  if (held_before > 0 && pressure_pages_.empty() && journal != nullptr)
    journal->record(gpusim::JournalEventKind::kPressureEnd, held_before);
}

bool SepoHashTable::should_halt(double halt_frac) const noexcept {
  return store_.allocator().postponed_groups() >=
         static_cast<std::uint32_t>(halt_frac * store_.allocator().num_groups());
}

void SepoHashTable::begin_iteration() {
  stats_.add_iterations();
  store_.allocator().reset_postponed();
  apply_pressure();
  policy_->begin_iteration(store_);
}

void SepoHashTable::end_iteration() {
  std::vector<std::uint32_t> to_flush;
  policy_->collect_end_of_iteration(store_, to_flush);
  store_.flush_pages(to_flush);
}

HostTable SepoHashTable::finalize() {
  assert(!finalized_);
  // Return any pages an injected pressure spike still holds.
  for (const std::uint32_t p : pressure_pages_)
    store_.pool().release(p, &stats_);
  pressure_pages_.clear();
  // Flush whatever is still resident (multi-valued key pages included).
  std::vector<std::uint32_t> to_flush;
  policy_->collect_final(store_, to_flush);
  store_.flush_pages(to_flush);
  finalized_ = true;

  return HostTable(store_.config().org, store_.take_host_heads(),
                   store_.host_heap(), store_.config().combiner);
}

std::vector<std::uint64_t> SepoHashTable::resident_chain_histogram(
    std::size_t max_len) const {
  std::vector<std::uint64_t> hist(max_len + 1, 0);
  for (std::uint32_t i = 0; i < store_.num_buckets(); ++i) {
    std::size_t len = 0;
    for (DevPtr p = store_.bucket(i).head_dev.load(std::memory_order_relaxed);
         p != gpusim::kDevNull; ++len)
      p = policy_->chain_next(store_.device(), p);
    ++hist[std::min(len, max_len)];
  }
  return hist;
}

}  // namespace sepo::core
