// SEPO lookups on a larger-than-memory hash table.
//
// The paper applies SEPO to *inserts* and notes (§IV-C): "The SEPO model can
// also be used for lookup operations on larger-than-memory hash tables when
// subsequent phases use/analyze the results but we leave that to the reader
// as a mental exercise." And in the conclusion: "a larger-than-memory hash
// table will postpone certain operations (i.e., insert or lookup) if they
// attempt to access non-resident portions of the hash table. Such operations
// are postponed until the requested portions become resident."
//
// This module is that exercise, worked: the finished host-side table is
// partitioned into contiguous *bucket segments* sized to the device; each
// iteration stages one segment's chains into device memory (one bulky PCIe
// transfer) and runs the lookup kernel over all still-pending queries.
// Queries hashing into the resident segment are answered (hit or definitive
// miss); the rest are POSTPONEd to a later iteration. Segments with no
// pending queries are skipped without staging — the same
// transfer-minimizing reorganization the insert path performs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/host_table.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/thread_pool.hpp"

namespace sepo::core {

struct LookupConfig {
  // Fraction of the remaining device memory used as the segment staging
  // arena (the rest is headroom for query/result buffers).
  double arena_frac = 0.75;
  std::size_t grid_threads = 0;
};

struct LookupBatchResult {
  std::uint32_t iterations = 0;       // segments actually staged
  std::uint32_t segments = 0;         // total segments in the partition
  std::uint32_t segments_skipped = 0; // had no pending queries
  std::uint64_t staged_bytes = 0;
  std::uint64_t found = 0;
  std::uint64_t missing = 0;          // definitive misses
};

class SepoLookupEngine {
 public:
  // Walks `table` once to size every bucket's serialized chain and builds
  // the segment partition. Throws std::runtime_error if some single bucket
  // chain exceeds the staging arena.
  SepoLookupEngine(gpusim::ExecContext& ctx, const HostTable& table,
                   LookupConfig cfg = {});

  // Basic/combining tables: answers every query with the first matching
  // entry's value bytes, or nullopt for a miss. `out` is resized to match.
  LookupBatchResult lookup_values(
      const std::vector<std::string>& queries,
      std::vector<std::optional<std::vector<std::byte>>>& out);

  // Multi-valued tables: answers every query with the key's value list.
  LookupBatchResult lookup_groups(
      const std::vector<std::string>& queries,
      std::vector<std::optional<std::vector<std::vector<std::byte>>>>& out);

  [[nodiscard]] std::uint32_t segment_count() const noexcept {
    return static_cast<std::uint32_t>(segments_.size());
  }
  [[nodiscard]] std::size_t arena_bytes() const noexcept { return arena_size_; }
  // Total serialized table size (what the segments cover).
  [[nodiscard]] std::uint64_t serialized_bytes() const noexcept {
    return total_bytes_;
  }

 private:
  struct Segment {
    std::uint32_t bucket_lo = 0;
    std::uint32_t bucket_hi = 0;  // exclusive
    std::uint64_t bytes = 0;
  };

  // Serialized on-device entry layout (packed back to back per bucket):
  //   u32 key_len | u32 val_len | key bytes pad8 | value bytes pad8
  // For multi-valued, each (key,value) pair of a group is emitted as one
  // serialized entry (group reassembly happens on read-out).
  [[nodiscard]] std::uint64_t serialize_bucket(std::uint32_t bucket,
                                               std::byte* dst) const;
  [[nodiscard]] std::uint64_t bucket_bytes(std::uint32_t bucket) const;

  template <typename OnHit>
  LookupBatchResult run_batch(const std::vector<std::string>& queries,
                              const OnHit& on_hit);

  gpusim::ExecContext& ctx_;
  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  const HostTable& table_;
  LookupConfig cfg_;

  gpusim::DevPtr arena_ = gpusim::kDevNull;
  std::size_t arena_size_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<std::uint64_t> bucket_sizes_;   // serialized bytes per bucket
  std::vector<Segment> segments_;
  std::vector<std::uint32_t> segment_of_bucket_;
};

}  // namespace sepo::core
