// In-heap entry layouts for the three bucket organizations (paper §IV-B).
//
// All entries carry *two* link pointers (paper §III-B): `next_dev` is the
// device-memory chain used while populating; `next_host` is the chain formed
// from the eventual CPU-memory addresses assigned at allocation time, which
// makes the table traversable from the host after heap pages are flushed.
//
// Layouts are packed trivially-copyable structs followed by the raw key and
// value bytes, 8-byte aligned, so a page is a contiguous byte-for-byte
// copyable unit (a flush is a single bulk memcpy/PCIe transaction) and is
// linearly walkable (each entry's size is derivable from its header, which
// the multi-valued rebuild pass relies on).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "alloc/page_pool.hpp"
#include "gpusim/device.hpp"

namespace sepo::core {

using gpusim::DevPtr;
using alloc::HostPtr;

enum class Organization : std::uint8_t {
  kBasic = 0,       // duplicate keys stored as separate entries
  kMultiValued = 1, // per-key value lists; key/value pages separate
  kCombining = 2,   // duplicate keys merged in place via a combiner callback
};

[[nodiscard]] constexpr const char* to_string(Organization o) noexcept {
  switch (o) {
    case Organization::kBasic: return "basic";
    case Organization::kMultiValued: return "multi-valued";
    case Organization::kCombining: return "combining";
  }
  return "?";
}

constexpr std::uint32_t pad8(std::uint32_t n) noexcept {
  return (n + 7u) & ~7u;
}

// --- Basic / Combining entry: header + key bytes (padded) + value bytes ---
struct KvEntry {
  DevPtr next_dev;
  HostPtr next_host;
  std::uint32_t key_len;
  std::uint32_t val_len;

  [[nodiscard]] static std::uint32_t byte_size(std::uint32_t key_len,
                                               std::uint32_t val_len) noexcept {
    return static_cast<std::uint32_t>(sizeof(KvEntry)) + pad8(key_len) +
           pad8(val_len);
  }

  [[nodiscard]] std::uint32_t byte_size() const noexcept {
    return byte_size(key_len, val_len);
  }

  [[nodiscard]] const char* key_data() const noexcept {
    return reinterpret_cast<const char*>(this + 1);
  }
  [[nodiscard]] char* key_data() noexcept {
    return reinterpret_cast<char*>(this + 1);
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {key_data(), key_len};
  }

  [[nodiscard]] const std::byte* value_data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1) + pad8(key_len);
  }
  [[nodiscard]] std::byte* value_data() noexcept {
    return reinterpret_cast<std::byte*>(this + 1) + pad8(key_len);
  }
};
static_assert(sizeof(KvEntry) == 24);
static_assert(alignof(KvEntry) == 8);

// --- Multi-valued key entry: bucket chain + value-list heads + key bytes ---
struct KeyEntry {
  DevPtr next_dev;
  HostPtr next_host;
  DevPtr vhead_dev;    // value list head, device chain (current iteration)
  HostPtr vhead_host;  // value list head, host chain (complete)
  std::uint32_t key_len;
  std::uint32_t page;  // page holding this entry, for pending-key marking

  [[nodiscard]] static std::uint32_t byte_size(std::uint32_t key_len) noexcept {
    return static_cast<std::uint32_t>(sizeof(KeyEntry)) + pad8(key_len);
  }

  [[nodiscard]] std::uint32_t byte_size() const noexcept {
    return byte_size(key_len);
  }

  [[nodiscard]] const char* key_data() const noexcept {
    return reinterpret_cast<const char*>(this + 1);
  }
  [[nodiscard]] char* key_data() noexcept {
    return reinterpret_cast<char*>(this + 1);
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {key_data(), key_len};
  }
};
static_assert(sizeof(KeyEntry) == 40);

// --- Multi-valued value entry: list link + value bytes ---
struct ValueEntry {
  DevPtr next_dev;
  HostPtr next_host;
  std::uint32_t val_len;
  std::uint32_t pad_;

  [[nodiscard]] static std::uint32_t byte_size(std::uint32_t val_len) noexcept {
    return static_cast<std::uint32_t>(sizeof(ValueEntry)) + pad8(val_len);
  }

  [[nodiscard]] std::uint32_t byte_size() const noexcept {
    return byte_size(val_len);
  }

  [[nodiscard]] const std::byte* value_data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
  [[nodiscard]] std::byte* value_data() noexcept {
    return reinterpret_cast<std::byte*>(this + 1);
  }
};
static_assert(sizeof(ValueEntry) == 24);

// Combiner callback (paper §IV-B, combining method: "a callback is used to
// have the application handle the combining"). Plain function pointer —
// mirrors a __device__ function pointer; no captured state.
using CombineFn = void (*)(std::byte* existing, const std::byte* incoming,
                           std::uint32_t len);

// Common combiners used by the applications.
inline void combine_sum_u64(std::byte* e, const std::byte* i, std::uint32_t) {
  std::uint64_t a, b;
  std::memcpy(&a, e, 8);
  std::memcpy(&b, i, 8);
  a += b;
  std::memcpy(e, &a, 8);
}

inline void combine_sum_f64(std::byte* e, const std::byte* i, std::uint32_t) {
  double a, b;
  std::memcpy(&a, e, 8);
  std::memcpy(&b, i, 8);
  a += b;
  std::memcpy(e, &a, 8);
}

inline void combine_or_u32(std::byte* e, const std::byte* i, std::uint32_t) {
  std::uint32_t a, b;
  std::memcpy(&a, e, 4);
  std::memcpy(&b, i, 4);
  a |= b;
  std::memcpy(e, &a, 4);
}

inline void combine_max_u64(std::byte* e, const std::byte* i, std::uint32_t) {
  std::uint64_t a, b;
  std::memcpy(&a, e, 8);
  std::memcpy(&b, i, 8);
  if (b > a) std::memcpy(e, &b, 8);
}

}  // namespace sepo::core
