#include "core/sepo_driver.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/fault.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::core {

DriverResult SepoDriver::run(SepoHashTable& ht,
                             bigkernel::InputPipeline& pipe,
                             std::string_view input, const RecordIndex& index,
                             ProgressTracker& progress,
                             const bigkernel::TaskFn& task) {
  DriverResult result;
  const bool use_halt = ht.config().org == Organization::kBasic;
  std::function<bool()> halted;
  if (use_halt)
    halted = [&ht, frac = cfg_.basic_halt_frac] { return ht.should_halt(frac); };

  gpusim::TraceHook* const hook = ht.run_stats().trace_hook();
  gpusim::EventJournal* const journal = pipe.ctx().journal();

  // An injected memory-pressure spike may seize the whole heap for a few
  // iterations; that is degradation (POSTPONE everything), not a dead
  // config, so tolerate as many consecutive zero-progress iterations as a
  // spike can possibly hold, plus one iteration of slack.
  const gpusim::FaultInjector* const faults = pipe.ctx().faults();
  const std::uint32_t zero_progress_limit =
      faults != nullptr && faults->config().pressure_rate > 0
          ? std::max(2u, faults->config().pressure_hold_iterations + 1)
          : 1;
  std::uint32_t zero_progress = 0;

  // With the batched insert pipeline on, a record can be marked done by its
  // kernel yet still be buffered or re-queued inside the table; the run is
  // only complete when those are durable too. (Scalar runs always report 0
  // pending, so their loop is unchanged.)
  while (!progress.all_done() || ht.pending_batched_inserts() > 0) {
    if (result.iterations >= cfg_.max_iterations)
      throw std::runtime_error("SEPO driver exceeded max_iterations");
    ++result.iterations;
    if (hook) hook->on_iteration_begin(result.iterations);
    if (journal)
      journal->record(gpusim::JournalEventKind::kIterationBegin,
                      result.iterations);

    const std::size_t done_before = progress.done_count();
    const std::size_t pending_before = ht.pending_batched_inserts();
    const gpusim::StatsSnapshot stats_before = ht.run_stats().snapshot();
    ht.begin_iteration();
    const bigkernel::PassResult pass =
        pipe.run_pass(input, index, progress, task, halted);
    ht.end_iteration();

    static_cast<bigkernel::StagingTotals&>(result) += pass;
    result.profiles.push_back(
        profile_iteration(ht, result.iterations, stats_before, pass));
    result.timeseries.push_back(
        sample_occupancy(ht, pipe, result.iterations));
    if (hook) {
      hook->on_occupancy_sample(result.timeseries.back());
      hook->on_iteration_end(result.iterations);
    }
    if (journal)
      journal->record(gpusim::JournalEventKind::kIterationEnd,
                      result.iterations,
                      result.profiles.back().records_postponed);

    // Progress = newly completed records, or the table draining its
    // re-queued backlog (batched pipeline).
    if (progress.done_count() == done_before &&
        ht.pending_batched_inserts() >= pending_before) {
      if (++zero_progress >= zero_progress_limit)
        throw std::runtime_error(
            "SEPO iteration made no progress: an entry may exceed the heap "
            "size, or the heap has zero pages");
    } else {
      zero_progress = 0;
    }
  }
  return result;
}

IterationProfile SepoDriver::profile_iteration(
    SepoHashTable& ht, std::uint32_t iteration,
    const gpusim::StatsSnapshot& before, const bigkernel::PassResult& pass) {
  const gpusim::StatsSnapshot after = ht.run_stats().snapshot();
  const gpusim::StatsSnapshot delta = after - before;

  IterationProfile p;
  p.iteration = iteration;
  p.records_processed = delta.records_processed;
  p.records_postponed = delta.records_postponed;
  const std::uint64_t attempts = delta.records_processed + delta.records_postponed;
  p.postpone_rate = attempts == 0 ? 0.0
                                  : static_cast<double>(delta.records_postponed) /
                                        static_cast<double>(attempts);
  p.page_acquires = delta.page_acquires;
  p.kernel_launches = delta.kernel_launches;
  p.hash_ops = delta.hash_ops;
  p.chunks_staged = pass.chunks_staged;
  p.chunks_skipped = pass.chunks_skipped;
  p.bytes_staged = pass.bytes_staged;
  p.halted = pass.halted;

  p.free_pages_after = ht.free_pages();
  const HashTableStats ts = ht.table_stats();
  p.resident_entry_bytes = ts.resident_entry_bytes;
  p.flushed_bytes_total = ts.flushed_bytes;
  p.distinct_entries_total = after.inserts_new;
  p.hottest_bucket_ops = ht.bucket_load().max_bucket_accesses;
  return p;
}

gpusim::OccupancySample SepoDriver::sample_occupancy(
    SepoHashTable& ht, bigkernel::InputPipeline& pipe,
    std::uint32_t iteration) {
  const gpusim::Timeline& tl = pipe.ctx().timeline();
  gpusim::OccupancySample s;
  s.sim_ts = tl.total_end();
  s.iteration = iteration;
  s.pages_total = ht.page_pool().page_count();
  s.pages_free = ht.free_pages();
  s.pages_seized = ht.pressure_page_count();
  s.resident_entry_bytes = ht.table_stats().resident_entry_bytes;
  s.staging_slots = pipe.staging_slot_count();
  s.staging_busy = pipe.staging_busy(s.sim_ts);
  for (int r = 0; r < gpusim::kNumTimelineResources; ++r) {
    s.engine_end[r] = tl.resource_end(static_cast<gpusim::TimelineResource>(r));
    s.engine_busy[r] = tl.busy(static_cast<gpusim::TimelineResource>(r));
  }
  return s;
}

}  // namespace sepo::core
