#include "core/sepo_driver.hpp"

#include <stdexcept>

namespace sepo::core {

DriverResult SepoDriver::run(SepoHashTable& ht,
                             bigkernel::InputPipeline& pipe,
                             std::string_view input, const RecordIndex& index,
                             ProgressTracker& progress,
                             const bigkernel::TaskFn& task) {
  DriverResult result;
  const bool use_halt = ht.config().org == Organization::kBasic;
  std::function<bool()> halted;
  if (use_halt)
    halted = [&ht, frac = cfg_.basic_halt_frac] { return ht.should_halt(frac); };

  while (!progress.all_done()) {
    if (result.iterations >= cfg_.max_iterations)
      throw std::runtime_error("SEPO driver exceeded max_iterations");
    ++result.iterations;

    const std::size_t done_before = progress.done_count();
    ht.begin_iteration();
    const bigkernel::PassResult pass =
        pipe.run_pass(input, index, progress, task, halted);
    ht.end_iteration();

    result.chunks_staged += pass.chunks_staged;
    result.chunks_skipped += pass.chunks_skipped;
    result.bytes_staged += pass.bytes_staged;

    if (progress.done_count() == done_before)
      throw std::runtime_error(
          "SEPO iteration made no progress: an entry may exceed the heap "
          "size, or the heap has zero pages");
  }
  return result;
}

}  // namespace sepo::core
