#include "core/sepo_lookup.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/bitmap.hpp"
#include "common/hashing.hpp"
#include "gpusim/launch.hpp"

namespace sepo::core {

namespace {

struct SerializedEntry {
  std::uint32_t key_len;
  std::uint32_t val_len;

  [[nodiscard]] static std::uint64_t byte_size(std::uint32_t key_len,
                                               std::uint32_t val_len) noexcept {
    return sizeof(SerializedEntry) + pad8(key_len) + pad8(val_len);
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return byte_size(key_len, val_len);
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {reinterpret_cast<const char*>(this + 1), key_len};
  }
  [[nodiscard]] const std::byte* value_data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1) + pad8(key_len);
  }
};
static_assert(sizeof(SerializedEntry) == 8);

void write_entry(std::byte*& dst, std::string_view key,
                 const std::byte* val, std::uint32_t val_len) {
  SerializedEntry hdr{static_cast<std::uint32_t>(key.size()), val_len};
  std::memcpy(dst, &hdr, sizeof hdr);
  std::memcpy(dst + sizeof hdr, key.data(), key.size());
  if (val_len)
    std::memcpy(dst + sizeof hdr + pad8(hdr.key_len), val, val_len);
  dst += hdr.byte_size();
}

}  // namespace

SepoLookupEngine::SepoLookupEngine(gpusim::ExecContext& ctx,
                                   const HostTable& table, LookupConfig cfg)
    : ctx_(ctx), dev_(ctx.device()), stats_(ctx.stats()), table_(table),
      cfg_(cfg) {
  const std::size_t buckets = table_.bucket_count();
  bucket_sizes_.resize(buckets);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    bucket_sizes_[b] = bucket_bytes(b);
    total_bytes_ += bucket_sizes_[b];
  }

  arena_size_ = static_cast<std::size_t>(
      static_cast<double>(dev_.mem_free()) * cfg_.arena_frac);
  if (arena_size_ < 4096) throw std::runtime_error("device too small");
  arena_ = dev_.alloc_static(arena_size_, 64);

  // Greedy contiguous partition of buckets into arena-sized segments.
  segment_of_bucket_.resize(buckets);
  Segment cur;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    if (bucket_sizes_[b] > arena_size_)
      throw std::runtime_error(
          "a single bucket chain exceeds the lookup staging arena; use more "
          "buckets or a larger device");
    if (cur.bytes + bucket_sizes_[b] > arena_size_) {
      cur.bucket_hi = b;
      segments_.push_back(cur);
      cur = {b, b, 0};
    }
    cur.bytes += bucket_sizes_[b];
    segment_of_bucket_[b] = static_cast<std::uint32_t>(segments_.size());
  }
  cur.bucket_hi = static_cast<std::uint32_t>(buckets);
  segments_.push_back(cur);
}

std::uint64_t SepoLookupEngine::bucket_bytes(std::uint32_t bucket) const {
  std::uint64_t n = 0;
  const auto& heap = table_.heap();
  if (table_.organization() == Organization::kMultiValued) {
    for (HostPtr p = table_.bucket_head(bucket); p != alloc::kHostNull;) {
      const auto* ke = heap.ptr<KeyEntry>(p);
      for (HostPtr vp = ke->vhead_host; vp != alloc::kHostNull;) {
        const auto* ve = heap.ptr<ValueEntry>(vp);
        n += SerializedEntry::byte_size(ke->key_len, ve->val_len);
        vp = ve->next_host;
      }
      // Keys without values still need a presence record.
      if (ke->vhead_host == alloc::kHostNull)
        n += SerializedEntry::byte_size(ke->key_len, 0);
      p = ke->next_host;
    }
  } else {
    for (HostPtr p = table_.bucket_head(bucket); p != alloc::kHostNull;) {
      const auto* e = heap.ptr<KvEntry>(p);
      n += SerializedEntry::byte_size(e->key_len, e->val_len);
      p = e->next_host;
    }
  }
  return n;
}

std::uint64_t SepoLookupEngine::serialize_bucket(std::uint32_t bucket,
                                                 std::byte* dst) const {
  std::byte* cur = dst;
  const auto& heap = table_.heap();
  if (table_.organization() == Organization::kMultiValued) {
    for (HostPtr p = table_.bucket_head(bucket); p != alloc::kHostNull;) {
      const auto* ke = heap.ptr<KeyEntry>(p);
      if (ke->vhead_host == alloc::kHostNull) {
        write_entry(cur, ke->key(), nullptr, 0);
      } else {
        for (HostPtr vp = ke->vhead_host; vp != alloc::kHostNull;) {
          const auto* ve = heap.ptr<ValueEntry>(vp);
          write_entry(cur, ke->key(), ve->value_data(), ve->val_len);
          vp = ve->next_host;
        }
      }
      p = ke->next_host;
    }
  } else {
    for (HostPtr p = table_.bucket_head(bucket); p != alloc::kHostNull;) {
      const auto* e = heap.ptr<KvEntry>(p);
      write_entry(cur, e->key(), e->value_data(), e->val_len);
      p = e->next_host;
    }
  }
  return static_cast<std::uint64_t>(cur - dst);
}

template <typename OnBucket>
LookupBatchResult SepoLookupEngine::run_batch(
    const std::vector<std::string>& queries, const OnBucket& on_bucket) {
  LookupBatchResult result;
  result.segments = segment_count();

  std::vector<std::uint32_t> query_bucket(queries.size());
  std::vector<std::atomic<std::int64_t>> pending(segments_.size());
  for (auto& p : pending) p.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // One hash per query for the whole batch; the bucket is memoized here
    // and reused across every segment iteration (the table owns the hash →
    // bucket mapping — no local re-derivation to drift from it).
    query_bucket[i] = table_.bucket_of(hash_key(queries[i]));
    pending[segment_of_bucket_[query_bucket[i]]].fetch_add(
        1, std::memory_order_relaxed);
  }

  AtomicBitmap done(queries.size());
  std::vector<std::uint64_t> bucket_off(table_.bucket_count());
  std::atomic<std::uint64_t> found{0}, missing{0};

  for (std::uint32_t s = 0; s < segments_.size(); ++s) {
    if (done.all()) break;
    const Segment& seg = segments_[s];
    if (pending[s].load(std::memory_order_relaxed) == 0) {
      ++result.segments_skipped;  // no staging, no kernel (SEPO skip)
      continue;
    }
    ++result.iterations;

    // Stage the segment: serialize bucket chains into the device arena. On
    // real hardware this is one bulky host-to-device DMA.
    std::uint64_t cursor = 0;
    for (std::uint32_t b = seg.bucket_lo; b < seg.bucket_hi; ++b) {
      bucket_off[b] = cursor;
      cursor += serialize_bucket(b, dev_.ptr(arena_ + cursor));
    }
    dev_.bus().h2d(cursor);
    const gpusim::Event staged = ctx_.copy_stream().h2d(cursor);
    result.staged_bytes += cursor;

    // Lookup kernel over pending queries.
    std::atomic<std::uint64_t> answer_bytes{0};
    ctx_.launch(
        queries.size(),
        [&](std::size_t i) {
          stats_.add_records_scanned();
          if (done.test(i)) return;
          const std::uint32_t b = query_bucket[i];
          if (b < seg.bucket_lo || b >= seg.bucket_hi) {
            stats_.add_records_postponed();  // non-resident portion
            return;
          }
          stats_.add_hash_ops();
          const std::byte* data = dev_.ptr(arena_ + bucket_off[b]);
          const std::uint64_t len = bucket_sizes_[b];
          const std::uint64_t got = on_bucket(i, data, len);
          answer_bytes.fetch_add(got, std::memory_order_relaxed);
          if (got > 0)
            found.fetch_add(1, std::memory_order_relaxed);
          else
            missing.fetch_add(1, std::memory_order_relaxed);
          done.set(i);
          pending[s].fetch_sub(1, std::memory_order_relaxed);
          stats_.add_records_processed();
        },
        {.grid_threads = cfg_.grid_threads}, staged);

    // Answers travel back in one bulk transfer per segment.
    const std::uint64_t ab = answer_bytes.load(std::memory_order_relaxed);
    if (ab > 0) {
      dev_.bus().d2h(ab);
      ctx_.flush_d2h(ab);
    }
  }

  result.found = found.load(std::memory_order_relaxed);
  result.missing = missing.load(std::memory_order_relaxed);
  return result;
}

LookupBatchResult SepoLookupEngine::lookup_values(
    const std::vector<std::string>& queries,
    std::vector<std::optional<std::vector<std::byte>>>& out) {
  if (table_.organization() == Organization::kMultiValued)
    throw std::logic_error("use lookup_groups for multi-valued tables");
  out.assign(queries.size(), std::nullopt);
  return run_batch(queries, [&](std::size_t i, const std::byte* data,
                                std::uint64_t len) -> std::uint64_t {
    const std::string_view key = queries[i];
    std::uint64_t off = 0;
    while (off < len) {
      const auto* e = reinterpret_cast<const SerializedEntry*>(data + off);
      stats_.add_chain_links();
      stats_.add_key_compare_bytes(std::min<std::uint64_t>(e->key_len, key.size()));
      if (e->key() == key) {
        out[i].emplace(e->value_data(), e->value_data() + e->val_len);
        return e->val_len;
      }
      off += e->byte_size();
    }
    return 0;
  });
}

LookupBatchResult SepoLookupEngine::lookup_groups(
    const std::vector<std::string>& queries,
    std::vector<std::optional<std::vector<std::vector<std::byte>>>>& out) {
  if (table_.organization() != Organization::kMultiValued)
    throw std::logic_error("lookup_groups requires a multi-valued table");
  out.assign(queries.size(), std::nullopt);
  return run_batch(queries, [&](std::size_t i, const std::byte* data,
                                std::uint64_t len) -> std::uint64_t {
    const std::string_view key = queries[i];
    std::uint64_t off = 0, bytes = 0;
    std::vector<std::vector<std::byte>> vals;
    bool present = false;
    while (off < len) {
      const auto* e = reinterpret_cast<const SerializedEntry*>(data + off);
      stats_.add_chain_links();
      stats_.add_key_compare_bytes(std::min<std::uint64_t>(e->key_len, key.size()));
      if (e->key() == key) {
        present = true;
        if (e->val_len > 0) {
          vals.emplace_back(e->value_data(), e->value_data() + e->val_len);
          bytes += e->val_len;
        }
      }
      off += e->byte_size();
    }
    if (present) out[i] = std::move(vals);
    return present ? std::max<std::uint64_t>(bytes, 1) : 0;
  });
}

}  // namespace sepo::core
