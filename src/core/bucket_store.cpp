#include "core/bucket_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hashing.hpp"
#include "gpusim/trace_hook.hpp"

namespace sepo::core {

namespace {
constexpr bool is_pow2(std::uint64_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

BucketChainStore::BucketChainStore(gpusim::ExecContext& ctx,
                                   HashTableConfig cfg)
    : ctx_(ctx), dev_(ctx.device()), stats_(ctx.stats()), cfg_(cfg) {
  if (!is_pow2(cfg_.num_buckets))
    throw std::invalid_argument("num_buckets must be a power of two");
  if (cfg_.buckets_per_group == 0 || cfg_.buckets_per_group > cfg_.num_buckets)
    throw std::invalid_argument("invalid buckets_per_group");
  if (cfg_.org == Organization::kCombining && cfg_.combiner == nullptr)
    throw std::invalid_argument("combining organization requires a combiner");
  bucket_mask_ = cfg_.num_buckets - 1;

  // The bucket array and its locks live in device memory: reserve their
  // footprint there so the heap gets only what genuinely remains (§IV-A).
  // Charged at the compact device layout (bucket + 4-byte lock word), NOT at
  // sizeof(PaddedBucketLock): the cache-line padding is a host-side
  // anti-false-sharing measure and must not shrink the simulated heap.
  const std::size_t bucket_bytes =
      static_cast<std::size_t>(cfg_.num_buckets) * (sizeof(Bucket) + 4);
  dev_.alloc_static(bucket_bytes);
  buckets_ = std::vector<Bucket>(cfg_.num_buckets);
  bucket_locks_ = std::vector<gpusim::PaddedBucketLock>(cfg_.num_buckets);

  const std::size_t heap_bytes =
      cfg_.heap_bytes == 0 ? dev_.mem_free() : cfg_.heap_bytes;
  // A device too small to hold even one heap page is a capacity failure,
  // not a caller mistake: surface it as the typed OOM so run paths fold it
  // into RunError::kDeviceOutOfMemory instead of letting it escape.
  if (heap_bytes < cfg_.page_size)
    throw gpusim::DeviceOutOfMemory(cfg_.page_size, dev_.static_used(),
                                    dev_.capacity());
  pool_pages_ =
      std::make_unique<alloc::PagePool>(dev_, heap_bytes, cfg_.page_size);
  pool_pages_->set_journal(ctx_.journal());
  host_heap_ = std::make_unique<alloc::HostHeap>(cfg_.page_size);

  const std::uint32_t groups =
      (cfg_.num_buckets + cfg_.buckets_per_group - 1) / cfg_.buckets_per_group;
  const std::uint32_t classes =
      cfg_.org == Organization::kMultiValued ? 3u : 1u;
  allocator_ = std::make_unique<alloc::BucketGroupAllocator>(
      *pool_pages_, *host_heap_, groups, classes);
}

std::uint32_t BucketChainStore::bucket_of(std::string_view key) const noexcept {
  return bucket_of(hash_key(key));
}

DevPtr BucketChainStore::find_in_chain(std::uint32_t b, std::string_view key,
                                       ProbeCost& cost) const {
  for (DevPtr p = buckets_[b].head_dev.load(std::memory_order_relaxed);
       p != gpusim::kDevNull;) {
    ++cost.links;
    const auto* e = dev_.ptr<KvEntry>(p);
    const auto cmp = std::min<std::uint64_t>(e->key_len, key.size());
    cost.bytes += cmp;
    if (e->key() == key) return p;
    p = e->next_dev;
  }
  return gpusim::kDevNull;
}

DevPtr BucketChainStore::find_key_entry(std::uint32_t b, std::string_view key,
                                        ProbeCost& cost) const {
  for (DevPtr p = buckets_[b].head_dev.load(std::memory_order_relaxed);
       p != gpusim::kDevNull;) {
    ++cost.links;
    const auto* e = dev_.ptr<KeyEntry>(p);
    const auto cmp = std::min<std::uint64_t>(e->key_len, key.size());
    cost.bytes += cmp;
    if (e->key() == key) return p;
    p = e->next_dev;
  }
  return gpusim::kDevNull;
}

void BucketChainStore::clear_device_chains() {
  for (Bucket& b : buckets_)
    b.head_dev.store(gpusim::kDevNull, std::memory_order_relaxed);
}

void BucketChainStore::flush_pages(const std::vector<std::uint32_t>& pages) {
  std::uint64_t flushed_pages = 0, flushed_bytes = 0;
  for (const std::uint32_t p : pages) {
    auto& meta = pool_pages_->meta(p);
    const std::uint32_t used = meta.used.load(std::memory_order_relaxed);
    const std::uint64_t slot = meta.host_slot.load(std::memory_order_relaxed);
    if (used > 0) {
      host_heap_->store_page(slot, dev_.ptr(pool_pages_->page_base(p)), used);
      dev_.bus().d2h(used);
      // Flushes halt computation (§IV-C): each page copy is a barrier
      // command on the d2h path.
      ctx_.flush_d2h(used);
      flushed_bytes_ += used;
      ++flush_pages_;
      ++flushed_pages;
      flushed_bytes += used;
    }
    pool_pages_->release(p, &stats_);
  }
  if (auto* hook = stats_.trace_hook(); hook && flushed_pages > 0)
    hook->on_flush(flushed_pages, flushed_bytes);
}

std::vector<HostPtr> BucketChainStore::take_host_heads() {
  std::vector<HostPtr> heads(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    heads[i] = buckets_[i].head_host;
  dev_.bus().d2h(buckets_.size() * sizeof(HostPtr));
  ctx_.flush_d2h(buckets_.size() * sizeof(HostPtr));
  return heads;
}

BucketLoad BucketChainStore::bucket_load() const noexcept {
  BucketLoad load;
  for (const gpusim::PaddedBucketLock& pb : bucket_locks_) {
    const std::uint32_t c = pb.accesses;
    load.total_accesses += c;
    load.max_bucket_accesses =
        std::max<std::uint64_t>(load.max_bucket_accesses, c);
  }
  return load;
}

HashTableStats BucketChainStore::table_stats() const noexcept {
  HashTableStats s;
  s.flushed_bytes = flushed_bytes_;
  s.flush_pages = flush_pages_;
  // Resident bytes: pages currently out of the pool.
  for (std::uint32_t p = 0; p < pool_pages_->page_count(); ++p) {
    const auto& m = pool_pages_->meta(p);
    if (!m.in_pool.load(std::memory_order_relaxed))
      s.resident_entry_bytes += m.used.load(std::memory_order_relaxed);
  }
  s.table_bytes = s.flushed_bytes + s.resident_entry_bytes;
  return s;
}

}  // namespace sepo::core
