#include "core/organization_policy.hpp"

#include <cstring>

#include "gpusim/launch.hpp"

namespace sepo::core {

void OrganizationPolicy::begin_iteration(BucketChainStore&) {}

void OrganizationPolicy::collect_end_of_iteration(
    BucketChainStore& store, std::vector<std::uint32_t>& to_flush) {
  // Basic and Combining flush the entire heap (Figure 5 (a), (c)). The
  // device chains now point into freed pages: reset them. Host chains are
  // complete and untouched.
  store.allocator().detach_active_pages(to_flush);
  store.allocator().take_retired_pages(to_flush);
  store.clear_device_chains();
}

void OrganizationPolicy::collect_final(BucketChainStore& store,
                                       std::vector<std::uint32_t>& to_flush) {
  store.allocator().detach_active_pages(to_flush);
  store.allocator().take_retired_pages(to_flush);
}

DevPtr OrganizationPolicy::chain_next(const gpusim::Device& dev,
                                      DevPtr p) const {
  return dev.ptr<KvEntry>(p)->next_dev;
}

namespace {

// Allocates a fresh KvEntry for <key, value> and prepends it to bucket `b`
// ("new KV pairs are always inserted at the head of the bucket linked
// list", §III-B). Caller holds the bucket lock.
Status insert_new_kv(BucketChainStore& store, std::uint32_t b,
                     std::string_view key, std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::uint32_t sz = KvEntry::byte_size(key_len, val_len);
  const alloc::Allocation a = store.allocator().alloc(
      store.group_of(b), alloc::PageClass::kGeneric, sz, store.stats());
  if (!a.ok()) return Status::kPostpone;

  auto* e = store.device().ptr<KvEntry>(a.dev);
  BucketChainStore::Bucket& bucket = store.bucket(b);
  e->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
  e->next_host = bucket.head_host;
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  bucket.head_host = a.host;
  bucket.head_dev.store(a.dev, std::memory_order_release);
  store.stats().add_inserts_new();
  return Status::kSuccess;
}

class BasicPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    // Duplicate keys are kept as separate entries, so no chain probe is
    // needed — allocate and prepend.
    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    return insert_new_kv(store, b, key, value);
  }
};

class CombiningPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    const auto val_len = static_cast<std::uint32_t>(value.size());
    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    const DevPtr existing = store.find_in_chain(b, key);
    if (existing != gpusim::kDevNull) {
      auto* e = store.device().ptr<KvEntry>(existing);
      store.config().combiner(e->value_data(), value.data(),
                              std::min(e->val_len, val_len));
      store.stats().add_combines();
      return Status::kSuccess;
    }
    return insert_new_kv(store, b, key, value);
  }
};

class MultiValuedPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const auto val_len = static_cast<std::uint32_t>(value.size());
    const std::uint32_t g = store.group_of(b);

    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    DevPtr kp = store.find_key_entry(b, key);
    bool fresh_key = false;

    if (kp == gpusim::kDevNull) {
      const alloc::Allocation ka = store.allocator().alloc(
          g, alloc::PageClass::kKey, KeyEntry::byte_size(key_len),
          store.stats());
      if (!ka.ok()) return Status::kPostpone;
      auto* ke = store.device().ptr<KeyEntry>(ka.dev);
      BucketChainStore::Bucket& bucket = store.bucket(b);
      ke->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
      ke->next_host = bucket.head_host;
      ke->vhead_dev = gpusim::kDevNull;
      ke->vhead_host = alloc::kHostNull;
      ke->key_len = key_len;
      ke->page = ka.page;
      std::memcpy(ke->key_data(), key.data(), key_len);
      bucket.head_host = ka.host;
      bucket.head_dev.store(ka.dev, std::memory_order_release);
      store.stats().add_inserts_new();
      kp = ka.dev;
      fresh_key = true;
    }

    auto* ke = store.device().ptr<KeyEntry>(kp);
    const alloc::Allocation va = store.allocator().alloc(
        g, alloc::PageClass::kValue, ValueEntry::byte_size(val_len),
        store.stats());
    if (!va.ok()) {
      // The key now exists but this record's value does not: keep the key's
      // page resident so the retried record can link its value to the key
      // (paper §IV-C, multi-valued flush rule).
      store.pool().meta(ke->page).pending_keys.fetch_add(
          1, std::memory_order_relaxed);
      (void)fresh_key;
      return Status::kPostpone;
    }
    auto* ve = store.device().ptr<ValueEntry>(va.dev);
    ve->next_dev = ke->vhead_dev;
    ve->next_host = ke->vhead_host;
    ve->val_len = val_len;
    ve->pad_ = 0;
    if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
    ke->vhead_dev = va.dev;
    ke->vhead_host = va.host;
    store.stats().add_value_appends();
    return Status::kSuccess;
  }

  void begin_iteration(BucketChainStore& store) override {
    for (const std::uint32_t p : resident_key_pages_)
      store.pool().meta(p).pending_keys.store(0, std::memory_order_relaxed);
    rebuild_device_chains(store);
  }

  void collect_end_of_iteration(BucketChainStore& store,
                                std::vector<std::uint32_t>& to_flush) override {
    // Flush all value pages plus key pages with no pending keys; key pages
    // with pending keys stay resident (Figure 5 (b)).
    store.allocator().detach_active_pages(alloc::PageClass::kValue, to_flush);
    store.allocator().take_retired_pages(alloc::PageClass::kValue, to_flush);

    std::vector<std::uint32_t> key_pages;
    store.allocator().detach_active_pages(alloc::PageClass::kKey, key_pages);
    store.allocator().take_retired_pages(alloc::PageClass::kKey, key_pages);
    key_pages.insert(key_pages.end(), resident_key_pages_.begin(),
                     resident_key_pages_.end());
    resident_key_pages_.clear();
    for (const std::uint32_t p : key_pages) {
      if (store.pool().meta(p).pending_keys.load(std::memory_order_relaxed) >
          0)
        resident_key_pages_.push_back(p);
      else
        to_flush.push_back(p);
    }
    // Livelock valve: if pending key pages would starve the pool (every page
    // resident, nothing left for values — a failure mode the paper's flush
    // rule does not address), flush them too. Their pending keys will be
    // re-materialized as duplicate entries that HostTable merges on read.
    const auto cap = static_cast<std::size_t>(
        store.config().max_resident_key_frac * store.pool().page_count());
    if (resident_key_pages_.size() > cap) {
      to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                      resident_key_pages_.end());
      resident_key_pages_.clear();
    }
  }

  void collect_final(BucketChainStore& store,
                     std::vector<std::uint32_t>& to_flush) override {
    // At completion no resident key has pending values, but flushing is
    // unconditional.
    OrganizationPolicy::collect_final(store, to_flush);
    to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                    resident_key_pages_.end());
    resident_key_pages_.clear();
  }

  [[nodiscard]] DevPtr chain_next(const gpusim::Device& dev,
                                  DevPtr p) const override {
    return dev.ptr<KeyEntry>(p)->next_dev;
  }

 private:
  void rebuild_device_chains(BucketChainStore& store) {
    // The device chains contain pointers into pages that were flushed at the
    // end of the previous iteration; reset them and re-link only the entries
    // on resident key pages. Host chains are untouched — they are complete.
    store.clear_device_chains();

    // One kernel over resident pages: each page is walked linearly (entries
    // are contiguous and self-sizing). Scheduled through the context so the
    // rebuild shows up on the compute timeline like any other kernel.
    store.ctx().launch(resident_key_pages_.size(), [&](std::size_t i) {
      const std::uint32_t page = resident_key_pages_[i];
      const auto& meta = store.pool().meta(page);
      const std::uint32_t used = meta.used.load(std::memory_order_relaxed);
      const DevPtr base = store.pool().page_base(page);
      std::uint32_t off = 0;
      while (off < used) {
        const DevPtr ep = base + off;
        auto* ke = store.device().ptr<KeyEntry>(ep);
        const std::uint32_t b = store.bucket_of(ke->key());
        ke->vhead_dev = gpusim::kDevNull;  // all value pages were flushed
        gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
        ke->next_dev = store.bucket(b).head_dev.load(std::memory_order_relaxed);
        store.bucket(b).head_dev.store(ep, std::memory_order_release);
        store.stats().add_chain_links();
        off += ke->byte_size();
      }
    });
  }

  // Key pages kept resident across iterations because some of their keys
  // still await values (paper §IV-C).
  std::vector<std::uint32_t> resident_key_pages_;
};

}  // namespace

std::unique_ptr<OrganizationPolicy> make_policy(const HashTableConfig& cfg) {
  switch (cfg.org) {
    case Organization::kBasic:
      return std::make_unique<BasicPolicy>();
    case Organization::kCombining:
      return std::make_unique<CombiningPolicy>();
    case Organization::kMultiValued:
      return std::make_unique<MultiValuedPolicy>();
  }
  return std::make_unique<BasicPolicy>();
}

}  // namespace sepo::core
