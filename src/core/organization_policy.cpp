#include "core/organization_policy.hpp"

#include <algorithm>
#include <cstring>

#include "gpusim/launch.hpp"

namespace sepo::core {

void OrganizationPolicy::begin_iteration(BucketChainStore&) {}

void OrganizationPolicy::collect_end_of_iteration(
    BucketChainStore& store, std::vector<std::uint32_t>& to_flush) {
  // Basic and Combining flush the entire heap (Figure 5 (a), (c)). The
  // device chains now point into freed pages: reset them. Host chains are
  // complete and untouched.
  store.allocator().detach_active_pages(to_flush);
  store.allocator().take_retired_pages(to_flush);
  store.clear_device_chains();
}

void OrganizationPolicy::collect_final(BucketChainStore& store,
                                       std::vector<std::uint32_t>& to_flush) {
  store.allocator().detach_active_pages(to_flush);
  store.allocator().take_retired_pages(to_flush);
}

DevPtr OrganizationPolicy::chain_next(const gpusim::Device& dev,
                                      DevPtr p) const {
  return dev.ptr<KvEntry>(p)->next_dev;
}

namespace {

// Allocates a fresh KvEntry for <key, value> and prepends it to bucket `b`
// ("new KV pairs are always inserted at the head of the bucket linked
// list", §III-B). Caller holds the bucket lock.
Status insert_new_kv(BucketChainStore& store, std::uint32_t b,
                     std::string_view key, std::span<const std::byte> value) {
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto val_len = static_cast<std::uint32_t>(value.size());
  const std::uint32_t sz = KvEntry::byte_size(key_len, val_len);
  const alloc::Allocation a = store.allocator().alloc(
      store.group_of(b), alloc::PageClass::kGeneric, sz, store.stats());
  if (!a.ok()) return Status::kPostpone;

  auto* e = store.device().ptr<KvEntry>(a.dev);
  BucketChainStore::Bucket& bucket = store.bucket(b);
  e->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
  e->next_host = bucket.head_host;
  e->key_len = key_len;
  e->val_len = val_len;
  std::memcpy(e->key_data(), key.data(), key_len);
  if (val_len) std::memcpy(e->value_data(), value.data(), val_len);
  bucket.head_host = a.host;
  bucket.head_dev.store(a.dev, std::memory_order_release);
  store.stats().add_inserts_new();
  return Status::kSuccess;
}

void requeue_record(std::vector<RequeuedRecord>& requeue, std::string_view key,
                    std::span<const std::byte> value, std::uint64_t hash) {
  RequeuedRecord r;
  r.key.assign(key.data(), key.size());
  r.value.assign(value.begin(), value.end());
  r.hash = hash;
  requeue.push_back(std::move(r));
}

using DrainCtx = CombineBuffer::DrainScratch;

// The shared bucket-run drain skeleton. Sorts the batch's bucket ids and
// acquires each distinct bucket's PaddedBucketLock exactly once, in
// ascending bucket order — a canonical order, so concurrent drains holding
// overlapping lock sets cannot deadlock. With every lock held it replays
// the log in *arrival* order: the global sequence of allocator (and page
// pool) requests is then bit-identical to the scalar path, which matters
// because the pool is a shared resource — when it runs dry mid-batch,
// request order decides which record postpones. `process(e, ctx)` performs
// one record's store operation and returns true when the record was
// re-queued.
template <typename ProcessFn>
DrainOutcome drain_runs(BucketChainStore& store, CombineBuffer& buf,
                        const ProcessFn& process) {
  DrainOutcome out;
  const std::span<const CombineBuffer::LogEntry> log = buf.log();
  if (log.empty()) {
    buf.clear();
    return out;
  }
  out.records = log.size();
  const std::span<CombineBuffer::Slot> slots = buf.slots();

  DrainCtx& ctx = buf.drain_scratch();
  ctx.locked.clear();
  for (const CombineBuffer::Slot& s : slots) ctx.locked.push_back(s.bucket);
  std::sort(ctx.locked.begin(), ctx.locked.end());
  ctx.locked.erase(std::unique(ctx.locked.begin(), ctx.locked.end()),
                   ctx.locked.end());
  const std::size_t n = ctx.locked.size();
  ctx.accesses.assign(n, 0);
  if (ctx.prepends.size() < n) ctx.prepends.resize(n);
  for (std::size_t i = 0; i < n; ++i) ctx.prepends[i].clear();
  ctx.chain_links = 0;
  ctx.key_compare_bytes = 0;

  for (const std::uint32_t b : ctx.locked)
    store.lock(b).lock.lock(store.stats());
  // Mirror the scalar path's one-acquire-per-record count; the loop above
  // already recorded one real acquire per distinct bucket.
  const std::uint64_t saved = log.size() - n;
  store.stats().add_lock_acquires(saved);
  out.lock_acquires_saved = saved;

  for (const CombineBuffer::LogEntry& e : log)
    if (process(e, ctx)) ++out.requeued;

  for (std::size_t i = 0; i < n; ++i)
    store.lock(ctx.locked[i]).accesses += ctx.accesses[i];
  if (ctx.chain_links) store.stats().add_chain_links(ctx.chain_links);
  if (ctx.key_compare_bytes)
    store.stats().add_key_compare_bytes(ctx.key_compare_bytes);

  for (auto it = ctx.locked.rbegin(); it != ctx.locked.rend(); ++it)
    store.lock(*it).lock.unlock();
  buf.clear();
  return out;
}

class BasicPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    // Duplicate keys are kept as separate entries, so no chain probe is
    // needed — allocate and prepend.
    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    return insert_new_kv(store, b, key, value);
  }

  DrainOutcome drain_batch(BucketChainStore& store, CombineBuffer& buf,
                           std::vector<RequeuedRecord>& requeue) override {
    const std::span<CombineBuffer::Slot> slots = buf.slots();
    return drain_runs(
        store, buf, [&](const CombineBuffer::LogEntry& e, DrainCtx& ctx) {
          // Basic keeps one slot per record and every record allocates, so
          // there is nothing to amortize beyond the lock runs; count the
          // access directly.
          (void)ctx;
          const CombineBuffer::Slot& s = slots[e.slot];
          ++store.lock(s.bucket).accesses;
          if (insert_new_kv(store, s.bucket, buf.slot_key(s),
                            buf.log_value(e)) != Status::kSuccess) {
            requeue_record(requeue, buf.slot_key(s), buf.log_value(e), s.hash);
            return true;
          }
          return false;
        });
  }
};

class CombiningPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    const auto val_len = static_cast<std::uint32_t>(value.size());
    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    const DevPtr existing = store.find_in_chain(b, key);
    if (existing != gpusim::kDevNull) {
      auto* e = store.device().ptr<KvEntry>(existing);
      store.config().combiner(e->value_data(), value.data(),
                              std::min(e->val_len, val_len));
      store.stats().add_combines();
      return Status::kSuccess;
    }
    return insert_new_kv(store, b, key, value);
  }

  DrainOutcome drain_batch(BucketChainStore& store, CombineBuffer& buf,
                           std::vector<RequeuedRecord>& requeue) override {
    const std::span<CombineBuffer::Slot> slots = buf.slots();
    const bool precombined = buf.precombine();
    const CombineFn combiner = store.config().combiner;
    std::uint64_t combines = 0;

    const DrainOutcome out = drain_runs(
        store, buf, [&](const CombineBuffer::LogEntry& e, DrainCtx& ctx) {
          CombineBuffer::Slot& s = slots[e.slot];

          if (s.state == 1) {
            // Repeat record of an already-resolved key: mirror the probe
            // the scalar path would have paid, then combine. This is the
            // hot path for skewed keys — everything accumulates locally.
            ++ctx.accesses[s.dense];
            ctx.mirror_repeat(s);
            ++combines;
            if (!precombined) {
              auto* kv = store.device().ptr<KvEntry>(s.entry);
              combiner(kv->value_data(), buf.log_value(e).data(),
                       std::min(kv->val_len, e.val_len));
            }
            return false;
          }

          // First record of this key in the batch (or a key whose
          // allocation failed before — re-attempt exactly like a scalar
          // retry would).
          const std::uint32_t b = s.bucket;
          s.dense = ctx.dense_of(b);
          ++ctx.accesses[s.dense];
          BucketChainStore::ProbeCost cost;
          const DevPtr existing =
              store.find_in_chain(b, buf.slot_key(s), cost);
          if (existing != gpusim::kDevNull) {
            auto* kv = store.device().ptr<KvEntry>(existing);
            const std::span<const std::byte> v =
                precombined ? buf.slot_value(s) : buf.log_value(e);
            combiner(kv->value_data(), v.data(),
                     std::min<std::uint32_t>(
                         kv->val_len, static_cast<std::uint32_t>(v.size())));
            ++combines;
            ctx.chain_links += cost.links;
            ctx.key_compare_bytes += cost.bytes;
            s.entry = existing;
            s.depth_links = cost.links;
            s.depth_bytes = cost.bytes;
            ctx.mark_resolved(s);
            s.state = 1;
            return false;
          }
          ctx.chain_links += cost.links;
          ctx.key_compare_bytes += cost.bytes;
          const std::span<const std::byte> v =
              precombined ? buf.slot_value(s) : buf.log_value(e);
          if (insert_new_kv(store, b, buf.slot_key(s), v) !=
              Status::kSuccess) {
            // Leave the slot unresolved: every further record of this key
            // replays the scalar retry (real probe + real alloc attempt)
            // and re-queues.
            requeue_record(requeue, buf.slot_key(s), buf.log_value(e), s.hash);
            return true;
          }
          s.entry = store.bucket(b).head_dev.load(std::memory_order_relaxed);
          s.depth_links = 1;  // freshly prepended: at the head
          s.depth_bytes = s.key_len;
          ctx.prepends[s.dense].push_back(s.key_len);
          ctx.mark_resolved(s);
          s.state = 1;
          return false;
        });
    if (combines) store.stats().add_combines(combines);
    return out;
  }
};

class MultiValuedPolicy final : public OrganizationPolicy {
 public:
  Status insert(BucketChainStore& store, std::uint32_t b, std::string_view key,
                std::span<const std::byte> value) override {
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const std::uint32_t g = store.group_of(b);

    gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
    ++store.lock(b).accesses;
    DevPtr kp = store.find_key_entry(b, key);

    if (kp == gpusim::kDevNull) {
      kp = insert_key_entry(store, b, g, key, key_len);
      if (kp == gpusim::kDevNull) return Status::kPostpone;
    }
    return append_value(store, g, kp, value);
  }

  DrainOutcome drain_batch(BucketChainStore& store, CombineBuffer& buf,
                           std::vector<RequeuedRecord>& requeue) override {
    const std::span<CombineBuffer::Slot> slots = buf.slots();
    return drain_runs(
        store, buf, [&](const CombineBuffer::LogEntry& e, DrainCtx& ctx) {
          CombineBuffer::Slot& s = slots[e.slot];
          const std::uint32_t b = s.bucket;
          const std::uint32_t g = store.group_of(b);

          DevPtr kp;
          if (s.state == 1) {
            // Key already resolved by this batch: mirror the probe, reuse
            // the cached KeyEntry.
            ++ctx.accesses[s.dense];
            ctx.mirror_repeat(s);
            kp = s.entry;
          } else {
            s.dense = ctx.dense_of(b);
            ++ctx.accesses[s.dense];
            BucketChainStore::ProbeCost cost;
            kp = store.find_key_entry(b, buf.slot_key(s), cost);
            ctx.chain_links += cost.links;
            ctx.key_compare_bytes += cost.bytes;
            if (kp == gpusim::kDevNull) {
              kp = insert_key_entry(store, b, g, buf.slot_key(s), s.key_len);
              if (kp == gpusim::kDevNull) {
                requeue_record(requeue, buf.slot_key(s), buf.log_value(e),
                               s.hash);
                return true;
              }
              s.depth_links = 1;
              s.depth_bytes = s.key_len;
              ctx.prepends[s.dense].push_back(s.key_len);
            } else {
              s.depth_links = cost.links;
              s.depth_bytes = cost.bytes;
            }
            ctx.mark_resolved(s);
            s.entry = kp;
            s.state = 1;
          }
          if (append_value(store, g, kp, buf.log_value(e)) !=
              Status::kSuccess) {
            requeue_record(requeue, buf.slot_key(s), buf.log_value(e), s.hash);
            return true;
          }
          return false;
        });
  }

  void begin_iteration(BucketChainStore& store) override {
    for (const std::uint32_t p : resident_key_pages_)
      store.pool().meta(p).pending_keys.store(0, std::memory_order_relaxed);
    rebuild_device_chains(store);
  }

  void collect_end_of_iteration(BucketChainStore& store,
                                std::vector<std::uint32_t>& to_flush) override {
    // Flush all value pages plus key pages with no pending keys; key pages
    // with pending keys stay resident (Figure 5 (b)).
    store.allocator().detach_active_pages(alloc::PageClass::kValue, to_flush);
    store.allocator().take_retired_pages(alloc::PageClass::kValue, to_flush);

    std::vector<std::uint32_t> key_pages;
    store.allocator().detach_active_pages(alloc::PageClass::kKey, key_pages);
    store.allocator().take_retired_pages(alloc::PageClass::kKey, key_pages);
    key_pages.insert(key_pages.end(), resident_key_pages_.begin(),
                     resident_key_pages_.end());
    resident_key_pages_.clear();
    for (const std::uint32_t p : key_pages) {
      if (store.pool().meta(p).pending_keys.load(std::memory_order_relaxed) >
          0)
        resident_key_pages_.push_back(p);
      else
        to_flush.push_back(p);
    }
    // Livelock valve: if pending key pages would starve the pool (every page
    // resident, nothing left for values — a failure mode the paper's flush
    // rule does not address), flush them too. Their pending keys will be
    // re-materialized as duplicate entries that HostTable merges on read.
    const auto cap = static_cast<std::size_t>(
        store.config().max_resident_key_frac * store.pool().page_count());
    if (resident_key_pages_.size() > cap) {
      to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                      resident_key_pages_.end());
      resident_key_pages_.clear();
    }
  }

  void collect_final(BucketChainStore& store,
                     std::vector<std::uint32_t>& to_flush) override {
    // At completion no resident key has pending values, but flushing is
    // unconditional.
    OrganizationPolicy::collect_final(store, to_flush);
    to_flush.insert(to_flush.end(), resident_key_pages_.begin(),
                    resident_key_pages_.end());
    resident_key_pages_.clear();
  }

  [[nodiscard]] DevPtr chain_next(const gpusim::Device& dev,
                                  DevPtr p) const override {
    return dev.ptr<KeyEntry>(p)->next_dev;
  }

 private:
  // Allocates and prepends a KeyEntry for `key`; returns its dev ptr, or
  // kDevNull on allocation failure. Caller holds the bucket lock.
  static DevPtr insert_key_entry(BucketChainStore& store, std::uint32_t b,
                                 std::uint32_t g, std::string_view key,
                                 std::uint32_t key_len) {
    const alloc::Allocation ka = store.allocator().alloc(
        g, alloc::PageClass::kKey, KeyEntry::byte_size(key_len),
        store.stats());
    if (!ka.ok()) return gpusim::kDevNull;
    auto* ke = store.device().ptr<KeyEntry>(ka.dev);
    BucketChainStore::Bucket& bucket = store.bucket(b);
    ke->next_dev = bucket.head_dev.load(std::memory_order_relaxed);
    ke->next_host = bucket.head_host;
    ke->vhead_dev = gpusim::kDevNull;
    ke->vhead_host = alloc::kHostNull;
    ke->key_len = key_len;
    ke->page = ka.page;
    std::memcpy(ke->key_data(), key.data(), key_len);
    bucket.head_host = ka.host;
    bucket.head_dev.store(ka.dev, std::memory_order_release);
    store.stats().add_inserts_new();
    return ka.dev;
  }

  // Allocates a ValueEntry and links it to the key at `kp`. On failure the
  // key's page is marked pending so the Figure-5 flush rule keeps it
  // resident for the retried record.
  static Status append_value(BucketChainStore& store, std::uint32_t g,
                             DevPtr kp, std::span<const std::byte> value) {
    const auto val_len = static_cast<std::uint32_t>(value.size());
    auto* ke = store.device().ptr<KeyEntry>(kp);
    const alloc::Allocation va = store.allocator().alloc(
        g, alloc::PageClass::kValue, ValueEntry::byte_size(val_len),
        store.stats());
    if (!va.ok()) {
      store.pool().meta(ke->page).pending_keys.fetch_add(
          1, std::memory_order_relaxed);
      return Status::kPostpone;
    }
    auto* ve = store.device().ptr<ValueEntry>(va.dev);
    ve->next_dev = ke->vhead_dev;
    ve->next_host = ke->vhead_host;
    ve->val_len = val_len;
    ve->pad_ = 0;
    if (val_len) std::memcpy(ve->value_data(), value.data(), val_len);
    ke->vhead_dev = va.dev;
    ke->vhead_host = va.host;
    store.stats().add_value_appends();
    return Status::kSuccess;
  }

  void rebuild_device_chains(BucketChainStore& store) {
    // The device chains contain pointers into pages that were flushed at the
    // end of the previous iteration; reset them and re-link only the entries
    // on resident key pages. Host chains are untouched — they are complete.
    store.clear_device_chains();

    // One kernel over resident pages: each page is walked linearly (entries
    // are contiguous and self-sizing). Scheduled through the context so the
    // rebuild shows up on the compute timeline like any other kernel.
    store.ctx().launch(resident_key_pages_.size(), [&](std::size_t i) {
      const std::uint32_t page = resident_key_pages_[i];
      const auto& meta = store.pool().meta(page);
      const std::uint32_t used = meta.used.load(std::memory_order_relaxed);
      const DevPtr base = store.pool().page_base(page);
      std::uint32_t off = 0;
      while (off < used) {
        const DevPtr ep = base + off;
        auto* ke = store.device().ptr<KeyEntry>(ep);
        // The only hash recomputation left on the insert side: entries do
        // not carry their hash (the paper-fixed layout spends its header
        // bytes on the dual dev/host pointers), so re-linking a resident
        // page must rehash each key once per iteration.
        const std::uint32_t b = store.bucket_of(ke->key());
        ke->vhead_dev = gpusim::kDevNull;  // all value pages were flushed
        gpusim::DeviceLockGuard guard(store.lock(b).lock, store.stats());
        ke->next_dev = store.bucket(b).head_dev.load(std::memory_order_relaxed);
        store.bucket(b).head_dev.store(ep, std::memory_order_release);
        store.stats().add_chain_links();
        off += ke->byte_size();
      }
    });
  }

  // Key pages kept resident across iterations because some of their keys
  // still await values (paper §IV-C).
  std::vector<std::uint32_t> resident_key_pages_;
};

}  // namespace

std::unique_ptr<OrganizationPolicy> make_policy(const HashTableConfig& cfg) {
  switch (cfg.org) {
    case Organization::kBasic:
      return std::make_unique<BasicPolicy>();
    case Organization::kCombining:
      return std::make_unique<CombiningPolicy>();
    case Organization::kMultiValued:
      return std::make_unique<MultiValuedPolicy>();
  }
  return std::make_unique<BasicPolicy>();
}

}  // namespace sepo::core
