// Organization policy layer of the SEPO hash table (DESIGN.md §2).
//
// One policy object per table encapsulates every Organization-dependent
// decision from Figure 5: how an insert lays out entries in the store, what
// happens at iteration boundaries (which pages flush, which stay resident),
// and what remains to flush at finalize. The BucketChainStore supplies the
// mechanism (buckets, locks, allocator, flush); the policy supplies the
// Figure-5 rules. Adding a future organization (e.g. a compact bucketed
// layout) is a new policy + store pairing, not a rewrite of the table.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/bucket_store.hpp"
#include "core/combine_buffer.hpp"
#include "core/sepo.hpp"

namespace sepo::core {

// What one batched drain did, for the table-level combine_buffer totals and
// the flight-recorder drain event.
struct DrainOutcome {
  std::uint64_t records = 0;              // log entries drained
  std::uint64_t lock_acquires_saved = 0;  // scalar acquires minus real ones
  std::uint64_t requeued = 0;             // records pushed to `requeue`
};

class OrganizationPolicy {
 public:
  virtual ~OrganizationPolicy() = default;

  // Inserts <key, value> into bucket `b`. Returns kPostpone when the
  // required memory could not be allocated. Takes the bucket lock itself.
  virtual Status insert(BucketChainStore& store, std::uint32_t b,
                        std::string_view key,
                        std::span<const std::byte> value) = 0;

  // Drains a worker's CombineBuffer into the store (DESIGN.md §5d): sorts
  // the batch's distinct bucket ids, acquires each bucket's lock exactly
  // once (ascending — deadlock-free against concurrent drains), then
  // replays the records in arrival order so every simulated counter (probe
  // links, compare bytes, combines, allocator and page-pool traffic) lands
  // exactly where the scalar path would have put it. Records the allocator
  // could not place are appended to `requeue` (original bytes + memoized
  // hash) for the next SEPO iteration. The buffer is cleared on return.
  virtual DrainOutcome drain_batch(BucketChainStore& store, CombineBuffer& buf,
                                   std::vector<RequeuedRecord>& requeue) = 0;

  // Called at the start of each SEPO iteration, after postpone flags are
  // reset. Default: nothing to prepare. Multi-valued rebuilds the device
  // chains from resident key pages.
  virtual void begin_iteration(BucketChainStore& store);

  // Figure-5 flush rule: appends to `to_flush` the pages that leave the
  // device at this iteration's end (and resets device chains accordingly).
  // Default (Basic/Combining, Figure 5 (a)/(c)): everything flushes.
  virtual void collect_end_of_iteration(BucketChainStore& store,
                                        std::vector<std::uint32_t>& to_flush);

  // Appends every page still owned by the table at finalize. Default:
  // detach + retire everything; multi-valued adds its resident key pages.
  virtual void collect_final(BucketChainStore& store,
                             std::vector<std::uint32_t>& to_flush);

  // Follows the device chain link of the entry at `p` — entry layout is an
  // organization decision (KvEntry vs KeyEntry). Used by telemetry walks.
  [[nodiscard]] virtual DevPtr chain_next(const gpusim::Device& dev,
                                          DevPtr p) const;
};

// Builds the policy matching cfg.org.
[[nodiscard]] std::unique_ptr<OrganizationPolicy> make_policy(
    const HashTableConfig& cfg);

}  // namespace sepo::core
