// The SEPO iteration driver (paper §III-B, §IV-C, Figure 5).
//
// "The application iterates over the entire set of input records multiple
// times in sequence until all input records have been successfully
// processed." The driver owns that loop: it runs passes over the pending
// records through the BigKernel pipeline, applies the organization-specific
// halt condition, and triggers the organization-specific heap flush between
// iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "bigkernel/pipeline.hpp"
#include "common/progress.hpp"
#include "common/strings.hpp"
#include "core/hash_table.hpp"
#include "core/iteration_profile.hpp"
#include "gpusim/journal.hpp"

namespace sepo::core {

struct DriverConfig {
  // Basic organization: halt the pass when this fraction of bucket groups is
  // postponing ("We observed acceptable performance with setting the
  // threshold to 50%", §IV-C footnote 5).
  double basic_halt_frac = 0.5;
  // Safety valve against configurations that cannot make progress.
  std::uint32_t max_iterations = 10000;
};

// Embeds the same StagingTotals a single pass reports, accumulated over all
// iterations — no field-by-field copying to drift.
struct DriverResult : bigkernel::StagingTotals {
  std::uint32_t iterations = 0;
  // One convergence snapshot per iteration (telemetry; always collected —
  // the cost is one counter snapshot and one bucket sweep per iteration).
  IterationProfiles profiles;
  // One occupancy snapshot per iteration boundary (the flight recorder's
  // sampler, DESIGN.md §5b). Also always collected: it only reads allocator
  // and timeline state, so it cannot perturb results.
  std::vector<gpusim::OccupancySample> timeseries;
};

class SepoDriver {
 public:
  explicit SepoDriver(DriverConfig cfg = {}) : cfg_(cfg) {}

  // Runs `task` over every record of `input` until all records have been
  // processed, iterating per the table's organization. On return the table
  // still holds its data (flushed to the host heap); call ht.finalize() to
  // obtain the HostTable.
  //
  // Throws std::runtime_error if an iteration completes with zero progress
  // (e.g. a single entry larger than the whole heap).
  DriverResult run(SepoHashTable& ht, bigkernel::InputPipeline& pipe,
                   std::string_view input, const RecordIndex& index,
                   ProgressTracker& progress, const bigkernel::TaskFn& task);

  [[nodiscard]] const DriverConfig& config() const noexcept { return cfg_; }

 private:
  static IterationProfile profile_iteration(SepoHashTable& ht,
                                            std::uint32_t iteration,
                                            const gpusim::StatsSnapshot& before,
                                            const bigkernel::PassResult& pass);
  static gpusim::OccupancySample sample_occupancy(
      SepoHashTable& ht, bigkernel::InputPipeline& pipe,
      std::uint32_t iteration);

  DriverConfig cfg_;
};

}  // namespace sepo::core
