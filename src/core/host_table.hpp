// Host-side view of a finalized SEPO hash table.
//
// After the SEPO driver completes, every heap page has been flushed to the
// host mirror heap and the bucket heads' *host* pointers form complete
// chains (paper §III-B: the dual-pointer scheme makes the table "eventually
// accessible from both CPU and GPU sides"). This class walks those chains.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "alloc/host_heap.hpp"
#include "core/entry_layout.hpp"

namespace sepo::core {

// NOTE on duplicate key entries: a key can be represented by several
// entries when SEPO iterations interleave with multi-emission records (a
// record postponed on an early emission re-emits a key whose entry was
// already flushed) or when the multi-valued resident-key cap fires. All
// duplicates of a key land in the same bucket chain, so construction runs a
// one-time chain-local canonicalization pass: duplicates are folded into the
// first entry (with the combiner for the combining organization, by value-
// list concatenation for the multi-valued one) and unlinked from the host
// chain. Reads afterwards see unique keys.
class HostTable {
 public:
  HostTable(Organization org, std::vector<HostPtr> bucket_heads,
            alloc::HostHeap& heap, CombineFn combiner = nullptr)
      : org_(org), heads_(std::move(bucket_heads)), heap_(heap),
        combiner_(combiner) {
    canonicalize();
  }

  [[nodiscard]] Organization organization() const noexcept { return org_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return heads_.size();
  }

  // --- basic / combining ---

  // First entry with `key` (the only one under combining). Value bytes.
  [[nodiscard]] std::optional<std::span<const std::byte>> lookup(
      std::string_view key) const;

  // Typed convenience for 8-byte values.
  [[nodiscard]] std::optional<std::uint64_t> lookup_u64(
      std::string_view key) const;

  // All entries with `key` (basic organization keeps duplicates).
  [[nodiscard]] std::vector<std::span<const std::byte>> lookup_all(
      std::string_view key) const;

  // Visits every entry: fn(key, value_bytes).
  void for_each(
      const std::function<void(std::string_view, std::span<const std::byte>)>&
          fn) const;

  // --- multi-valued ---

  // Visits every key group: fn(key, values); `values` in insertion-reverse
  // order (lists are built by prepending).
  void for_each_group(
      const std::function<void(std::string_view,
                               const std::vector<std::span<const std::byte>>&)>&
          fn) const;

  // Values of one key, or nullopt when absent.
  [[nodiscard]] std::optional<std::vector<std::span<const std::byte>>>
  lookup_group(std::string_view key) const;

  // --- counting ---

  // Distinct keys (duplicates were merged at construction); for kBasic,
  // total entries.
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t value_count() const;  // multi-valued values

  // Number of duplicate entries folded away at construction (diagnostics).
  [[nodiscard]] std::size_t merged_duplicates() const noexcept {
    return merged_duplicates_;
  }

  // Bucket-occupancy histogram over the finalized chains: result[n] = number
  // of buckets holding n entries, with the last bin aggregating chain
  // lengths >= max_len. Telemetry: exported in the metrics JSON so load
  // distribution (and hence probe cost) is visible across runs.
  [[nodiscard]] std::vector<std::uint64_t> occupancy_histogram(
      std::size_t max_len = 16) const;

  // --- low-level access for phase-2 engines (e.g. core::SepoLookupEngine),
  // which re-stage bucket chains into device memory ---
  [[nodiscard]] HostPtr bucket_head(std::size_t b) const noexcept {
    return heads_[b];
  }
  [[nodiscard]] const alloc::HostHeap& heap() const noexcept { return heap_; }

  // Bucket mapping, public so phase-2 engines share the table's own hash →
  // bucket function instead of re-deriving it. The memoized overload takes
  // a precomputed hash_key(key) value.
  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<std::uint32_t>(hash) &
           static_cast<std::uint32_t>(heads_.size() - 1);
  }
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;

 private:
  void canonicalize();
  [[nodiscard]] std::vector<std::span<const std::byte>> values_of(
      const KeyEntry& ke) const;

  Organization org_;
  std::vector<HostPtr> heads_;
  alloc::HostHeap& heap_;
  CombineFn combiner_ = nullptr;
  std::size_t merged_duplicates_ = 0;
};

}  // namespace sepo::core
