// Host-side table construction and snapshot persistence.
//
// HostTableBuilder assembles a HostTable entirely in CPU memory, using the
// same entry layouts and mirror-heap addressing as tables produced by the
// device path — a finished SEPO run and a builder-made table are
// indistinguishable to readers (HostTable, SepoLookupEngine).
//
// save_snapshot / load_snapshot persist a HostTable to a byte stream, so a
// phase-1 population run can be stored and analyzed later (e.g. re-loaded
// and queried through core::SepoLookupEngine) without re-processing the
// input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "alloc/host_heap.hpp"
#include "core/host_table.hpp"

namespace sepo::core {

class HostTableBuilder {
 public:
  HostTableBuilder(Organization org, std::uint32_t num_buckets,
                   std::size_t page_size = 8u << 10,
                   CombineFn combiner = nullptr);

  HostTableBuilder(const HostTableBuilder&) = delete;
  HostTableBuilder& operator=(const HostTableBuilder&) = delete;

  // Basic: appends an entry. Combining: merges into an existing entry when
  // the key is present, else appends. Multi-valued: appends `value` to the
  // key's group (creating the key on first sight).
  void add(std::string_view key, std::span<const std::byte> value);

  void add_u64(std::string_view key, std::uint64_t v) {
    add(key, std::as_bytes(std::span{&v, 1}));
  }

  // Finalizes chains and returns the table view. The builder owns the
  // backing storage and must outlive the returned HostTable. May be called
  // once.
  HostTable build();

  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }

 private:
  // Bump-allocates `bytes` in the mirror heap; returns the host address.
  HostPtr alloc(std::uint32_t bytes);
  void flush_page();
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;
  // Walks the (host-buffered) chain of bucket b for `key`.
  [[nodiscard]] HostPtr find(std::uint32_t b, std::string_view key);
  [[nodiscard]] std::byte* at(HostPtr p);

  Organization org_;
  CombineFn combiner_;
  std::size_t page_size_;
  std::vector<HostPtr> heads_;
  alloc::HostHeap heap_;

  // Current page under construction (stored into heap_ when full).
  std::vector<std::byte> page_buf_;
  std::uint64_t cur_slot_ = 0;
  std::uint32_t cur_used_ = 0;

  std::size_t entries_ = 0;
  bool built_ = false;
};

// Snapshot format (little-endian, versioned):
//   "SEPOTBL1" | u8 org | u32 num_buckets | u64 entry stream ...
void save_snapshot(const HostTable& table, std::ostream& os);

// A loaded snapshot: the storage plus the table view into it.
struct LoadedTable {
  std::unique_ptr<HostTableBuilder> storage;
  std::unique_ptr<HostTable> table;
};

// Throws std::runtime_error on malformed input.
[[nodiscard]] LoadedTable load_snapshot(std::istream& is);

}  // namespace sepo::core
