// Bucket/chain storage layer of the SEPO hash table (DESIGN.md §2).
//
// BucketChainStore owns everything *structural*: the bucket array and its
// per-bucket locks, the device page pool, the host mirror heap, the
// bucket-group allocator, chain probing, and the flush machinery (page
// copies metered on the d2h engine). It deliberately knows nothing about
// *when* to flush, postpone, or keep pages resident — those Figure-5
// decisions live in the OrganizationPolicy (organization_policy.hpp);
// SepoHashTable (hash_table.hpp) composes the two under the unchanged
// public API.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "alloc/bucket_group_allocator.hpp"
#include "alloc/host_heap.hpp"
#include "alloc/page_pool.hpp"
#include "core/entry_layout.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "gpusim/launch.hpp"

namespace sepo::core {

struct HashTableConfig {
  Organization org = Organization::kCombining;
  std::uint32_t num_buckets = 1u << 14;     // power of two
  // §IV-A trade-off knob. Keep groups x page-classes x page_size well below
  // the heap: every group holds partially-filled active pages, and too many
  // groups strand the heap in fragmentation (more SEPO iterations).
  std::uint32_t buckets_per_group = 512;
  std::size_t page_size = 8u << 10;
  CombineFn combiner = nullptr;             // required for kCombining
  // Declares the combiner associative AND commutative (e.g. u64 sum, OR,
  // max). Only then may the batched insert pipeline pre-apply it inside a
  // per-worker CombineBuffer; order-sensitive combiners (f64 sum) are
  // pre-grouped but applied in arrival order at drain, so final digests
  // stay bit-identical to the scalar path either way.
  bool combiner_assoc_comm = false;
  // Batched insert pipeline (DESIGN.md §5d): records per worker
  // CombineBuffer. 0 (the default) keeps the scalar one-record-at-a-time
  // insert path.
  std::uint32_t batch_insert_capacity = 0;
  // Heap size: 0 = take all remaining device memory (paper §IV-A).
  std::size_t heap_bytes = 0;
  // Multi-valued livelock valve (see DESIGN.md "resident-key cap"): when
  // key pages kept resident for pending values exceed this fraction of the
  // pool, they are flushed anyway. Retried records then materialize a
  // duplicate key entry in the same bucket; HostTable merges duplicates at
  // read time.
  double max_resident_key_frac = 0.5;
};

struct HashTableStats {
  std::uint64_t resident_entry_bytes = 0;  // bytes currently in device pages
  std::uint64_t flushed_bytes = 0;         // total bytes ever flushed to host
  std::uint64_t flush_pages = 0;           // pages flushed
  std::uint64_t table_bytes = 0;           // flushed + resident (table size)
};

// Per-bucket access totals, used by the cost model's lock-serialization
// term (DESIGN.md §5): on a GPU, thousands of concurrent threads hitting
// one hot bucket serialize on its lock (the paper's Word Count §VI-B).
struct BucketLoad {
  std::uint64_t total_accesses = 0;
  std::uint64_t max_bucket_accesses = 0;
};

class BucketChainStore {
 public:
  struct Bucket {
    std::atomic<DevPtr> head_dev{gpusim::kDevNull};
    HostPtr head_host = alloc::kHostNull;  // guarded by the bucket lock
  };

  BucketChainStore(gpusim::ExecContext& ctx, HashTableConfig cfg);

  BucketChainStore(const BucketChainStore&) = delete;
  BucketChainStore& operator=(const BucketChainStore&) = delete;

  [[nodiscard]] const HashTableConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t num_buckets() const noexcept {
    return cfg_.num_buckets;
  }
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const noexcept;
  // Memoized-hash overload: callers that already computed hash_key(key)
  // (batched inserts, requeued records, lookup engines) must route through
  // this instead of rehashing.
  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<std::uint32_t>(hash) & bucket_mask_;
  }
  [[nodiscard]] std::uint32_t group_of(std::uint32_t bucket) const noexcept {
    return bucket / cfg_.buckets_per_group;
  }

  [[nodiscard]] Bucket& bucket(std::uint32_t b) noexcept { return buckets_[b]; }
  [[nodiscard]] const Bucket& bucket(std::uint32_t b) const noexcept {
    return buckets_[b];
  }
  [[nodiscard]] gpusim::PaddedBucketLock& lock(std::uint32_t b) noexcept {
    return bucket_locks_[b];
  }

  // Probe work a single chain walk performed — the batched drain records it
  // per distinct key so repeat probes can be mirrored arithmetically.
  struct ProbeCost {
    std::uint32_t links = 0;
    std::uint64_t bytes = 0;
  };

  // Walks the device chain of bucket `b` for `key`; returns entry dev ptr or
  // null. Caller holds the bucket lock. The ProbeCost overloads report the
  // walk's cost to the caller WITHOUT touching RunStats — the batched drain
  // folds many walks into one counter add per drain (same totals, no
  // per-link shared-atomic traffic from the drain thread). The plain
  // overloads charge the walk to RunStats, as the scalar path expects.
  [[nodiscard]] DevPtr find_in_chain(std::uint32_t b,
                                     std::string_view key) const {
    ProbeCost cost;
    const DevPtr p = find_in_chain(b, key, cost);
    stats_.add_chain_links(cost.links);
    stats_.add_key_compare_bytes(cost.bytes);
    return p;
  }
  [[nodiscard]] DevPtr find_in_chain(std::uint32_t b, std::string_view key,
                                     ProbeCost& cost) const;
  [[nodiscard]] DevPtr find_key_entry(std::uint32_t b,
                                      std::string_view key) const {
    ProbeCost cost;
    const DevPtr p = find_key_entry(b, key, cost);
    stats_.add_chain_links(cost.links);
    stats_.add_key_compare_bytes(cost.bytes);
    return p;
  }
  [[nodiscard]] DevPtr find_key_entry(std::uint32_t b, std::string_view key,
                                      ProbeCost& cost) const;

  // Resets every bucket's device head to null. Used after the flushed pages
  // leave the device: the chains then point into freed memory. Host chains
  // are complete and untouched.
  void clear_device_chains();

  // Copies each page's used bytes into the host mirror heap (metered as d2h
  // barrier commands — flushes halt computation, §IV-C) and returns the
  // pages to the pool.
  void flush_pages(const std::vector<std::uint32_t>& pages);

  // Copies the bucket heads' host pointers back (one bulk transfer) for
  // HostTable construction. Call once, after the final flush.
  [[nodiscard]] std::vector<HostPtr> take_host_heads();

  [[nodiscard]] BucketLoad bucket_load() const noexcept;
  [[nodiscard]] HashTableStats table_stats() const noexcept;

  [[nodiscard]] gpusim::ExecContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] gpusim::Device& device() noexcept { return dev_; }
  [[nodiscard]] const gpusim::Device& device() const noexcept { return dev_; }
  [[nodiscard]] gpusim::RunStats& stats() const noexcept { return stats_; }
  [[nodiscard]] alloc::PagePool& pool() noexcept { return *pool_pages_; }
  [[nodiscard]] const alloc::PagePool& pool() const noexcept {
    return *pool_pages_;
  }
  [[nodiscard]] alloc::HostHeap& host_heap() noexcept { return *host_heap_; }
  [[nodiscard]] alloc::BucketGroupAllocator& allocator() noexcept {
    return *allocator_;
  }
  [[nodiscard]] const alloc::BucketGroupAllocator& allocator() const noexcept {
    return *allocator_;
  }

 private:
  gpusim::ExecContext& ctx_;
  gpusim::Device& dev_;
  gpusim::RunStats& stats_;
  HashTableConfig cfg_;
  std::uint32_t bucket_mask_;

  std::unique_ptr<alloc::PagePool> pool_pages_;
  std::unique_ptr<alloc::HostHeap> host_heap_;
  std::unique_ptr<alloc::BucketGroupAllocator> allocator_;

  std::vector<Bucket> buckets_;
  // Lock + access tally per bucket, each on its own cache line
  // (gpusim::PaddedBucketLock) so concurrent inserts to *different* buckets
  // never false-share. Device-memory accounting still charges the compact
  // lock+counter footprint (see the ctor) — the padding is host-only.
  std::vector<gpusim::PaddedBucketLock> bucket_locks_;

  std::uint64_t flushed_bytes_ = 0;
  std::uint64_t flush_pages_ = 0;
};

}  // namespace sepo::core
