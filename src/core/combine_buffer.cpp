#include "core/combine_buffer.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sepo::core {

CombineBuffer::CombineBuffer(Organization org, std::uint32_t capacity,
                             bool precombine, CombineFn combiner)
    : org_(org),
      capacity_(std::max(1u, capacity)),
      precombine_(precombine && org == Organization::kCombining &&
                  combiner != nullptr),
      combiner_(combiner) {
  if (org_ != Organization::kBasic) {
    // 2x capacity, pow2: load factor stays <= 0.5 even when every record is
    // a distinct key, keeping linear-probe runs short.
    const std::uint32_t want = std::max(4u, capacity_ * 2);
    const std::uint32_t size = std::bit_ceil(want);
    index_.assign(size, 0);
    index_mask_ = size - 1;
  }
  slots_.reserve(capacity_);
  log_.reserve(capacity_);
  arena_.resize(static_cast<std::size_t>(capacity_) * 32);
}

std::uint32_t CombineBuffer::push_arena(const void* data, std::size_t n) {
  // Manual bump allocation over a pre-sized vector: resize() on the hot
  // add path costs a non-inlined value-initializing append; a bump plus
  // memcpy is branch-plus-copy. The vector only ever grows.
  if (arena_used_ + n > arena_.size())
    arena_.resize(std::max(arena_.size() * 2, arena_used_ + n));
  const std::uint32_t off = static_cast<std::uint32_t>(arena_used_);
  if (n) std::memcpy(arena_.data() + off, data, n);
  arena_used_ += n;
  return off;
}

bool CombineBuffer::add(std::uint32_t bucket, std::uint64_t hash,
                        std::string_view key,
                        std::span<const std::byte> value) {
  if (log_.size() >= capacity_) return false;

  std::uint32_t slot_id;
  if (org_ == Organization::kBasic) {
    // No dedup: basic keeps duplicate keys as separate entries, so each
    // record is its own slot and the drain only pre-groups by bucket.
    slot_id = static_cast<std::uint32_t>(slots_.size());
    Slot s;
    s.hash = hash;
    s.bucket = bucket;
    s.key_len = static_cast<std::uint32_t>(key.size());
    s.key_off = push_arena(key.data(), key.size());
    slots_.push_back(s);
  } else {
    std::uint32_t pos = static_cast<std::uint32_t>(hash) & index_mask_;
    std::uint32_t found = 0;  // slot id + 1
    while (index_[pos] != 0) {
      const Slot& s = slots_[index_[pos] - 1];
      if (s.hash == hash && slot_key(s) == key) {
        found = index_[pos];
        break;
      }
      pos = (pos + 1) & index_mask_;
    }
    if (found != 0) {
      slot_id = found - 1;
      Slot& s = slots_[slot_id];
      ++stats_.scratch_hits;
      if (precombine_) {
        combiner_(arena_.data() + s.val_off, value.data(),
                  std::min<std::uint32_t>(
                      s.val_len, static_cast<std::uint32_t>(value.size())));
        ++stats_.precombined_records;
      }
    } else {
      if (slots_.size() >= capacity_) return false;
      slot_id = static_cast<std::uint32_t>(slots_.size());
      Slot s;
      s.hash = hash;
      s.bucket = bucket;
      s.key_len = static_cast<std::uint32_t>(key.size());
      s.key_off = push_arena(key.data(), key.size());
      if (precombine_) {
        s.val_len = static_cast<std::uint32_t>(value.size());
        s.val_off = push_arena(value.data(), value.size());
      }
      slots_.push_back(s);
      index_[pos] = slot_id + 1;
    }
  }

  Slot& s = slots_[slot_id];
  ++s.hits;
  LogEntry e;
  e.slot = slot_id;
  e.val_len = static_cast<std::uint32_t>(value.size());
  e.val_off = push_arena(value.data(), value.size());
  log_.push_back(e);
  return true;
}

void CombineBuffer::clear() noexcept {
  if (!index_.empty()) std::fill(index_.begin(), index_.end(), 0u);
  slots_.clear();
  log_.clear();
  arena_used_ = 0;
}

}  // namespace sepo::core
