// Deterministic random number generation and skewed samplers for the
// synthetic dataset generators (DESIGN.md §1: proprietary inputs are replaced
// with synthetic equivalents whose key-frequency distributions drive the same
// hash-table behaviour).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace sepo {

// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    // seed via splitmix64 so similar seeds give unrelated streams
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // exactness of the distribution is not load-bearing for generators.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// Zipfian sampler over [0, n) with exponent `s`, using the classic
// inverse-CDF-over-precomputed-prefix method. Used to model skewed key
// popularity (URLs in web logs, words in documents), which is what creates
// the duplicate-key combining opportunities and the Word Count lock
// contention the paper discusses (§VI-B).
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform();
    // binary search for first cdf >= u
    std::size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace sepo
