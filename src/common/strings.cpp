#include "common/strings.hpp"

namespace sepo {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool parse_u64(std::string_view& s, std::uint64_t& out) {
  if (s.empty() || s.front() < '0' || s.front() > '9') return false;
  std::uint64_t v = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  s.remove_prefix(i);
  out = v;
  return true;
}

RecordIndex index_lines(std::string_view data) {
  RecordIndex idx;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    if (end > start) {  // skip empty lines
      idx.offsets.push_back(start);
      idx.lengths.push_back(static_cast<std::uint32_t>(end - start));
    }
    start = end + 1;
  }
  return idx;
}

}  // namespace sepo
