// Hash functions shared by the device-side and host-side hash tables.
//
// The paper does not prescribe a hash function; we use a 64-bit FNV-1a
// variant finished with an avalanche mix (splitmix64 finalizer) so that
// bucket selection by low bits is well distributed even for short keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sepo {

// splitmix64 finalizer; full avalanche.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// FNV-1a over arbitrary bytes, then avalanched.
constexpr std::uint64_t hash_bytes(const char* data, std::size_t len) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

inline std::uint64_t hash_key(std::string_view key) noexcept {
  return hash_bytes(key.data(), key.size());
}

constexpr std::uint64_t hash_u64(std::uint64_t v) noexcept { return mix64(v ^ 0x9e3779b97f4a7c15ULL); }

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace sepo
