// Wall-clock timing helpers. Benches report host wall-clock alongside the
// simulated times produced by gpusim::CostModel (DESIGN.md §5).
#pragma once

#include <chrono>

namespace sepo {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sepo
