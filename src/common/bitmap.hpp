// Atomic bitmap used by the SEPO model to track which input records have been
// successfully processed (paper §III-B: "We keep track of whether the input
// records have been successfully processed or not in a bitmap that has one bit
// per input record").
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sepo {

// Fixed-size bitmap with thread-safe set/test. Bits start cleared.
//
// The common access pattern is: many virtual GPU threads set bits
// concurrently during an iteration; the host then scans for unset bits to
// decide what the next iteration must re-process.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;

  explicit AtomicBitmap(std::size_t num_bits) { reset(num_bits); }

  // Re-initializes to `num_bits` cleared bits.
  void reset(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(word_count(), Word{});
  }

  // Clears all bits, keeping the size.
  void clear() {
    for (auto& w : words_) w.v.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return num_bits_; }

  // Atomically sets bit `i`. Returns true iff the bit was previously unset.
  bool set(std::size_t i) noexcept {
    assert(i < num_bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].v.fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  // Atomically clears bit `i`. Returns true iff the bit was previously set.
  bool unset(std::size_t i) noexcept {
    assert(i < num_bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].v.fetch_and(~mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < num_bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    return (words_[i >> 6].v.load(std::memory_order_acquire) & mask) != 0;
  }

  // Number of set bits. Not linearizable under concurrent mutation; callers
  // use it between kernel launches when the bitmap is quiescent.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    // Trailing-word bits past num_bits_ are masked out rather than trusted
    // to be clear, so count() stays correct even if a stray out-of-range
    // set() slipped past the debug assert in a release build.
    const std::size_t full = num_bits_ >> 6;
    for (std::size_t wi = 0; wi < full; ++wi)
      n += static_cast<std::size_t>(
          std::popcount(words_[wi].v.load(std::memory_order_relaxed)));
    const std::size_t tail = num_bits_ & 63;
    if (tail != 0)
      n += static_cast<std::size_t>(std::popcount(
          words_[full].v.load(std::memory_order_relaxed) &
          ((std::uint64_t{1} << tail) - 1)));
    return n;
  }

  [[nodiscard]] bool all() const noexcept { return count() == num_bits_; }

  // Index of the first unset bit at or after `from`, or size() if none.
  [[nodiscard]] std::size_t first_unset_from(std::size_t from) const noexcept {
    if (from >= num_bits_) return num_bits_;
    std::size_t wi = from >> 6;
    // Mask off bits below `from` in the first word by treating them as set.
    std::uint64_t w = words_[wi].v.load(std::memory_order_relaxed) |
                      ((std::uint64_t{1} << (from & 63)) - 1);
    while (true) {
      const std::uint64_t inv = ~w;
      if (inv != 0) {
        const std::size_t bit =
            (wi << 6) + static_cast<std::size_t>(std::countr_zero(inv));
        return bit < num_bits_ ? bit : num_bits_;
      }
      if (++wi >= words_.size()) return num_bits_;
      w = words_[wi].v.load(std::memory_order_relaxed);
    }
  }

 private:
  struct Word {
    std::atomic<std::uint64_t> v{0};
    Word() = default;
    Word(const Word& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  [[nodiscard]] std::size_t word_count() const noexcept {
    return (num_bits_ + 63) / 64;
  }

  std::size_t num_bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace sepo
