// Checked numeric parsing for CLI flags and config strings.
//
// std::atoi/atof silently turn garbage into 0 and saturate nowhere, which is
// how `--threads=abc` used to become a zero-thread pool. parse_number is the
// strict replacement: the whole string must parse, the value must fit the
// target type, and anything else is a std::nullopt the caller turns into an
// error message naming the flag.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace sepo {

// Parses the *entire* string as a value of T (integral or floating point).
// Rejects empty input, trailing junk, out-of-range values, and, for unsigned
// targets, negative input. No locale, no leading whitespace.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace sepo
