// Per-task progress tracking for the SEPO model.
//
// The paper's applications emit exactly one KV pair per input record, so a
// one-bit-per-record bitmap suffices (§III-B). Our MapReduce runtime also
// supports map functions that emit several pairs per record; for those, a
// record is "done" only when all of its emissions have been accepted, and a
// per-record resume counter remembers how many leading emissions already
// succeeded so re-execution (the SEPO re-issue) skips them instead of
// double-inserting. See DESIGN.md §2 (mapreduce).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bitmap.hpp"

namespace sepo {

class ProgressTracker {
 public:
  ProgressTracker() = default;

  explicit ProgressTracker(std::size_t num_tasks, bool multi_emit = false) {
    reset(num_tasks, multi_emit);
  }

  void reset(std::size_t num_tasks, bool multi_emit = false) {
    done_.reset(num_tasks);
    multi_emit_ = multi_emit;
    if (multi_emit) {
      resume_.assign(num_tasks, Counter{});
    } else {
      resume_.clear();
    }
  }

  [[nodiscard]] std::size_t num_tasks() const noexcept { return done_.size(); }

  [[nodiscard]] bool is_done(std::size_t task) const noexcept {
    return done_.test(task);
  }

  // Marks `task` fully processed. Returns true if it was not done before.
  bool mark_done(std::size_t task) noexcept { return done_.set(task); }

  // How many leading emissions of `task` have already been accepted.
  [[nodiscard]] std::uint32_t resume_point(std::size_t task) const noexcept {
    return multi_emit_ ? resume_[task].v.load(std::memory_order_acquire) : 0;
  }

  // Records that emission index `idx` of `task` succeeded. Emissions succeed
  // in order within one (re-)execution of the task, so a simple store of
  // idx+1 is correct: only the single virtual thread executing the task
  // writes its counter.
  void advance(std::size_t task, std::uint32_t idx) noexcept {
    if (multi_emit_)
      resume_[task].v.store(idx + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t done_count() const noexcept { return done_.count(); }
  [[nodiscard]] bool all_done() const noexcept { return done_.all(); }

  [[nodiscard]] std::size_t first_pending_from(std::size_t from) const noexcept {
    return done_.first_unset_from(from);
  }

  [[nodiscard]] const AtomicBitmap& bitmap() const noexcept { return done_; }

 private:
  struct Counter {
    std::atomic<std::uint32_t> v{0};
    Counter() = default;
    Counter(const Counter& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Counter& operator=(const Counter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  AtomicBitmap done_;
  std::vector<Counter> resume_;
  bool multi_emit_ = false;
};

}  // namespace sepo
