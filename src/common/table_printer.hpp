// Console table / CSV rendering used by the bench harnesses to print the
// paper's tables and figure series (EXPERIMENTS.md records the output).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sepo {

// Column-aligned text table with an optional CSV dump. Cells are strings;
// helpers format common numeric types.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& add_row(std::vector<std::string> cells);

  // Renders an aligned table to `os`.
  void print(std::ostream& os) const;

  // Renders comma-separated values (no quoting; callers avoid commas).
  void print_csv(std::ostream& os) const;

  // Renders a JSON array of {header: cell} objects (all cells as strings).
  // obs::table_to_json builds the same shape as a typed value tree.
  void print_json(std::ostream& os) const;

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_bytes(unsigned long long bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sepo
