// Small string utilities used by the applications' record parsers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sepo {

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// Parses a non-negative decimal integer from the front of `s`; returns the
// value and leaves `s` positioned after the digits. Returns false if `s`
// does not start with a digit.
bool parse_u64(std::string_view& s, std::uint64_t& out);

// Builds an index of newline-terminated records over `data`: offsets of
// record starts, excluding the trailing newline from record bodies. The last
// record need not be newline-terminated.
struct RecordIndex {
  std::vector<std::uint64_t> offsets;  // start of each record
  std::vector<std::uint32_t> lengths;  // record body length (no '\n')

  [[nodiscard]] std::size_t size() const noexcept { return offsets.size(); }
  [[nodiscard]] std::string_view record(const char* base, std::size_t i) const {
    return {base + offsets[i], lengths[i]};
  }
};

RecordIndex index_lines(std::string_view data);

}  // namespace sepo
