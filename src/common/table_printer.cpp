#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace sepo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      for (std::size_t p = cells[c].size(); p < widths[c]; ++p) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t p = 0; p < widths[c] + 2; ++p) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

void TablePrinter::print_json(std::ostream& os) const {
  auto escaped = [&](const std::string& s) {
    for (const char ch : s) {
      switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            os << buf;
          } else {
            os << ch;
          }
      }
    }
  };
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      os << '"';
      escaped(headers_[c]);
      os << "\": \"";
      escaped(rows_[r][c]);
      os << '"';
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TablePrinter::fmt_bytes(unsigned long long bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30))
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1ULL << 30));
  else if (bytes >= (1ULL << 20))
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / (1ULL << 20));
  else if (bytes >= (1ULL << 10))
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / (1ULL << 10));
  else
    std::snprintf(buf, sizeof buf, "%llu B", bytes);
  return buf;
}

}  // namespace sepo
