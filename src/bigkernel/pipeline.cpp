#include "bigkernel/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

namespace sepo::bigkernel {

InputPipeline::InputPipeline(gpusim::ExecContext& ctx, PipelineConfig cfg)
    : ctx_(ctx), cfg_(cfg) {
  if (cfg_.records_per_chunk == 0 || cfg_.num_staging_buffers == 0)
    throw std::invalid_argument("invalid pipeline configuration");
  staging_.reserve(cfg_.num_staging_buffers);
  for (std::size_t i = 0; i < cfg_.num_staging_buffers; ++i)
    staging_.push_back(ctx_.device().alloc_static(cfg_.max_chunk_bytes, 64));
  last_use_.resize(cfg_.num_staging_buffers);
}

PassResult InputPipeline::run_pass(std::string_view input,
                                   const RecordIndex& index,
                                   ProgressTracker& progress,
                                   const TaskFn& task,
                                   const std::function<bool()>& halted) {
  PassResult result;
  const std::size_t n = index.size();
  assert(progress.num_tasks() == n);
  gpusim::Device& dev = ctx_.device();
  gpusim::RunStats& stats = ctx_.stats();

  std::size_t ring = 0;
  for (std::size_t lo = 0; lo < n; lo += cfg_.records_per_chunk) {
    if (halted && halted()) {
      result.halted = true;
      break;
    }
    const std::size_t hi = std::min(lo + cfg_.records_per_chunk, n);

    // Skip fully-processed chunks: no staging transfer, no kernel.
    if (progress.first_pending_from(lo) >= hi) {
      ++result.chunks_skipped;
      continue;
    }

    // Stage the chunk's raw byte range into the next ring buffer. The
    // transfer cannot start before the kernel that last read this slot has
    // finished — the ring depth is what bounds transfer/compute overlap.
    const std::uint64_t chunk_base = index.offsets[lo];
    const std::uint64_t chunk_end =
        index.offsets[hi - 1] + index.lengths[hi - 1];
    const std::uint64_t chunk_bytes = chunk_end - chunk_base;
    if (chunk_bytes > cfg_.max_chunk_bytes)
      throw std::runtime_error("chunk exceeds staging buffer size");
    const gpusim::DevPtr buf = staging_[ring];
    const gpusim::Event staged = ctx_.stage_h2d(
        buf, input.data() + chunk_base, chunk_bytes, last_use_[ring]);
    ++result.chunks_staged;
    result.bytes_staged += chunk_bytes;

    // Kernel over the chunk's records, dependent on the chunk's staging
    // event. Records read their bodies from the device-resident buffer.
    last_use_[ring] = ctx_.launch(
        hi - lo,
        [&](std::size_t i) {
          const std::size_t rec = lo + i;
          stats.add_records_scanned();
          if (progress.is_done(rec)) return;
          if (halted && halted()) return;
          const std::uint64_t off = index.offsets[rec] - chunk_base;
          const std::string_view body{
              reinterpret_cast<const char*>(dev.ptr(buf + off)),
              index.lengths[rec]};
          stats.add_work_units(body.size());
          if (task(rec, body) == core::Status::kSuccess) {
            progress.mark_done(rec);
            stats.add_records_processed();
          } else {
            stats.add_records_postponed();
          }
        },
        {.grid_threads = cfg_.grid_threads}, staged);
    ring = (ring + 1) % staging_.size();
  }
  if (!result.halted && halted && halted()) result.halted = true;
  return result;
}

}  // namespace sepo::bigkernel
