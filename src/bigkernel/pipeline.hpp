// BigKernel-style input pipeline (reproduction of the substrate the paper
// depends on, [10] Mokhtari & Stumm, IPDPS'14).
//
// The raw input lives in host memory. It is cut into chunks of consecutive
// records; each chunk is staged into one of a small ring of device-resident
// input buffers (a metered host-to-device transfer) and then processed by a
// kernel over the chunk's records. The pipeline enqueues both onto the
// ExecContext's streams: the kernel for chunk k waits on chunk k's staging
// event, and staging into a ring slot waits on the event of the kernel that
// last read that slot. The ring is therefore real double-buffering — with
// N staging buffers at most N transfers can run ahead of compute, and with
// one buffer staging and compute fully serialize (DESIGN.md §5).
//
// Under SEPO the same input may be staged multiple times — once per
// iteration — but chunks whose records have all been processed are skipped,
// and a pass can be cut short by a halt predicate (Basic organization's 50%
// rule). This is the "reorganizes the computation so as to minimize CPU-GPU
// data transfers" part of the paper's §I.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "bigkernel/staging_totals.hpp"
#include "common/progress.hpp"
#include "common/strings.hpp"
#include "core/sepo.hpp"
#include "gpusim/exec_context.hpp"

namespace sepo::bigkernel {

struct PipelineConfig {
  std::size_t records_per_chunk = 4096;
  std::size_t num_staging_buffers = 4;  // ring of device input buffers
  std::size_t max_chunk_bytes = 1u << 20;
  std::size_t grid_threads = 0;  // 0 = one virtual thread per record
};

// A task processes one input record (device-resident view) and reports
// SUCCESS or POSTPONE (paper §III-B).
using TaskFn = std::function<core::Status(std::size_t rec_id,
                                          std::string_view body)>;

struct PassResult : StagingTotals {
  bool halted = false;
};

class InputPipeline {
 public:
  // Allocates the staging ring in device memory (static allocation: the
  // staging buffers are among the "other data structures" that shrink what
  // the heap may claim, §IV-A).
  InputPipeline(gpusim::ExecContext& ctx, PipelineConfig cfg);

  // One pass over all records not yet marked done in `progress`:
  // stages pending chunks and runs `task` on each pending record; marks
  // records done on SUCCESS. `halted` is polled between records; when it
  // returns true the pass stops issuing new tasks (Figure 5 (a)).
  PassResult run_pass(std::string_view input, const RecordIndex& index,
                      ProgressTracker& progress, const TaskFn& task,
                      const std::function<bool()>& halted = {});

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] gpusim::ExecContext& ctx() noexcept { return ctx_; }

  // Staging-ring state for the occupancy sampler (gpusim::OccupancySample):
  // slot count, and how many slots are still owned by a kernel whose
  // simulated completion lies after `now`.
  [[nodiscard]] std::uint32_t staging_slot_count() const noexcept {
    return static_cast<std::uint32_t>(staging_.size());
  }
  [[nodiscard]] std::uint32_t staging_busy(double now) const noexcept {
    std::uint32_t n = 0;
    for (const gpusim::Event& e : last_use_)
      if (e.at > now) ++n;
    return n;
  }

 private:
  gpusim::ExecContext& ctx_;
  PipelineConfig cfg_;
  std::vector<gpusim::DevPtr> staging_;  // ring buffers in device memory
  // Completion event of the kernel that last read each ring slot; restaging
  // the slot waits on it. Persists across passes: an iteration's first
  // transfer still contends with the tail of the previous pass.
  std::vector<gpusim::Event> last_use_;
};

}  // namespace sepo::bigkernel
