// Shared staging counters: one pass (bigkernel::PassResult) and a whole run
// (core::DriverResult) report the same three totals; both embed this struct
// so the fields cannot drift apart.
#pragma once

#include <cstdint>

namespace sepo::bigkernel {

struct StagingTotals {
  std::uint64_t chunks_staged = 0;
  std::uint64_t chunks_skipped = 0;  // all records already done
  std::uint64_t bytes_staged = 0;

  StagingTotals& operator+=(const StagingTotals& o) noexcept {
    chunks_staged += o.chunks_staged;
    chunks_skipped += o.chunks_skipped;
    bytes_staged += o.bytes_staged;
    return *this;
  }
};

}  // namespace sepo::bigkernel
