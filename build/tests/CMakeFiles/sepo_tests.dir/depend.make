# Empty dependencies file for sepo_tests.
# This may be replaced when dependencies are built.
