
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc_test.cpp" "tests/CMakeFiles/sepo_tests.dir/alloc_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/alloc_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/sepo_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/sepo_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/bigkernel_test.cpp" "tests/CMakeFiles/sepo_tests.dir/bigkernel_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/bigkernel_test.cpp.o.d"
  "/root/repo/tests/bitmap_test.cpp" "tests/CMakeFiles/sepo_tests.dir/bitmap_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/bitmap_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/sepo_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/gpusim_test.cpp" "tests/CMakeFiles/sepo_tests.dir/gpusim_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/gpusim_test.cpp.o.d"
  "/root/repo/tests/hash_table_test.cpp" "tests/CMakeFiles/sepo_tests.dir/hash_table_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/hash_table_test.cpp.o.d"
  "/root/repo/tests/mapreduce_test.cpp" "tests/CMakeFiles/sepo_tests.dir/mapreduce_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/mapreduce_test.cpp.o.d"
  "/root/repo/tests/progress_test.cpp" "tests/CMakeFiles/sepo_tests.dir/progress_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/progress_test.cpp.o.d"
  "/root/repo/tests/property_sweep_test.cpp" "tests/CMakeFiles/sepo_tests.dir/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/property_sweep_test.cpp.o.d"
  "/root/repo/tests/random_config_test.cpp" "tests/CMakeFiles/sepo_tests.dir/random_config_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/random_config_test.cpp.o.d"
  "/root/repo/tests/sepo_driver_test.cpp" "tests/CMakeFiles/sepo_tests.dir/sepo_driver_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/sepo_driver_test.cpp.o.d"
  "/root/repo/tests/sepo_lookup_test.cpp" "tests/CMakeFiles/sepo_tests.dir/sepo_lookup_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/sepo_lookup_test.cpp.o.d"
  "/root/repo/tests/sepo_model_test.cpp" "tests/CMakeFiles/sepo_tests.dir/sepo_model_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/sepo_model_test.cpp.o.d"
  "/root/repo/tests/shape_regression_test.cpp" "tests/CMakeFiles/sepo_tests.dir/shape_regression_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/shape_regression_test.cpp.o.d"
  "/root/repo/tests/stadium_test.cpp" "tests/CMakeFiles/sepo_tests.dir/stadium_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/stadium_test.cpp.o.d"
  "/root/repo/tests/table_io_test.cpp" "tests/CMakeFiles/sepo_tests.dir/table_io_test.cpp.o" "gcc" "tests/CMakeFiles/sepo_tests.dir/table_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sepo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sepo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sepo_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sepo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
