file(REMOVE_RECURSE
  "CMakeFiles/sepo_cli.dir/sepo_cli.cpp.o"
  "CMakeFiles/sepo_cli.dir/sepo_cli.cpp.o.d"
  "sepo_cli"
  "sepo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
