# Empty dependencies file for sepo_cli.
# This may be replaced when dependencies are built.
