file(REMOVE_RECURSE
  "CMakeFiles/ablation_load_factor.dir/ablation_load_factor.cpp.o"
  "CMakeFiles/ablation_load_factor.dir/ablation_load_factor.cpp.o.d"
  "ablation_load_factor"
  "ablation_load_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
