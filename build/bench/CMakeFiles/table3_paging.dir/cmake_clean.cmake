file(REMOVE_RECURSE
  "CMakeFiles/table3_paging.dir/table3_paging.cpp.o"
  "CMakeFiles/table3_paging.dir/table3_paging.cpp.o.d"
  "table3_paging"
  "table3_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
