# Empty compiler generated dependencies file for table3_paging.
# This may be replaced when dependencies are built.
