file(REMOVE_RECURSE
  "CMakeFiles/fig7_pinned.dir/fig7_pinned.cpp.o"
  "CMakeFiles/fig7_pinned.dir/fig7_pinned.cpp.o.d"
  "fig7_pinned"
  "fig7_pinned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pinned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
