# Empty compiler generated dependencies file for fig7_pinned.
# This may be replaced when dependencies are built.
