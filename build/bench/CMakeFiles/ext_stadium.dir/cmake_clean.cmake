file(REMOVE_RECURSE
  "CMakeFiles/ext_stadium.dir/ext_stadium.cpp.o"
  "CMakeFiles/ext_stadium.dir/ext_stadium.cpp.o.d"
  "ext_stadium"
  "ext_stadium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_stadium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
