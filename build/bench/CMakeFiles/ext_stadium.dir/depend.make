# Empty dependencies file for ext_stadium.
# This may be replaced when dependencies are built.
