file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_groups.dir/ablation_bucket_groups.cpp.o"
  "CMakeFiles/ablation_bucket_groups.dir/ablation_bucket_groups.cpp.o.d"
  "ablation_bucket_groups"
  "ablation_bucket_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
