# Empty dependencies file for ablation_bucket_groups.
# This may be replaced when dependencies are built.
