# Empty compiler generated dependencies file for ablation_cost_sensitivity.
# This may be replaced when dependencies are built.
