
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_cost_sensitivity.cpp" "bench/CMakeFiles/ablation_cost_sensitivity.dir/ablation_cost_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/ablation_cost_sensitivity.dir/ablation_cost_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sepo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sepo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sepo_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sepo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
