file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_sensitivity.dir/ablation_cost_sensitivity.cpp.o"
  "CMakeFiles/ablation_cost_sensitivity.dir/ablation_cost_sensitivity.cpp.o.d"
  "ablation_cost_sensitivity"
  "ablation_cost_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
