# Empty dependencies file for table2_mapcg.
# This may be replaced when dependencies are built.
