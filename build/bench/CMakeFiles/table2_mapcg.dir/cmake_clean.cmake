file(REMOVE_RECURSE
  "CMakeFiles/table2_mapcg.dir/table2_mapcg.cpp.o"
  "CMakeFiles/table2_mapcg.dir/table2_mapcg.cpp.o.d"
  "table2_mapcg"
  "table2_mapcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mapcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
