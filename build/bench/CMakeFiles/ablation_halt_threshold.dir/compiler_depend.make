# Empty compiler generated dependencies file for ablation_halt_threshold.
# This may be replaced when dependencies are built.
