file(REMOVE_RECURSE
  "CMakeFiles/ablation_halt_threshold.dir/ablation_halt_threshold.cpp.o"
  "CMakeFiles/ablation_halt_threshold.dir/ablation_halt_threshold.cpp.o.d"
  "ablation_halt_threshold"
  "ablation_halt_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_halt_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
