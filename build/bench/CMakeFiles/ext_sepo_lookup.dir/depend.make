# Empty dependencies file for ext_sepo_lookup.
# This may be replaced when dependencies are built.
