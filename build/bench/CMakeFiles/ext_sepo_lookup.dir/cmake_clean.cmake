file(REMOVE_RECURSE
  "CMakeFiles/ext_sepo_lookup.dir/ext_sepo_lookup.cpp.o"
  "CMakeFiles/ext_sepo_lookup.dir/ext_sepo_lookup.cpp.o.d"
  "ext_sepo_lookup"
  "ext_sepo_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sepo_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
