# Empty dependencies file for micro_hash_ops.
# This may be replaced when dependencies are built.
