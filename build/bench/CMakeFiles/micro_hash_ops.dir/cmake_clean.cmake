file(REMOVE_RECURSE
  "CMakeFiles/micro_hash_ops.dir/micro_hash_ops.cpp.o"
  "CMakeFiles/micro_hash_ops.dir/micro_hash_ops.cpp.o.d"
  "micro_hash_ops"
  "micro_hash_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hash_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
