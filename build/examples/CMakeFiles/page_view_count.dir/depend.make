# Empty dependencies file for page_view_count.
# This may be replaced when dependencies are built.
