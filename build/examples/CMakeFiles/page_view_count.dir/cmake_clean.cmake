file(REMOVE_RECURSE
  "CMakeFiles/page_view_count.dir/page_view_count.cpp.o"
  "CMakeFiles/page_view_count.dir/page_view_count.cpp.o.d"
  "page_view_count"
  "page_view_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_view_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
