file(REMOVE_RECURSE
  "CMakeFiles/dna_assembly.dir/dna_assembly.cpp.o"
  "CMakeFiles/dna_assembly.dir/dna_assembly.cpp.o.d"
  "dna_assembly"
  "dna_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
