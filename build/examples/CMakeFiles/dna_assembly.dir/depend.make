# Empty dependencies file for dna_assembly.
# This may be replaced when dependencies are built.
