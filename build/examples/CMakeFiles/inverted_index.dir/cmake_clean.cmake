file(REMOVE_RECURSE
  "CMakeFiles/inverted_index.dir/inverted_index.cpp.o"
  "CMakeFiles/inverted_index.dir/inverted_index.cpp.o.d"
  "inverted_index"
  "inverted_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverted_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
