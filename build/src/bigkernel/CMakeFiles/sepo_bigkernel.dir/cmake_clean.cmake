file(REMOVE_RECURSE
  "CMakeFiles/sepo_bigkernel.dir/pipeline.cpp.o"
  "CMakeFiles/sepo_bigkernel.dir/pipeline.cpp.o.d"
  "libsepo_bigkernel.a"
  "libsepo_bigkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_bigkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
