file(REMOVE_RECURSE
  "libsepo_bigkernel.a"
)
