# Empty dependencies file for sepo_bigkernel.
# This may be replaced when dependencies are built.
