file(REMOVE_RECURSE
  "CMakeFiles/sepo_alloc.dir/bucket_group_allocator.cpp.o"
  "CMakeFiles/sepo_alloc.dir/bucket_group_allocator.cpp.o.d"
  "CMakeFiles/sepo_alloc.dir/host_heap.cpp.o"
  "CMakeFiles/sepo_alloc.dir/host_heap.cpp.o.d"
  "CMakeFiles/sepo_alloc.dir/page_pool.cpp.o"
  "CMakeFiles/sepo_alloc.dir/page_pool.cpp.o.d"
  "libsepo_alloc.a"
  "libsepo_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
