# Empty dependencies file for sepo_alloc.
# This may be replaced when dependencies are built.
