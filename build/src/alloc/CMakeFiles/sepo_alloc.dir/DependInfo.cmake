
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/bucket_group_allocator.cpp" "src/alloc/CMakeFiles/sepo_alloc.dir/bucket_group_allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/sepo_alloc.dir/bucket_group_allocator.cpp.o.d"
  "/root/repo/src/alloc/host_heap.cpp" "src/alloc/CMakeFiles/sepo_alloc.dir/host_heap.cpp.o" "gcc" "src/alloc/CMakeFiles/sepo_alloc.dir/host_heap.cpp.o.d"
  "/root/repo/src/alloc/page_pool.cpp" "src/alloc/CMakeFiles/sepo_alloc.dir/page_pool.cpp.o" "gcc" "src/alloc/CMakeFiles/sepo_alloc.dir/page_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
