file(REMOVE_RECURSE
  "libsepo_alloc.a"
)
