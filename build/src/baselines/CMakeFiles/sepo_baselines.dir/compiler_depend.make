# Empty compiler generated dependencies file for sepo_baselines.
# This may be replaced when dependencies are built.
