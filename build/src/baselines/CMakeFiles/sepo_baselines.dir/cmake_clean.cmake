file(REMOVE_RECURSE
  "CMakeFiles/sepo_baselines.dir/cpu_hash_table.cpp.o"
  "CMakeFiles/sepo_baselines.dir/cpu_hash_table.cpp.o.d"
  "CMakeFiles/sepo_baselines.dir/mapcg.cpp.o"
  "CMakeFiles/sepo_baselines.dir/mapcg.cpp.o.d"
  "CMakeFiles/sepo_baselines.dir/paging_sim.cpp.o"
  "CMakeFiles/sepo_baselines.dir/paging_sim.cpp.o.d"
  "CMakeFiles/sepo_baselines.dir/phoenix.cpp.o"
  "CMakeFiles/sepo_baselines.dir/phoenix.cpp.o.d"
  "CMakeFiles/sepo_baselines.dir/pinned_hash_table.cpp.o"
  "CMakeFiles/sepo_baselines.dir/pinned_hash_table.cpp.o.d"
  "CMakeFiles/sepo_baselines.dir/stadium_hash_table.cpp.o"
  "CMakeFiles/sepo_baselines.dir/stadium_hash_table.cpp.o.d"
  "libsepo_baselines.a"
  "libsepo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
