
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cpu_hash_table.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/cpu_hash_table.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/cpu_hash_table.cpp.o.d"
  "/root/repo/src/baselines/mapcg.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/mapcg.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/mapcg.cpp.o.d"
  "/root/repo/src/baselines/paging_sim.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/paging_sim.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/paging_sim.cpp.o.d"
  "/root/repo/src/baselines/phoenix.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/phoenix.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/phoenix.cpp.o.d"
  "/root/repo/src/baselines/pinned_hash_table.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/pinned_hash_table.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/pinned_hash_table.cpp.o.d"
  "/root/repo/src/baselines/stadium_hash_table.cpp" "src/baselines/CMakeFiles/sepo_baselines.dir/stadium_hash_table.cpp.o" "gcc" "src/baselines/CMakeFiles/sepo_baselines.dir/stadium_hash_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/sepo_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sepo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
