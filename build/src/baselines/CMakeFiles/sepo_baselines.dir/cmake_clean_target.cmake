file(REMOVE_RECURSE
  "libsepo_baselines.a"
)
