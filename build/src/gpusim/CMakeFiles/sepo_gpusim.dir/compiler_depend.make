# Empty compiler generated dependencies file for sepo_gpusim.
# This may be replaced when dependencies are built.
