file(REMOVE_RECURSE
  "CMakeFiles/sepo_gpusim.dir/cost_model.cpp.o"
  "CMakeFiles/sepo_gpusim.dir/cost_model.cpp.o.d"
  "CMakeFiles/sepo_gpusim.dir/launch.cpp.o"
  "CMakeFiles/sepo_gpusim.dir/launch.cpp.o.d"
  "CMakeFiles/sepo_gpusim.dir/thread_pool.cpp.o"
  "CMakeFiles/sepo_gpusim.dir/thread_pool.cpp.o.d"
  "libsepo_gpusim.a"
  "libsepo_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
