file(REMOVE_RECURSE
  "libsepo_gpusim.a"
)
