# Empty dependencies file for sepo_common.
# This may be replaced when dependencies are built.
