file(REMOVE_RECURSE
  "libsepo_common.a"
)
