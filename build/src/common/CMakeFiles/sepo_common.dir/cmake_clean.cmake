file(REMOVE_RECURSE
  "CMakeFiles/sepo_common.dir/strings.cpp.o"
  "CMakeFiles/sepo_common.dir/strings.cpp.o.d"
  "CMakeFiles/sepo_common.dir/table_printer.cpp.o"
  "CMakeFiles/sepo_common.dir/table_printer.cpp.o.d"
  "libsepo_common.a"
  "libsepo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
