
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/datagen.cpp" "src/apps/CMakeFiles/sepo_apps.dir/datagen.cpp.o" "gcc" "src/apps/CMakeFiles/sepo_apps.dir/datagen.cpp.o.d"
  "/root/repo/src/apps/harness.cpp" "src/apps/CMakeFiles/sepo_apps.dir/harness.cpp.o" "gcc" "src/apps/CMakeFiles/sepo_apps.dir/harness.cpp.o.d"
  "/root/repo/src/apps/mr_apps.cpp" "src/apps/CMakeFiles/sepo_apps.dir/mr_apps.cpp.o" "gcc" "src/apps/CMakeFiles/sepo_apps.dir/mr_apps.cpp.o.d"
  "/root/repo/src/apps/standalone_app.cpp" "src/apps/CMakeFiles/sepo_apps.dir/standalone_app.cpp.o" "gcc" "src/apps/CMakeFiles/sepo_apps.dir/standalone_app.cpp.o.d"
  "/root/repo/src/apps/standalone_parsers.cpp" "src/apps/CMakeFiles/sepo_apps.dir/standalone_parsers.cpp.o" "gcc" "src/apps/CMakeFiles/sepo_apps.dir/standalone_parsers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sepo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sepo_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sepo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
