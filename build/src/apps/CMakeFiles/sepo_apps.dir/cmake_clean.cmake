file(REMOVE_RECURSE
  "CMakeFiles/sepo_apps.dir/datagen.cpp.o"
  "CMakeFiles/sepo_apps.dir/datagen.cpp.o.d"
  "CMakeFiles/sepo_apps.dir/harness.cpp.o"
  "CMakeFiles/sepo_apps.dir/harness.cpp.o.d"
  "CMakeFiles/sepo_apps.dir/mr_apps.cpp.o"
  "CMakeFiles/sepo_apps.dir/mr_apps.cpp.o.d"
  "CMakeFiles/sepo_apps.dir/standalone_app.cpp.o"
  "CMakeFiles/sepo_apps.dir/standalone_app.cpp.o.d"
  "CMakeFiles/sepo_apps.dir/standalone_parsers.cpp.o"
  "CMakeFiles/sepo_apps.dir/standalone_parsers.cpp.o.d"
  "libsepo_apps.a"
  "libsepo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
