# Empty compiler generated dependencies file for sepo_apps.
# This may be replaced when dependencies are built.
