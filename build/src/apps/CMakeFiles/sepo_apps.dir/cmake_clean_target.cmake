file(REMOVE_RECURSE
  "libsepo_apps.a"
)
