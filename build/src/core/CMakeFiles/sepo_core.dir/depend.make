# Empty dependencies file for sepo_core.
# This may be replaced when dependencies are built.
